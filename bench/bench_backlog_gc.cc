// Experiment E1 (paper §3.1, Figure 1): backlogs, retention GC, and silent
// message loss.
//
// A producer emits events at a fixed rate. The consumer suffers an outage of
// varying length. The pubsub pipeline (durable log, time-based retention,
// consumer group) garbage-collects messages the consumer never saw and gives
// it no signal; the storage+watch pipeline (ingest store + watch system with
// a bounded soft-state window) either replays the gap or sends an explicit
// resync, after which the consumer recovers complete state from the store.
//
// Also runs ablation A1: retained-window size vs resync rate and recovery.
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "bench/table.h"
#include "common/rng.h"
#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ingest_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/store_watch.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kKeys = 2000;
constexpr common::TimeMicros kEventPeriod = 2 * kMs;  // 500 events/sec.
constexpr common::TimeMicros kRetention = 3 * kSec;
constexpr common::TimeMicros kOutageStart = 2 * kSec;
constexpr common::TimeMicros kRunFor = 30 * kSec;

struct PubsubResult {
  std::uint64_t published = 0;
  std::uint64_t received = 0;
  std::uint64_t lost = 0;
  bool loss_signalled = false;  // Pubsub never signals it.
  double catchup_ms = -1;
};

PubsubResult RunPubsub(common::TimeMicros outage) {
  sim::Simulator sim(42);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  pubsub::Broker broker(&sim, &net, "broker", 100 * kMs);
  (void)broker.CreateTopic("events", {.partitions = 4,
                                      .retention = {.retention = kRetention}});
  PubsubResult result;
  std::set<std::string> seen;
  pubsub::GroupConsumer consumer(
      &sim, &net, &broker, "ingestors", "events", "consumer-0",
      [&](pubsub::PartitionId, const pubsub::StoredMessage& m) {
        seen.insert(m.message.key);
        return true;
      },
      {.poll_period = 10 * kMs, .heartbeat_period = 200 * kMs, .max_poll_messages = 64});
  consumer.Start();

  common::Rng rng(7);
  std::uint64_t seq = 0;
  sim::PeriodicTask producer(&sim, kEventPeriod, [&] {
    (void)broker.Publish("events",
                         pubsub::Message{"ev-" + std::to_string(seq++),
                                         std::string(64, 'x'), 0});
    ++result.published;
  });

  sim::FailureInjector injector(&sim, &net);
  injector.Register("consumer-0", {.on_crash = [&] { consumer.OnCrash(); },
                                   .on_restart = [&] { consumer.OnRestart(); }});
  if (outage > 0) {
    injector.ScheduleCrash("consumer-0", kOutageStart, outage);
  }

  sim.RunUntil(kRunFor);
  producer.Stop();

  // Catch-up time: after production stops, drain; record when backlog hits 0.
  const common::TimeMicros drain_start = sim.Now();
  common::TimeMicros done_at = -1;
  for (common::TimeMicros t = drain_start; t < drain_start + 60 * kSec; t += 50 * kMs) {
    sim.RunUntil(t);
    if (broker.GroupBacklog("ingestors", "events") == 0) {
      done_at = sim.Now();
      break;
    }
  }
  result.received = seen.size();
  result.lost = result.published - result.received;
  result.catchup_ms = done_at < 0 ? -1 : static_cast<double>(done_at - drain_start) / kMs;
  return result;
}

struct WatchResult {
  std::uint64_t published = 0;
  std::uint64_t final_state_complete = 0;  // Keys materialized after recovery.
  std::uint64_t lost = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t session_repairs = 0;
  double catchup_ms = -1;
};

WatchResult RunWatch(common::TimeMicros outage, std::size_t window_events) {
  sim::Simulator sim(42);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  storage::IngestStore store("events");
  watch::IngestStoreWatch store_watch(
      &sim, &net, &store, "ingest-watch",
      {.window = {.max_events = window_events},
       .delivery_latency = 1 * kMs,
       .progress_period = 20 * kMs});
  watch::IngestSnapshotSource source(&store);
  watch::MaterializedRange consumer(&sim, &store_watch, &source, common::KeyRange::All(),
                                    {.resync_delay = 20 * kMs,
                                     .session_check_period = 50 * kMs,
                                     .node = "consumer-0",
                                     .net = &net});
  net.AddNode("consumer-0");
  consumer.Start();

  WatchResult result;
  std::uint64_t seq = 0;
  sim::PeriodicTask producer(&sim, kEventPeriod, [&] {
    store.Append("ev-" + std::to_string(seq++), std::string(64, 'x'), sim.Now());
    ++result.published;
  });
  // The ingest store trims raw history on the same retention as pubsub — but
  // being a store, it keeps the latest state per key queryable forever.
  sim::PeriodicTask retention(&sim, 100 * kMs,
                              [&] { store.RetainAfter(sim.Now() - kRetention); });

  sim::FailureInjector injector(&sim, &net);
  injector.Register("consumer-0",
                    {.on_crash = [] {}, .on_restart = [] {}});
  if (outage > 0) {
    injector.ScheduleCrash("consumer-0", kOutageStart, outage);
  }

  sim.RunUntil(kRunFor);
  producer.Stop();

  const common::TimeMicros drain_start = sim.Now();
  common::TimeMicros done_at = -1;
  for (common::TimeMicros t = drain_start; t < drain_start + 60 * kSec; t += 50 * kMs) {
    sim.RunUntil(t);
    if (consumer.ready() &&
        consumer.LatestScan(common::KeyRange::All()).size() >= result.published) {
      done_at = sim.Now();
      break;
    }
  }
  result.final_state_complete = consumer.LatestScan(common::KeyRange::All()).size();
  result.lost = result.published - result.final_state_complete;
  result.resyncs = consumer.resyncs();
  result.session_repairs = consumer.session_repairs();
  result.catchup_ms = done_at < 0 ? -1 : static_cast<double>(done_at - drain_start) / kMs;
  return result;
}

}  // namespace

int main() {
  std::printf("E1: backlog + retention GC (paper §3.1)\n");
  std::printf("rate=500 ev/s, pubsub retention=%llds, watch window=4096 events\n",
              static_cast<long long>(kRetention / kSec));

  bench::Table table(
      "Consumer outage vs. loss and recovery (pubsub log vs. store+watch)",
      {"outage_s", "pub_lost", "pub_signal", "pub_catchup_ms", "watch_lost", "watch_signal",
       "watch_resyncs", "watch_catchup_ms"});
  for (common::TimeMicros outage :
       {common::TimeMicros(0), 1 * kSec, 2 * kSec, 5 * kSec, 10 * kSec, 20 * kSec}) {
    PubsubResult p = RunPubsub(outage);
    WatchResult w = RunWatch(outage, 4096);
    // "Signal" means the explicit may-have-missed-events notification
    // (OnResync); a transparent session repair that replays the gap needs no
    // signal because nothing was missed.
    const bool watch_signalled = w.resyncs > 0;
    table.AddRow({bench::F(static_cast<double>(outage) / kSec, 1), bench::I(p.lost),
                  bench::B(p.loss_signalled), bench::F(p.catchup_ms, 0), bench::I(w.lost),
                  bench::B(watch_signalled), bench::I(w.resyncs),
                  bench::F(w.catchup_ms, 0)});
  }
  table.Print();

  bench::Table ablation(
      "A1: retained-window size vs resync (outage fixed at 5s)",
      {"window_events", "resyncs", "session_repairs", "lost", "catchup_ms"});
  for (std::size_t window : {256u, 1024u, 4096u, 16384u, 65536u}) {
    WatchResult w = RunWatch(5 * kSec, window);
    ablation.AddRow({bench::I(window), bench::I(w.resyncs), bench::I(w.session_repairs),
                     bench::I(w.lost), bench::F(w.catchup_ms, 0)});
  }
  ablation.Print();

  std::printf(
      "\nShape check: pubsub loses messages exactly when outage approaches/exceeds retention,\n"
      "with no signal; watch loses nothing (state recovered from the store), signals resync\n"
      "when the window is exceeded, and catches up. Small windows resync more; recovery\n"
      "stays bounded.\n");
  (void)kKeys;
  return 0;
}
