// Experiment E1 (paper §3.1, Figure 1): backlogs, retention GC, and silent
// message loss.
//
// A producer emits events at a fixed rate. The consumer suffers an outage of
// varying length. The pubsub pipeline (durable log, time-based retention,
// consumer group) garbage-collects messages the consumer never saw and gives
// it no signal; the storage+watch pipeline (ingest store + watch system with
// a bounded soft-state window) either replays the gap or sends an explicit
// resync, after which the consumer recovers complete state from the store.
//
// Also runs ablation A1: retained-window size vs resync rate and recovery.
//
// Flags:
//   --durable  back the pubsub broker with the segmented WAL (fault-free
//              FaultVfs) and additionally measure journaling volume, segment
//              GC, and post-run crash-recovery cost (experiment D1).
//   --json     emit machine-readable JSON instead of the text tables.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ingest_store.h"
#include "wal/broker_journal.h"
#include "wal/fault_vfs.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/store_watch.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kKeys = 2000;
constexpr common::TimeMicros kEventPeriod = 2 * kMs;  // 500 events/sec.
constexpr common::TimeMicros kRetention = 3 * kSec;
constexpr common::TimeMicros kOutageStart = 2 * kSec;
constexpr common::TimeMicros kRunFor = 30 * kSec;

struct PubsubResult {
  std::uint64_t published = 0;
  std::uint64_t received = 0;
  std::uint64_t lost = 0;
  bool loss_signalled = false;  // Pubsub never signals it.
  double catchup_ms = -1;
  // Durable mode only (D1): journaling volume and recovery cost.
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_segments_dropped = 0;
  std::uint64_t wal_records_replayed = 0;
  double wal_recovery_ms = -1;
  bool wal_recovered_identical = false;
};

PubsubResult RunPubsub(common::TimeMicros outage, bool durable) {
  sim::Simulator sim(42);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  pubsub::Broker broker(&sim, &net, "broker", 100 * kMs);
  const pubsub::TopicConfig topic_config{.partitions = 4,
                                         .retention = {.retention = kRetention}};

  // Durable mode: every append, retention trim, and committed offset is
  // journaled through the segmented WAL on an in-memory (fault-free) vfs.
  wal::FaultVfs vfs;
  common::MetricsRegistry metrics;
  std::unique_ptr<wal::BrokerJournal> journal;
  if (durable) {
    auto opened =
        wal::BrokerJournal::Open(&vfs, "wal", wal::BrokerJournalOptions{}, &metrics, &broker);
    if (!opened.ok()) {
      std::fprintf(stderr, "wal open failed: %s\n", opened.status().message().c_str());
      return {};
    }
    journal = std::move(opened.value());
    (void)journal->CreateTopic("events", topic_config);
  } else {
    (void)broker.CreateTopic("events", topic_config);
  }
  PubsubResult result;
  std::set<std::string> seen;
  pubsub::GroupConsumer consumer(
      &sim, &net, &broker, "ingestors", "events", "consumer-0",
      [&](pubsub::PartitionId, const pubsub::StoredMessage& m) {
        seen.insert(m.message.key);
        return true;
      },
      {.poll_period = 10 * kMs, .heartbeat_period = 200 * kMs, .max_poll_messages = 64});
  consumer.Start();

  common::Rng rng(7);
  std::uint64_t seq = 0;
  sim::PeriodicTask producer(&sim, kEventPeriod, [&] {
    (void)broker.Publish("events",
                         pubsub::Message{"ev-" + std::to_string(seq++),
                                         std::string(64, 'x'), 0});
    ++result.published;
  });

  sim::FailureInjector injector(&sim, &net);
  injector.Register("consumer-0", {.on_crash = [&] { consumer.OnCrash(); },
                                   .on_restart = [&] { consumer.OnRestart(); }});
  if (outage > 0) {
    injector.ScheduleCrash("consumer-0", kOutageStart, outage);
  }

  sim.RunUntil(kRunFor);
  producer.Stop();

  // Catch-up time: after production stops, drain; record when backlog hits 0.
  const common::TimeMicros drain_start = sim.Now();
  common::TimeMicros done_at = -1;
  for (common::TimeMicros t = drain_start; t < drain_start + 60 * kSec; t += 50 * kMs) {
    sim.RunUntil(t);
    if (broker.GroupBacklog("ingestors", "events") == 0) {
      done_at = sim.Now();
      break;
    }
  }
  result.received = seen.size();
  result.lost = result.published - result.received;
  result.catchup_ms = done_at < 0 ? -1 : static_cast<double>(done_at - drain_start) / kMs;

  if (durable) {
    result.wal_appends = static_cast<std::uint64_t>(metrics.counter("wal.appends").value());
    result.wal_segments_dropped =
        static_cast<std::uint64_t>(metrics.counter("wal.gc.segments_dropped").value());

    // D1: crash here (process death; the vfs survives) and measure recovery
    // onto a fresh broker. Identical recovered offsets = the delivery
    // guarantee the WAL exists to provide.
    sim::Simulator sim2(43);
    sim::Network net2(&sim2, {.base = 200, .jitter = 0});
    pubsub::Broker recovered(&sim2, &net2, "broker", 100 * kMs);
    const auto t0 = std::chrono::steady_clock::now();
    auto reopened = wal::BrokerJournal::Open(&vfs, "wal", wal::BrokerJournalOptions{}, nullptr,
                                             &recovered);
    const auto t1 = std::chrono::steady_clock::now();
    result.wal_recovery_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (reopened.ok()) {
      result.wal_records_replayed = (*reopened)->recovery_stats().records_replayed;
      result.wal_recovered_identical = true;
      for (pubsub::PartitionId p = 0; p < 4; ++p) {
        result.wal_recovered_identical =
            result.wal_recovered_identical &&
            recovered.EndOffset("events", p) == broker.EndOffset("events", p) &&
            recovered.Log("events", p)->first_offset() ==
                broker.Log("events", p)->first_offset() &&
            recovered.CommittedOffset("ingestors", p) == broker.CommittedOffset("ingestors", p);
      }
    }
  }
  return result;
}

struct WatchResult {
  std::uint64_t published = 0;
  std::uint64_t final_state_complete = 0;  // Keys materialized after recovery.
  std::uint64_t lost = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t session_repairs = 0;
  double catchup_ms = -1;
};

WatchResult RunWatch(common::TimeMicros outage, std::size_t window_events) {
  sim::Simulator sim(42);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  storage::IngestStore store("events");
  watch::IngestStoreWatch store_watch(
      &sim, &net, &store, "ingest-watch",
      {.window = {.max_events = window_events},
       .delivery_latency = 1 * kMs,
       .progress_period = 20 * kMs});
  watch::IngestSnapshotSource source(&store);
  watch::MaterializedRange consumer(&sim, &store_watch, &source, common::KeyRange::All(),
                                    {.resync_delay = 20 * kMs,
                                     .session_check_period = 50 * kMs,
                                     .node = "consumer-0",
                                     .net = &net});
  net.AddNode("consumer-0");
  consumer.Start();

  WatchResult result;
  std::uint64_t seq = 0;
  sim::PeriodicTask producer(&sim, kEventPeriod, [&] {
    store.Append("ev-" + std::to_string(seq++), std::string(64, 'x'), sim.Now());
    ++result.published;
  });
  // The ingest store trims raw history on the same retention as pubsub — but
  // being a store, it keeps the latest state per key queryable forever.
  sim::PeriodicTask retention(&sim, 100 * kMs,
                              [&] { store.RetainAfter(sim.Now() - kRetention); });

  sim::FailureInjector injector(&sim, &net);
  injector.Register("consumer-0",
                    {.on_crash = [] {}, .on_restart = [] {}});
  if (outage > 0) {
    injector.ScheduleCrash("consumer-0", kOutageStart, outage);
  }

  sim.RunUntil(kRunFor);
  producer.Stop();

  const common::TimeMicros drain_start = sim.Now();
  common::TimeMicros done_at = -1;
  for (common::TimeMicros t = drain_start; t < drain_start + 60 * kSec; t += 50 * kMs) {
    sim.RunUntil(t);
    if (consumer.ready() &&
        consumer.LatestScan(common::KeyRange::All()).size() >= result.published) {
      done_at = sim.Now();
      break;
    }
  }
  result.final_state_complete = consumer.LatestScan(common::KeyRange::All()).size();
  result.lost = result.published - result.final_state_complete;
  result.resyncs = consumer.resyncs();
  result.session_repairs = consumer.session_repairs();
  result.catchup_ms = done_at < 0 ? -1 : static_cast<double>(done_at - drain_start) / kMs;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool durable = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durable") == 0) {
      durable = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (known: --durable --json)\n", argv[i]);
      return 2;
    }
  }

  const std::vector<common::TimeMicros> outages = {common::TimeMicros(0), 1 * kSec, 2 * kSec,
                                                   5 * kSec, 10 * kSec, 20 * kSec};
  std::vector<PubsubResult> pubsub_rows;
  std::vector<WatchResult> watch_rows;
  for (common::TimeMicros outage : outages) {
    pubsub_rows.push_back(RunPubsub(outage, durable));
    watch_rows.push_back(RunWatch(outage, 4096));
  }

  const std::vector<std::size_t> windows = {256u, 1024u, 4096u, 16384u, 65536u};
  std::vector<WatchResult> ablation_rows;
  for (std::size_t window : windows) {
    ablation_rows.push_back(RunWatch(5 * kSec, window));
  }

  if (json) {
    std::printf("{\n  \"bench\": \"backlog_gc\",\n  \"durable\": %s,\n",
                durable ? "true" : "false");
    std::printf("  \"e1\": [\n");
    for (std::size_t i = 0; i < outages.size(); ++i) {
      const PubsubResult& p = pubsub_rows[i];
      const WatchResult& w = watch_rows[i];
      std::printf("    {\"outage_s\": %.1f, \"published\": %llu, \"pub_lost\": %llu, "
                  "\"pub_signal\": false, \"pub_catchup_ms\": %.0f, \"watch_lost\": %llu, "
                  "\"watch_resyncs\": %llu, \"watch_catchup_ms\": %.0f",
                  static_cast<double>(outages[i]) / kSec,
                  static_cast<unsigned long long>(p.published),
                  static_cast<unsigned long long>(p.lost), p.catchup_ms,
                  static_cast<unsigned long long>(w.lost),
                  static_cast<unsigned long long>(w.resyncs), w.catchup_ms);
      if (durable) {
        std::printf(", \"wal_appends\": %llu, \"wal_segments_dropped\": %llu, "
                    "\"wal_records_replayed\": %llu, \"wal_recovery_ms\": %.3f, "
                    "\"wal_recovered_identical\": %s",
                    static_cast<unsigned long long>(p.wal_appends),
                    static_cast<unsigned long long>(p.wal_segments_dropped),
                    static_cast<unsigned long long>(p.wal_records_replayed), p.wal_recovery_ms,
                    p.wal_recovered_identical ? "true" : "false");
      }
      std::printf("}%s\n", i + 1 < outages.size() ? "," : "");
    }
    std::printf("  ],\n  \"a1\": [\n");
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const WatchResult& w = ablation_rows[i];
      std::printf("    {\"window_events\": %llu, \"resyncs\": %llu, \"session_repairs\": %llu, "
                  "\"lost\": %llu, \"catchup_ms\": %.0f}%s\n",
                  static_cast<unsigned long long>(windows[i]),
                  static_cast<unsigned long long>(w.resyncs),
                  static_cast<unsigned long long>(w.session_repairs),
                  static_cast<unsigned long long>(w.lost), w.catchup_ms,
                  i + 1 < windows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("E1: backlog + retention GC (paper §3.1)%s\n",
              durable ? " — durable broker (WAL-backed)" : "");
  std::printf("rate=500 ev/s, pubsub retention=%llds, watch window=4096 events\n",
              static_cast<long long>(kRetention / kSec));

  bench::Table table(
      "Consumer outage vs. loss and recovery (pubsub log vs. store+watch)",
      {"outage_s", "pub_lost", "pub_signal", "pub_catchup_ms", "watch_lost", "watch_signal",
       "watch_resyncs", "watch_catchup_ms"});
  for (std::size_t i = 0; i < outages.size(); ++i) {
    const PubsubResult& p = pubsub_rows[i];
    const WatchResult& w = watch_rows[i];
    // "Signal" means the explicit may-have-missed-events notification
    // (OnResync); a transparent session repair that replays the gap needs no
    // signal because nothing was missed.
    const bool watch_signalled = w.resyncs > 0;
    table.AddRow({bench::F(static_cast<double>(outages[i]) / kSec, 1), bench::I(p.lost),
                  bench::B(p.loss_signalled), bench::F(p.catchup_ms, 0), bench::I(w.lost),
                  bench::B(watch_signalled), bench::I(w.resyncs),
                  bench::F(w.catchup_ms, 0)});
  }
  table.Print();

  if (durable) {
    bench::Table dtable("D1: WAL journaling volume and crash recovery per outage",
                        {"outage_s", "wal_appends", "segs_dropped", "replayed", "recovery_ms",
                         "recovered_identical"});
    for (std::size_t i = 0; i < outages.size(); ++i) {
      const PubsubResult& p = pubsub_rows[i];
      dtable.AddRow({bench::F(static_cast<double>(outages[i]) / kSec, 1),
                     bench::I(p.wal_appends), bench::I(p.wal_segments_dropped),
                     bench::I(p.wal_records_replayed), bench::F(p.wal_recovery_ms, 3),
                     bench::B(p.wal_recovered_identical)});
    }
    dtable.Print();
  }

  bench::Table ablation(
      "A1: retained-window size vs resync (outage fixed at 5s)",
      {"window_events", "resyncs", "session_repairs", "lost", "catchup_ms"});
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const WatchResult& w = ablation_rows[i];
    ablation.AddRow({bench::I(windows[i]), bench::I(w.resyncs), bench::I(w.session_repairs),
                     bench::I(w.lost), bench::F(w.catchup_ms, 0)});
  }
  ablation.Print();

  std::printf(
      "\nShape check: pubsub loses messages exactly when outage approaches/exceeds retention,\n"
      "with no signal; watch loses nothing (state recovered from the store), signals resync\n"
      "when the window is exceeded, and catches up. Small windows resync more; recovery\n"
      "stays bounded.%s\n",
      durable ? "\nDurable mode: journaling mirrors every append/trim/commit; recovery "
                "rebuilds identical offsets."
              : "");
  (void)kKeys;
  return 0;
}
