// Chaos sweep driver: runs the cross-layer invariant oracle over many seeded
// fault schedules (crashes, partitions, GC pressure, shard moves, group
// churn, soft-state wipes, seeks) and reports per-seed stats. On a violation
// it shrinks the schedule to a minimal reproducer and prints it, then exits
// nonzero — a reproducing seed + schedule is the whole point.
//
//   ./bench_chaos_sweep [seeds] [first_seed]   (defaults: 50 1)
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "oracle/chaos.h"

int main(int argc, char** argv) {
  std::uint64_t seeds = 50;
  std::uint64_t first_seed = 1;
  if (argc > 1) {
    char* end = nullptr;
    seeds = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || seeds == 0) {
      std::fprintf(stderr, "usage: %s [seeds>0] [first_seed]\n", argv[0]);
      return 2;
    }
  }
  if (argc > 2) {
    char* end = nullptr;
    first_seed = std::strtoull(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0') {
      std::fprintf(stderr, "usage: %s [seeds>0] [first_seed]\n", argv[0]);
      return 2;
    }
  }

  oracle::ChaosSweep sweep;
  oracle::SweepStats totals;
  std::uint64_t violating_seeds = 0;

  std::printf("chaos sweep: %llu seeds starting at %llu\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(first_seed));
  std::printf("%8s %9s %10s %8s %8s %10s %7s %7s %s\n", "seed", "commits", "delivered",
              "resyncs", "gced", "compacted", "skips", "checks", "result");

  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = first_seed + i;  // Wraps mod 2^64; any u64 seeds.
    const oracle::SweepResult result = sweep.Run(seed);
    const oracle::SweepStats& s = result.stats;
    std::printf("%8llu %9llu %10llu %8llu %8llu %10llu %7llu %7llu %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(s.commits),
                static_cast<unsigned long long>(s.watch_events_delivered),
                static_cast<unsigned long long>(s.watch_resyncs),
                static_cast<unsigned long long>(s.broker_gced),
                static_cast<unsigned long long>(s.broker_compacted),
                static_cast<unsigned long long>(s.silent_skips),
                static_cast<unsigned long long>(s.checks),
                result.ok() ? "ok" : "VIOLATION");
    totals.commits += s.commits;
    totals.watch_events_delivered += s.watch_events_delivered;
    totals.watch_resyncs += s.watch_resyncs;
    totals.broker_gced += s.broker_gced;
    totals.broker_compacted += s.broker_compacted;
    totals.silent_skips += s.silent_skips;
    totals.checks += s.checks;

    if (!result.ok()) {
      ++violating_seeds;
      std::printf("\nseed %llu violated %zu invariant(s):\n",
                  static_cast<unsigned long long>(seed), result.violations.size());
      for (const oracle::Violation& v : result.violations) {
        std::printf("  [%s] t=%lldus: %s\n", v.invariant.c_str(),
                    static_cast<long long>(v.at), v.detail.c_str());
      }
      std::printf("shrinking schedule (%zu events)...\n", result.schedule.size());
      const oracle::SweepResult minimal = sweep.Shrink(seed, result.schedule);
      std::printf("minimal reproducing schedule for seed %llu (%zu events):\n",
                  static_cast<unsigned long long>(seed), minimal.schedule.size());
      for (const oracle::ChaosEvent& ev : minimal.schedule) {
        std::printf("  %s\n", oracle::DescribeChaosEvent(ev).c_str());
      }
      std::printf("first violation under minimal schedule:\n");
      for (const oracle::Violation& v : minimal.violations) {
        std::printf("  [%s] t=%lldus: %s\n", v.invariant.c_str(),
                    static_cast<long long>(v.at), v.detail.c_str());
        break;
      }
      std::printf("\n");
    }
  }

  std::printf("\ntotals: %llu commits, %llu watch deliveries, %llu resyncs, %llu gced, "
              "%llu compacted, %llu silent skips, %llu oracle checks\n",
              static_cast<unsigned long long>(totals.commits),
              static_cast<unsigned long long>(totals.watch_events_delivered),
              static_cast<unsigned long long>(totals.watch_resyncs),
              static_cast<unsigned long long>(totals.broker_gced),
              static_cast<unsigned long long>(totals.broker_compacted),
              static_cast<unsigned long long>(totals.silent_skips),
              static_cast<unsigned long long>(totals.checks));
  if (violating_seeds != 0) {
    std::printf("RESULT: %llu/%llu seeds violated invariants\n",
                static_cast<unsigned long long>(violating_seeds),
                static_cast<unsigned long long>(seeds));
    return 1;
  }
  std::printf("RESULT: all %llu seeds violation-free\n",
              static_cast<unsigned long long>(seeds));
  return 0;
}
