// Experiment E2 (paper §3.1): topic compaction defers but does not eliminate
// message loss — and subscribers never discover that unseen versions were
// compacted away.
//
// K hot keys are updated continuously. A lagging consumer (outage) resumes
// from its committed offset on a compacted topic: versions compacted away
// while it was behind are simply absent, with offsets gaps indistinguishable
// from normal consumption. The watch pipeline also cannot show the consumer
// every intermediate version after a long lag — but it says so (resync), and
// the consumer ends holding an exact, versioned snapshot it knows is exact.
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "bench/table.h"
#include "common/rng.h"
#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/store_watch.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kHotKeys = 50;
constexpr common::TimeMicros kUpdatePeriod = 2 * kMs;
constexpr common::TimeMicros kOutageStart = 2 * kSec;
constexpr common::TimeMicros kOutage = 8 * kSec;
constexpr common::TimeMicros kRunFor = 20 * kSec;

struct Result {
  std::uint64_t versions_published = 0;
  std::uint64_t versions_seen = 0;
  std::uint64_t versions_missed = 0;
  bool gap_signalled = false;
  bool final_state_exact = false;  // Consumer's latest-per-key == producer's.
};

Result RunPubsub(common::TimeMicros compaction_window) {
  sim::Simulator sim(1);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  pubsub::Broker broker(&sim, &net, "broker", 100 * kMs);
  (void)broker.CreateTopic(
      "updates", {.partitions = 4,
                  .retention = {.compacted = true, .compaction_window = compaction_window}});
  Result result;
  std::map<std::string, std::string> consumer_state;
  pubsub::GroupConsumer consumer(
      &sim, &net, &broker, "g", "updates", "consumer-0",
      [&](pubsub::PartitionId, const pubsub::StoredMessage& m) {
        ++result.versions_seen;
        consumer_state[m.message.key] = m.message.value;
        return true;
      },
      {.poll_period = 10 * kMs, .heartbeat_period = 200 * kMs, .max_poll_messages = 256});
  consumer.Start();

  common::Rng rng(3);
  std::map<std::string, std::string> truth;
  std::uint64_t seq = 0;
  sim::PeriodicTask producer(&sim, kUpdatePeriod, [&] {
    const std::string key = common::IndexKey(rng.Below(kHotKeys), 3);
    const std::string value = "v" + std::to_string(seq++);
    truth[key] = value;
    (void)broker.Publish("updates", pubsub::Message{key, value, 0});
    ++result.versions_published;
  });

  sim::FailureInjector injector(&sim, &net);
  injector.Register("consumer-0", {.on_crash = [&] { consumer.OnCrash(); },
                                   .on_restart = [&] { consumer.OnRestart(); }});
  injector.ScheduleCrash("consumer-0", kOutageStart, kOutage);

  sim.RunUntil(kRunFor);
  producer.Stop();
  sim.RunUntil(kRunFor + 10 * kSec);  // Drain.

  result.versions_missed = result.versions_published - result.versions_seen;
  result.gap_signalled = false;  // Compaction gives no notification.
  result.final_state_exact = consumer_state == truth;
  return result;
}

Result RunWatch() {
  sim::Simulator sim(1);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  storage::MvccStore store("producer");
  watch::StoreWatch store_watch(&sim, &net, &store, "store-watch",
                                {.window = {.max_events = 1024},
                                 .delivery_latency = 1 * kMs,
                                 .progress_period = 20 * kMs});
  watch::StoreSnapshotSource source(&store);
  watch::MaterializedRange consumer(&sim, &store_watch, &source, common::KeyRange::All(),
                                    {.resync_delay = 10 * kMs,
                                     .session_check_period = 50 * kMs,
                                     .node = "consumer-0",
                                     .net = &net});
  net.AddNode("consumer-0");
  consumer.Start();

  Result result;
  std::uint64_t applied = 0;
  consumer.set_apply_hook([&applied](const common::ChangeEvent&) { ++applied; });

  common::Rng rng(3);
  std::uint64_t seq = 0;
  sim::PeriodicTask producer(&sim, kUpdatePeriod, [&] {
    store.Apply(common::IndexKey(rng.Below(kHotKeys), 3),
                common::Mutation::Put("v" + std::to_string(seq++)));
    ++result.versions_published;
  });
  // The producer store folds history below a moving watermark — its
  // equivalent of compaction, with the same effect: old versions unreadable.
  sim::PeriodicTask gc(&sim, 100 * kMs, [&] {
    if (store.LatestVersion() > 500) {
      store.AdvanceGcWatermark(store.LatestVersion() - 500);
    }
  });

  sim::FailureInjector injector(&sim, &net);
  injector.Register("consumer-0", {});
  injector.ScheduleCrash("consumer-0", kOutageStart, kOutage);

  sim.RunUntil(kRunFor);
  producer.Stop();
  sim.RunUntil(kRunFor + 10 * kSec);

  result.versions_seen = applied;
  result.versions_missed = result.versions_published - result.versions_seen;
  result.gap_signalled = consumer.resyncs() > 0;
  // Exactness: the materialization's latest-per-key equals the store's.
  auto truth = store.Scan(common::KeyRange::All(), store.LatestVersion());
  auto mine = consumer.LatestScan(common::KeyRange::All());
  result.final_state_exact = truth.ok() && mine.size() == truth->size();
  if (result.final_state_exact) {
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (mine[i].key != (*truth)[i].key || mine[i].value != (*truth)[i].value) {
        result.final_state_exact = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("E2: compaction defers but does not eliminate loss (paper §3.1)\n");
  std::printf("%llu hot keys, 500 updates/s, consumer outage %llds\n",
              static_cast<unsigned long long>(kHotKeys),
              static_cast<long long>(kOutage / kSec));

  bench::Table table("Compacted pubsub topic vs. store+watch after a lagging consumer",
                     {"pipeline", "published", "seen", "missed", "gap_signalled",
                      "final_state_exact"});
  for (common::TimeMicros window : {1 * kSec, 3 * kSec, 6 * kSec}) {
    Result r = RunPubsub(window);
    table.AddRow({"pubsub compact@" + bench::F(static_cast<double>(window) / kSec, 0) + "s",
                  bench::I(r.versions_published), bench::I(r.versions_seen),
                  bench::I(r.versions_missed), bench::B(r.gap_signalled),
                  bench::B(r.final_state_exact)});
  }
  Result w = RunWatch();
  table.AddRow({"store+watch", bench::I(w.versions_published), bench::I(w.versions_seen),
                bench::I(w.versions_missed), bench::B(w.gap_signalled),
                bench::B(w.final_state_exact)});
  table.Print();

  std::printf(
      "\nShape check: compaction quietly removes versions the lagging consumer never saw\n"
      "(missed > 0, no signal), though the final value per key happens to arrive. The\n"
      "watch consumer also skips intermediate versions after a long lag, but it is told\n"
      "(resync) and ends with a snapshot it KNOWS is exact, including deletions.\n");
  return 0;
}
