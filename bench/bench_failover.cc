// bench_failover: the §3.3 durability-anomaly experiment, measured.
//
// Each run boots a WAL-durable broker (leader) replicated to a follower over
// the jittery sim network (RF 2: quorum ack means the pair has the record),
// publishes on a fixed cadence, and hard-crashes the leader — storage and
// network — right after publish #K. A detection delay later the follower is
// promoted (FailoverController), the promoted tree is reopened as a fresh
// broker, and a replacement follower is streamed back up to restore the
// replication factor.
//
// For every run the bench accounts BOTH ack modes from the same traffic
// (acks are accounting, not admission — the data flow is identical):
//
//   leader-only  acked = everything durable on the leader at crash time.
//                The in-flight replication tail is LOST at promotion; the
//                bench reports that loss per run instead of hiding it.
//   quorum       acked = WalShipper::QuorumAckedNext at crash time. The
//                promoted follower provably retains this prefix, so
//                acked-record loss must be ZERO on every run.
//
// FailoverController::CheckPromotion replays both WAL trees post-mortem and
// its quorum-mode violations (plus any snapshot-containment violation from
// either mode) feed an InvariantOracle: a single violation fails the bench
// with a nonzero exit, which is how CI consumes `--smoke`.
//
// Sweep: seeds x crash points. Output: per-run table + BENCH_failover.json.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "oracle/invariant_oracle.h"
#include "pubsub/broker.h"
#include "pubsub/types.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wal/broker_journal.h"
#include "wal/fault_vfs.h"
#include "wal/log.h"
#include "wal/replication/catch_up_syncer.h"
#include "wal/replication/failover_controller.h"
#include "wal/replication/options.h"
#include "wal/replication/wal_shipper.h"

namespace {

constexpr common::TimeMicros kPublishPeriod = 100;  // One publish per 100us.
constexpr common::TimeMicros kDetectionDelay = 5'000;
constexpr common::TimeMicros kStart = 1'000;
constexpr pubsub::PartitionId kPartitions = 2;

struct ModeOutcome {
  std::uint64_t acked_total = 0;    // Sum of acked cursors across logs at crash.
  std::uint64_t acked_lost = 0;     // Acked records missing after promotion.
  std::uint64_t violations = 0;     // CheckPromotion violations for this mode.
};

struct RunResult {
  std::uint64_t seed = 0;
  int crash_at = 0;               // Publish count completed before the crash.
  std::uint64_t leader_total = 0; // Leader durable records (all logs) at crash.
  std::uint64_t promoted_total = 0;
  ModeOutcome leader_only;
  ModeOutcome quorum;
  std::uint64_t phantom_records = 0;
  std::uint64_t payload_mismatches = 0;
  std::int64_t promotion_gap_us = 0;
  std::int64_t catch_up_us = -1;  // Replacement follower restore time; -1 = timeout.
  std::int64_t force_resyncs = 0;
  bool ok = true;                 // Oracle clean (quorum loss + containment).
};

std::uint64_t SumValues(const std::map<std::string, std::uint64_t>& m) {
  std::uint64_t total = 0;
  for (const auto& [id, v] : m) {
    total += v;
  }
  return total;
}

RunResult RunOne(std::uint64_t seed, int crash_at, oracle::InvariantOracle* harness_oracle) {
  RunResult r;
  r.seed = seed;
  r.crash_at = crash_at;

  sim::Simulator sim(seed);
  sim::Network net(&sim, {.base = 200, .jitter = 300});
  common::MetricsRegistry metrics;

  wal::replication::ReplicationOptions ropts;
  ropts.replication_factor = 2;

  wal::FaultVfs leader_vfs;
  wal::FaultVfs follower_vfs;
  wal::FaultVfs replacement_vfs;
  wal::replication::CatchUpSyncer follower(&sim, &net, "f1", &follower_vfs, "f1", &metrics,
                                           ropts);

  pubsub::Broker broker(&sim, &net, "broker");
  auto journal =
      wal::BrokerJournal::Open(&leader_vfs, "leader", {}, &metrics, &broker);
  if (!journal.ok()) {
    std::fprintf(stderr, "journal open failed: %s\n", journal.status().message().c_str());
    r.ok = false;
    return r;
  }
  auto shipper = std::make_unique<wal::replication::WalShipper>(&sim, &net, "leader",
                                                                &metrics, ropts);
  shipper->AddFollower(&follower);
  const auto track = [&shipper](const std::string& id, wal::Log* log) {
    shipper->Track(id, log);
  };
  journal.value()->VisitLogs(track);
  journal.value()->set_log_created_callback(track);
  if (!journal.value()->CreateTopic("t", {.partitions = kPartitions}).ok()) {
    r.ok = false;
    return r;
  }

  // Publish every kPublishPeriod until the crash point; the K-th publish has
  // its replication frame in flight when the leader dies an instant later.
  for (int i = 0; i < crash_at; ++i) {
    sim.At(kStart + i * kPublishPeriod, [&broker, i, seed] {
      (void)broker.Publish(
          "t", {"", "v" + std::to_string(i) + "-s" + std::to_string(seed), 0},
          static_cast<pubsub::PartitionId>(i % kPartitions));
    });
  }
  const common::TimeMicros crash_time = kStart + (crash_at - 1) * kPublishPeriod + 1;
  sim.RunUntil(crash_time);

  // -- Crash. Snapshot both acked accountings at this instant. ----------------
  std::map<std::string, std::uint64_t> leader_acked;
  journal.value()->VisitLogs([&leader_acked](const std::string& id, wal::Log* log) {
    leader_acked[id] = log->next_index();
  });
  const std::map<std::string, std::uint64_t> quorum_acked = shipper->QuorumAckedNextAll();
  const std::vector<std::string> log_ids = shipper->log_ids();
  leader_vfs.Crash();
  net.SetUp("leader", false);

  // Detection delay, then promote the (only) live follower.
  sim.RunUntil(crash_time + kDetectionDelay);
  shipper->Detach();
  auto picked = wal::replication::FailoverController::PickMostCaughtUp({&follower});
  if (!picked.ok()) {
    r.ok = false;
    return r;
  }
  follower.DetachLeader();
  follower.ReleaseLogs();
  const common::TimeMicros promoted_time = sim.Now();
  r.promotion_gap_us = promoted_time - crash_time;

  // -- Forensics: replay both trees, check each ack mode's contract. ----------
  leader_vfs.Restart();
  const auto check_mode = [&](const std::map<std::string, std::uint64_t>& acked) {
    return wal::replication::FailoverController::CheckPromotion(
        &leader_vfs, "leader", &follower_vfs, "f1", log_ids, acked);
  };
  const wal::replication::PromotionCheck leader_check = check_mode(leader_acked);
  const wal::replication::PromotionCheck quorum_check = check_mode(quorum_acked);

  r.leader_total = SumValues(leader_acked);
  r.leader_only = {SumValues(leader_acked), leader_check.acked_records_lost,
                   static_cast<std::uint64_t>(leader_check.violations.size())};
  r.quorum = {SumValues(quorum_acked), quorum_check.acked_records_lost,
              static_cast<std::uint64_t>(quorum_check.violations.size())};
  r.phantom_records = quorum_check.phantom_records;
  r.payload_mismatches = quorum_check.payload_mismatches;

  // The quorum contract is unconditional; leader-only acked loss is the
  // measured anomaly, so only its containment violations reach the oracle.
  for (const auto& [invariant, detail] : quorum_check.violations) {
    harness_oracle->ReportExternalViolation(invariant, detail);
    r.ok = false;
  }
  for (const auto& [invariant, detail] : leader_check.violations) {
    if (invariant != "failover-acked-prefix") {
      harness_oracle->ReportExternalViolation(invariant, detail);
      r.ok = false;
    }
  }

  // -- Reopen the promoted tree and restore the replication factor. -----------
  pubsub::Broker broker2(&sim, &net, "broker2");
  auto journal2 = wal::BrokerJournal::Open(&follower_vfs, "f1", {}, &metrics, &broker2);
  if (!journal2.ok()) {
    harness_oracle->ReportExternalViolation(
        "failover-promoted-reopen", "seed " + std::to_string(seed) + ": " +
                                        journal2.status().message());
    r.ok = false;
    return r;
  }
  std::uint64_t promoted_total = 0;
  journal2.value()->VisitLogs([&promoted_total](const std::string&, wal::Log* log) {
    promoted_total += log->next_index();
  });
  r.promoted_total = promoted_total;

  wal::replication::CatchUpSyncer replacement(&sim, &net, "f2", &replacement_vfs, "f2",
                                              &metrics, ropts);
  auto shipper2 = std::make_unique<wal::replication::WalShipper>(&sim, &net, "leader2",
                                                                 &metrics, ropts);
  journal2.value()->VisitLogs([&shipper2](const std::string& id, wal::Log* log) {
    shipper2->Track(id, log);
  });
  shipper2->AddFollower(&replacement);
  const common::TimeMicros restore_start = sim.Now();
  const common::TimeMicros restore_deadline = restore_start + 5 * common::kMicrosPerSecond;
  while (sim.Now() < restore_deadline &&
         replacement.TotalNextIndex() < promoted_total) {
    sim.RunUntil(sim.Now() + common::kMicrosPerMilli);
  }
  if (replacement.TotalNextIndex() >= promoted_total) {
    r.catch_up_us = sim.Now() - restore_start;
  } else {
    harness_oracle->ReportExternalViolation(
        "failover-restore-timeout",
        "seed " + std::to_string(seed) + ": replacement follower stalled at " +
            std::to_string(replacement.TotalNextIndex()) + "/" +
            std::to_string(promoted_total));
    r.ok = false;
  }
  r.force_resyncs = metrics.counter("wal.repl.force_resyncs").value();

  // Teardown order: shippers detach from the logs they track before the
  // owning journals go away.
  shipper2.reset();
  shipper.reset();
  return r;
}

// `--json=PATH` writes PATH; bare `--json` writes the canonical
// BENCH_failover.json in the current directory.
std::optional<std::string> JsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return std::string("BENCH_failover.json");
    }
  }
  return bench::JsonPathFlag(argc, argv);
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

std::int64_t IntFlag(int argc, char** argv, const std::string& name, std::int64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoll(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const int seeds = static_cast<int>(IntFlag(argc, argv, "seeds", smoke ? 3 : 30));
  const std::vector<int> crash_points =
      smoke ? std::vector<int>{5, 40} : std::vector<int>{5, 25, 60, 120, 200};

  // One harness-level sim seeds the oracle; runs report violations into it.
  sim::Simulator harness_sim(1);
  oracle::InvariantOracle oracle(&harness_sim);

  bench::Table table("Leader crash + failover (RF 2, crash after publish #K)",
                     {"seed", "crash_at", "leader_acked", "quorum_acked", "promoted",
                      "lost(leader-only)", "lost(quorum)", "gap_us", "restore_us"});
  std::vector<RunResult> runs;
  std::uint64_t total_leader_lost = 0;
  std::uint64_t max_leader_lost = 0;
  std::uint64_t total_quorum_lost = 0;
  std::uint64_t runs_with_leader_loss = 0;
  for (int s = 1; s <= seeds; ++s) {
    for (const int k : crash_points) {
      RunResult r = RunOne(static_cast<std::uint64_t>(s), k, &oracle);
      total_leader_lost += r.leader_only.acked_lost;
      max_leader_lost = std::max(max_leader_lost, r.leader_only.acked_lost);
      total_quorum_lost += r.quorum.acked_lost;
      runs_with_leader_loss += r.leader_only.acked_lost > 0 ? 1 : 0;
      table.AddRow({std::to_string(r.seed), std::to_string(r.crash_at),
                    std::to_string(r.leader_only.acked_total),
                    std::to_string(r.quorum.acked_total), std::to_string(r.promoted_total),
                    std::to_string(r.leader_only.acked_lost),
                    std::to_string(r.quorum.acked_lost), std::to_string(r.promotion_gap_us),
                    std::to_string(r.catch_up_us)});
      runs.push_back(r);
    }
  }
  table.Print();

  const std::size_t n = runs.size();
  std::printf("\nruns=%zu  leader-only: lost %" PRIu64 " records across %" PRIu64
              "/%zu runs (max %" PRIu64 " per run)\n",
              n, total_leader_lost, runs_with_leader_loss, n, max_leader_lost);
  std::printf("quorum: lost %" PRIu64 " records (must be 0)  oracle: %s (%zu violations)\n",
              total_quorum_lost, oracle.ok() ? "CLEAN" : "VIOLATED",
              oracle.violations().size());
  for (const auto& v : oracle.violations()) {
    std::printf("  VIOLATION %s: %s\n", v.invariant.c_str(), v.detail.c_str());
  }

  if (const auto json_path = JsonPath(argc, argv)) {
    bench::Json doc = bench::Json::Object();
    doc["bench"] = "failover";
    doc["config"] = bench::Json::Object();
    doc["config"]["replication_factor"] = std::uint64_t{2};
    doc["config"]["seeds"] = std::int64_t{seeds};
    bench::Json& points = doc["config"]["crash_points"] = bench::Json::Array();
    for (const int k : crash_points) {
      points.Append(std::int64_t{k});
    }
    doc["config"]["publish_period_us"] = std::int64_t{kPublishPeriod};
    doc["config"]["net_latency_us"] = bench::Json::Object();
    doc["config"]["net_latency_us"]["base"] = std::int64_t{200};
    doc["config"]["net_latency_us"]["jitter"] = std::int64_t{300};
    doc["config"]["detection_delay_us"] = std::int64_t{kDetectionDelay};
    doc["config"]["smoke"] = smoke;

    bench::Json& rows = doc["runs"] = bench::Json::Array();
    for (const RunResult& r : runs) {
      bench::Json& row = rows.Append(bench::Json::Object());
      row["seed"] = r.seed;
      row["crash_at_publish"] = std::int64_t{r.crash_at};
      row["leader_durable_records"] = r.leader_total;
      row["promoted_records"] = r.promoted_total;
      bench::Json& modes = row["ack_modes"] = bench::Json::Object();
      for (const auto& [name, mode] :
           {std::pair<const char*, const ModeOutcome*>{"leader_only", &r.leader_only},
            std::pair<const char*, const ModeOutcome*>{"quorum", &r.quorum}}) {
        bench::Json& m = modes[name] = bench::Json::Object();
        m["acked_records"] = mode->acked_total;
        m["acked_records_lost"] = mode->acked_lost;
        m["violations"] = mode->violations;
      }
      row["phantom_records"] = r.phantom_records;
      row["payload_mismatches"] = r.payload_mismatches;
      row["promotion_gap_us"] = r.promotion_gap_us;
      row["restore_rf_us"] = r.catch_up_us;
      row["force_resyncs"] = r.force_resyncs;
      row["ok"] = r.ok;
    }

    bench::Json& summary = doc["summary"] = bench::Json::Object();
    summary["runs"] = static_cast<std::uint64_t>(n);
    summary["leader_only_acked_lost_total"] = total_leader_lost;
    summary["leader_only_acked_lost_max"] = max_leader_lost;
    summary["leader_only_runs_with_loss"] = runs_with_leader_loss;
    summary["quorum_acked_lost_total"] = total_quorum_lost;
    summary["oracle_violations"] = static_cast<std::uint64_t>(oracle.violations().size());
    summary["oracle_clean"] = oracle.ok();
    doc.WriteFile(*json_path);
    std::printf("\nwrote %s\n", json_path->c_str());
  }

  return (oracle.ok() && total_quorum_lost == 0) ? 0 : 1;
}
