// Experiment F2: interest-indexed fanout is O(matching), not O(sessions).
//
// The paper's core scaling complaint is that naive pubsub delivery does
// per-session work on every append: with S subscribed sessions, an append
// costs O(S) match checks even when almost nobody cares about the record.
// The InterestIndex routes an append to exactly the lanes whose filters can
// match it (exact-key hash, prefix trie, range interval map) plus the broad
// remainder, and identical filters share one lane, so append-time work
// tracks MATCHING subscriptions, not registered ones.
//
// This bench registers up to 100k+ simulated filtered sessions with
// Zipf-skewed interests (hot keys attract most subscribers, like cache
// fleets pinning popular entities), streams appends with the same skew, and
// measures per-append dispatch: lanes scanned vs matched, wakeups, fanout
// bytes, and dispatch latency percentiles — against a brute-force
// scan-every-filter baseline on the same workload.
//
// `--smoke` runs a reduced grid and exits nonzero if the index has regressed
// toward full scanning (scan fraction of the lane population approaching 1,
// or no speedup over the brute scan).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/collector.h"
#include "pubsub/broker.h"
#include "pubsub/filter.h"
#include "pubsub/interest_index.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

constexpr std::uint64_t kKeyUniverse = 10'000;
constexpr double kZipfTheta = 0.99;
constexpr std::size_t kValueBytes = 64;

std::string KeyAt(std::uint64_t rank) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06llu", static_cast<unsigned long long>(rank));
  return buf;
}

// Interest mix: mostly exact hot-key pins, some prefix regions, some ranges,
// a sliver of firehose subscribers. Zipf over the key universe puts most
// subscribers on few keys — the shared-lane (subgrouping) case.
pubsub::Filter MakeInterest(common::Rng& rng) {
  pubsub::Filter f;
  const std::uint64_t roll = rng.Below(1000);
  const std::uint64_t rank = rng.Zipf(kKeyUniverse, kZipfTheta);
  if (roll < 800) {
    f.range = common::KeyRange::Single(KeyAt(rank));
  } else if (roll < 900) {
    f.key_prefix = KeyAt(rank).substr(0, 4 + rng.Below(3));
  } else if (roll < 990) {
    const std::uint64_t span = 1 + rng.Below(50);
    f.range = common::KeyRange{KeyAt(rank), KeyAt(std::min(rank + span, kKeyUniverse))};
  }  // else: match-everything (broad lane).
  return f;
}

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

struct RunResult {
  std::size_t sessions = 0;
  std::size_t lanes = 0;
  std::size_t broad_lanes = 0;
  std::size_t appends = 0;
  double lanes_scanned_per_append = 0;
  double lanes_matched_per_append = 0;
  double subscribers_matched_per_append = 0;
  double matched_vs_scanned = 0;   // lanes matched / lanes scanned.
  double scan_fraction = 0;        // lanes scanned per append / total lanes.
  double wakeups = 0;
  double fanout_mb = 0;            // matched deliveries x record bytes.
  double dispatch_p50_us = 0;      // publish + dispatch + deliveries, wall clock.
  double dispatch_p99_us = 0;
  double match_us_per_append = 0;  // pure index Match on the same records.
  double brute_us_per_append = 0;  // scan-every-filter baseline, same records.
  double speedup = 0;              // brute / indexed match (like for like: no delivery).
};

RunResult RunOne(std::size_t sessions, std::size_t appends, std::uint64_t seed) {
  sim::Simulator sim(seed);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  common::MetricsRegistry metrics;
  obs::Collector obs(&metrics);
  pubsub::Broker broker(&sim, &net, "broker", common::kMicrosPerSecond);
  broker.set_obs(&obs);
  (void)broker.CreateTopic("feed", {.partitions = 1});

  common::Rng rng(seed);
  std::vector<pubsub::Filter> all_filters;
  all_filters.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    pubsub::Filter f = MakeInterest(rng);
    all_filters.push_back(f);
    const pubsub::Broker::InterestId id = broker.AddInterest("feed", 0, std::move(f));
    // A slice of sessions sit parked in long-poll (the event-driven shape);
    // each wakeup re-arms, so wakeups track matched deliveries to parked
    // sessions across the whole run.
    if (s % 8 == 0) {
      struct Rearm {
        pubsub::Broker* broker;
        pubsub::Broker::InterestId id;
        void operator()() const {
          const pubsub::Offset end = broker->EndOffset("feed", 0);
          (void)broker->WaitForMatch(id, end, Rearm{broker, id});
        }
      };
      (void)broker.WaitForMatch(id, 0, Rearm{&broker, id});
    }
  }

  const pubsub::InterestIndex* idx = broker.Interests("feed", 0);
  RunResult r;
  r.sessions = sessions;
  r.lanes = idx->lane_count() + idx->broad_lane_count();
  r.broad_lanes = idx->broad_lane_count();
  r.appends = appends;

  // The like-for-like comparison is match work against match work: a shadow
  // copy of the index answers "who matches this record" with no delivery
  // attached, timed against brute-force scanning the flat filter list. (The
  // broker-side dispatch latency, measured below, additionally pays for the
  // real deliveries and wakeup re-arms — every design pays those; the index
  // only changes how the matching set is FOUND.)
  pubsub::InterestIndex shadow;
  for (std::size_t s = 0; s < sessions; ++s) {
    shadow.Add(static_cast<pubsub::InterestIndex::SubscriberId>(s + 1), all_filters[s]);
  }
  // Both baselines sampled (100k filters x 10k appends of brute scanning
  // would dwarf the run): every Kth append also runs the timed comparison.
  const std::size_t brute_every = std::max<std::size_t>(1, appends / 100);
  double brute_total_us = 0;
  double match_total_us = 0;
  std::size_t brute_samples = 0;
  std::uint64_t brute_matched = 0;
  std::uint64_t shadow_matched = 0;

  const std::uint64_t scanned0 = idx->lanes_scanned();
  const std::uint64_t matched0 = idx->lanes_matched();
  const std::uint64_t submatched0 = idx->subscribers_matched();
  std::vector<double> dispatch_us;
  dispatch_us.reserve(appends);
  const std::string value(kValueBytes, 'v');
  double indexed_total_us = 0;
  for (std::size_t i = 0; i < appends; ++i) {
    pubsub::Message msg;
    msg.key = KeyAt(rng.Zipf(kKeyUniverse, kZipfTheta));
    msg.value = value;
    const auto t0 = std::chrono::steady_clock::now();
    (void)broker.Publish("feed", msg, 0);
    sim.RunUntil(sim.Now() + 1);  // Drain the wakeup events this append fired.
    const double us =
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count();
    dispatch_us.push_back(us);
    indexed_total_us += us;
    if (i % brute_every == 0) {
      const auto m0 = std::chrono::steady_clock::now();
      shadow.Match(msg.key, msg.headers,
                   [&](pubsub::InterestIndex::SubscriberId) { ++shadow_matched; });
      const auto b0 = std::chrono::steady_clock::now();
      match_total_us += std::chrono::duration<double, std::micro>(b0 - m0).count();
      for (const pubsub::Filter& f : all_filters) {
        if (f.Matches(msg)) {
          ++brute_matched;
        }
      }
      brute_total_us +=
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - b0)
              .count();
      ++brute_samples;
    }
  }
  if (brute_matched != shadow_matched) {
    std::fprintf(stderr, "index/brute disagreement: %llu vs %llu matches\n",
                 static_cast<unsigned long long>(shadow_matched),
                 static_cast<unsigned long long>(brute_matched));
    std::abort();  // The property suite proves equivalence; a bench-visible
                   // divergence means the build is broken.
  }

  const double scanned = static_cast<double>(idx->lanes_scanned() - scanned0);
  const double matched = static_cast<double>(idx->lanes_matched() - matched0);
  const double submatched = static_cast<double>(idx->subscribers_matched() - submatched0);
  const double n = static_cast<double>(appends);
  r.lanes_scanned_per_append = scanned / n;
  r.lanes_matched_per_append = matched / n;
  r.subscribers_matched_per_append = submatched / n;
  r.matched_vs_scanned = scanned > 0 ? matched / scanned : 0;
  r.scan_fraction = r.lanes > 0 ? r.lanes_scanned_per_append / static_cast<double>(r.lanes) : 0;
  r.wakeups = static_cast<double>(metrics.counter("fanout.wakeups").value());
  r.fanout_mb = submatched * static_cast<double>(kValueBytes + 8) / 1e6;
  r.dispatch_p50_us = Percentile(dispatch_us, 0.50);
  r.dispatch_p99_us = Percentile(dispatch_us, 0.99);
  (void)indexed_total_us;
  const double samples = static_cast<double>(brute_samples);
  r.brute_us_per_append = brute_samples > 0 ? brute_total_us / samples : 0;
  r.match_us_per_append = brute_samples > 0 ? match_total_us / samples : 0;
  r.speedup = r.match_us_per_append > 0 ? r.brute_us_per_append / r.match_us_per_append : 0;
  return r;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

std::optional<std::string> JsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return std::string("BENCH_fanout.json");
    }
  }
  return bench::JsonPathFlag(argc, argv);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const std::vector<std::size_t> grid = smoke ? std::vector<std::size_t>{1'000, 5'000}
                                              : std::vector<std::size_t>{1'000, 10'000, 100'000};
  const std::size_t appends = smoke ? 2'000 : 10'000;

  bench::Table table(
      "Interest-indexed fanout vs session count (Zipf " + std::to_string(kZipfTheta) + ")",
      {"sessions", "lanes", "scan/app", "match/app", "subs/app", "scan_frac", "wakeups",
       "disp_p99_us", "idx_us", "brute_us", "speedup"});
  std::vector<RunResult> runs;
  for (const std::size_t sessions : grid) {
    const RunResult r = RunOne(sessions, appends, /*seed=*/1 + sessions);
    runs.push_back(r);
    table.AddRow({std::to_string(r.sessions), std::to_string(r.lanes),
                  bench::F(r.lanes_scanned_per_append, 2), bench::F(r.lanes_matched_per_append, 2),
                  bench::F(r.subscribers_matched_per_append, 2), bench::F(r.scan_fraction, 4),
                  bench::F(r.wakeups, 0), bench::F(r.dispatch_p99_us, 1),
                  bench::F(r.match_us_per_append, 1), bench::F(r.brute_us_per_append, 1),
                  bench::F(r.speedup, 1)});
  }
  table.Print();

  // O(matching) evidence in two forms: the per-append scan touches a
  // shrinking FRACTION of the lane population as sessions grow (a full-scan
  // delivery loop would stay pinned at 1.0), and the indexed dispatch beats
  // scanning every registered filter by a widening margin.
  const RunResult& largest = runs.back();
  bool regressed = false;
  if (largest.scan_fraction > 0.5) {
    std::fprintf(stderr,
                 "FANOUT REGRESSION: scanned %.1f%% of %zu lanes per append — "
                 "the index is degenerating toward a full scan\n",
                 largest.scan_fraction * 100, largest.lanes);
    regressed = true;
  }
  if (largest.speedup < 2.0) {
    std::fprintf(stderr,
                 "FANOUT REGRESSION: indexed matching only %.2fx the brute "
                 "scan-all-filters baseline at %zu sessions\n",
                 largest.speedup, largest.sessions);
    regressed = true;
  }

  if (const std::optional<std::string> path = JsonPath(argc, argv)) {
    bench::Json doc = bench::Json::Object();
    doc["bench"] = "fanout";
    doc["config"]["key_universe"] = static_cast<std::uint64_t>(kKeyUniverse);
    doc["config"]["zipf_theta"] = kZipfTheta;
    doc["config"]["appends"] = static_cast<std::uint64_t>(appends);
    doc["config"]["value_bytes"] = static_cast<std::uint64_t>(kValueBytes);
    doc["config"]["smoke"] = smoke;
    bench::Json& rows = doc["runs"];
    rows = bench::Json::Array();
    for (const RunResult& r : runs) {
      bench::Json row = bench::Json::Object();
      row["sessions"] = static_cast<std::uint64_t>(r.sessions);
      row["lanes"] = static_cast<std::uint64_t>(r.lanes);
      row["broad_lanes"] = static_cast<std::uint64_t>(r.broad_lanes);
      row["appends"] = static_cast<std::uint64_t>(r.appends);
      row["lanes_scanned_per_append"] = r.lanes_scanned_per_append;
      row["lanes_matched_per_append"] = r.lanes_matched_per_append;
      row["subscribers_matched_per_append"] = r.subscribers_matched_per_append;
      row["matched_vs_scanned"] = r.matched_vs_scanned;
      row["scan_fraction_of_lanes"] = r.scan_fraction;
      row["wakeups"] = r.wakeups;
      row["fanout_mb"] = r.fanout_mb;
      row["dispatch_p50_us"] = r.dispatch_p50_us;
      row["dispatch_p99_us"] = r.dispatch_p99_us;
      row["match_us_per_append"] = r.match_us_per_append;
      row["brute_us_per_append"] = r.brute_us_per_append;
      row["speedup_vs_brute"] = r.speedup;
      rows.Append(std::move(row));
    }
    doc["regressed"] = regressed;
    if (!doc.WriteFile(*path)) {
      std::fprintf(stderr, "failed to write %s\n", path->c_str());
      return 1;
    }
    std::printf("wrote %s\n", path->c_str());
  }
  return regressed ? 1 : 0;
}
