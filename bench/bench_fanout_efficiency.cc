// Experiment E8 (paper §3.2.2, §4.4): free consumers vs range watches.
//
// The paper notes that some cache fleets fall back to every server
// subscribing to the ENTIRE feed with free consumers, "an approach that does
// not scale as update rates increase". Here S cache servers each need only
// 1/S of the key space. With free consumers every server still receives every
// byte; with range watches each server receives only its slice.
//
// Sweep server count and update rate; report per-server and aggregate
// delivered bytes.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/table.h"
#include "cdc/feeds.h"
#include "common/rng.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/api.h"
#include "watch/proxy.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kKeys = 1000;
constexpr std::size_t kValueBytes = 256;
constexpr common::TimeMicros kRunFor = 10 * kSec;

struct Result {
  double per_server_mb = 0;
  double aggregate_mb = 0;
};

void Workload(sim::Simulator& sim, storage::MvccStore& store, common::TimeMicros period) {
  common::Rng rng(61);
  sim::PeriodicTask writer(&sim, period, [&] {
    store.Apply(common::IndexKey(rng.Below(kKeys), 4),
                common::Mutation::Put(std::string(kValueBytes, 'x')));
  });
  sim.RunUntil(kRunFor);
  writer.Stop();
  sim.RunUntil(kRunFor + 5 * kSec);
}

Result RunFreeConsumers(std::uint32_t servers, common::TimeMicros update_period) {
  sim::Simulator sim(67);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  pubsub::Broker broker(&sim, &net, "broker", 500 * kMs);
  (void)broker.CreateTopic("feed", {.partitions = 8});
  storage::MvccStore store("source");
  cdc::CdcPubsubFeed feed(&sim, &net, &store, nullptr, &broker, "feed");

  std::vector<std::unique_ptr<pubsub::FreeConsumer>> consumers;
  for (std::uint32_t s = 0; s < servers; ++s) {
    consumers.push_back(std::make_unique<pubsub::FreeConsumer>(
        &sim, &net, &broker, "feed", "server-" + std::to_string(s),
        [](pubsub::PartitionId, const pubsub::StoredMessage&) { return true; },
        pubsub::ConsumerOptions{.poll_period = 5 * kMs, .max_poll_messages = 4096}));
    consumers.back()->Start();
  }
  Workload(sim, store, update_period);

  Result r;
  std::uint64_t total = 0;
  for (const auto& c : consumers) {
    total += c->delivered_bytes();
  }
  r.aggregate_mb = static_cast<double>(total) / 1e6;
  r.per_server_mb = r.aggregate_mb / servers;
  return r;
}

// Counts bytes delivered to one range watcher.
class ByteCounter : public watch::WatchCallback {
 public:
  void OnEvent(const watch::ChangeEvent& ev) override {
    bytes += ev.key.size() + ev.mutation.value.size();
  }
  void OnProgress(const watch::ProgressEvent&) override {}
  void OnResync() override {}

  std::uint64_t bytes = 0;
};

Result RunRangeWatch(std::uint32_t servers, common::TimeMicros update_period) {
  sim::Simulator sim(67);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store("source");
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws, {.progress_period = 10 * kMs});

  std::vector<ByteCounter> counters(servers);
  std::vector<std::unique_ptr<watch::WatchHandle>> handles;
  auto shards = cdc::UniformShards(kKeys, servers, 4);
  for (std::uint32_t s = 0; s < servers; ++s) {
    handles.push_back(ws.Watch(shards[s].low, shards[s].high, 0, &counters[s]));
  }
  Workload(sim, store, update_period);

  Result r;
  std::uint64_t total = 0;
  for (const auto& c : counters) {
    total += c.bytes;
  }
  r.aggregate_mb = static_cast<double>(total) / 1e6;
  r.per_server_mb = r.aggregate_mb / servers;
  return r;
}

struct TierResult {
  std::uint64_t root_deliveries = 0;
  std::uint64_t tier_deliveries = 0;  // Sum over proxies (0 when direct).
};

// S replicas each need the FULL feed (think: read replicas / analytics
// taps). Directly attached, the root delivers every event S times; behind a
// proxy tier, the root delivers once per proxy and the tier absorbs the rest.
TierResult RunFullFeedReplicas(std::uint32_t servers, std::uint32_t proxies) {
  sim::Simulator sim(71);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store("source");
  watch::WatchSystem root(&sim, &net, "root",
                          {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &root, {.progress_period = 10 * kMs});

  std::vector<std::unique_ptr<watch::WatchProxy>> tier;
  for (std::uint32_t i = 0; i < proxies; ++i) {
    tier.push_back(std::make_unique<watch::WatchProxy>(
        &sim, &net, &root, common::KeyRange::All(), "proxy-" + std::to_string(i),
        watch::WatchProxyOptions{
            .system = {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs}}));
  }
  std::vector<ByteCounter> counters(servers);
  std::vector<std::unique_ptr<watch::WatchHandle>> handles;
  for (std::uint32_t s = 0; s < servers; ++s) {
    watch::Watchable* upstream =
        tier.empty() ? static_cast<watch::Watchable*>(&root) : tier[s % tier.size()].get();
    handles.push_back(upstream->Watch("", "", 0, &counters[s]));
  }
  Workload(sim, store, 1 * kMs);

  TierResult r;
  r.root_deliveries = root.events_delivered();
  for (const auto& proxy : tier) {
    r.tier_deliveries += proxy->system().events_delivered();
  }
  return r;
}

}  // namespace

int main() {
  std::printf("E8: free consumers vs range watches (paper §3.2.2, §4.4)\n");
  std::printf("%llu keys, %zu-byte values, each server responsible for 1/S of the space\n",
              static_cast<unsigned long long>(kKeys), kValueBytes);

  bench::Table table("Per-server delivered data: full feed vs owned range",
                     {"servers", "updates/s", "free_per_srv_MB", "free_total_MB",
                      "watch_per_srv_MB", "watch_total_MB"});
  for (std::uint32_t servers : {2u, 4u, 8u, 16u}) {
    for (common::TimeMicros period : {4 * kMs, 1 * kMs}) {
      const double rate = 1.0 / (static_cast<double>(period) / kSec);
      Result f = RunFreeConsumers(servers, period);
      Result w = RunRangeWatch(servers, period);
      table.AddRow({bench::I(servers), bench::F(rate, 0), bench::F(f.per_server_mb, 2),
                    bench::F(f.aggregate_mb, 2), bench::F(w.per_server_mb, 2),
                    bench::F(w.aggregate_mb, 2)});
    }
  }
  table.Print();

  // Second table: scaling FULL-FEED fan-out with a proxy tier (the paper's
  // §5 "watch systems optimized for different scale points, e.g. degree of
  // fan out").
  bench::Table tier_table("Full-feed replicas: root egress, direct vs 2-proxy tier",
                          {"replicas", "direct_root_deliveries", "tiered_root_deliveries",
                           "tier_deliveries"});
  for (std::uint32_t servers : {2u, 4u, 8u, 16u}) {
    TierResult direct = RunFullFeedReplicas(servers, 0);
    TierResult tiered = RunFullFeedReplicas(servers, 2);
    tier_table.AddRow({bench::I(servers), bench::I(direct.root_deliveries),
                       bench::I(tiered.root_deliveries), bench::I(tiered.tier_deliveries)});
  }
  tier_table.Print();

  std::printf(
      "\nShape check: free-consumer per-server traffic equals the whole feed regardless of\n"
      "server count (aggregate grows ~linearly with S); range-watch per-server traffic is\n"
      "~1/S of the feed and the aggregate stays flat — affinitized delivery scales. With a\n"
      "proxy tier, root egress is constant (one stream per proxy) no matter how many\n"
      "full-feed replicas attach — fan-out scales by adding tiers, not root load.\n");
  return 0;
}
