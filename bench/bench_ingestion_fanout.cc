// Experiment E5 (paper §3.2.3): event ingestion and fanout.
//
// Producers ingest events; F downstream consumers should see every event
// promptly. One consumer suffers an outage. We measure steady-state delivery
// latency and what an outage does: with pubsub, the victim must replay the
// log through the broker (and loses anything beyond retention); with
// storage+watch, it resumes from the window or re-reads state from the
// ingestion store, with an explicit signal either way.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/table.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ingest_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/store_watch.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr int kFanout = 5;                         // Downstream consumers.
constexpr common::TimeMicros kRetention = 4 * kSec;
constexpr common::TimeMicros kOutageStart = 3 * kSec;
constexpr common::TimeMicros kOutage = 6 * kSec;
constexpr common::TimeMicros kRunFor = 20 * kSec;

struct Result {
  std::uint64_t published = 0;
  double p50_ms = 0;   // Steady-state delivery latency (healthy consumers).
  double p99_ms = 0;
  std::uint64_t victim_lost = 0;
  bool victim_signalled = false;
  double victim_catchup_ms = -1;  // From recovery to fully caught up.
};

Result RunPubsub(common::TimeMicros event_period) {
  sim::Simulator sim(3);
  sim::Network net(&sim, {.base = 300, .jitter = 100});
  pubsub::Broker broker(&sim, &net, "broker", 200 * kMs);
  (void)broker.CreateTopic("events",
                           {.partitions = 8, .retention = {.retention = kRetention}});
  Result result;
  common::Histogram healthy_latency;
  std::vector<std::unique_ptr<pubsub::FreeConsumer>> consumers;
  std::uint64_t victim_seen = 0;
  for (int c = 0; c < kFanout; ++c) {
    const bool is_victim = c == 0;
    const sim::NodeId node = "consumer-" + std::to_string(c);
    consumers.push_back(std::make_unique<pubsub::FreeConsumer>(
        &sim, &net, &broker, "events", node,
        [&sim, &healthy_latency, &victim_seen, is_victim](pubsub::PartitionId,
                                                          const pubsub::StoredMessage& m) {
          if (is_victim) {
            ++victim_seen;
          } else {
            healthy_latency.Record(
                static_cast<double>(sim.Now() - m.message.publish_time) / kMs);
          }
          return true;
        },
        pubsub::ConsumerOptions{.poll_period = 5 * kMs, .max_poll_messages = 128}));
    consumers.back()->Start();
  }

  sim::PeriodicTask producer(&sim, event_period, [&] {
    (void)broker.Publish("events", pubsub::Message{"ev-" + std::to_string(result.published),
                                                   std::string(128, 'x'), 0});
    ++result.published;
  });
  sim.At(kOutageStart, [&] { net.SetUp("consumer-0", false); });
  sim.At(kOutageStart + kOutage, [&] { net.SetUp("consumer-0", true); });

  sim.RunUntil(kRunFor);
  producer.Stop();
  // Victim catch-up: drain until its backlog is empty.
  const common::TimeMicros drain_start = sim.Now();
  common::TimeMicros caught_up = -1;
  for (common::TimeMicros t = drain_start; t < drain_start + 60 * kSec; t += 20 * kMs) {
    sim.RunUntil(t);
    if (consumers[0]->Backlog() == 0) {
      caught_up = sim.Now();
      break;
    }
  }
  result.p50_ms = healthy_latency.Percentile(50);
  result.p99_ms = healthy_latency.Percentile(99);
  result.victim_lost = result.published - victim_seen;
  result.victim_signalled = false;  // The gap is invisible to the application.
  result.victim_catchup_ms =
      caught_up < 0 ? -1 : static_cast<double>(caught_up - drain_start) / kMs;
  return result;
}

Result RunWatch(common::TimeMicros event_period) {
  sim::Simulator sim(3);
  sim::Network net(&sim, {.base = 300, .jitter = 100});
  storage::IngestStore store("events");
  watch::IngestStoreWatch store_watch(&sim, &net, &store, "ingest-watch",
                                      {.window = {.max_events = 8192},
                                       .delivery_latency = 1 * kMs,
                                       .progress_period = 20 * kMs});
  watch::IngestSnapshotSource source(&store);

  Result result;
  common::Histogram healthy_latency;
  std::vector<std::unique_ptr<watch::MaterializedRange>> consumers;
  for (int c = 0; c < kFanout; ++c) {
    const sim::NodeId node = "consumer-" + std::to_string(c);
    net.AddNode(node);
    auto mr = std::make_unique<watch::MaterializedRange>(
        &sim, &store_watch, &source, common::KeyRange::All(),
        watch::MaterializedOptions{.resync_delay = 20 * kMs,
                                   .session_check_period = 50 * kMs,
                                   .node = node,
                                   .net = &net});
    if (c != 0) {
      mr->set_apply_hook([&sim, &healthy_latency](const common::ChangeEvent& ev) {
        // Payload prefix carries the publish time.
        const common::TimeMicros sent = std::stoll(ev.mutation.value);
        healthy_latency.Record(static_cast<double>(sim.Now() - sent) / kMs);
      });
    }
    mr->Start();
    consumers.push_back(std::move(mr));
  }

  sim::PeriodicTask producer(&sim, event_period, [&] {
    store.Append("ev-" + std::to_string(result.published), std::to_string(sim.Now()),
                 sim.Now());
    ++result.published;
  });
  sim::PeriodicTask retention(&sim, 200 * kMs,
                              [&] { store.RetainAfter(sim.Now() - kRetention); });
  sim.At(kOutageStart, [&] { net.SetUp("consumer-0", false); });
  sim.At(kOutageStart + kOutage, [&] { net.SetUp("consumer-0", true); });

  sim.RunUntil(kRunFor);
  producer.Stop();
  const common::TimeMicros drain_start = sim.Now();
  common::TimeMicros caught_up = -1;
  for (common::TimeMicros t = drain_start; t < drain_start + 60 * kSec; t += 20 * kMs) {
    sim.RunUntil(t);
    if (consumers[0]->ready() &&
        consumers[0]->LatestScan(common::KeyRange::All()).size() >= result.published) {
      caught_up = sim.Now();
      break;
    }
  }
  result.p50_ms = healthy_latency.Percentile(50);
  result.p99_ms = healthy_latency.Percentile(99);
  result.victim_lost =
      result.published - consumers[0]->LatestScan(common::KeyRange::All()).size();
  result.victim_signalled =
      consumers[0]->resyncs() > 0 || consumers[0]->session_repairs() > 0;
  result.victim_catchup_ms =
      caught_up < 0 ? -1 : static_cast<double>(caught_up - drain_start) / kMs;
  return result;
}

}  // namespace

int main() {
  std::printf("E5: event ingestion and fanout (paper §3.2.3)\n");
  std::printf("%d consumers; consumer-0 down %lld-%llds; retention %llds\n", kFanout,
              static_cast<long long>(kOutageStart / kSec),
              static_cast<long long>((kOutageStart + kOutage) / kSec),
              static_cast<long long>(kRetention / kSec));

  bench::Table table("Event rate vs delivery latency and outage recovery",
                     {"pipeline", "events/s", "p50_ms", "p99_ms", "victim_lost",
                      "victim_signalled", "victim_catchup_ms"});
  for (common::TimeMicros period : {10 * kMs, 4 * kMs, 1 * kMs}) {
    const double rate = 1.0 / (static_cast<double>(period) / kSec);
    Result p = RunPubsub(period);
    table.AddRow({"pubsub", bench::F(rate, 0), bench::F(p.p50_ms, 1), bench::F(p.p99_ms, 1),
                  bench::I(p.victim_lost), bench::B(p.victim_signalled),
                  bench::F(p.victim_catchup_ms, 0)});
    Result w = RunWatch(period);
    table.AddRow({"store+watch", bench::F(rate, 0), bench::F(w.p50_ms, 1),
                  bench::F(w.p99_ms, 1), bench::I(w.victim_lost),
                  bench::B(w.victim_signalled), bench::F(w.victim_catchup_ms, 0)});
  }
  table.Print();

  std::printf(
      "\nShape check: steady-state latency is comparable (both are push/pull pipelines over\n"
      "the same simulated network). The difference is the outage column: the pubsub victim\n"
      "silently loses whatever retention GC took (growing with event rate); the watch victim\n"
      "loses nothing — it is explicitly resynced from the ingestion store.\n");
  return 0;
}
