// Experiment E3 (paper §3.2.2, Figure 2): cache invalidation under
// auto-sharding.
//
// A fleet of cache pods serves a key space whose ownership is dynamically
// reassigned by an auto-sharder while the producer store keeps updating keys.
// Four configurations:
//   pubsub            — consumer-group invalidations (the Figure 2 design);
//   pubsub + TTL      — staleness eventually ages out (availability of wrong
//                       answers in the meantime);
//   pubsub + leases   — moves leave a no-owner window (unavailability);
//   watch             — snapshot-on-acquire + watch (the paper's proposal).
//
// Sweep: shard-move frequency. Metrics: stale serves, permanently stale
// entries after quiescing, unavailable reads.
// Also runs ablation A3: lease duration vs unavailability.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/table.h"
#include "cache/pubsub_cache.h"
#include "cache/watch_cache.h"
#include "cdc/feeds.h"
#include "common/rng.h"
#include "pubsub/broker.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kKeys = 400;
constexpr std::uint32_t kPods = 4;
constexpr common::TimeMicros kRunFor = 20 * kSec;
constexpr common::TimeMicros kUpdatePeriod = 4 * kMs;   // 250 writes/s.
constexpr common::TimeMicros kReadPeriod = 1 * kMs;     // 1000 reads/s.

struct Result {
  std::uint64_t reads = 0;
  std::uint64_t stale_serves = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t stranded_stale = 0;  // After quiescing: permanent staleness.
  std::uint64_t moves = 0;
};

// Drives load + churn against a fleet through `get`.
template <typename GetFn>
Result DriveWorkload(sim::Simulator& sim, storage::MvccStore& store,
                     sharding::AutoSharder& sharder, const std::vector<sim::NodeId>& pods,
                     common::TimeMicros move_period, GetFn get) {
  Result result;
  common::Rng rng(17);
  sim::PeriodicTask writer(&sim, kUpdatePeriod, [&] {
    store.Apply(common::IndexKey(rng.Zipf(kKeys, 0.8), 4),
                common::Mutation::Put("v" + std::to_string(sim.Now())));
  });
  sim::PeriodicTask reader(&sim, kReadPeriod, [&] {
    ++result.reads;
    get(common::IndexKey(rng.Zipf(kKeys, 0.8), 4));
  });
  std::unique_ptr<sim::PeriodicTask> mover;
  if (move_period > 0) {
    mover = std::make_unique<sim::PeriodicTask>(&sim, move_period, [&] {
      const common::Key key = common::IndexKey(rng.Below(kKeys), 4);
      sharder.MoveShard(key, pods[rng.Below(pods.size())]);
    });
  }
  sim.RunUntil(kRunFor);
  writer.Stop();
  reader.Stop();
  if (mover != nullptr) {
    mover->Stop();
  }
  sim.RunUntil(kRunFor + 10 * kSec);  // Quiesce: all queues drain, TTLs expire.
  result.moves = sharder.moves();
  return result;
}

Result RunPubsub(common::TimeMicros move_period, common::TimeMicros ttl,
                 common::TimeMicros lease) {
  // fill_latency = 0 isolates the Figure 2 routing race from the separate
  // read-then-install race (which would add staleness to every pubsub arm).
  sim::Simulator sim(23);
  sim::Network net(&sim, {.base = 200, .jitter = 100});
  storage::MvccStore store("producer");
  pubsub::Broker broker(&sim, &net, "broker", 100 * kMs);
  (void)broker.CreateTopic("inval", {.partitions = 16});
  cdc::CdcPubsubFeed feed(&sim, &net, &store, nullptr, &broker, "inval");
  sharding::AutoSharder sharder(&sim, &net,
                                {.rebalance_period = 1 * kSec, .lease_duration = lease});
  cache::PubsubCacheOptions options;
  options.pods = kPods;
  options.fill_latency = 0;
  options.ttl = ttl;
  options.owner_ack_only = lease > 0;
  options.consumer.poll_period = 5 * kMs;
  cache::PubsubCacheFleet fleet(&sim, &net, &sharder, &store, &broker, "inval", "cache",
                                options);
  sim.RunUntil(200 * kMs);

  Result result = DriveWorkload(sim, store, sharder, fleet.PodNodes(), move_period,
                                [&fleet](const common::Key& key) { (void)fleet.Get(key); });
  result.stale_serves = fleet.stale_serves();
  result.unavailable = fleet.unavailable();
  result.stranded_stale = fleet.AuditStaleEntries();
  return result;
}

Result RunWatch(common::TimeMicros move_period) {
  sim::Simulator sim(23);
  sim::Network net(&sim, {.base = 200, .jitter = 100});
  storage::MvccStore store("producer");
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws,
                            {.shards = cdc::UniformShards(kKeys, 8, 4),
                             .base_latency = 1 * kMs,
                             .stagger = 1 * kMs,
                             .progress_period = 10 * kMs});
  watch::StoreSnapshotSource source(&store);
  sharding::AutoSharder sharder(&sim, &net, {.rebalance_period = 1 * kSec});
  cache::WatchCacheFleet fleet(&sim, &net, &sharder, &ws, &source, &store,
                               {.pods = kPods, .materialized = {.resync_delay = 5 * kMs}});
  sim.RunUntil(200 * kMs);

  Result result = DriveWorkload(sim, store, sharder, fleet.PodNodes(), move_period,
                                [&fleet](const common::Key& key) { (void)fleet.Get(key); });
  result.stale_serves = fleet.stale_serves();
  result.unavailable = fleet.unavailable();
  result.stranded_stale = fleet.AuditStaleEntries();
  return result;
}

std::string Rate(std::uint64_t n, std::uint64_t total) {
  return bench::F(100.0 * static_cast<double>(n) / static_cast<double>(total > 0 ? total : 1),
                  3) +
         "%";
}

}  // namespace

int main() {
  std::printf("E3: invalidation vs auto-sharding race (paper §3.2.2, Figure 2)\n");
  std::printf("%llu keys, %u pods, 250 writes/s, 1000 reads/s, 20s + 10s quiesce\n",
              static_cast<unsigned long long>(kKeys), kPods);

  bench::Table table("Shard-move frequency vs cache correctness",
                     {"config", "moves/s", "stale_serves", "stranded_stale", "unavailable%"});
  for (common::TimeMicros move_period : {common::TimeMicros(0), 500 * kMs, 100 * kMs}) {
    const double moves_per_s =
        move_period == 0 ? 0.0 : 1.0 / (static_cast<double>(move_period) / kSec);
    {
      Result r = RunPubsub(move_period, 0, 0);
      table.AddRow({"pubsub", bench::F(moves_per_s, 1), bench::I(r.stale_serves),
                    bench::I(r.stranded_stale), Rate(r.unavailable, r.reads)});
    }
    {
      Result r = RunPubsub(move_period, 2 * kSec, 0);
      table.AddRow({"pubsub+ttl2s", bench::F(moves_per_s, 1), bench::I(r.stale_serves),
                    bench::I(r.stranded_stale), Rate(r.unavailable, r.reads)});
    }
    {
      Result r = RunPubsub(move_period, 0, 300 * kMs);
      table.AddRow({"pubsub+lease", bench::F(moves_per_s, 1), bench::I(r.stale_serves),
                    bench::I(r.stranded_stale), Rate(r.unavailable, r.reads)});
    }
    {
      Result r = RunWatch(move_period);
      table.AddRow({"watch", bench::F(moves_per_s, 1), bench::I(r.stale_serves),
                    bench::I(r.stranded_stale), Rate(r.unavailable, r.reads)});
    }
  }
  table.Print();

  bench::Table ablation("A3: lease duration vs unavailability (moves every 100ms)",
                        {"lease_ms", "stranded_stale", "unavailable%"});
  for (common::TimeMicros lease : {0 * kMs, 100 * kMs, 300 * kMs, 1000 * kMs}) {
    Result r = RunPubsub(100 * kMs, 0, lease);
    ablation.AddRow({bench::F(static_cast<double>(lease) / kMs, 0),
                     bench::I(r.stranded_stale), Rate(r.unavailable, r.reads)});
  }
  ablation.Print();

  std::printf(
      "\nShape check: without moves every config is clean. With moves, pubsub strands\n"
      "permanently stale entries (growing with move rate); TTL converts them into bounded\n"
      "staleness; leases trade them for unavailability; watch has zero stranded entries\n"
      "with only handoff-window unavailability.\n");
  return 0;
}
