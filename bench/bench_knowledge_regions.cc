// Experiment E7 (paper §4.3, Figure 5): knowledge regions and snapshot
// stitching.
//
// W watchers each materialize one range shard of the key space (with
// independent, staggered CDC pipelines — so their frontiers differ). Clients
// continually issue snapshot reads over random multi-shard ranges, answered
// by stitching the watchers' knowledge regions at a common version (the
// "green box"). We sweep watcher count and progress cadence and report the
// stitch success rate and the snapshot age (how far behind the store's latest
// version the stitched snapshot is).
//
// Also runs ablation A2: progress cadence vs snapshot availability lag.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/table.h"
#include "cdc/feeds.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/knowledge.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kKeys = 1000;
constexpr common::TimeMicros kRunFor = 10 * kSec;

struct Result {
  std::uint64_t queries = 0;
  std::uint64_t stitched = 0;
  double success_rate = 0;
  double age_p50_versions = 0;  // store.latest - stitched version.
  double age_p99_versions = 0;
  std::uint64_t verified_wrong = 0;  // Stitched snapshots that failed audit.
};

Result Run(std::uint32_t watchers, common::TimeMicros progress_period) {
  sim::Simulator sim(53);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store("source");
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = progress_period});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws,
                            {.shards = cdc::UniformShards(kKeys, watchers, 4),
                             .base_latency = 1 * kMs,
                             .stagger = 2 * kMs,
                             .progress_period = progress_period});
  watch::StoreSnapshotSource source(&store);

  std::vector<std::unique_ptr<watch::MaterializedRange>> fleet;
  for (const common::KeyRange& shard : cdc::UniformShards(kKeys, watchers, 4)) {
    auto mr = std::make_unique<watch::MaterializedRange>(
        &sim, &ws, &source, shard,
        watch::MaterializedOptions{.resync_delay = 5 * kMs});
    mr->Start();
    fleet.push_back(std::move(mr));
  }

  // Seed data.
  for (std::uint64_t k = 0; k < kKeys; k += 3) {
    store.Apply(common::IndexKey(k, 4), common::Mutation::Put("seed"));
  }
  sim.RunUntil(200 * kMs);

  Result result;
  common::Histogram age;
  common::Rng rng(59);

  sim::PeriodicTask writer(&sim, 2 * kMs, [&] {
    store.Apply(common::IndexKey(rng.Below(kKeys), 4),
                common::Mutation::Put("v" + std::to_string(sim.Now())));
  });
  sim::PeriodicTask querier(&sim, 10 * kMs, [&] {
    // A random range spanning ~2-5 shards.
    const std::uint64_t lo = rng.Below(kKeys / 2);
    const std::uint64_t hi = lo + kKeys / 4 + rng.Below(kKeys / 4);
    const common::KeyRange range{common::IndexKey(lo, 4), common::IndexKey(hi, 4)};
    ++result.queries;

    std::vector<const watch::KnowledgeMap*> maps;
    for (const auto& mr : fleet) {
      if (mr->ready()) {
        maps.push_back(&mr->knowledge());
      }
    }
    const auto version = watch::KnowledgeMap::MaxStitchableVersion(maps, range);
    if (!version.has_value()) {
      return;
    }
    ++result.stitched;
    age.Record(static_cast<double>(store.LatestVersion() - *version));

    // Audit: assemble the stitched snapshot and compare to the store at that
    // version.
    std::map<common::Key, common::Value> assembled;
    for (const auto& mr : fleet) {
      if (!mr->ready()) {
        continue;
      }
      const common::KeyRange clipped = range.Intersect(mr->range());
      if (clipped.Empty() || !mr->knowledge().ServableAt(clipped, *version)) {
        continue;
      }
      auto part = mr->SnapshotScan(clipped, *version);
      if (!part.ok()) {
        continue;
      }
      for (auto& e : *part) {
        assembled[e.key] = e.value;
      }
    }
    auto truth = store.Scan(range, *version);
    bool ok = truth.ok() && assembled.size() == truth->size();
    if (ok) {
      for (const auto& e : *truth) {
        auto it = assembled.find(e.key);
        if (it == assembled.end() || it->second != e.value) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      ++result.verified_wrong;
    }
  });

  sim.RunUntil(kRunFor);
  writer.Stop();
  querier.Stop();

  result.success_rate = result.queries == 0
                            ? 0
                            : 100.0 * static_cast<double>(result.stitched) /
                                  static_cast<double>(result.queries);
  result.age_p50_versions = age.Percentile(50);
  result.age_p99_versions = age.Percentile(99);
  return result;
}

}  // namespace

int main() {
  std::printf("E7: knowledge regions & snapshot stitching (paper §4.3, Figure 5)\n");
  std::printf("%llu keys, 500 writes/s, queries span multiple shards; store GC retains all\n",
              static_cast<unsigned long long>(kKeys));

  bench::Table table("Watcher count vs stitched snapshot availability (progress every 10ms)",
                     {"watchers", "queries", "stitch_rate%", "age_p50_vers", "age_p99_vers",
                      "audit_failures"});
  for (std::uint32_t watchers : {2u, 4u, 8u, 16u}) {
    Result r = Run(watchers, 10 * kMs);
    table.AddRow({bench::I(watchers), bench::I(r.queries), bench::F(r.success_rate, 1),
                  bench::F(r.age_p50_versions, 0), bench::F(r.age_p99_versions, 0),
                  bench::I(r.verified_wrong)});
  }
  table.Print();

  bench::Table ablation("A2: progress cadence vs snapshot age (8 watchers)",
                        {"progress_ms", "stitch_rate%", "age_p50_vers", "age_p99_vers"});
  for (common::TimeMicros cadence : {2 * kMs, 10 * kMs, 50 * kMs, 200 * kMs}) {
    Result r = Run(8, cadence);
    ablation.AddRow({bench::F(static_cast<double>(cadence) / kMs, 0),
                     bench::F(r.success_rate, 1), bench::F(r.age_p50_versions, 0),
                     bench::F(r.age_p99_versions, 0)});
  }
  ablation.Print();

  std::printf(
      "\nShape check: stitched snapshots verify exactly against the source (0 audit\n"
      "failures) at every fleet size; the snapshot age is bounded by pipeline lag and\n"
      "grows with the progress cadence (A2) — coarser progress means staler green boxes,\n"
      "never wrong ones.\n");
  return 0;
}
