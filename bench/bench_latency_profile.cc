// O2/L1: end-to-end latency profile of both delivery pipelines, per stage.
//
// Drives the sharded runtime under an E1-style load grid (1, 2, 4 shards;
// P producers each issuing one publish + one watch ingest per message) with
// tracing enabled, and reports per-stage p50/p99/p99.9 from the obs collector
// for both paths:
//
//   pubsub:  origin -> append -> fetch -> deliver -> ack   (+ origin -> ack)
//   watch:   origin -> append -> deliver -> ack            (+ origin -> ack)
//
// Each grid point also runs the identical workload with tracing disabled
// (obs::SetTracingEnabled(false) — the runtime's default) and reports the
// throughput delta, i.e. the cost of tracing on the hot path. Traced runs use
// admission sampling (--sample=N, default 64: every 64th origin is traced) —
// the production configuration — so the delta stays within noise of the
// disabled mode; --sample=1 traces every record and shows the full cost. The
// compile-time floor is -DPUBSUB_OBS_NOOP, which removes even the disabled
// branch; this binary records which mode it was built in. The disabled mode
// is one relaxed atomic load per origin away from that floor.
//
// The consumer side of the pubsub plane fetches directly from the broker
// facade, so this bench stamps kDeliver/kAck and completes the trace exactly
// the way pubsub::Consumer::Poll does — the bench is the consumer endpoint.
//
// The consumer side of the pubsub plane runs in one of two modes
// (--consumer-mode=event|periodic, default event):
//
//   event:    each partition is owned by one shard-resident Subscription —
//             the owning shard pushes appends into the handoff buffer at
//             append time (stamping kFetch microseconds after kAppend) and
//             rings the consumer's doorbell; consumers drain on wakeup.
//   periodic: the pre-subscription loop — consumers poll Fetch through the
//             facade, so every fetch queues behind the publish storm on the
//             owning shard. This is the baseline whose append->fetch p50
//             sits in the tens of milliseconds under load.
//
//   ./bench_latency_profile [--messages=N] [--producers=P] [--consumers=C]
//                           [--watchers=W] [--sample=N] [--reps=N]
//                           [--consumer-mode=event|periodic] [--json=PATH]
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/collector.h"
#include "obs/trace.h"
#include "pubsub/broker.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "runtime/subscription.h"
#include "watch/api.h"

namespace {

constexpr pubsub::PartitionId kPartitions = 8;

// Watcher callback: tracing measures latency now, so the callback only counts.
class CountingCallback : public watch::WatchCallback {
 public:
  void OnEvent(const common::ChangeEvent&) override {
    delivered_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override { resyncs_.fetch_add(1, std::memory_order_relaxed); }

  std::int64_t delivered() const { return delivered_.load(); }
  std::int64_t resyncs() const { return resyncs_.load(); }

 private:
  std::atomic<std::int64_t> delivered_{0};
  std::atomic<std::int64_t> resyncs_{0};
};

struct RunResult {
  std::size_t shards = 0;
  bool tracing = false;
  double elapsed_sec = 0;
  std::int64_t messages = 0;  // publishes == ingests
  std::int64_t delivered = 0;
  std::int64_t consumed = 0;
  std::int64_t publish_retries = 0;
  std::int64_t ingest_retries = 0;
  double msgs_per_sec = 0;
  std::uint64_t traces_completed = 0;
  obs::Snapshot snapshot;
};

common::Key SplitPoint(std::size_t i, std::size_t n) {
  return common::Key(1, static_cast<char>('a' + (26 * i) / n));
}

RunResult RunOnce(std::size_t shards, int producers, int consumers, int watchers,
                  int per_producer, bool tracing, std::uint64_t sample_every,
                  bool event_consumers) {
  runtime::RuntimeOptions options;
  options.shards = shards;
  options.queue_capacity = 8192;
  options.max_batch = 256;
  options.event_driven = event_consumers;
  for (std::size_t s = 1; s < shards; ++s) {
    options.watch_splits.push_back(SplitPoint(s, shards));
  }
  common::MetricsRegistry registry;
  obs::Collector collector(&registry, {.shards = shards, .worst_traces = 8});
  options.obs = &collector;
  runtime::ShardPool pool(options, &registry);
  runtime::ConcurrentBroker broker(&pool);
  runtime::ConcurrentWatchService watch(&pool);
  pool.Start();
  if (!broker.CreateTopic("bench", {.partitions = kPartitions, .retention = {}}).ok()) {
    std::abort();
  }

  std::vector<std::unique_ptr<CountingCallback>> callbacks;
  std::vector<std::unique_ptr<watch::WatchHandle>> handles;
  for (int w = 0; w < watchers; ++w) {
    const auto i = static_cast<std::size_t>(w);
    const auto n = static_cast<std::size_t>(watchers);
    const common::Key low = i == 0 ? common::Key() : SplitPoint(i, n);
    const common::Key high = i + 1 == n ? common::Key() : SplitPoint(i + 1, n);
    callbacks.push_back(std::make_unique<CountingCallback>());
    handles.push_back(watch.Watch(low, high, 0, callbacks.back().get()));
  }

  for (int c = 0; c < consumers; ++c) {
    if (!broker.JoinGroup("bench-group", "bench", "consumer-" + std::to_string(c)).ok()) {
      std::abort();
    }
  }

  obs::SetTraceSampleEvery(sample_every);
  obs::SetTracingEnabled(tracing);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> consumed{0};
  std::array<std::atomic<pubsub::Offset>, kPartitions> trace_watermark{};
  std::vector<std::thread> consumer_threads;
  // Event mode: each partition is drained through one shard-resident
  // Subscription with a static owner thread (partition p -> thread p mod C).
  // Exclusive ownership makes trace completion exactly-once without the
  // periodic path's watermark, and commits ride the owner shard's queue.
  std::vector<std::unique_ptr<runtime::Subscription>> subs;
  if (event_consumers) {
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      subs.push_back(broker.Subscribe("bench", p, 0));
      if (subs.back() == nullptr) {
        std::abort();
      }
    }
    for (int c = 0; c < consumers; ++c) {
      consumer_threads.emplace_back([&, c] {
        struct Owned {
          pubsub::PartitionId partition;
          runtime::Subscription* sub;
          pubsub::Offset drained = 0;
          pubsub::Offset committed = 0;
        };
        std::vector<Owned> owned;
        for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
          if (static_cast<int>(p) % consumers == c) {
            owned.push_back({p, subs[p].get(), 0});
          }
        }
        if (owned.empty()) {
          return;
        }
        std::vector<pubsub::StoredMessage> batch;
        const auto drain_one = [&](Owned& o) -> std::int64_t {
          batch.clear();
          if (o.sub->PollBatch(&batch, 512) == 0) {
            return 0;
          }
          for (const pubsub::StoredMessage& m : batch) {
            obs::TraceContext trace = m.message.trace;
            if (!trace.active()) {
              continue;
            }
            trace.Stamp(obs::Stage::kDeliver, obs::NowMicros());
            trace.Stamp(obs::Stage::kAck, obs::NowMicros());
            collector.Complete(obs::Path::kPubsub, trace, broker.OwnerShard(o.partition));
          }
          o.drained = batch.back().offset + 1;
          // Commit coarsely: a commit task per small drained batch would
          // contend with the publish storm on the owner shard's queue.
          if (o.drained - o.committed >= 1024) {
            broker.CommitOffsetAsync("bench-group", o.partition, o.drained);
            o.committed = o.drained;
          }
          return static_cast<std::int64_t>(batch.size());
        };
        while (!stop.load(std::memory_order_relaxed)) {
          std::int64_t got = 0;
          for (Owned& o : owned) {
            got += drain_one(o);
          }
          consumed.fetch_add(got, std::memory_order_relaxed);
          if (got == 0) {
            (void)owned.front().sub->Wait(/*timeout_us=*/1000);
          }
        }
        // stop is set only after Quiesce, so the end offsets are final: drain
        // the handoffs to them so every admitted trace completes.
        for (Owned& o : owned) {
          const pubsub::Offset target = broker.EndOffset("bench", o.partition);
          while (o.drained < target) {
            const std::int64_t got = drain_one(o);
            consumed.fetch_add(got, std::memory_order_relaxed);
            if (got == 0) {
              (void)o.sub->Wait(/*timeout_us=*/1000);
            }
          }
          if (o.committed < o.drained) {
            broker.CommitOffsetAsync("bench-group", o.partition, o.drained);
            o.committed = o.drained;
          }
        }
      });
    }
  }
  // Periodic mode: consumer-group members poll assigned partitions through
  // the facade, stamping deliver/ack and completing each traced message the
  // way pubsub::Consumer::Poll does. A member evicted under load gets its
  // partitions re-fetched by another member from that member's own cursor, so
  // a shared per-partition watermark keeps each message's trace from
  // completing twice.
  for (int c = 0; !event_consumers && c < consumers; ++c) {
    consumer_threads.emplace_back([&, c] {
      const std::string member = "consumer-" + std::to_string(c);
      std::map<pubsub::PartitionId, pubsub::Offset> next;
      bool final_pass = false;
      while (true) {
        const bool stopping = stop.load(std::memory_order_relaxed);
        broker.Heartbeat("bench-group", member);
        const auto assigned = broker.AssignedPartitions(
            "bench-group", member, broker.GroupGeneration("bench-group"));
        std::int64_t got = 0;
        for (const pubsub::PartitionId p : assigned) {
          auto batch = broker.Fetch("bench", p, next[p], 512);
          if (!batch.ok() || batch->empty()) {
            continue;
          }
          got += static_cast<std::int64_t>(batch->size());
          for (const pubsub::StoredMessage& m : *batch) {
            obs::TraceContext trace = m.message.trace;
            if (!trace.active()) {
              continue;
            }
            // Advance the completion watermark past this offset; losing the
            // race (or refetching below it) means another member already
            // completed this message's trace.
            pubsub::Offset seen = trace_watermark[p].load(std::memory_order_relaxed);
            bool won = false;
            while (m.offset >= seen) {
              if (trace_watermark[p].compare_exchange_weak(seen, m.offset + 1,
                                                           std::memory_order_relaxed)) {
                won = true;
                break;
              }
            }
            if (!won) {
              continue;
            }
            trace.Stamp(obs::Stage::kDeliver, obs::NowMicros());
            trace.Stamp(obs::Stage::kAck, obs::NowMicros());
            collector.Complete(obs::Path::kPubsub, trace, broker.OwnerShard(p));
          }
          next[p] = batch->back().offset + 1;
          broker.CommitOffset("bench-group", p, next[p]);
        }
        consumed.fetch_add(got, std::memory_order_relaxed);
        if (stopping) {
          if (got == 0 && final_pass) {
            break;  // Drained: two consecutive empty passes after stop.
          }
          final_pass = got == 0;
        } else if (got == 0) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::atomic<std::int64_t> publish_retries{0};
  std::atomic<std::int64_t> ingest_retries{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producer_threads;
  for (int t = 0; t < producers; ++t) {
    producer_threads.emplace_back([&, t] {
      common::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < per_producer; ++i) {
        const common::Key key =
            common::Key(1, static_cast<char>('a' + rng.Below(26))) + std::to_string(rng.Below(997));
        // Each rejected attempt may have been admitted by the trace sampler;
        // those traces never complete, which the accounting below allows for.
        while (!broker.TryPublish("bench", {key, "m", 0}).ok()) {
          publish_retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
        common::ChangeEvent event;
        event.key = key;
        event.mutation = common::Mutation::Put("v");
        event.version = static_cast<common::Version>(t) * 100000000 + i + 1;
        while (!watch.TryIngest(event).ok()) {
          ingest_retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producer_threads) {
    t.join();
  }
  pool.Quiesce();  // Every accepted publish/ingest is applied and delivered.
  stop.store(true);
  for (auto& t : consumer_threads) {
    t.join();
  }
  // The clock stops only after the pubsub consumers drained everything: both
  // consumer modes are charged for the same end-to-end work.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  obs::SetTracingEnabled(false);
  obs::SetTraceSampleEvery(1);
  subs.clear();  // Cancel shard-side waiters while the pool still runs.
  pool.Stop();
  handles.clear();

  RunResult r;
  r.shards = shards;
  r.tracing = tracing;
  r.elapsed_sec = std::chrono::duration<double>(elapsed).count();
  r.messages = static_cast<std::int64_t>(producers) * per_producer;
  r.consumed = consumed.load();
  r.publish_retries = publish_retries.load();
  r.ingest_retries = ingest_retries.load();
  for (const auto& cb : callbacks) {
    r.delivered += cb->delivered();
    if (cb->resyncs() != 0) {
      std::fprintf(stderr, "unexpected watcher resync under bench load\n");
      std::abort();
    }
  }
  r.msgs_per_sec = static_cast<double>(r.messages) / r.elapsed_sec;
  r.traces_completed = collector.traces_completed();
  r.snapshot = collector.TakeSnapshot();

  // Tracing accounting: every successful origin that the sampler admits
  // completes exactly one trace (publish -> consumer ack, deduped by the
  // watermark; ingest -> watcher ack, exactly-once by construction).
  // Admission is pseudo-random per origin (Mix64 of a global counter), so the
  // completed count is binomial around attempts/n — allow 6 standard
  // deviations of slack, plus the rejected publish/ingest attempts whose
  // admitted traces are dropped with the record.
#ifndef PUBSUB_OBS_NOOP  // A no-op build never completes traces, by design.
  if (tracing) {
    const std::uint64_t n = sample_every == 0 ? 1 : sample_every;
    const auto successes =
        static_cast<std::uint64_t>(r.messages) + static_cast<std::uint64_t>(r.delivered);
    const auto attempts =
        successes + static_cast<std::uint64_t>(r.publish_retries + r.ingest_retries);
    const std::uint64_t retries = attempts - successes;
    const double mean = static_cast<double>(attempts) / static_cast<double>(n);
    const auto slack = static_cast<std::uint64_t>(6.0 * std::sqrt(mean)) + 2;
    const std::uint64_t lo =
        mean > static_cast<double>(retries + slack)
            ? static_cast<std::uint64_t>(mean) - retries - slack
            : 0;
    const std::uint64_t hi = static_cast<std::uint64_t>(mean) + slack;
    if (r.traces_completed < lo || r.traces_completed > hi || r.traces_completed == 0) {
      std::fprintf(stderr,
                   "trace accounting failure: completed=%llu expected in [%llu, %llu] "
                   "(successes=%llu attempts=%llu sample=1/%llu)\n",
                   static_cast<unsigned long long>(r.traces_completed),
                   static_cast<unsigned long long>(lo), static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(successes),
                   static_cast<unsigned long long>(attempts), static_cast<unsigned long long>(n));
      for (const obs::StageLatency& s : r.snapshot.stages) {
        if (s.shard == -1) {
          std::fprintf(stderr, "  %s %s->%s count=%llu\n", s.path.c_str(), s.from.c_str(),
                       s.to.c_str(), static_cast<unsigned long long>(s.count));
        }
      }
      std::abort();
    }
  }
#endif
  return r;
}

// `--json=PATH` writes PATH; bare `--json` writes the canonical
// BENCH_latency.json in the current directory.
std::optional<std::string> JsonPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return std::string("BENCH_latency.json");
    }
  }
  return bench::JsonPathFlag(argc, argv);
}

std::int64_t IntFlag(int argc, char** argv, const std::string& name, std::int64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoll(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

// The aggregate (shard == -1) stage rows of a snapshot, for one path.
std::vector<obs::StageLatency> AggregateStages(const obs::Snapshot& snapshot,
                                               const std::string& path) {
  std::vector<obs::StageLatency> out;
  for (const obs::StageLatency& s : snapshot.stages) {
    if (s.shard == -1 && s.path == path) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int per_producer = static_cast<int>(IntFlag(argc, argv, "messages", 10000));
  const int producers = static_cast<int>(IntFlag(argc, argv, "producers", 4));
  const int consumers = static_cast<int>(IntFlag(argc, argv, "consumers", 4));
  const int watchers = static_cast<int>(IntFlag(argc, argv, "watchers", 4));
  const int reps = static_cast<int>(IntFlag(argc, argv, "reps", 5));
  const auto sample_every =
      static_cast<std::uint64_t>(IntFlag(argc, argv, "sample", 64));
  const std::string consumer_mode = StringFlag(argc, argv, "consumer-mode", "event");
  if (consumer_mode != "event" && consumer_mode != "periodic") {
    std::fprintf(stderr, "--consumer-mode must be event or periodic\n");
    return 1;
  }
  const bool event_consumers = consumer_mode == "event";
  const unsigned cores = std::thread::hardware_concurrency();
#ifdef PUBSUB_OBS_NOOP
  const bool noop_build = true;
#else
  const bool noop_build = false;
#endif

  std::printf(
      "O2/L1: per-stage latency profile — %d producers x %d msgs, %d consumers (%s), "
      "%d watchers, 1/%llu sampling\n",
      producers, per_producer, consumers, consumer_mode.c_str(), watchers,
      static_cast<unsigned long long>(sample_every));
  std::printf("host hardware_concurrency: %u; PUBSUB_OBS_NOOP build: %s\n", cores,
              noop_build ? "yes (tracing compiled out; stage tables will be empty)" : "no");

  // Each grid point runs `reps` interleaved (off, on) pairs. The overhead
  // estimate is the median of the per-pair throughput ratios: adjacent runs
  // see the same host conditions, so each ratio cancels scheduler/thermal
  // drift, and the median strips pair-level outliers — on a small host the
  // run-to-run variance of a single throughput number dwarfs the tracing
  // cost itself. Best-of-reps throughputs are reported alongside.
  struct GridPoint {
    RunResult off;
    RunResult on;
    std::vector<double> off_reps;
    std::vector<double> on_reps;
    double median_overhead_pct = 0;
  };
  const auto median_pair_overhead = [](const GridPoint& p) {
    std::vector<double> ratios;
    for (std::size_t i = 0; i < p.off_reps.size(); ++i) {
      ratios.push_back(p.on_reps[i] / p.off_reps[i]);
    }
    std::sort(ratios.begin(), ratios.end());
    const std::size_t n = ratios.size();
    const double mid =
        n % 2 == 1 ? ratios[n / 2] : (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0;
    return (1.0 - mid) * 100.0;
  };
  const std::vector<std::size_t> shard_counts = {1, 2, 4};
  std::vector<GridPoint> grid;
  std::vector<double> all_ratios;
  for (const std::size_t shards : shard_counts) {
    GridPoint p;
    for (int r = 0; r < reps; ++r) {
      RunResult off = RunOnce(shards, producers, consumers, watchers, per_producer, false,
                              sample_every, event_consumers);
      RunResult on = RunOnce(shards, producers, consumers, watchers, per_producer, true,
                             sample_every, event_consumers);
      p.off_reps.push_back(off.msgs_per_sec);
      p.on_reps.push_back(on.msgs_per_sec);
      if (r == 0 || off.msgs_per_sec > p.off.msgs_per_sec) {
        p.off = std::move(off);
      }
      if (r == 0 || on.msgs_per_sec > p.on.msgs_per_sec) {
        p.on = std::move(on);
      }
    }
    p.median_overhead_pct = median_pair_overhead(p);
    for (std::size_t i = 0; i < p.off_reps.size(); ++i) {
      all_ratios.push_back(p.on_reps[i] / p.off_reps[i]);
    }
    std::printf(
        "  %zu shard(s): off %.0f msgs/sec, on %.0f msgs/sec (best of %d, median-pair "
        "overhead %.1f%%)\n",
        shards, p.off.msgs_per_sec, p.on.msgs_per_sec, reps, p.median_overhead_pct);
    grid.push_back(std::move(p));
  }
  // Headline overhead: the median over every (off, on) pair in the grid —
  // 3x the sample count of any single grid point, so the estimate a small
  // noisy host produces is far more stable than any per-point number.
  std::sort(all_ratios.begin(), all_ratios.end());
  const double overall_overhead_pct =
      all_ratios.empty()
          ? 0.0
          : (1.0 - (all_ratios.size() % 2 == 1
                        ? all_ratios[all_ratios.size() / 2]
                        : (all_ratios[all_ratios.size() / 2 - 1] +
                           all_ratios[all_ratios.size() / 2]) /
                              2.0)) *
                100.0;
  std::printf("  overall median-pair tracing overhead: %.1f%% (%zu pairs)\n",
              overall_overhead_pct, all_ratios.size());

  bench::Table overhead_table("Tracing overhead (same workload, tracing off vs on, best of reps)",
                              {"shards", "off msgs/sec", "on msgs/sec", "overhead %",
                               "traces", "delivered", "consumed"});
  for (const GridPoint& p : grid) {
    overhead_table.AddRow(
        {bench::I(p.on.shards), bench::F(p.off.msgs_per_sec, 0), bench::F(p.on.msgs_per_sec, 0),
         bench::F(p.median_overhead_pct, 1), bench::I(p.on.traces_completed),
         bench::I(static_cast<std::uint64_t>(p.on.delivered)),
         bench::I(static_cast<std::uint64_t>(p.on.consumed))});
  }
  overhead_table.Print();

  // Stage tables from the largest traced run — the most contended grid point.
  const RunResult& profiled = grid.back().on;
  bench::Table stage_table(
      "Per-stage latency at " + std::to_string(profiled.shards) + " shards (aggregate, us)",
      {"path", "stage pair", "count", "p50", "p99", "p99.9", "max"});
  for (const char* path : {"pubsub", "watch"}) {
    for (const obs::StageLatency& s : AggregateStages(profiled.snapshot, path)) {
      stage_table.AddRow({path, s.from + " -> " + s.to, bench::I(s.count), bench::F(s.p50_us, 1),
                          bench::F(s.p99_us, 1), bench::F(s.p999_us, 1), bench::F(s.max_us, 1)});
    }
  }
  stage_table.Print();

  if (const auto json_path = JsonPath(argc, argv)) {
    bench::Json doc = bench::Json::Object();
    doc["bench"] = "bench_latency_profile";
    doc["hardware_concurrency"] = static_cast<std::int64_t>(cores);
    doc["pubsub_obs_noop_build"] = noop_build;
    doc["producers"] = producers;
    doc["consumers"] = consumers;
    doc["consumer_mode"] = consumer_mode;
    doc["watchers"] = watchers;
    doc["messages_per_producer"] = per_producer;
    doc["trace_sample_every"] = sample_every;
    doc["reps"] = reps;
    doc["tracing_overhead_overall_median_pct"] = overall_overhead_pct;
    bench::Json& runs = doc["runs"] = bench::Json::Array();
    for (const GridPoint& p : grid) {
      bench::Json& run = runs.Append(bench::Json::Object());
      run["shards"] = static_cast<std::int64_t>(p.on.shards);
      run["tracing_off_msgs_per_sec"] = p.off.msgs_per_sec;
      run["tracing_on_msgs_per_sec"] = p.on.msgs_per_sec;
      run["tracing_overhead_pct"] = p.median_overhead_pct;
      bench::Json& off_reps = run["tracing_off_reps_msgs_per_sec"] = bench::Json::Array();
      for (const double v : p.off_reps) {
        off_reps.Append(bench::Json(v));
      }
      bench::Json& on_reps = run["tracing_on_reps_msgs_per_sec"] = bench::Json::Array();
      for (const double v : p.on_reps) {
        on_reps.Append(bench::Json(v));
      }
      run["messages"] = p.on.messages;
      run["delivered"] = p.on.delivered;
      run["consumed"] = p.on.consumed;
      run["traces_completed"] = p.on.traces_completed;
      for (const char* path : {"pubsub", "watch"}) {
        bench::Json& stages = run[path] = bench::Json::Object();
        for (const obs::StageLatency& s : AggregateStages(p.on.snapshot, path)) {
          bench::Json& pair = stages[s.from + "_to_" + s.to + "_us"] = bench::Json::Object();
          pair["count"] = s.count;
          pair["p50"] = s.p50_us;
          pair["p99"] = s.p99_us;
          pair["p999"] = s.p999_us;
          pair["max"] = s.max_us;
          pair["mean"] = s.mean_us;
        }
      }
      bench::Json& gauges = run["gauges"] = bench::Json::Object();
      for (const auto& [name, value] : p.on.snapshot.gauges) {
        if (name.rfind("obs.", 0) == 0 && name.find(".s", 3) == std::string::npos) {
          gauges[name] = value;  // Aggregate gauges only; shard families stay in text dumps.
        }
      }
    }
    doc["overhead_table"] = bench::TableJson(overhead_table);
    doc["stage_table"] = bench::TableJson(stage_table);
    if (!doc.WriteFile(*json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path->c_str());
  }

  std::printf(
      "\nShape check: every admitted origin completes exactly one trace (publish ->\n"
      "consumer ack, ingest -> watcher ack), so traces ~= (messages + delivered) /\n"
      "sample on each traced run. Tracing overhead is the off-vs-on throughput delta\n"
      "at the configured sampling rate; --sample=1 shows the full always-on cost and\n"
      "-DPUBSUB_OBS_NOOP is the compile-time zero-cost floor.\n");
  return 0;
}
