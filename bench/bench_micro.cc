// M1: google-benchmark microbenchmarks for the library's hot paths —
// interval-map operations, MVCC reads/writes, log append/read, compaction,
// watch dispatch fan-out, knowledge stitching, and the CDC codec.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cdc/codec.h"
#include "common/interval_map.h"
#include "common/rng.h"
#include "pubsub/log.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/knowledge.h"
#include "watch/router.h"
#include "watch/watch_system.h"

namespace {

void BM_IntervalMapAssign(benchmark::State& state) {
  common::Rng rng(1);
  common::IntervalMap<int> map(0);
  int v = 0;
  for (auto _ : state) {
    const auto lo = rng.Below(100000);
    map.Assign(common::KeyRange{common::IndexKey(lo), common::IndexKey(lo + rng.Below(500))},
               ++v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalMapAssign);

void BM_IntervalMapGet(benchmark::State& state) {
  common::Rng rng(2);
  common::IntervalMap<int> map(0);
  for (int i = 0; i < 1000; ++i) {
    const auto lo = rng.Below(100000);
    map.Assign(common::KeyRange{common::IndexKey(lo), common::IndexKey(lo + 50)}, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Get(common::IndexKey(rng.Below(100000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalMapGet);

void BM_MvccApply(benchmark::State& state) {
  storage::MvccStore store;
  common::Rng rng(3);
  for (auto _ : state) {
    store.Apply(common::IndexKey(rng.Below(10000)), common::Mutation::Put("value"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvccApply);

void BM_MvccGetLatest(benchmark::State& state) {
  storage::MvccStore store;
  common::Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    store.Apply(common::IndexKey(i), common::Mutation::Put("value"));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.GetLatest(common::IndexKey(rng.Below(10000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvccGetLatest);

void BM_MvccSnapshotScan(benchmark::State& state) {
  storage::MvccStore store;
  for (int i = 0; i < 1000; ++i) {
    store.Apply(common::IndexKey(i), common::Mutation::Put("value"));
  }
  const common::Version v = store.LatestVersion();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Scan(common::KeyRange::All(), v));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MvccSnapshotScan);

void BM_LogAppend(benchmark::State& state) {
  pubsub::PartitionLog log({.max_messages = 100000});
  for (auto _ : state) {
    log.Append(pubsub::Message{"key", std::string(128, 'x'), 0});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogAppend);

void BM_LogCompact(benchmark::State& state) {
  common::Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    pubsub::PartitionLog log({});
    for (int i = 0; i < 10000; ++i) {
      log.Append(pubsub::Message{common::IndexKey(rng.Below(100)), "v",
                                 static_cast<common::TimeMicros>(i)});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(log.Compact(9000));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_LogCompact);

void BM_WatchDispatch(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  watch::WatchSystem ws(&sim, nullptr, "ws",
                        {.delivery_latency = 0, .progress_period = 0});

  class NullCallback : public watch::WatchCallback {
   public:
    void OnEvent(const watch::ChangeEvent&) override {}
    void OnProgress(const watch::ProgressEvent&) override {}
    void OnResync() override {}
  };
  std::vector<NullCallback> callbacks(sessions);
  std::vector<std::unique_ptr<watch::WatchHandle>> handles;
  for (std::size_t s = 0; s < sessions; ++s) {
    // Each session watches a distinct slice; dispatch filters by range.
    handles.push_back(ws.Watch(common::IndexKey(s * 100), common::IndexKey((s + 1) * 100), 0,
                               &callbacks[s]));
  }
  common::Rng rng(6);
  common::Version v = 0;
  for (auto _ : state) {
    ws.Append(common::ChangeEvent{common::IndexKey(rng.Below(sessions * 100)),
                                  common::Mutation::Put("x"), ++v, true});
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WatchDispatch)->Arg(4)->Arg(32)->Arg(256);

void BM_KnowledgeStitch(benchmark::State& state) {
  const auto maps_n = static_cast<std::size_t>(state.range(0));
  std::vector<watch::KnowledgeMap> maps(maps_n);
  common::Rng rng(7);
  for (std::size_t i = 0; i < maps_n; ++i) {
    const auto lo = i * 1000;
    maps[i].AddSnapshot(common::KeyRange{common::IndexKey(lo), common::IndexKey(lo + 1000)},
                        10 + rng.Below(5));
    maps[i].ExtendTo(common::KeyRange{common::IndexKey(lo), common::IndexKey(lo + 1000)},
                     100 + rng.Below(50));
  }
  std::vector<const watch::KnowledgeMap*> ptrs;
  for (const auto& m : maps) {
    ptrs.push_back(&m);
  }
  const common::KeyRange query{common::IndexKey(0), common::IndexKey(maps_n * 1000)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(watch::KnowledgeMap::MaxStitchableVersion(ptrs, query));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnowledgeStitch)->Arg(4)->Arg(16)->Arg(64);

void BM_CodecEncode(benchmark::State& state) {
  const common::ChangeEvent ev{"user/12345", common::Mutation::Put(std::string(256, 'p')),
                               987654321, true};
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdc::EncodeChangeEvent(ev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const common::Value encoded = cdc::EncodeChangeEvent(
      {"user/12345", common::Mutation::Put(std::string(256, 'p')), 987654321, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cdc::DecodeChangeEvent(encoded));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecDecode);

void BM_WindowSetUnion(benchmark::State& state) {
  common::Rng rng(9);
  watch::WindowSet set;
  for (int i = 0; i < 50; ++i) {
    set = watch::UnionWindow(set, {i * 100ull, i * 100ull + 40});
  }
  for (auto _ : state) {
    const std::uint64_t lo = rng.Below(5000);
    benchmark::DoNotOptimize(watch::UnionWindow(set, {lo, lo + rng.Below(300)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowSetUnion);

void BM_RouterAppend(benchmark::State& state) {
  const auto partitions = static_cast<std::uint32_t>(state.range(0));
  sim::Simulator sim;
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  std::vector<common::KeyRange> ranges;
  for (std::uint32_t i = 0; i < partitions; ++i) {
    ranges.push_back(common::KeyRange{common::IndexKey(i * 1000), common::IndexKey((i + 1) * 1000)});
  }
  watch::WatchRouter router(&sim, &net, "r", ranges,
                            {.window = {.max_events = 1000},
                             .delivery_latency = 0,
                             .progress_period = 0});
  common::Rng rng(10);
  common::Version v = 0;
  for (auto _ : state) {
    router.Append({common::IndexKey(rng.Below(partitions * 1000)),
                   common::Mutation::Put("x"), ++v, true});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterAppend)->Arg(2)->Arg(8)->Arg(32);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.At(i, [&counter] { ++counter; });
    }
    state.ResumeTiming();
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_RngZipf(benchmark::State& state) {
  common::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Zipf(100000, 0.99));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngZipf);


}  // namespace

BENCHMARK_MAIN();
