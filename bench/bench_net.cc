// Network front-end benchmark: what the wire costs.
//
// Part 1 — loopback RTT: p50/p99 of a publish-ack round trip (PUBLISH with
// kOffset ack over a real TCP socket through pubsubd) against the in-process
// baseline (PublishSync on the same runtime), plus the raw HEARTBEAT echo
// RTT as the protocol floor. The socket/in-process delta is the price of the
// frame codec, the kernel loopback hops, and the event loop.
//
// Part 2 — connection churn smoke: N short-lived connections (default 1000)
// each handshake, publish one acked record, half open a subscription, then
// half die abruptly (no GOODBYE — the dead-peer sweep must reclaim them) and
// half close gracefully. Reports sessions opened/closed, heartbeat misses,
// accept rejections, and verifies ZERO acked-record loss: every acked
// publish is in the log afterwards.
//
//   ./bench_net [--rtt-iters=N] [--churn=N] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "bench/json.h"
#include "bench/table.h"
#include "client/client.h"
#include "common/metrics.h"
#include "common/status.h"
#include "obs/collector.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "server/pubsubd.h"

namespace {

std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t FlagInt(int argc, char** argv, const char* name, std::int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

struct Percentiles {
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

Percentiles Summarize(std::vector<std::int64_t>& ns) {
  Percentiles p;
  if (ns.empty()) {
    return p;
  }
  std::sort(ns.begin(), ns.end());
  p.p50_us = static_cast<double>(ns[ns.size() / 2]) / 1000.0;
  p.p99_us = static_cast<double>(ns[ns.size() * 99 / 100]) / 1000.0;
  p.max_us = static_cast<double>(ns.back()) / 1000.0;
  return p;
}

struct Stack {
  explicit Stack(server::ServerOptions so = {}) : obs(&obs_metrics) {
    runtime::RuntimeOptions po;
    po.obs = &obs;
    so.obs = &obs;
    pool = std::make_unique<runtime::ShardPool>(po);
    broker = std::make_unique<runtime::ConcurrentBroker>(pool.get());
    watch = std::make_unique<runtime::ConcurrentWatchService>(pool.get());
    pool->Start();
    server = std::make_unique<server::Server>(broker.get(), watch.get(), &pool->metrics(), so);
    const common::Status st = server->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }

  ~Stack() {
    server->Stop();
    pool->Stop();
  }

  common::MetricsRegistry obs_metrics;
  obs::Collector obs;
  std::unique_ptr<runtime::ShardPool> pool;
  std::unique_ptr<runtime::ConcurrentBroker> broker;
  std::unique_ptr<runtime::ConcurrentWatchService> watch;
  std::unique_ptr<server::Server> server;
};

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t rtt_iters = FlagInt(argc, argv, "rtt-iters", 5000);
  const std::int64_t churn = FlagInt(argc, argv, "churn", 1000);

  // -- Part 1: loopback RTT ----------------------------------------------------
  Stack stack;
  if (!stack.broker->CreateTopic("rtt", {.partitions = 1}).ok()) {
    return 1;
  }

  auto connected = client::Client::Connect("127.0.0.1", stack.server->port(),
                                           {.client_name = "bench-rtt"});
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", connected.status().message().c_str());
    return 1;
  }
  client::Client& cl = **connected;

  // Warm both paths (topic lookup caches, allocator, branch predictors).
  for (int i = 0; i < 200; ++i) {
    (void)cl.Publish("rtt", "w", "w", 0, net::PublishAck::kOffset);
    (void)stack.broker->PublishSync("rtt", {.key = "w", .value = "w"}, 0);
    (void)cl.Ping();
  }

  std::vector<std::int64_t> socket_ns, inproc_ns, echo_ns;
  socket_ns.reserve(rtt_iters);
  inproc_ns.reserve(rtt_iters);
  echo_ns.reserve(rtt_iters);
  for (std::int64_t i = 0; i < rtt_iters; ++i) {
    std::int64_t t0 = NowNanos();
    if (!cl.Publish("rtt", "k", "v", 0, net::PublishAck::kOffset).ok()) {
      std::fprintf(stderr, "socket publish failed at iter %lld\n", static_cast<long long>(i));
      return 1;
    }
    socket_ns.push_back(NowNanos() - t0);

    t0 = NowNanos();
    if (!stack.broker->PublishSync("rtt", {.key = "k", .value = "v"}, 0).ok()) {
      std::fprintf(stderr, "in-process publish failed\n");
      return 1;
    }
    inproc_ns.push_back(NowNanos() - t0);

    t0 = NowNanos();
    if (!cl.Ping().ok()) {
      std::fprintf(stderr, "ping failed\n");
      return 1;
    }
    echo_ns.push_back(NowNanos() - t0);
  }
  const Percentiles socket_rtt = Summarize(socket_ns);
  const Percentiles inproc_rtt = Summarize(inproc_ns);
  const Percentiles echo_rtt = Summarize(echo_ns);

  bench::Table rtt_table("Loopback round-trip latency (publish + ack), " +
                             std::to_string(rtt_iters) + " iters",
                         {"path", "p50_us", "p99_us", "max_us"});
  rtt_table.AddRow({"socket publish (kOffset ack)", bench::F(socket_rtt.p50_us, 1),
                    bench::F(socket_rtt.p99_us, 1), bench::F(socket_rtt.max_us, 1)});
  rtt_table.AddRow({"in-process PublishSync", bench::F(inproc_rtt.p50_us, 1),
                    bench::F(inproc_rtt.p99_us, 1), bench::F(inproc_rtt.max_us, 1)});
  rtt_table.AddRow({"socket HEARTBEAT echo", bench::F(echo_rtt.p50_us, 1),
                    bench::F(echo_rtt.p99_us, 1), bench::F(echo_rtt.max_us, 1)});
  rtt_table.Print();

  // -- Part 2: connection churn smoke ------------------------------------------
  server::ServerOptions churn_so;
  churn_so.heartbeat_interval_us = 50'000;
  churn_so.heartbeat_misses = 2;
  std::uint64_t acked = 0, reconnects = 0, failures = 0;
  std::uint64_t opened = 0, closed = 0, heartbeat_misses = 0, accept_rejected = 0;
  std::uint64_t stored = 0;
  double churn_sec = 0;
  {
    Stack churn_stack(churn_so);
    if (!churn_stack.broker->CreateTopic("churn", {.partitions = 2}).ok()) {
      return 1;
    }
    const std::int64_t t0 = NowNanos();
    for (std::int64_t i = 0; i < churn; ++i) {
      auto c = client::Client::Connect(
          "127.0.0.1", churn_stack.server->port(),
          {.client_name = "churn", .auto_heartbeat = false});
      if (!c.ok()) {
        ++failures;
        continue;
      }
      ++reconnects;
      pubsub::PublishResult pr;
      const common::Status st =
          (*c)->Publish("churn", "k" + std::to_string(i), "v",
                        static_cast<pubsub::PartitionId>(i % 2), net::PublishAck::kOffset, &pr);
      if (st.ok()) {
        ++acked;
      }
      std::unique_ptr<client::Subscription> sub;
      if (i % 2 == 0) {
        auto s = (*c)->Subscribe("churn", static_cast<pubsub::PartitionId>(i % 2), 0);
        if (s.ok()) {
          sub = std::move(*s);
        }
      }
      if (i % 2 == 0) {
        // Abrupt death mid-subscribe: the dead-peer sweep's problem.
        (*c)->KillConnectionForTest();
      }
      // Else: ~Client sends GOODBYE (graceful).
    }
    // Let the sweep reap the abrupt half.
    const std::int64_t deadline = NowNanos() + 10'000'000'000LL;
    while (churn_stack.server->sessions_closed() < churn_stack.server->sessions_opened() &&
           NowNanos() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    churn_sec = static_cast<double>(NowNanos() - t0) / 1e9;
    opened = churn_stack.server->sessions_opened();
    closed = churn_stack.server->sessions_closed();
    heartbeat_misses = churn_stack.pool->metrics().counter("net.heartbeat_misses").value();
    accept_rejected = churn_stack.pool->metrics().counter("net.accept_rejected").value();
    for (pubsub::PartitionId p = 0; p < 2; ++p) {
      auto r = churn_stack.broker->Fetch("churn", p, 0, 1u << 20);
      if (r.ok()) {
        stored += r->size();
      }
    }
  }
  const bool zero_loss = stored == acked;

  bench::Table churn_table("Connection churn smoke (" + std::to_string(churn) + " connections)",
                           {"metric", "value"});
  churn_table.AddRow({"connections attempted", bench::I(static_cast<std::uint64_t>(churn))});
  churn_table.AddRow({"connects ok", bench::I(reconnects)});
  churn_table.AddRow({"connect failures", bench::I(failures)});
  churn_table.AddRow({"sessions opened", bench::I(opened)});
  churn_table.AddRow({"sessions closed", bench::I(closed)});
  churn_table.AddRow({"heartbeat misses", bench::I(heartbeat_misses)});
  churn_table.AddRow({"accepts rejected", bench::I(accept_rejected)});
  churn_table.AddRow({"publishes acked", bench::I(acked)});
  churn_table.AddRow({"records stored", bench::I(stored)});
  churn_table.AddRow({"acked-record loss", bench::I(acked - std::min(acked, stored))});
  churn_table.AddRow({"elapsed_sec", bench::F(churn_sec, 2)});
  churn_table.Print();

  // `--json=PATH` writes PATH; bare `--json` writes the canonical
  // BENCH_net.json in the current directory.
  auto json_path = bench::JsonPathFlag(argc, argv);
  if (!json_path) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") json_path = "BENCH_net.json";
    }
  }
  if (json_path) {
    bench::Json doc = bench::Json::Object();
    doc["bench"] = "bench_net";
    doc["rtt_iters"] = rtt_iters;
    bench::Json& rtt = doc["rtt"] = bench::Json::Object();
    auto fill = [](bench::Json& j, const Percentiles& p) {
      j["p50_us"] = p.p50_us;
      j["p99_us"] = p.p99_us;
      j["max_us"] = p.max_us;
    };
    fill(rtt["socket_publish"] = bench::Json::Object(), socket_rtt);
    fill(rtt["inprocess_publish"] = bench::Json::Object(), inproc_rtt);
    fill(rtt["socket_heartbeat_echo"] = bench::Json::Object(), echo_rtt);
    rtt["socket_over_inprocess_p50"] =
        inproc_rtt.p50_us > 0 ? socket_rtt.p50_us / inproc_rtt.p50_us : 0.0;
    bench::Json& cj = doc["churn"] = bench::Json::Object();
    cj["connections"] = static_cast<std::int64_t>(churn);
    cj["connects_ok"] = reconnects;
    cj["connect_failures"] = failures;
    cj["sessions_opened"] = opened;
    cj["sessions_closed"] = closed;
    cj["heartbeat_misses"] = heartbeat_misses;
    cj["accepts_rejected"] = accept_rejected;
    cj["publishes_acked"] = acked;
    cj["records_stored"] = stored;
    cj["zero_acked_record_loss"] = zero_loss;
    cj["elapsed_sec"] = churn_sec;
    if (!doc.WriteFile(*json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path->c_str());
  }

  if (!zero_loss) {
    std::fprintf(stderr, "ACKED-RECORD LOSS: acked %llu, stored %llu\n",
                 static_cast<unsigned long long>(acked), static_cast<unsigned long long>(stored));
    return 1;
  }
  std::printf(
      "\nShape check: every acked publish is in the log (zero acked-record loss under\n"
      "churn), and the socket/in-process p50 gap is the wire tax — frame codec + two\n"
      "loopback hops + event-loop dispatch.\n");
  return 0;
}
