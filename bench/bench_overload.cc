// R2: behavior past saturation — open-loop overload sweep and the
// slow-consumer policy matrix.
//
// Closed-loop drivers deflate offered load to whatever the system absorbs
// (bench/loadgen.h explains the coordinated-omission trap); this bench
// instead offers arrival-rate-driven load from a virtual-time schedule and
// charges every sojourn from the SCHEDULED arrival, so the latency columns
// include the backlog delay a saturated system builds up. Each arrival gets
// exactly ONE TryPublish: a rejection is loss at the ingress (counted, with
// the retry_after hint histogrammed), never a silent retry — the open-loop
// analogue of the runtime's loud-backpressure posture.
//
// Three sections, all with core-pinned shard workers where the host allows
// (RuntimeOptions::pin_shards; the JSON records how many pins stuck):
//
//   1. Calibration: a short burst at an absurd offered rate measures the
//      1-shard ingress capacity; the sweep's rate ladder straddles it
//      (capacity/2 .. 4x — the goodput knee lands mid-ladder wherever the
//      host puts it).
//   2. Policy matrix: offered-vs-goodput / loss / p99-sojourn / retry-hint
//      curves per SlowConsumerPolicy, with a deliberately throttled consumer
//      so the handoff lanes actually overflow: kBlock stalls (loses nothing,
//      lag grows), kDropOldest sheds counted drops at the lane, kDisconnect
//      cuts the subscription and goodput-to-consumer collapses.
//   3. Shard scaling: the same open-loop load past saturation at 1/2/4/8
//      shards; the efficiency column is goodput(s) / (s * goodput(1)).
//      Zipf-skewed keys feed a sharding::AutoSharder mid-bench (sampled
//      ReportLoad + periodic RebalanceNow), so the hot key range splits
//      while the run is in flight — the hot-partition story, recorded as
//      autosharder_splits.
//
//   ./bench_overload [--duration-ms=N] [--points=N] [--theta=F] [--keys=N]
//                    [--producers=P] [--matrix-shards=N] [--sip=N]
//                    [--consumer-delay-us=N] [--policy=block|drop_oldest|
//                    disconnect|all] [--efficiency-floor=F] [--smoke]
//                    [--json=PATH]
//
// --smoke is the CI gate: a small sweep that exits nonzero if the 8-shard
// efficiency falls below the floor (auto: host-aware) or if ANY acked record
// fails to reach the consumer under kBlock.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/json.h"
#include "bench/loadgen.h"
#include "bench/table.h"
#include "common/metrics.h"
#include "common/types.h"
#include "pubsub/types.h"
#include "runtime/concurrent_broker.h"
#include "runtime/shard_pool.h"
#include "runtime/subscription.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

constexpr pubsub::PartitionId kPartitions = 8;

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PointConfig {
  std::size_t shards = 2;
  double offered_rate = 0;  // Total across producers.
  runtime::SlowConsumerPolicy policy = runtime::SlowConsumerPolicy::kBlock;
  int producers = 2;
  int duration_ms = 1500;
  double theta = 0.9;
  std::uint64_t keys = 4096;
  std::size_t handoff = 1024;
  std::size_t sip = 64;             // Consumer batch per sub per round.
  int consumer_delay_us = 0;        // Per-round throttle (the slow consumer).
  bool drive_sharder = false;       // Feed an AutoSharder mid-bench.
};

struct PointResult {
  PointConfig config;
  double elapsed_sec = 0;
  std::size_t pinned_shards = 0;
  std::int64_t offered = 0;   // Arrivals the schedule produced in-window.
  std::int64_t accepted = 0;  // TryPublish ok.
  std::int64_t rejected = 0;  // TryPublish kUnavailable (ingress loss).
  std::int64_t delivered_in_window = 0;
  std::int64_t delivered_total = 0;  // After the post-window drain.
  std::int64_t handoff_drops = 0;
  std::int64_t stalls = 0;
  std::int64_t disconnects = 0;
  double goodput_per_sec = 0;  // delivered_in_window / window.
  double accept_per_sec = 0;
  double loss_fraction = 0;  // 1 - delivered_total / offered.
  double sojourn_p50_us = 0;
  double sojourn_p99_us = 0;
  double hint_mean_us = 0;
  double hint_max_us = 0;
  std::uint64_t autosharder_splits = 0;
  std::size_t autosharder_shards = 0;
  bool acked_all_delivered = false;  // kBlock contract after full drain.
};

// One open-loop point: offered_rate for duration_ms against `shards` shards,
// consumers under `policy`.
PointResult RunPoint(const PointConfig& cfg) {
  runtime::RuntimeOptions options;
  options.shards = cfg.shards;
  options.queue_capacity = 4096;
  options.event_driven = true;
  options.lockfree_ring = true;
  options.pin_shards = true;
  runtime::ShardPool pool(options);
  runtime::ConcurrentBroker broker(&pool);
  pool.Start();
  if (!broker.CreateTopic("load", {.partitions = kPartitions}).ok()) {
    std::abort();
  }

  // The sharder observes the same key stream the runtime serves (sampled
  // 1-in-16, weight 16): Zipf heat concentrates on the low ranks, and the
  // periodic rebalance splits that range mid-bench.
  sim::Simulator sharder_sim;
  sim::Network sharder_net(&sharder_sim);
  sharding::AutoSharder sharder(&sharder_sim, &sharder_net,
                                {.split_threshold = 2000, .load_decay = 0.7});
  std::mutex sharder_mu;
  if (cfg.drive_sharder) {
    for (std::size_t s = 0; s < cfg.shards; ++s) {
      const std::string worker = "w" + std::to_string(s);
      sharder_net.AddNode(worker);  // A worker the network never saw is "down".
      sharder.AddWorker(worker);
    }
  }

  std::vector<std::unique_ptr<runtime::Subscription>> subs;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    runtime::SubscriptionOptions sopt;
    sopt.handoff_capacity = cfg.handoff;
    sopt.shard_batch = 256;
    sopt.wake_coalesce_us = 5000;
    sopt.slow_consumer = cfg.policy;
    subs.push_back(broker.Subscribe("load", p, 0, sopt));
    if (subs.back() == nullptr) {
      std::abort();
    }
  }

  // The (deliberately slow) consumer: small sips per sub per round, an
  // artificial delay per round. Post-window it switches to full-speed drain
  // so the loss accounting converges.
  std::atomic<bool> window_over{false};
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> delivered{0};
  std::thread consumer([&] {
    std::vector<pubsub::StoredMessage> batch;
    while (!stop.load(std::memory_order_relaxed)) {
      std::int64_t got = 0;
      for (auto& sub : subs) {
        batch.clear();
        got += static_cast<std::int64_t>(
            sub->PollBatch(&batch, window_over.load(std::memory_order_relaxed)
                                       ? 4096
                                       : cfg.sip));
      }
      delivered.fetch_add(got, std::memory_order_relaxed);
      if (got == 0) {
        (void)subs.front()->Wait(/*timeout_us=*/2000);
      } else if (!window_over.load(std::memory_order_relaxed) && cfg.consumer_delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(cfg.consumer_delay_us));
      }
    }
  });

  common::MetricsRegistry side;  // Bench-side histograms (not the pool's).
  common::Histogram& sojourn = side.histogram("sojourn_us");
  common::Histogram& hints = side.histogram("retry_hint_us");
  std::atomic<std::int64_t> offered{0}, accepted{0}, rejected{0};

  const std::int64_t duration_us = static_cast<std::int64_t>(cfg.duration_ms) * 1000;
  const std::int64_t t0 = NowUs();
  std::vector<std::thread> producers;
  for (int t = 0; t < cfg.producers; ++t) {
    producers.emplace_back([&, t] {
      bench::OpenLoopGen gen({.rate_per_sec = cfg.offered_rate / cfg.producers,
                              .zipf_theta = cfg.theta,
                              .key_space = cfg.keys,
                              .seed = static_cast<std::uint64_t>(t) + 1});
      std::int64_t n = 0;
      for (;;) {
        const std::int64_t due = gen.NextDueUs();
        if (due >= duration_us) {
          break;
        }
        const std::int64_t target = t0 + due;
        std::int64_t now = NowUs();
        if (target - now > 150) {
          // Ahead of schedule: sleep up to the due time. Behind schedule:
          // fire immediately — the schedule does NOT re-anchor, so a stalled
          // system faces the burst of everything that came due meanwhile.
          std::this_thread::sleep_for(std::chrono::microseconds(target - now - 100));
          now = NowUs();
        }
        const std::uint64_t rank = gen.NextRank();
        const std::string key = bench::RankKey(rank);
        offered.fetch_add(1, std::memory_order_relaxed);
        common::TimeMicros hint = 0;
        if (broker.TryPublish("load", {key, "m", 0, {}}, std::nullopt, &hint).ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          sojourn.Record(static_cast<double>(std::max<std::int64_t>(0, NowUs() - target)));
          if (cfg.drive_sharder && (++n & 15) == 0) {
            std::lock_guard<std::mutex> lock(sharder_mu);
            sharder.ReportLoad(key, 16.0);
          }
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
          hints.Record(static_cast<double>(hint));
        }
      }
    });
  }
  // Mid-bench rebalances: the hot range splits while load is in flight.
  std::thread rebalancer;
  if (cfg.drive_sharder) {
    rebalancer = std::thread([&] {
      while (!window_over.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::lock_guard<std::mutex> lock(sharder_mu);
        sharder.RebalanceNow();
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  const std::int64_t window_delivered = delivered.load(std::memory_order_relaxed);
  const double elapsed = static_cast<double>(NowUs() - t0) / 1e6;
  window_over.store(true, std::memory_order_relaxed);
  if (rebalancer.joinable()) {
    rebalancer.join();
  }

  // Drain: every accepted record is in a partition log; give the (now
  // full-speed) consumer until the cursors reach the ends — except broken
  // (kDisconnect) subscriptions, whose remaining log entries are the
  // policy's documented loss.
  pool.Quiesce();
  std::int64_t appended = 0;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    appended += static_cast<std::int64_t>(broker.EndOffset("load", p));
  }
  const std::int64_t deadline = NowUs() + 20 * 1000 * 1000;
  for (;;) {
    bool done = true;
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      if (!subs[p]->broken() &&
          subs[p]->cursor() < broker.EndOffset("load", p)) {
        done = false;
      }
    }
    std::int64_t buffered = 0;
    if (done) {
      // Cursors caught up; let the consumer finish the buffered tail.
      std::int64_t total = 0;
      for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
        if (!subs[p]->broken()) {
          total += static_cast<std::int64_t>(broker.EndOffset("load", p)) -
                   static_cast<std::int64_t>(subs[p]->drops());
        }
      }
      buffered = total - delivered.load(std::memory_order_relaxed);
      if (buffered <= 0) {
        break;
      }
    }
    if (NowUs() > deadline) {
      std::fprintf(stderr, "drain timeout (buffered=%lld)\n",
                   static_cast<long long>(buffered));
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_relaxed);
  consumer.join();

  PointResult r;
  r.config = cfg;
  r.elapsed_sec = elapsed;
  r.pinned_shards = pool.pinned_shards();
  r.offered = offered.load();
  r.accepted = accepted.load();
  r.rejected = rejected.load();
  r.delivered_in_window = window_delivered;
  r.delivered_total = delivered.load();
  for (auto& sub : subs) {
    r.handoff_drops += static_cast<std::int64_t>(sub->drops());
  }
  r.stalls =
      static_cast<std::int64_t>(pool.metrics().counter("runtime.slow_consumer.stalls").value());
  r.disconnects = static_cast<std::int64_t>(
      pool.metrics().counter("runtime.slow_consumer.disconnects").value());
  r.goodput_per_sec = static_cast<double>(r.delivered_in_window) / elapsed;
  r.accept_per_sec = static_cast<double>(r.accepted) / elapsed;
  r.loss_fraction =
      r.offered == 0
          ? 0
          : 1.0 - static_cast<double>(r.delivered_total) / static_cast<double>(r.offered);
  r.sojourn_p50_us = sojourn.Percentile(50);
  r.sojourn_p99_us = sojourn.Percentile(99);
  r.hint_mean_us = hints.Mean();
  r.hint_max_us = hints.Max();
  if (cfg.drive_sharder) {
    r.autosharder_splits = sharder.splits();
    r.autosharder_shards = sharder.Shards().size();
  }
  // The kBlock contract: everything acked reached the consumer (appended is
  // the ground truth; accepted must equal appended, and delivery must cover
  // it once drains finish).
  r.acked_all_delivered = r.accepted == appended && r.delivered_total == r.accepted &&
                          r.handoff_drops == 0;

  subs.clear();
  pool.Stop();
  return r;
}

const char* PolicyName(runtime::SlowConsumerPolicy p) {
  return runtime::SlowConsumerPolicyName(p);
}

std::int64_t IntFlag(int argc, char** argv, const std::string& name, std::int64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::strtoll(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

double DoubleFlag(int argc, char** argv, const std::string& name, double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

bench::Json PointJson(const PointResult& r) {
  bench::Json run = bench::Json::Object();
  run["policy"] = std::string(PolicyName(r.config.policy));
  run["shards"] = static_cast<std::int64_t>(r.config.shards);
  run["pinned_shards"] = static_cast<std::int64_t>(r.pinned_shards);
  run["offered_rate"] = r.config.offered_rate;
  run["offered"] = r.offered;
  run["accepted"] = r.accepted;
  run["rejected"] = r.rejected;
  run["delivered_in_window"] = r.delivered_in_window;
  run["delivered_total"] = r.delivered_total;
  run["handoff_drops"] = r.handoff_drops;
  run["stalls"] = r.stalls;
  run["disconnects"] = r.disconnects;
  run["goodput_msgs_per_sec"] = r.goodput_per_sec;
  run["accept_msgs_per_sec"] = r.accept_per_sec;
  run["loss_fraction"] = r.loss_fraction;
  run["sojourn_p50_us"] = r.sojourn_p50_us;
  run["sojourn_p99_us"] = r.sojourn_p99_us;
  run["retry_hint_mean_us"] = r.hint_mean_us;
  run["retry_hint_max_us"] = r.hint_max_us;
  run["autosharder_splits"] = static_cast<std::int64_t>(r.autosharder_splits);
  run["autosharder_shards"] = static_cast<std::int64_t>(r.autosharder_shards);
  run["acked_all_delivered"] = r.acked_all_delivered;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string policy_arg = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy_arg = arg.substr(std::strlen("--policy="));
    }
  }
  const int duration_ms = static_cast<int>(IntFlag(argc, argv, "duration-ms", smoke ? 400 : 1500));
  const int points = static_cast<int>(IntFlag(argc, argv, "points", smoke ? 3 : 5));
  const int producers = static_cast<int>(IntFlag(argc, argv, "producers", 2));
  const std::size_t matrix_shards =
      static_cast<std::size_t>(IntFlag(argc, argv, "matrix-shards", 2));
  const std::size_t sip = static_cast<std::size_t>(IntFlag(argc, argv, "sip", 64));
  const int consumer_delay_us =
      static_cast<int>(IntFlag(argc, argv, "consumer-delay-us", 1500));
  const double theta = DoubleFlag(argc, argv, "theta", 0.9);
  const std::uint64_t keys = static_cast<std::uint64_t>(IntFlag(argc, argv, "keys", 4096));
  const unsigned cores = std::thread::hardware_concurrency();
  // 8 shards on a >=8-core host should scale; on a smaller host they
  // time-slice and the curve is flat (efficiency ~ 1/8 at best). The floor
  // only guards against collapse, not against the host's core count.
  const double efficiency_floor =
      DoubleFlag(argc, argv, "efficiency-floor", cores >= 8 ? 0.30 : 0.04);

  std::vector<runtime::SlowConsumerPolicy> policies;
  if (policy_arg == "all") {
    policies = {runtime::SlowConsumerPolicy::kBlock, runtime::SlowConsumerPolicy::kDropOldest,
                runtime::SlowConsumerPolicy::kDisconnect};
  } else if (policy_arg == "block") {
    policies = {runtime::SlowConsumerPolicy::kBlock};
  } else if (policy_arg == "drop_oldest") {
    policies = {runtime::SlowConsumerPolicy::kDropOldest};
  } else if (policy_arg == "disconnect") {
    policies = {runtime::SlowConsumerPolicy::kDisconnect};
  } else {
    std::fprintf(stderr, "--policy must be block|drop_oldest|disconnect|all\n");
    return 1;
  }

  // -- 1. Calibrate ------------------------------------------------------------
  // An absurd offered rate with an unthrottled consumer: accepted/sec is the
  // 1-shard ingress capacity the ladder straddles.
  PointConfig calib;
  calib.shards = 1;
  calib.offered_rate = 5e6;
  calib.producers = producers;
  calib.duration_ms = smoke ? 300 : 600;
  calib.theta = theta;
  calib.keys = keys;
  calib.sip = 1024;
  std::printf("R2: open-loop overload (theta=%.2f, %u cores)\n", theta, cores);
  const PointResult capacity_point = RunPoint(calib);
  const double capacity = capacity_point.accept_per_sec;
  std::printf("calibrated 1-shard ingress capacity: %.0f msgs/sec\n", capacity);

  const std::vector<double> ladder = bench::OverloadRateLadder(capacity, points);

  // -- 2. Policy matrix --------------------------------------------------------
  std::vector<PointResult> matrix;
  bench::Table table("Slow-consumer policy matrix (open-loop)",
                     {"policy", "offered/s", "goodput/s", "accept/s", "loss", "p99_us",
                      "stalls", "drops", "disc", "hint_max"});
  for (const auto policy : policies) {
    for (const double rate : ladder) {
      PointConfig cfg;
      cfg.shards = matrix_shards;
      cfg.offered_rate = rate;
      cfg.policy = policy;
      cfg.producers = producers;
      cfg.duration_ms = duration_ms;
      cfg.theta = theta;
      cfg.keys = keys;
      cfg.handoff = 1024;
      cfg.sip = sip;
      cfg.consumer_delay_us = consumer_delay_us;
      matrix.push_back(RunPoint(cfg));
      const PointResult& r = matrix.back();
      table.AddRow({PolicyName(policy), bench::F(rate, 0), bench::F(r.goodput_per_sec, 0),
                    bench::F(r.accept_per_sec, 0), bench::F(r.loss_fraction, 3),
                    bench::F(r.sojourn_p99_us, 0),
                    bench::I(static_cast<std::uint64_t>(r.stalls)),
                    bench::I(static_cast<std::uint64_t>(r.handoff_drops)),
                    bench::I(static_cast<std::uint64_t>(r.disconnects)),
                    bench::F(r.hint_max_us, 0)});
    }
  }
  table.Print();

  // -- 3. Shard scaling + the hot-partition story ------------------------------
  std::vector<PointResult> scaling;
  const double sweep_rate = capacity * 2;  // Past 1-shard saturation.
  bench::Table stable("Shard scaling under overload (offered = 2x capacity)",
                      {"shards", "pinned", "accept/s", "goodput/s", "speedup", "efficiency",
                       "splits"});
  double base_accept = 0;
  for (const std::size_t shards : {1, 2, 4, 8}) {
    PointConfig cfg;
    cfg.shards = shards;
    cfg.offered_rate = sweep_rate;
    cfg.policy = runtime::SlowConsumerPolicy::kBlock;
    cfg.producers = producers;
    cfg.duration_ms = duration_ms;
    cfg.theta = theta;
    cfg.keys = keys;
    cfg.sip = 1024;
    cfg.drive_sharder = true;
    scaling.push_back(RunPoint(cfg));
    PointResult& r = scaling.back();
    if (shards == 1) {
      base_accept = r.accept_per_sec;
    }
    const double speedup = r.accept_per_sec / base_accept;
    stable.AddRow({bench::I(shards), bench::I(r.pinned_shards),
                   bench::F(r.accept_per_sec, 0), bench::F(r.goodput_per_sec, 0),
                   bench::F(speedup, 2), bench::F(speedup / static_cast<double>(shards), 3),
                   bench::I(r.autosharder_splits)});
  }
  stable.Print();
  const double eff8 = scaling.back().accept_per_sec / base_accept / 8.0;

  if (const auto json_path = bench::JsonPathFlag(argc, argv)) {
    bench::Json doc = bench::Json::Object();
    doc["bench"] = "bench_overload";
    doc["hardware_concurrency"] = static_cast<std::int64_t>(cores);
    bench::Json& m = doc["methodology"] = bench::Json::Object();
    m["mode"] = "open-loop";
    m["schedule"] = "poisson virtual-time (bench/loadgen.h)";
    m["coordinated_omission"] =
        "latency charged from scheduled arrival; schedule never re-anchors";
    m["attempts_per_arrival"] = 1;
    m["zipf_theta"] = theta;
    m["key_space"] = static_cast<std::int64_t>(keys);
    m["calibrated_capacity_msgs_per_sec"] = capacity;
    m["duration_ms_per_point"] = duration_ms;
    bench::Json& mx = doc["policy_matrix"] = bench::Json::Array();
    for (const PointResult& r : matrix) {
      mx.Append(PointJson(r));
    }
    bench::Json& sc = doc["shard_scaling"] = bench::Json::Array();
    for (const PointResult& r : scaling) {
      bench::Json run = PointJson(r);
      run["speedup_vs_1_shard"] = r.accept_per_sec / base_accept;
      run["efficiency"] =
          r.accept_per_sec / base_accept / static_cast<double>(r.config.shards);
      sc.Append(std::move(run));
    }
    doc["efficiency_8_shards"] = eff8;
    doc["efficiency_floor"] = efficiency_floor;
    if (!doc.WriteFile(*json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path->c_str());
  }

  // -- CI gates ----------------------------------------------------------------
  int rc = 0;
  for (const PointResult& r : matrix) {
    if (r.config.policy == runtime::SlowConsumerPolicy::kBlock && !r.acked_all_delivered) {
      std::fprintf(stderr,
                   "GATE FAIL: kBlock lost acked records at offered=%.0f "
                   "(accepted=%lld delivered=%lld drops=%lld)\n",
                   r.config.offered_rate, static_cast<long long>(r.accepted),
                   static_cast<long long>(r.delivered_total),
                   static_cast<long long>(r.handoff_drops));
      rc = 1;
    }
  }
  for (const PointResult& r : scaling) {
    if (!r.acked_all_delivered) {
      std::fprintf(stderr, "GATE FAIL: scaling run (%zu shards) lost acked records\n",
                   r.config.shards);
      rc = 1;
    }
  }
  if (eff8 < efficiency_floor) {
    std::fprintf(stderr, "GATE FAIL: 8-shard efficiency %.3f below floor %.3f\n", eff8,
                 efficiency_floor);
    rc = 1;
  }
  std::printf(rc == 0 ? "\ngates PASS (8-shard efficiency %.3f >= %.3f)\n"
                      : "\ngates FAIL\n",
              eff8, efficiency_floor);
  return rc;
}
