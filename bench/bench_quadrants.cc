// Experiment E9 (paper §4, Figures 3 & 4): the unbundling design space.
//
// Figure 3 spans storage type (producer vs ingestion) x notification
// placement (built into the store vs an external watch system). This bench
// runs the SAME consumer protocol (MaterializedRange: snapshot + watch +
// resync) against all four quadrants and checks that the consumer-visible
// guarantees are identical: complete convergence to the store and explicit
// resync on lag — independent of how the watch layer is deployed.
#include <cstdio>
#include <string>

#include "bench/json.h"
#include "bench/table.h"
#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ingest_store.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/store_watch.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kKeys = 300;
constexpr int kWrites = 2000;

struct Result {
  std::uint64_t events_applied = 0;
  std::uint64_t resyncs = 0;
  bool converged = false;
  double convergence_lag_ms = -1;
};

// Runs the standard consumer against a Watchable + snapshot source, driving
// `write` for the workload, and checks convergence against `truth_size` and
// `verify`.
template <typename WriteFn, typename VerifyFn>
Result Consume(sim::Simulator& sim, watch::NodeAwareWatchable* watchable,
               const watch::SnapshotSource* source, WriteFn write, VerifyFn verify) {
  watch::MaterializedRange consumer(&sim, watchable, source, common::KeyRange::All(),
                                    {.resync_delay = 5 * kMs});
  consumer.Start();
  sim.RunUntil(50 * kMs);

  common::Rng rng(71);
  for (int i = 0; i < kWrites; ++i) {
    write(common::IndexKey(rng.Below(kKeys), 4), "w" + std::to_string(i));
    if (i % 20 == 0) {
      sim.RunUntil(sim.Now() + 2 * kMs);
    }
  }
  const common::TimeMicros last_write = sim.Now();
  common::TimeMicros converged_at = -1;
  for (common::TimeMicros t = sim.Now(); t < last_write + 30 * kSec; t += 10 * kMs) {
    sim.RunUntil(t);
    if (verify(consumer)) {
      converged_at = sim.Now();
      break;
    }
  }
  Result r;
  r.events_applied = consumer.events_applied();
  r.resyncs = consumer.resyncs();
  r.converged = converged_at >= 0;
  r.convergence_lag_ms =
      converged_at < 0 ? -1 : static_cast<double>(converged_at - last_write) / kMs;
  return r;
}

// Verification for producer-storage quadrants: materialization == store scan.
bool MatchesMvcc(const watch::MaterializedRange& consumer, const storage::MvccStore& store) {
  auto truth = store.Scan(common::KeyRange::All(), store.LatestVersion());
  if (!truth.ok()) {
    return false;
  }
  auto mine = consumer.LatestScan(common::KeyRange::All());
  if (mine.size() != truth->size()) {
    return false;
  }
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].key != (*truth)[i].key || mine[i].value != (*truth)[i].value) {
      return false;
    }
  }
  return true;
}

Result ProducerBuiltIn() {
  sim::Simulator sim(73);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store("producer");
  watch::StoreWatch sw(&sim, &net, &store, "store-watch",
                       {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  watch::StoreSnapshotSource source(&store);
  return Consume(
      sim, &sw, &source,
      [&store](const common::Key& k, const common::Value& v) {
        store.Apply(k, common::Mutation::Put(v));
      },
      [&store](const watch::MaterializedRange& c) { return MatchesMvcc(c, store); });
}

Result ProducerExternal() {
  sim::Simulator sim(73);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store("producer");
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws,
                            {.shards = cdc::UniformShards(kKeys, 4, 4),
                             .base_latency = 1 * kMs,
                             .stagger = 2 * kMs,
                             .progress_period = 10 * kMs});
  watch::StoreSnapshotSource source(&store);
  return Consume(
      sim, &ws, &source,
      [&store](const common::Key& k, const common::Value& v) {
        store.Apply(k, common::Mutation::Put(v));
      },
      [&store](const watch::MaterializedRange& c) { return MatchesMvcc(c, store); });
}

bool MatchesIngest(const watch::MaterializedRange& consumer,
                   const storage::IngestStore& store) {
  auto latest = store.ScanLatest(common::KeyRange::All());
  auto mine = consumer.LatestScan(common::KeyRange::All());
  if (mine.size() != latest.size()) {
    return false;
  }
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].key != latest[i].key || mine[i].value != latest[i].payload) {
      return false;
    }
  }
  return true;
}

Result IngestBuiltIn() {
  sim::Simulator sim(73);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::IngestStore store("ingest");
  watch::IngestStoreWatch sw(&sim, &net, &store, "ingest-watch",
                             {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  watch::IngestSnapshotSource source(&store);
  return Consume(
      sim, &sw, &source,
      [&sim, &store](const common::Key& k, const common::Value& v) {
        store.Append(k, v, sim.Now());
      },
      [&store](const watch::MaterializedRange& c) { return MatchesIngest(c, store); });
}

Result IngestExternal() {
  sim::Simulator sim(73);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::IngestStore store("ingest");
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
  // External layering over an ingestion store: its event observer feeds the
  // standalone watch system through the Ingester contract.
  store.AddEventObserver([&sim, &ws](const storage::IngestEvent& ev) {
    sim.After(1 * kMs, [&ws, ev] {
      ws.Append(common::ChangeEvent{ev.key, common::Mutation::Put(ev.payload), ev.version,
                                    true});
      ws.Progress(common::ProgressEvent{common::KeyRange::All(), ev.version});
    });
  });
  watch::IngestSnapshotSource source(&store);
  return Consume(
      sim, &ws, &source,
      [&sim, &store](const common::Key& k, const common::Value& v) {
        store.Append(k, v, sim.Now());
      },
      [&store](const watch::MaterializedRange& c) { return MatchesIngest(c, store); });
}

void AddRow(bench::Table& table, const std::string& quadrant, const Result& r) {
  table.AddRow({quadrant, bench::I(r.events_applied), bench::I(r.resyncs),
                bench::B(r.converged), bench::F(r.convergence_lag_ms, 0)});
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E9: the Figure 3 quadrants — one consumer protocol, four deployments\n");
  std::printf("%d writes over %llu keys; identical MaterializedRange consumer in each run\n",
              kWrites, static_cast<unsigned long long>(kKeys));

  bench::Table table("Storage type x notification placement",
                     {"quadrant", "events_applied", "resyncs", "converged", "lag_ms"});
  AddRow(table, "producer-store + built-in watch", ProducerBuiltIn());
  AddRow(table, "producer-store + external watch", ProducerExternal());
  AddRow(table, "ingest-store   + built-in watch", IngestBuiltIn());
  AddRow(table, "ingest-store   + external watch", IngestExternal());
  table.Print();

  if (const auto json_path = bench::JsonPathFlag(argc, argv)) {
    bench::Json doc = bench::Json::Object();
    doc["bench"] = "bench_quadrants";
    doc["writes"] = static_cast<std::int64_t>(kWrites);
    doc["keys"] = static_cast<std::int64_t>(kKeys);
    doc["table"] = bench::TableJson(table);
    if (!doc.WriteFile(*json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path->c_str());
  }

  std::printf(
      "\nShape check: all four quadrants converge with the same consumer code and the same\n"
      "guarantees — the watch contract abstracts where notification is implemented,\n"
      "which is the generality claim of Section 4 / Figure 3.\n");
  return 0;
}
