// Experiment E4 (paper §3.2.1): replication across storage systems.
//
// A producer store commits a transaction mix (including the paper's
// membership/ACL pairs and multi-key transactions); five replication
// pipelines apply the change feed to a target store:
//
//   serial-pubsub          1 partition, 1 applier, txn-atomic apply
//   concurrent-naive       keyless routing, 4 appliers, blind writes
//   concurrent-versioned   keyless routing, 4 appliers, version checks
//   partitioned-pubsub     key-hash routing, 4 appliers, blind writes
//   watch                  4 range shards, frontier-batched atomic apply
//
// Metrics: apply throughput, eventual convergence, point-in-time (snapshot)
// anomalies, and violations of the paper's ACL invariant.
//
// Note on pubsub transactions: the CDC feed publishes each source commit's
// events in one atomic step (they become visible together, in order) — i.e.
// the baseline already enjoys transactional PUBLICATION, the strongest
// pubsub-layer transaction guarantee. The anomalies below happen anyway,
// on the CONSUME side, which is the paper's point: guarantees at the pubsub
// layer do not compose into end-to-end guarantees (§3.2.1).
#include <cstdio>
#include <string>

#include "bench/table.h"
#include "cdc/feeds.h"
#include "common/rng.h"
#include "pubsub/broker.h"
#include "replication/checker.h"
#include "replication/pubsub_replicator.h"
#include "replication/target_store.h"
#include "replication/watch_replicator.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kKeys = 500;
constexpr int kTxns = 3000;

struct Result {
  double throughput_eps = 0;  // Events applied per simulated second.
  double lag_ms = -1;          // Time from last commit to full application.
  bool converged = false;
  std::uint64_t snapshot_anomalies = 0;
  std::uint64_t acl_violations = 0;
};

// Issues the workload: random multi-key txns + the ordered ACL pair.
void Workload(sim::Simulator& sim, storage::MvccStore& source) {
  common::Rng rng(31);
  for (int t = 0; t < kTxns; ++t) {
    if (t % 20 == 7) {
      // The §3.2.1 example: remove member, THEN grant access.
      storage::Transaction setup = source.Begin();
      setup.Put("group/eng/member/mallory", "IN");
      setup.Put("doc/secret/acl", "eng:DENY");
      (void)source.Commit(std::move(setup));
      source.Apply("group/eng/member/mallory", common::Mutation::Put("OUT"));
      source.Apply("doc/secret/acl", common::Mutation::Put("eng:ALLOW"));
    } else {
      storage::Transaction txn = source.Begin();
      const int writes = 1 + static_cast<int>(rng.Below(3));
      for (int w = 0; w < writes; ++w) {
        const common::Key key = common::IndexKey(rng.Zipf(kKeys, 0.6), 4);
        if (rng.Bernoulli(0.1)) {
          txn.Delete(key);
        } else {
          txn.Put(key, "t" + std::to_string(t));
        }
      }
      (void)source.Commit(std::move(txn));
    }
    if (t % 10 == 0) {
      sim.RunUntil(sim.Now() + 1 * kMs);  // ~20k events/s offered load.
    }
  }
}

Result Finish(sim::Simulator& sim, const replication::SourceHistory& history,
              const replication::TargetStore& target,
              const replication::PointInTimeChecker& pit,
              const replication::AclInvariantChecker& acl,
              common::TimeMicros last_commit_time) {
  // Drain until converged (or give up after 120 simulated seconds).
  common::TimeMicros converged_at = -1;
  for (common::TimeMicros t = sim.Now(); t < last_commit_time + 120 * kSec; t += 20 * kMs) {
    sim.RunUntil(t);
    if (target.state_hash() == history.final_hash()) {
      converged_at = sim.Now();
      break;
    }
  }
  Result r;
  r.converged = pit.Converged(target);
  r.snapshot_anomalies = pit.anomalies();
  r.acl_violations = acl.violations();
  r.lag_ms = converged_at < 0
                 ? -1
                 : static_cast<double>(converged_at - last_commit_time) / kMs;
  // Throughput over the active window (workload start at 100ms to drain end).
  const double seconds =
      static_cast<double>((converged_at < 0 ? sim.Now() : converged_at) - 100 * kMs) / kSec;
  r.throughput_eps = seconds > 0 ? static_cast<double>(target.applied()) / seconds : 0;
  return r;
}

Result RunPubsub(replication::PubsubReplicationMode mode, std::uint32_t appliers = 4) {
  sim::Simulator sim(37);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  pubsub::Broker broker(&sim, &net, "broker", 200 * kMs);
  const bool serial = mode == replication::PubsubReplicationMode::kSerial;
  (void)broker.CreateTopic("repl", {.partitions = serial ? 1u : 16u});
  storage::MvccStore source("source");
  replication::SourceHistory history(&source);
  const bool keyless = mode == replication::PubsubReplicationMode::kConcurrentNaive ||
                       mode == replication::PubsubReplicationMode::kConcurrentVersioned;
  cdc::CdcPubsubFeed feed(&sim, &net, &source, nullptr, &broker, "repl",
                          {.keyed = !keyless});
  replication::TargetStore target;
  replication::PointInTimeChecker pit(&history, &target);
  replication::AclInvariantChecker acl(&target, "group/eng/member/mallory", "IN",
                                       "doc/secret/acl", "eng:ALLOW");
  replication::PubsubReplicatorOptions options;
  options.appliers = appliers;
  // Each applier moves at most 32 events per 4ms poll (8k events/s): the
  // per-applier bottleneck that serial mode cannot scale past.
  options.consumer.poll_period = 4 * kMs;
  options.consumer.max_poll_messages = 32;
  replication::PubsubReplicator replicator(&sim, &net, &broker, "repl", "repl-g", &target,
                                           mode, options);
  sim.RunUntil(100 * kMs);
  Workload(sim, source);
  return Finish(sim, history, target, pit, acl, sim.Now());
}

Result RunWatch(std::uint32_t shards = 4) {
  sim::Simulator sim(37);
  sim::Network net(&sim, {.base = 200, .jitter = 0});
  storage::MvccStore source("source");
  replication::SourceHistory history(&source);
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.window = {.max_events = 200000},
                         .delivery_latency = 1 * kMs,
                         .progress_period = 4 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &source, nullptr, &ws,
                            {.shards = cdc::UniformShards(kKeys, shards, 4),
                             .base_latency = 1 * kMs,
                             .stagger = 1 * kMs,
                             .progress_period = 4 * kMs});
  watch::StoreSnapshotSource snap(&source);
  replication::TargetStore target;
  replication::PointInTimeChecker pit(&history, &target);
  replication::AclInvariantChecker acl(&target, "group/eng/member/mallory", "IN",
                                       "doc/secret/acl", "eng:ALLOW");
  replication::WatchReplicator replicator(&sim, &ws, &snap, &target,
                                          cdc::UniformShards(kKeys, shards, 4),
                                          {.apply_period = 4 * kMs});
  replicator.Start();
  sim.RunUntil(100 * kMs);
  Workload(sim, source);
  return Finish(sim, history, target, pit, acl, sim.Now());
}

void AddRow(bench::Table& table, const std::string& name, const Result& r) {
  // Throughput is only meaningful for pipelines that converge.
  table.AddRow({name, r.converged ? bench::F(r.throughput_eps, 0) : "-",
                bench::F(r.lag_ms, 0),
                bench::B(r.converged), bench::I(r.snapshot_anomalies),
                bench::I(r.acl_violations)});
}

}  // namespace

int main() {
  std::printf("E4: cross-store replication (paper §3.2.1)\n");
  std::printf("%d txns over %llu keys incl. member/ACL pairs; 4 appliers where applicable\n",
              kTxns, static_cast<unsigned long long>(kKeys));

  bench::Table table("Replication discipline vs scalability and consistency",
                     {"pipeline", "apply_eps", "drain_lag_ms", "eventual", "snap_anomalies",
                      "acl_violations"});
  AddRow(table, "serial-pubsub", RunPubsub(replication::PubsubReplicationMode::kSerial));
  AddRow(table, "concurrent-naive",
         RunPubsub(replication::PubsubReplicationMode::kConcurrentNaive));
  AddRow(table, "concurrent-versioned",
         RunPubsub(replication::PubsubReplicationMode::kConcurrentVersioned));
  AddRow(table, "partitioned-pubsub",
         RunPubsub(replication::PubsubReplicationMode::kPartitioned));
  AddRow(table, "watch", RunWatch());
  table.Print();

  // A4: scaling the consistent pipelines. Serial cannot use more appliers at
  // all; partitioned scales but stays inconsistent; watch scales its shard
  // pipelines while keeping 0 anomalies.
  bench::Table scaling("A4: parallelism vs drain lag for the consistent disciplines",
                       {"pipeline", "parallelism", "drain_lag_ms", "snap_anomalies"});
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    Result p = RunPubsub(replication::PubsubReplicationMode::kPartitioned, n);
    scaling.AddRow({"partitioned-pubsub", bench::I(n), bench::F(p.lag_ms, 0),
                    bench::I(p.snapshot_anomalies)});
  }
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    Result w = RunWatch(n);
    scaling.AddRow({"watch", bench::I(n), bench::F(w.lag_ms, 0),
                    bench::I(w.snapshot_anomalies)});
  }
  scaling.Print();

  std::printf(
      "\nShape check: serial is consistent but slowest to drain (single applier ceiling);\n"
      "concurrent-naive is fast but does not even converge; version checks restore\n"
      "convergence but not snapshot consistency; partitioned converges but tears\n"
      "transactions (ACL violations > 0); watch matches concurrent ingest while\n"
      "externalizing only source states (0 anomalies, 0 violations).\n");
  return 0;
}
