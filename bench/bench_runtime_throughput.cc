// R1: throughput scaling of the sharded concurrent runtime.
//
// Drives P producer threads, C consumer-group members, and W watchers against
// the runtime at 1, 2, 4, and 8 shards and reports aggregate msgs/sec,
// p50/p99 watch delivery latency (wall clock, producer -> watcher callback),
// and scaling efficiency relative to the 1-shard run. Producers hit both
// planes: every iteration publishes one message to the broker (TryPublish
// with retry-on-kUnavailable) and ingests one change event into the watch
// plane (TryIngest, same backpressure discipline), so a "message" below is
// one publish + one ingest.
//
// Scaling expectations depend on the host: on a single hardware thread the
// shards time-slice one core and the curve is flat (the run still validates
// the backpressure accounting); on a 4+-core machine throughput should rise
// monotonically 1 -> 4 shards. The JSON output records hardware_concurrency
// so BENCH_runtime.json is interpretable either way.
//
// The pubsub consumer side runs in one of two modes (--consumer-mode=event|
// periodic, default event): event drains shard-resident Subscriptions woken
// by the broker's append doorbell; periodic polls Fetch through the facade.
// The measured window covers publish AND full pubsub consumption in both
// modes — event mode delivers in-window by construction (the owner shard
// pushes at append time), so stopping the clock at Quiesce would credit the
// periodic mode for consumer work it had merely deferred.
//
// Data-plane A/B (the lock-free ring + batched-publish work): --ring selects
// the shard ingress ring (mutex | lockfree; default runs BOTH and tags each
// row), --publish-batch=N stages N records per arena-backed PublishBatch
// (0 = auto: 1 on the mutex ring, 512 on the lock-free ring — each ring's
// intended posture), and --smoke runs a quick 1-shard publish-only A/B of
// mutex-singles vs lockfree-batched and exits nonzero if the lock-free data
// plane fails to beat the mutex baseline — the CI perf gate.
//
// Load modes: the default is the classic closed loop (producers retry
// through backpressure as fast as the runtime admits — peak-capacity
// measurement). --arrival-rate=N switches the publish plane to OPEN-LOOP
// load: arrivals follow a virtual-time schedule fixed by the offered rate
// (bench/loadgen.h — no coordinated omission, the schedule never
// re-anchors), every arrival gets exactly one TryPublish, and a rejection
// is counted as loss instead of silently retried. --theta sets the Zipf
// skew of the open-loop key stream. bench_overload drives this mode past
// saturation; here it makes the R1 scaling rows comparable at a fixed
// offered rate.
//
//   ./bench_runtime_throughput [--messages=N] [--producers=P] [--consumers=C]
//                              [--watchers=W] [--consumer-mode=event|periodic]
//                              [--ring=mutex|lockfree] [--publish-batch=N]
//                              [--arrival-rate=N] [--theta=F]
//                              [--smoke] [--json=PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/json.h"
#include "bench/loadgen.h"
#include "bench/table.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/collector.h"
#include "obs/trace.h"
#include "pubsub/broker.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/publish_batch.h"
#include "runtime/shard_pool.h"
#include "runtime/subscription.h"
#include "watch/api.h"

namespace {

constexpr pubsub::PartitionId kPartitions = 8;

std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Watcher callback: every event's payload carries the producer's send
// timestamp; the delta lands in a shared (thread-safe) histogram.
class LatencyCallback : public watch::WatchCallback {
 public:
  LatencyCallback(common::Histogram* latency, std::atomic<std::int64_t>* delivered)
      : latency_(latency), delivered_(delivered) {}

  void OnEvent(const common::ChangeEvent& event) override {
    const std::int64_t sent = std::strtoll(event.mutation.value.c_str(), nullptr, 10);
    latency_->Record(static_cast<double>(NowNanos() - sent) / 1000.0);  // us
    delivered_->fetch_add(1, std::memory_order_relaxed);
  }
  void OnProgress(const common::ProgressEvent&) override {}
  void OnResync() override { resyncs_.fetch_add(1, std::memory_order_relaxed); }

  std::int64_t resyncs() const { return resyncs_.load(); }

 private:
  common::Histogram* latency_;
  std::atomic<std::int64_t>* delivered_;
  std::atomic<std::int64_t> resyncs_{0};
};

struct RunResult {
  std::size_t shards = 0;
  bool lockfree = false;
  int publish_batch = 1;
  double elapsed_sec = 0;
  std::int64_t messages = 0;  // Closed loop: publishes == ingests. Open loop: offered arrivals.
  std::int64_t accepted = 0;  // == messages in closed loop; TryPublish oks in open loop.
  std::int64_t publish_losses = 0;  // Open loop only: single-attempt rejections.
  std::int64_t publish_retries = 0;
  std::int64_t ingest_retries = 0;
  std::int64_t delivered = 0;
  std::int64_t consumed = 0;
  double p50_us = 0;
  double p99_us = 0;
  double msgs_per_sec = 0;
};

// Key prefixes spread uniformly over 'a'..'z'; both the shard splits and the
// watcher ranges cut this space, so watchers are affinitized to contiguous
// slices and their union always covers every key regardless of shard count.
common::Key SplitPoint(std::size_t i, std::size_t n) {
  return common::Key(1, static_cast<char>('a' + (26 * i) / n));
}

// `lockfree` selects the shard ingress ring; `publish_batch` > 1 stages that
// many records per arena-backed PublishBatch (one key per batch, so the batch
// is a single shard group and its retry-on-kUnavailable is all-or-nothing);
// `publish_only` drops the watch-plane ingest so a --smoke A/B measures the
// pubsub data plane in isolation.
// `arrival_rate` > 0 switches the publish plane to open-loop mode: the rate
// is split across producers, each following its own seeded virtual-time
// schedule for per_producer arrivals with ONE TryPublish per arrival
// (`theta` skews the keys); 0 is the classic closed loop.
RunResult RunOnce(std::size_t shards, int producers, int consumers, int watchers,
                  int per_producer, bool trace, bool event_consumers, bool lockfree,
                  int publish_batch, bool publish_only, double arrival_rate = 0,
                  double theta = 0) {
  runtime::RuntimeOptions options;
  options.shards = shards;
  options.queue_capacity = 8192;
  options.max_batch = 256;
  options.event_driven = event_consumers;
  options.lockfree_ring = lockfree;
  for (std::size_t s = 1; s < shards; ++s) {
    options.watch_splits.push_back(SplitPoint(s, shards));
  }
  // --trace: wire the obs collector and enable 1/64 admission sampling (the
  // production tracing configuration); against a -DPUBSUB_OBS_NOOP build of
  // this binary the throughput delta is the end-to-end cost of tracing.
  common::MetricsRegistry trace_registry;
  std::unique_ptr<obs::Collector> collector;
  if (trace) {
    collector = std::make_unique<obs::Collector>(&trace_registry,
                                                 obs::CollectorOptions{.shards = shards});
    options.obs = collector.get();
    obs::SetTraceSampleEvery(64);
    obs::SetTracingEnabled(true);
  }
  runtime::ShardPool pool(options);
  runtime::ConcurrentBroker broker(&pool);
  runtime::ConcurrentWatchService watch(&pool);
  pool.Start();
  if (!broker.CreateTopic("bench", {.partitions = kPartitions, .retention = {}}).ok()) {
    std::abort();
  }

  common::Histogram& latency = pool.metrics().histogram("delivery_latency_us");
  std::atomic<std::int64_t> delivered{0};

  std::vector<std::unique_ptr<LatencyCallback>> callbacks;
  std::vector<std::unique_ptr<watch::WatchHandle>> handles;
  for (int w = 0; w < watchers; ++w) {
    const auto i = static_cast<std::size_t>(w);
    const auto n = static_cast<std::size_t>(watchers);
    const common::Key low = i == 0 ? common::Key() : SplitPoint(i, n);
    const common::Key high = i + 1 == n ? common::Key() : SplitPoint(i + 1, n);
    callbacks.push_back(std::make_unique<LatencyCallback>(&latency, &delivered));
    handles.push_back(watch.Watch(low, high, 0, callbacks.back().get()));
  }

  // Consumer-group members: poll assigned partitions, commit as they go.
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> consumed{0};
  std::vector<std::thread> consumer_threads;
  for (int c = 0; c < consumers; ++c) {
    const std::string member = "consumer-" + std::to_string(c);
    if (!broker.JoinGroup("bench-group", "bench", member).ok()) {
      std::abort();
    }
  }
  // Event mode: static partition ownership (partition p -> thread p mod C),
  // one shard-resident subscription per partition, coarse async commits.
  std::vector<std::unique_ptr<runtime::Subscription>> subs;
  if (event_consumers && consumers > 0) {
    // Throughput posture: widen the doorbell coalesce window to the waiter's
    // sweep park (5 ms). Rings then only pay for idle-edge latency; sustained
    // load is drained on sweep boundaries, so consumer wakeups — which
    // time-slice against the shard workers on small hosts — are bounded at
    // ~200/s per subscription instead of ~2000/s. (NIC interrupt moderation,
    // applied to the egress doorbell.)
    for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
      runtime::SubscriptionOptions sopt;
      sopt.wake_coalesce_us = 5000;
      subs.push_back(broker.Subscribe("bench", p, 0, sopt));
      if (subs.back() == nullptr) {
        std::abort();
      }
    }
    for (int c = 0; c < consumers; ++c) {
      consumer_threads.emplace_back([&, c] {
        struct Owned {
          pubsub::PartitionId partition;
          runtime::Subscription* sub;
          pubsub::Offset drained = 0;
          pubsub::Offset committed = 0;
        };
        std::vector<Owned> owned;
        for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
          if (static_cast<int>(p) % consumers == c) {
            owned.push_back({p, subs[p].get(), 0, 0});
          }
        }
        if (owned.empty()) {
          return;
        }
        std::vector<pubsub::StoredMessage> batch;
        const auto drain_one = [&](Owned& o) -> std::int64_t {
          batch.clear();
          if (o.sub->PollBatch(&batch, 512) == 0) {
            return 0;
          }
          o.drained = batch.back().offset + 1;
          if (o.drained - o.committed >= 1024) {
            broker.CommitOffsetAsync("bench-group", o.partition, o.drained);
            o.committed = o.drained;
          }
          return static_cast<std::int64_t>(batch.size());
        };
        while (!stop.load(std::memory_order_relaxed)) {
          std::int64_t got = 0;
          for (Owned& o : owned) {
            got += drain_one(o);
          }
          consumed.fetch_add(got, std::memory_order_relaxed);
          if (got == 0) {
            (void)owned.front().sub->Wait(/*timeout_us=*/5000);
          }
        }
        // stop is set only after Quiesce: end offsets are final.
        for (Owned& o : owned) {
          const pubsub::Offset target = broker.EndOffset("bench", o.partition);
          while (o.drained < target) {
            const std::int64_t got = drain_one(o);
            consumed.fetch_add(got, std::memory_order_relaxed);
            if (got == 0) {
              (void)o.sub->Wait(/*timeout_us=*/5000);
            }
          }
          if (o.committed < o.drained) {
            broker.CommitOffsetAsync("bench-group", o.partition, o.drained);
            o.committed = o.drained;
          }
        }
      });
    }
  }
  for (int c = 0; !event_consumers && c < consumers; ++c) {
    consumer_threads.emplace_back([&, c] {
      const std::string member = "consumer-" + std::to_string(c);
      std::map<pubsub::PartitionId, pubsub::Offset> next;
      bool final_pass = false;
      while (true) {
        const bool stopping = stop.load(std::memory_order_relaxed);
        broker.Heartbeat("bench-group", member);
        const auto assigned = broker.AssignedPartitions(
            "bench-group", member, broker.GroupGeneration("bench-group"));
        std::int64_t got = 0;
        for (const pubsub::PartitionId p : assigned) {
          auto batch = broker.Fetch("bench", p, next[p], 512);
          if (!batch.ok() || batch->empty()) {
            continue;
          }
          got += static_cast<std::int64_t>(batch->size());
          next[p] = batch->back().offset + 1;
          broker.CommitOffset("bench-group", p, next[p]);
        }
        consumed.fetch_add(got, std::memory_order_relaxed);
        if (stopping) {
          if (got == 0 && final_pass) {
            break;  // Drained: two consecutive empty passes after stop.
          }
          final_pass = got == 0;
        } else if (got == 0) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::atomic<std::int64_t> publish_retries{0};
  std::atomic<std::int64_t> ingest_retries{0};
  std::atomic<std::int64_t> publish_losses{0};
  std::atomic<std::int64_t> open_accepted{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producer_threads;
  for (int t = 0; t < producers; ++t) {
    producer_threads.emplace_back([&, t] {
      common::Rng rng(static_cast<std::uint64_t>(t) + 1);
      const auto make_key = [&rng] {
        return common::Key(1, static_cast<char>('a' + rng.Below(26))) +
               std::to_string(rng.Below(997));
      };
      const auto ingest_one = [&](int i) {
        // Watch plane: the payload is the send timestamp for latency.
        common::ChangeEvent event;
        event.key = make_key();
        event.mutation = common::Mutation::Put(std::to_string(NowNanos()));
        event.version = static_cast<common::Version>(t) * 100000000 + i + 1;
        while (!watch.TryIngest(event).ok()) {
          ingest_retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      };
      if (arrival_rate > 0) {
        // Open loop: one TryPublish per scheduled arrival; a rejection is
        // loss, never a retry (retrying would re-close the loop). Ingest
        // rides along per ACCEPTED publish so the watch plane still sees
        // the same record stream, just thinned by the loss.
        bench::OpenLoopGen gen({.rate_per_sec = arrival_rate / producers,
                                .zipf_theta = theta,
                                .key_space = 26 * 997,
                                .seed = static_cast<std::uint64_t>(t) + 1});
        const std::int64_t epoch_us = NowNanos() / 1000;
        for (int i = 0; i < per_producer; ++i) {
          const std::int64_t target = epoch_us + gen.NextDueUs();
          const std::int64_t now = NowNanos() / 1000;
          if (target - now > 150) {
            // Ahead of schedule: sleep to the due time. Behind: fire now —
            // the schedule never re-anchors (see bench/loadgen.h).
            std::this_thread::sleep_for(std::chrono::microseconds(target - now - 100));
          }
          if (broker.TryPublish("bench", {bench::RankKey(gen.NextRank()), "m", 0, {}}).ok()) {
            open_accepted.fetch_add(1, std::memory_order_relaxed);
            if (!publish_only) {
              ingest_one(i);
            }
          } else {
            publish_losses.fetch_add(1, std::memory_order_relaxed);
          }
        }
        return;
      }
      if (publish_batch > 1) {
        // Batched data plane: stage publish_batch records per arena batch.
        // One key per batch keeps the whole batch on one partition (a single
        // shard group), so a retry after kUnavailable cannot double-publish.
        for (int i = 0; i < per_producer;) {
          const int n = std::min(publish_batch, per_producer - i);
          auto batch = std::make_shared<runtime::PublishBatch>(static_cast<std::size_t>(n));
          const common::Key key = make_key();
          for (int j = 0; j < n; ++j) {
            batch->Add(key, "m");
          }
          while (!broker.TryPublishBatch("bench", batch).ok()) {
            publish_retries.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();
          }
          if (!publish_only) {
            for (int j = 0; j < n; ++j) {
              ingest_one(i + j);
            }
          }
          i += n;
        }
        return;
      }
      for (int i = 0; i < per_producer; ++i) {
        // Publish plane: retry through backpressure, counting each bounce.
        while (!broker.TryPublish("bench", {make_key(), "m", 0, {}}).ok()) {
          publish_retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
        if (!publish_only) {
          ingest_one(i);
        }
      }
    });
  }
  for (auto& t : producer_threads) {
    t.join();
  }
  pool.Quiesce();  // Every accepted publish/ingest is applied; watch delivery done.
  stop.store(true);
  for (auto& t : consumer_threads) {
    t.join();
  }
  // The clock stops only after the pubsub consumers drained everything: both
  // modes are charged for the same end-to-end work, whether delivery ran
  // in-window (event pushes at append time) or lagged (periodic catch-up).
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (trace) {
    obs::SetTracingEnabled(false);
    obs::SetTraceSampleEvery(1);
  }
  subs.clear();  // Cancel shard-side waiters while the pool still runs.
  pool.Stop();
  handles.clear();

  RunResult r;
  r.shards = shards;
  r.lockfree = lockfree;
  r.publish_batch = publish_batch;
  r.elapsed_sec = std::chrono::duration<double>(elapsed).count();
  r.messages = static_cast<std::int64_t>(producers) * per_producer;
  r.accepted = arrival_rate > 0 ? open_accepted.load() : r.messages;
  r.publish_losses = publish_losses.load();
  r.publish_retries = publish_retries.load();
  r.ingest_retries = ingest_retries.load();
  r.delivered = delivered.load();
  r.consumed = consumed.load();
  r.p50_us = latency.Percentile(50);
  r.p99_us = latency.Percentile(99);
  // Open loop: goodput is what was ACCEPTED; offered arrivals that bounced
  // are loss, not throughput.
  r.msgs_per_sec = static_cast<double>(r.accepted) / r.elapsed_sec;

  // Loud-failure audit: everything accepted must be accounted for.
  std::int64_t appended = 0;
  for (pubsub::PartitionId p = 0; p < kPartitions; ++p) {
    appended += static_cast<std::int64_t>(
        pool.core(broker.OwnerShard(p)).broker->EndOffset("bench", p));
  }
  std::int64_t resyncs = 0;
  for (const auto& cb : callbacks) {
    resyncs += cb->resyncs();
  }
  if (appended != r.accepted || resyncs != 0) {
    std::fprintf(stderr, "accounting failure: appended=%lld accepted=%lld resyncs=%lld\n",
                 static_cast<long long>(appended), static_cast<long long>(r.accepted),
                 static_cast<long long>(resyncs));
    std::abort();
  }
  return r;
}

std::int64_t IntFlag(int argc, char** argv, const std::string& name, std::int64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoll(arg.c_str() + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

double DoubleFlag(int argc, char** argv, const std::string& name, double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtod(arg.c_str() + prefix.size(), nullptr);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int per_producer = static_cast<int>(IntFlag(argc, argv, "messages", 10000));
  const int producers = static_cast<int>(IntFlag(argc, argv, "producers", 4));
  const int consumers = static_cast<int>(IntFlag(argc, argv, "consumers", 4));
  const int watchers = static_cast<int>(IntFlag(argc, argv, "watchers", 4));
  const int publish_batch_flag = static_cast<int>(IntFlag(argc, argv, "publish-batch", 0));
  const double arrival_rate = DoubleFlag(argc, argv, "arrival-rate", 0);
  const double theta = DoubleFlag(argc, argv, "theta", 0);
  bool trace = false;
  bool smoke = false;
  std::string consumer_mode = "event";
  std::string ring = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      trace = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--consumer-mode=", 0) == 0) {
      consumer_mode = arg.substr(std::string("--consumer-mode=").size());
    } else if (arg.rfind("--ring=", 0) == 0) {
      ring = arg.substr(std::string("--ring=").size());
    }
  }
  if (consumer_mode != "event" && consumer_mode != "periodic") {
    std::fprintf(stderr, "--consumer-mode must be event or periodic\n");
    return 1;
  }
  if (ring != "mutex" && ring != "lockfree" && ring != "both") {
    std::fprintf(stderr, "--ring must be mutex or lockfree\n");
    return 1;
  }
  const bool event_consumers = consumer_mode == "event";
  // --publish-batch=0 (auto) gives each ring its intended posture: singles on
  // the mutex ring, 512-record arena batches on the lock-free ring. 512 and
  // not less because each batch post that finds the shard worker parked pays
  // a wake + context-switch round trip (~27us on a 1-core host); the batch
  // must amortize that fixed cost as well as the per-record savings.
  const auto batch_for = [publish_batch_flag](bool lockfree) {
    return publish_batch_flag != 0 ? publish_batch_flag : (lockfree ? 512 : 1);
  };
  const unsigned cores = std::thread::hardware_concurrency();
#ifdef PUBSUB_OBS_NOOP
  const bool noop_build = true;
#else
  const bool noop_build = false;
#endif

  if (smoke) {
    // CI perf gate: 1-shard publish-only A/B — mutex ring with singles vs
    // lock-free ring with its batched posture. Best-of-2 per side to absorb
    // scheduler noise on small CI hosts; a lock-free result below the mutex
    // baseline fails the build (the whole point of the new data plane).
    const auto best_of = [&](bool lockfree) {
      RunResult best;
      for (int rep = 0; rep < 2; ++rep) {
        RunResult r = RunOnce(1, producers, 0, 0, per_producer, false, event_consumers,
                              lockfree, batch_for(lockfree), /*publish_only=*/true);
        if (r.msgs_per_sec > best.msgs_per_sec) {
          best = r;
        }
      }
      return best;
    };
    std::printf("smoke: 1-shard publish-only A/B, %d producers x %d msgs\n", producers,
                per_producer);
    const RunResult mutex_r = best_of(false);
    const RunResult lockfree_r = best_of(true);
    const double gain = lockfree_r.msgs_per_sec / mutex_r.msgs_per_sec;
    std::printf("  mutex ring   (batch=%d): %.0f msgs/sec\n", mutex_r.publish_batch,
                mutex_r.msgs_per_sec);
    std::printf("  lockfree ring (batch=%d): %.0f msgs/sec  (%.2fx)\n",
                lockfree_r.publish_batch, lockfree_r.msgs_per_sec, gain);
    if (const auto json_path = bench::JsonPathFlag(argc, argv)) {
      bench::Json doc = bench::Json::Object();
      doc["bench"] = "bench_runtime_throughput_smoke";
      doc["hardware_concurrency"] = static_cast<std::int64_t>(cores);
      doc["mutex_msgs_per_sec"] = mutex_r.msgs_per_sec;
      doc["lockfree_msgs_per_sec"] = lockfree_r.msgs_per_sec;
      doc["lockfree_gain"] = gain;
      if (!doc.WriteFile(*json_path)) {
        std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
        return 1;
      }
    }
    if (lockfree_r.msgs_per_sec < mutex_r.msgs_per_sec) {
      std::fprintf(stderr,
                   "SMOKE FAIL: lock-free data plane (%.0f msgs/sec) regressed below the "
                   "mutex baseline (%.0f msgs/sec)\n",
                   lockfree_r.msgs_per_sec, mutex_r.msgs_per_sec);
      return 1;
    }
    std::printf("smoke PASS\n");
    return 0;
  }

  std::printf(
      "R1: runtime throughput scaling — %d producers x %d msgs, %d consumers (%s), %d watchers%s\n",
      producers, per_producer, consumers, consumer_mode.c_str(), watchers,
      trace ? (noop_build ? " [--trace, PUBSUB_OBS_NOOP build]" : " [--trace]") : "");
  if (arrival_rate > 0) {
    std::printf("load mode: open-loop, %.0f arrivals/sec offered, zipf theta %.2f "
                "(one attempt per arrival; rejections are loss)\n",
                arrival_rate, theta);
  }
  std::printf("host hardware_concurrency: %u%s\n", cores,
              cores < 4 ? " (scaling curve will be flat below 4 cores)" : "");

  std::vector<bool> rings;
  if (ring == "mutex") {
    rings = {false};
  } else if (ring == "lockfree") {
    rings = {true};
  } else {
    rings = {false, true};  // Default: measure both, tag each row.
  }
  const std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  std::vector<RunResult> results;
  for (const bool lockfree : rings) {
    for (const std::size_t shards : shard_counts) {
      results.push_back(RunOnce(shards, producers, consumers, watchers, per_producer, trace,
                                event_consumers, lockfree, batch_for(lockfree),
                                /*publish_only=*/false, arrival_rate, theta));
      const RunResult& r = results.back();
      std::printf("  %s/batch=%d, %zu shard(s): %.0f msgs/sec (%.2fs)\n",
                  lockfree ? "lockfree" : "mutex", r.publish_batch, shards, r.msgs_per_sec,
                  r.elapsed_sec);
    }
  }

  // Speedup is relative to the same ring's 1-shard run (shard-scaling, not
  // ring-vs-ring; the smoke A/B covers the latter).
  std::map<bool, double> base;
  for (const RunResult& r : results) {
    if (r.shards == 1) {
      base[r.lockfree] = r.msgs_per_sec;
    }
  }
  bench::Table table("Runtime throughput scaling (publish + ingest per message)",
                     {"ring", "batch", "shards", "msgs/sec", "p50_us", "p99_us", "delivered",
                      "consumed", "retries", "speedup", "efficiency"});
  for (const RunResult& r : results) {
    const double speedup = r.msgs_per_sec / base[r.lockfree];
    table.AddRow({r.lockfree ? "lockfree" : "mutex",
                  bench::I(static_cast<std::uint64_t>(r.publish_batch)), bench::I(r.shards),
                  bench::F(r.msgs_per_sec, 0), bench::F(r.p50_us, 1),
                  bench::F(r.p99_us, 1), bench::I(static_cast<std::uint64_t>(r.delivered)),
                  bench::I(static_cast<std::uint64_t>(r.consumed)),
                  bench::I(static_cast<std::uint64_t>(r.publish_retries + r.ingest_retries)),
                  bench::F(speedup, 2),
                  bench::F(speedup / static_cast<double>(r.shards), 2)});
  }
  table.Print();

  if (const auto json_path = bench::JsonPathFlag(argc, argv)) {
    bench::Json doc = bench::Json::Object();
    doc["bench"] = "bench_runtime_throughput";
    doc["hardware_concurrency"] = static_cast<std::int64_t>(cores);
    doc["traced"] = trace;
    doc["pubsub_obs_noop_build"] = noop_build;
    doc["producers"] = producers;
    doc["consumers"] = consumers;
    doc["consumer_mode"] = consumer_mode;
    doc["watchers"] = watchers;
    doc["messages_per_producer"] = per_producer;
    doc["load_mode"] = std::string(arrival_rate > 0 ? "open-loop" : "closed-loop");
    if (arrival_rate > 0) {
      doc["arrival_rate_per_sec"] = arrival_rate;
      doc["zipf_theta"] = theta;
      doc["methodology"] =
          "poisson virtual-time schedule (bench/loadgen.h), one attempt per "
          "arrival, rejections counted as loss; no coordinated omission";
    }
    bench::Json& runs = doc["runs"] = bench::Json::Array();
    for (const RunResult& r : results) {
      bench::Json& run = runs.Append(bench::Json::Object());
      run["ring"] = std::string(r.lockfree ? "lockfree" : "mutex");
      run["publish_batch"] = static_cast<std::int64_t>(r.publish_batch);
      run["shards"] = static_cast<std::int64_t>(r.shards);
      run["elapsed_sec"] = r.elapsed_sec;
      run["msgs_per_sec"] = r.msgs_per_sec;
      run["p50_us"] = r.p50_us;
      run["p99_us"] = r.p99_us;
      run["messages"] = r.messages;
      run["accepted"] = r.accepted;
      run["publish_losses"] = r.publish_losses;
      run["delivered"] = r.delivered;
      run["consumed"] = r.consumed;
      run["publish_retries"] = r.publish_retries;
      run["ingest_retries"] = r.ingest_retries;
      run["speedup_vs_1_shard"] = r.msgs_per_sec / base[r.lockfree];
      run["efficiency"] = r.msgs_per_sec / base[r.lockfree] / static_cast<double>(r.shards);
    }
    doc["table"] = bench::TableJson(table);
    if (!doc.WriteFile(*json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path->c_str());
  }

  std::printf(
      "\nShape check: accepted == appended on every run (the backpressure contract is\n"
      "loud, never lossy). Scaling toward the ROADMAP north star needs >= 4 hardware\n"
      "threads; below that the shards time-slice one core.\n");
  return 0;
}
