// Experiment E6 (paper §3.2.4, §4.3): work queueing and balancing.
//
// Entities have a desired and an actual state in the producer store; the job
// is to reconcile them. Two architectures:
//   pubsub  — desired changes are enqueued as task messages; a consumer group
//             of workers executes them (event-carried state);
//   watch   — workers own auto-sharded entity ranges, watch desired/actual,
//             and reconcile current state, highest priority first.
//
// Scenario: bulk low-priority churn + occasional urgent entities + a worker
// crash mid-run. Metrics: completions, convergence latency (p50/p99 overall
// and for urgent work), stuck entities, stale executions, warm-work ratio.
#include <cstdio>
#include <string>

#include "bench/table.h"
#include "cdc/feeds.h"
#include "common/rng.h"
#include "pubsub/broker.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"
#include "workqueue/pubsub_queue.h"
#include "workqueue/tracker.h"
#include "workqueue/watch_queue.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

constexpr std::uint64_t kEntities = 200;
constexpr std::uint32_t kWorkers = 4;
constexpr common::TimeMicros kRunFor = 13 * kSec;
constexpr common::TimeMicros kChangePeriod = 20 * kMs;  // 50 desired changes/s.

struct Result {
  std::uint64_t completed = 0;
  std::uint64_t stuck = 0;
  std::uint64_t stale_executions = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double urgent_p99_ms = 0;
  double warm_ratio = 0;
};

// Shared workload: mostly bulk priority-0 changes, every 25th entity urgent.
// The desired-state churn stops at t=13s — three seconds AFTER the worker
// crash — so changes issued into the crash window are the entities' final
// ones. Whether those entities ever reach their desired state is then purely
// a property of the work-distribution architecture.
template <typename CrashFn>
void Drive(sim::Simulator& sim, storage::MvccStore& store, CrashFn crash_worker) {
  common::Rng rng(41);
  std::uint64_t seq = 0;
  sim::PeriodicTask changer(&sim, kChangePeriod, [&] {
    const std::uint64_t entity = rng.Zipf(kEntities, 0.5);
    const bool urgent = seq % 25 == 24;
    store.Apply(workqueue::DesiredKey(entity),
                common::Mutation::Put(workqueue::EncodeDesired(
                    urgent ? 9 : 0, "cfg-" + std::to_string(seq))));
    ++seq;
  });
  sim.At(10 * kSec, crash_worker);
  sim.At(13 * kSec, [&changer] { changer.Stop(); });
  sim.RunUntil(kRunFor + 30 * kSec);  // Drain / reconcile.
}

Result Collect(const workqueue::ConvergenceTracker& tracker, std::uint64_t completed,
               std::uint64_t warm, std::uint64_t cold) {
  Result r;
  r.completed = completed;
  r.stuck = tracker.StuckEntities();
  r.stale_executions = tracker.stale_executions();
  r.p50_ms = tracker.latency_ms().Percentile(50);
  r.p99_ms = tracker.latency_ms().Percentile(99);
  auto it = tracker.latency_by_priority().find(9);
  r.urgent_p99_ms = it == tracker.latency_by_priority().end() ? 0 : it->second.Percentile(99);
  r.warm_ratio = warm + cold == 0
                     ? 0
                     : static_cast<double>(warm) / static_cast<double>(warm + cold);
  return r;
}

Result RunPubsub() {
  sim::Simulator sim(47);
  sim::Network net(&sim, {.base = 300, .jitter = 100});
  pubsub::Broker broker(&sim, &net, "broker", 200 * kMs);
  // A 5s group-session timeout (detecting the dead worker takes a while) over
  // a 2s task-retention window: the classic configuration gap of §3.1.
  broker.set_session_timeout(5 * kSec);
  (void)broker.CreateTopic("tasks",
                           {.partitions = 8, .retention = {.retention = 2 * kSec}});
  storage::MvccStore store("control");
  workqueue::ConvergenceTracker tracker(&sim, &store);
  workqueue::PubsubQueueOptions options;
  options.workers = kWorkers;
  options.costs = {.warm = 2 * kMs, .cold = 20 * kMs};
  options.consumer.poll_period = 2 * kMs;
  workqueue::PubsubWorkQueue queue(&sim, &net, &broker, "tasks", "workers", &store, options);
  sim.RunUntil(100 * kMs);

  Drive(sim, store, [&] {
    // Crash worker 0 permanently; the group rebalances after session timeout.
    net.SetUp(queue.WorkerNodes()[0], false);
  });
  return Collect(tracker, queue.tasks_completed(), queue.warm_hits(), queue.cold_misses());
}

Result RunWatch() {
  sim::Simulator sim(47);
  sim::Network net(&sim, {.base = 300, .jitter = 100});
  storage::MvccStore store("control");
  workqueue::ConvergenceTracker tracker(&sim, &store);
  watch::WatchSystem ws(&sim, &net, "snappy",
                        {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &ws, {.progress_period = 5 * kMs});
  watch::StoreSnapshotSource source(&store);
  sharding::AutoSharder sharder(&sim, &net, {.rebalance_period = 1 * kSec});
  workqueue::WatchQueueOptions options;
  options.workers = kWorkers;
  options.costs = {.warm = 2 * kMs, .cold = 20 * kMs};
  options.reconcile_period = 2 * kMs;
  workqueue::WatchWorkQueue queue(&sim, &net, &sharder, &ws, &source, &store, options);
  sim.RunUntil(200 * kMs);

  Drive(sim, store, [&] {
    net.SetUp(queue.WorkerNodes()[0], false);
    // The sharder's health pass reassigns the dead worker's ranges.
  });
  return Collect(tracker, queue.tasks_completed(), queue.warm_hits(), queue.cold_misses());
}

}  // namespace

int main() {
  std::printf("E6: work queueing and balancing (paper §3.2.4, §4.3)\n");
  std::printf(
      "%llu entities, %u workers (one crashes at t=10s; churn stops at 13s),\n"
      "50 changes/s incl. urgent, warm step 2ms vs cold 20ms\n",
      static_cast<unsigned long long>(kEntities), kWorkers);

  bench::Table table("Task queue (pubsub) vs reconciliation on watch",
                     {"architecture", "completed", "stuck", "stale_exec", "p50_ms", "p99_ms",
                      "urgent_p99_ms", "warm_ratio"});
  Result p = RunPubsub();
  table.AddRow({"pubsub-queue", bench::I(p.completed), bench::I(p.stuck),
                bench::I(p.stale_executions), bench::F(p.p50_ms, 0), bench::F(p.p99_ms, 0),
                bench::F(p.urgent_p99_ms, 0), bench::F(p.warm_ratio, 2)});
  Result w = RunWatch();
  table.AddRow({"watch-reconcile", bench::I(w.completed), bench::I(w.stuck),
                bench::I(w.stale_executions), bench::F(w.p50_ms, 0), bench::F(w.p99_ms, 0),
                bench::F(w.urgent_p99_ms, 0), bench::F(w.warm_ratio, 2)});
  table.Print();

  std::printf(
      "\nShape check: the pubsub queue executes stale configs, strands entities when tasks\n"
      "die with the crashed worker (stuck > 0), and cannot prioritize (urgent p99 tracks\n"
      "bulk p99). The watch coordinator executes only current state (0 stale terminal\n"
      "states), strands nothing (ranges move to the survivor), serves urgent work first,\n"
      "and keeps a higher warm ratio through range affinity.\n");
  return 0;
}
