// Machine-readable output for the experiment harness: a minimal JSON value
// type (insertion-ordered objects, deterministic number formatting) plus
// helpers to convert bench::Table rows and parse the shared --json=<path>
// flag. This starts the perf trajectory — benches emit the same results they
// print, as JSON a tracking script can diff run over run (BENCH_*.json at the
// repo root).
#ifndef BENCH_JSON_H_
#define BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/table.h"

namespace bench {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}                // NOLINT
  Json(double v) : kind_(Kind::kNumber), number_(v) {}          // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                 // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}        // NOLINT
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}       // NOLINT
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : Json(std::string(v)) {}                 // NOLINT

  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  // Object field access; inserts (preserving insertion order) when absent.
  Json& operator[](const std::string& key) {
    kind_ = Kind::kObject;
    for (auto& [k, v] : fields_) {
      if (k == key) {
        return v;
      }
    }
    fields_.emplace_back(key, Json());
    return fields_.back().second;
  }

  // Array append; returns the appended element for in-place building.
  Json& Append(Json value) {
    kind_ = Kind::kArray;
    items_.push_back(std::move(value));
    return items_.back();
  }

  std::string Dump(int indent = 2) const {
    std::string out;
    DumpTo(out, indent, 0);
    out += '\n';
    return out;
  }

  bool WriteFile(const std::string& path, int indent = 2) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    const std::string text = Dump(indent);
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static void Escape(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  static void FormatNumber(std::string& out, double v) {
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
      out += buf;
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
  }

  void DumpTo(std::string& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    switch (kind_) {
      case Kind::kNull: out += "null"; break;
      case Kind::kBool: out += bool_ ? "true" : "false"; break;
      case Kind::kNumber: FormatNumber(out, number_); break;
      case Kind::kString: Escape(out, string_); break;
      case Kind::kArray: {
        if (items_.empty()) {
          out += "[]";
          break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
          out += pad;
          items_[i].DumpTo(out, indent, depth + 1);
          out += i + 1 < items_.size() ? ",\n" : "\n";
        }
        out += close_pad + "]";
        break;
      }
      case Kind::kObject: {
        if (fields_.empty()) {
          out += "{}";
          break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
          out += pad;
          Escape(out, fields_[i].first);
          out += ": ";
          fields_[i].second.DumpTo(out, indent, depth + 1);
          out += i + 1 < fields_.size() ? ",\n" : "\n";
        }
        out += close_pad + "}";
        break;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

// A table as JSON: {"title": ..., "columns": [...], "rows": [{col: cell}]}.
// Cells stay strings — the table is the printed artifact; benches put typed
// numbers in their own JSON sections.
inline Json TableJson(const Table& table) {
  Json j = Json::Object();
  j["title"] = table.title();
  Json& cols = j["columns"] = Json::Array();
  for (const std::string& c : table.columns()) {
    cols.Append(c);
  }
  Json& rows = j["rows"] = Json::Array();
  for (const auto& row : table.rows()) {
    Json& r = rows.Append(Json::Object());
    for (std::size_t c = 0; c < table.columns().size(); ++c) {
      r[table.columns()[c]] = c < row.size() ? row[c] : "";
    }
  }
  return j;
}

// Shared --json=<path> flag: every bench that opts in writes its results to
// the given path in addition to printing tables.
inline std::optional<std::string> JsonPathFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      return arg.substr(7);
    }
  }
  return std::nullopt;
}

}  // namespace bench

#endif  // BENCH_JSON_H_
