#include "bench/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bench {

std::string RankKey(std::uint64_t rank) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%08llu", static_cast<unsigned long long>(rank));
  return std::string(buf);
}

std::vector<double> OverloadRateLadder(double capacity, int points) {
  points = std::max(points, 2);
  capacity = std::max(capacity, 1.0);
  // capacity/2 .. 4x capacity, geometric: the interesting knee (goodput
  // flattens, loss takes off) sits near 1x wherever the host puts it.
  const double lo = capacity / 2;
  const double hi = capacity * 4;
  const double step = std::pow(hi / lo, 1.0 / (points - 1));
  std::vector<double> rates;
  double r = lo;
  for (int i = 0; i < points; ++i, r *= step) {
    rates.push_back(std::floor(r));
  }
  return rates;
}

}  // namespace bench
