// Open-loop (arrival-rate-driven) load generation for the overload benches.
//
// Closed-loop drivers — N workers, each publishing as fast as the system
// lets them — cannot measure overload: when the system slows down, the
// drivers slow down WITH it, so offered load silently deflates to whatever
// the system can absorb and the latency numbers only sample the moments the
// system felt like serving. That feedback is the coordinated-omission trap:
// the worst intervals contribute the fewest samples.
//
// An OpenLoopGen severs the feedback. Arrivals follow a VIRTUAL-TIME
// schedule fixed by the offered rate before the system is ever touched:
// arrival i is due at schedule time D_i regardless of how long arrival i-1
// took to serve. The driver sleeps until D_i when ahead and fires
// immediately (without re-anchoring the schedule) when behind, so a stalled
// system faces a growing backlog of due arrivals — exactly what a real
// producer population does. Latency is charged from D_i, not from the send,
// so every microsecond a backlog adds is in the histogram.
//
// Key skew: NextRank() draws a Zipf(theta) rank in [0, key_space) — rank 0
// hottest — which the overload benches map onto keys both to route
// partitions and to feed the autosharder's hot-range detector.
//
// Determinism: the schedule and ranks derive only from (seed, rate, theta),
// never from the clock, so two runs against different systems offer
// byte-identical load.
#ifndef BENCH_LOADGEN_H_
#define BENCH_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bench {

struct LoadgenOptions {
  // Offered arrival rate for THIS generator, per second. Split the target
  // rate across producer threads (each with its own seeded generator).
  double rate_per_sec = 10000;
  // Poisson process (exponential inter-arrivals) when true; a fixed-interval
  // conveyor when false. Poisson is the default: bursts are part of offering
  // load honestly.
  bool poisson = true;
  // Zipf skew of NextRank(): 0 = uniform, ~0.9 = hot-key heavy (the classic
  // YCSB-ish setting), >1 = pathological single-key hotspot.
  double zipf_theta = 0.0;
  std::uint64_t key_space = 1024;
  std::uint64_t seed = 1;
};

class OpenLoopGen {
 public:
  explicit OpenLoopGen(LoadgenOptions options)
      : options_(options),
        rng_(options.seed),
        interval_us_(1e6 / (options.rate_per_sec > 0 ? options.rate_per_sec : 1)) {}

  // Virtual due time (microseconds since the schedule epoch) of the next
  // arrival. Strictly derived from the schedule — calling it late does not
  // shift later arrivals (no re-anchoring, no omission).
  std::int64_t NextDueUs() {
    next_due_us_ += options_.poisson ? rng_.Exponential(interval_us_) : interval_us_;
    return static_cast<std::int64_t>(next_due_us_);
  }

  // Zipf-skewed rank in [0, key_space); rank 0 is the hottest.
  std::uint64_t NextRank() { return rng_.Zipf(options_.key_space, options_.zipf_theta); }

  const LoadgenOptions& options() const { return options_; }

 private:
  LoadgenOptions options_;
  common::Rng rng_;
  double interval_us_;
  double next_due_us_ = 0;
};

// Stable rank -> key mapping shared by the overload benches: zero-padded so
// keys sort by rank and contiguous hot ranks form a contiguous hot key
// RANGE — the shape sharding/autosharder detects and splits.
std::string RankKey(std::uint64_t rank);

// A geometric ladder of offered rates straddling `capacity` (measured or
// estimated msgs/sec): from capacity/2 up past saturation to 4x capacity,
// `points` rungs. The overload sweep's x axis.
std::vector<double> OverloadRateLadder(double capacity, int points);

}  // namespace bench

#endif  // BENCH_LOADGEN_H_
