// Shared output helpers for the experiment harness. Each bench binary prints
// the table(s) a paper evaluation section would contain; EXPERIMENTS.md
// records the measured output against the paper's qualitative predictions.
#ifndef BENCH_TABLE_H_
#define BENCH_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace bench {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void Print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
    }
    std::printf("\n=== %s ===\n", title_.c_str());
    PrintRow(columns_, widths);
    std::string rule;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      rule += std::string(widths[c], '-');
      rule += (c + 1 < columns_.size()) ? "-+-" : "";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      if (c + 1 < widths.size()) {
        cell.resize(widths[c], ' ');  // Last column stays unpadded: no trailing spaces.
        line += cell;
        line += " | ";
      } else {
        line += cell;
      }
    }
    std::printf("%s\n", line.c_str());
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string F(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string I(std::uint64_t v) { return std::to_string(v); }
inline std::string B(bool v) { return v ? "yes" : "no"; }

}  // namespace bench

#endif  // BENCH_TABLE_H_
