// Example: the Figure 2 cache-invalidation race, step by step — and why the
// watch-based cache cannot have it.
//
// Scenario (paper §3.2.2): object x is reassigned from cache pod p_old to
// p_new by an auto-sharder. p_new learns about the reassignment before the
// pubsub system does, and fills the current value of x. When x is then
// updated, the pubsub system delivers (and the consumer group acknowledges)
// the invalidation at p_old. p_new never hears about it and serves the stale
// value forever.
//
// Build & run:  ./build/examples/cache_invalidation
#include <cstdio>

#include "cache/pubsub_cache.h"
#include "cache/watch_cache.h"
#include "cdc/feeds.h"
#include "pubsub/broker.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace {
constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

void Show(const char* who, const common::Result<common::Value>& got,
          const common::Value& truth) {
  if (got.ok()) {
    std::printf("  %-12s -> %-6s (store has %-6s) %s\n", who, got->c_str(), truth.c_str(),
                *got == truth ? "FRESH" : "** STALE **");
  } else {
    std::printf("  %-12s -> <%s>  (store has %s)\n", who, got.status().ToString().c_str(),
                truth.c_str());
  }
}
}  // namespace

int main() {
  std::printf("=== Part 1: pubsub-invalidated cache reproduces Figure 2 ===\n\n");
  {
    sim::Simulator sim(7);
    sim::Network net(&sim, {.base = 200, .jitter = 0});
    storage::MvccStore store("producer");
    pubsub::Broker broker(&sim, &net);
    (void)broker.CreateTopic("inval", {.partitions = 8});
    cdc::CdcPubsubFeed cdc_feed(&sim, &net, &store, nullptr, &broker, "inval");
    sharding::AutoSharder sharder(&sim, &net, {.rebalance_period = 60 * kSec});

    cache::PubsubCacheOptions opts;
    opts.pods = 2;
    opts.fill_latency = 0;
    opts.consumer.poll_period = 5 * kMs;
    cache::PubsubCacheFleet fleet(&sim, &net, &sharder, &store, &broker, "inval", "pods",
                                  opts);

    store.Apply("x", common::Mutation::Put("v1"));
    sim.RunUntil(200 * kMs);

    const sim::NodeId p_old = *sharder.Owner("x");
    const sim::NodeId p_new = fleet.PodNodes()[0] == p_old ? fleet.PodNodes()[1]
                                                           : fleet.PodNodes()[0];
    std::printf("x lives on %s; caching it there:\n", p_old.c_str());
    Show(p_old.c_str(), fleet.Get("x"), *store.GetLatest("x"));
    sim.RunUntil(300 * kMs);

    std::printf("\nThe auto-sharder moves x: %s -> %s. %s learns immediately and refills;\n"
                "the pubsub layer still routes x's invalidations to %s for a while.\n",
                p_old.c_str(), p_new.c_str(), p_new.c_str(), p_old.c_str());
    sharder.MoveShard("x", p_new);
    Show(p_new.c_str(), fleet.Get("x"), *store.GetLatest("x"));  // Fills v1.

    std::printf("\nNow x is updated to v2. The invalidation is consumed and ACKNOWLEDGED —\n"
                "by the wrong pod.\n");
    store.Apply("x", common::Mutation::Put("v2"));
    sim.RunUntil(5 * kSec);  // Plenty of time for everything to settle.

    std::printf("\nLong after all queues drained:\n");
    Show(p_new.c_str(), fleet.Get("x"), *store.GetLatest("x"));
    std::printf("\n  stale entries stranded: %llu (invalidations applied: %llu, "
                "consumed-without-effect: %llu)\n",
                static_cast<unsigned long long>(fleet.AuditStaleEntries()),
                static_cast<unsigned long long>(fleet.invalidations_applied()),
                static_cast<unsigned long long>(fleet.invalidations_ignored()));
  }

  std::printf("\n=== Part 2: the watch cache under the identical race ===\n\n");
  {
    sim::Simulator sim(7);
    sim::Network net(&sim, {.base = 200, .jitter = 0});
    storage::MvccStore store("producer");
    watch::WatchSystem snappy(&sim, &net, "snappy",
                              {.delivery_latency = 1 * kMs, .progress_period = 10 * kMs});
    cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &snappy, {.progress_period = 10 * kMs});
    watch::StoreSnapshotSource source(&store);
    sharding::AutoSharder sharder(&sim, &net, {.rebalance_period = 60 * kSec});
    cache::WatchCacheFleet fleet(&sim, &net, &sharder, &snappy, &source, &store, {.pods = 2});

    store.Apply("x", common::Mutation::Put("v1"));
    sim.RunUntil(200 * kMs);

    const sim::NodeId p_old = *sharder.Owner("x");
    const sim::NodeId p_new = fleet.PodNodes()[0] == p_old ? fleet.PodNodes()[1]
                                                           : fleet.PodNodes()[0];
    Show(p_old.c_str(), fleet.Get("x"), *store.GetLatest("x"));

    std::printf("\nSame move (%s -> %s), same concurrent update to v2.\n", p_old.c_str(),
                p_new.c_str());
    sharder.MoveShard("x", p_new);
    store.Apply("x", common::Mutation::Put("v2"));
    std::printf("During the handoff the new owner is honestly unavailable, not wrong:\n");
    Show(p_new.c_str(), fleet.Get("x"), *store.GetLatest("x"));

    sim.RunUntil(5 * kSec);
    std::printf("\nAfter the handoff completes (snapshot at acquire + own watch stream):\n");
    Show(p_new.c_str(), fleet.Get("x"), *store.GetLatest("x"));
    std::printf("\n  stale entries stranded: %llu\n",
                static_cast<unsigned long long>(fleet.AuditStaleEntries()));
  }

  std::printf("\nWhy: the watch cache's new owner does not depend on someone forwarding the\n"
              "right invalidation to the right pod at the right time. It reads a snapshot\n"
              "and subscribes to ITS OWN range from that version — the guarantee is end to\n"
              "end against the store (paper §4.4).\n");
  return 0;
}
