// Example: event ingestion and fanout (paper §2, §3.2.3, §4.3) — sensor
// events flow into an ingestion store and fan out to analytics consumers.
//
// The paper's §4.3 recipe: "the publisher exposes an ingestion store, e.g. a
// time-series database optimized for ingestion of events. [...] Producers
// insert events into the ingestion store. Consumers watch all or a portion of
// the key range of the database to learn about new events. They may also
// query the ingestion store to obtain state if needed."
//
// We run a fraud-detection consumer (full feed), a region-scoped alerting
// consumer (range watch), and knock the alerting consumer offline long enough
// that raw history ages out — then show it recovering exact state from the
// store, with an explicit signal.
//
// Build & run:  ./build/examples/event_fanout
#include <cstdio>

#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ingest_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/store_watch.h"

namespace {
constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;
}  // namespace

int main() {
  sim::Simulator sim(29);
  sim::Network net(&sim, {.base = 300, .jitter = 100});

  // The ingestion store: isolates the main application DB from ingest load
  // and risk (the role a pubsub topic played), but it IS a store: queryable,
  // with explicit retention that always keeps current state per key.
  storage::IngestStore events("sensor-events");
  watch::IngestStoreWatch watch_layer(&sim, &net, &events, "events-watch",
                                      {.window = {.max_events = 512},
                                       .delivery_latency = 1 * kMs,
                                       .progress_period = 20 * kMs});
  watch::IngestSnapshotSource source(&events);

  // Consumer 1: fraud detection wants EVERY event, promptly.
  std::uint64_t fraud_seen = 0;
  watch::MaterializedRange fraud(&sim, &watch_layer, &source, common::KeyRange::All(),
                                 {.resync_delay = 10 * kMs, .node = "fraud-svc", .net = &net});
  net.AddNode("fraud-svc");
  fraud.set_apply_hook([&fraud_seen](const common::ChangeEvent&) { ++fraud_seen; });
  fraud.Start();

  // Consumer 2: alerting for region "eu/" only — a range watch; it never
  // receives (or pays for) the rest of the feed.
  std::uint64_t eu_seen = 0;
  watch::MaterializedRange alerts(&sim, &watch_layer, &source,
                                  common::KeyRange{"eu/", "eu0"},
                                  {.resync_delay = 10 * kMs, .node = "alert-svc", .net = &net});
  net.AddNode("alert-svc");
  alerts.set_apply_hook([&eu_seen](const common::ChangeEvent&) { ++eu_seen; });
  alerts.Start();

  // Producers: sensors in two regions, 200 ev/s total; store retention 2s.
  std::uint64_t seq = 0;
  std::uint64_t eu_published = 0;
  common::Rng rng(31);
  sim::PeriodicTask sensors(&sim, 5 * kMs, [&] {
    const bool eu = rng.Bernoulli(0.4);
    eu_published += eu ? 1 : 0;
    events.Append((eu ? "eu/" : "us/") + std::string("sensor-") + std::to_string(seq % 50),
                  "reading-" + std::to_string(seq), sim.Now());
    ++seq;
  });
  sim::PeriodicTask retention(&sim, 250 * kMs,
                              [&] { events.RetainAfter(sim.Now() - 2 * kSec); });

  sim.RunUntil(2 * kSec);
  std::printf("t=2s   steady state: %llu events ingested; fraud saw %llu, eu-alerts saw "
              "%llu (of %llu eu)\n",
              static_cast<unsigned long long>(seq),
              static_cast<unsigned long long>(fraud_seen),
              static_cast<unsigned long long>(eu_seen),
              static_cast<unsigned long long>(eu_published));

  std::printf("\nt=2s   alert-svc goes down for 5s — far beyond the 2s raw-event "
              "retention...\n");
  net.SetUp("alert-svc", false);
  sim.RunUntil(7 * kSec);
  net.SetUp("alert-svc", true);
  sim.RunUntil(12 * kSec);
  sensors.Stop();
  sim.RunUntil(13 * kSec);

  const auto eu_state = alerts.LatestScan(common::KeyRange::All());
  auto truth = events.ScanLatest(common::KeyRange{"eu/", "eu0"});
  bool exact = eu_state.size() == truth.size();
  for (std::size_t i = 0; exact && i < truth.size(); ++i) {
    exact = eu_state[i].key == truth[i].key && eu_state[i].value == truth[i].payload;
  }
  std::printf("t=13s  alert-svc recovered: resyncs=%llu session_repairs=%llu\n",
              static_cast<unsigned long long>(alerts.resyncs()),
              static_cast<unsigned long long>(alerts.session_repairs()));
  std::printf("       its materialized eu/ state is %s with the ingestion store "
              "(%zu sensors)\n",
              exact ? "EXACT" : "DIVERGED (bug!)", eu_state.size());
  std::printf("       raw events it slept through were retained-out — but they were\n"
              "       STORE rows, so current state survived and the gap was signalled.\n");
  std::printf("\nContrast (§3.2.3): a pubsub topic with the same 2s retention would have\n"
              "garbage-collected those messages and told no one — see bench_backlog_gc\n"
              "and bench_ingestion_fanout for the measured comparison.\n");
  return 0;
}
