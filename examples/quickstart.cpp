// Quickstart: the storage + watch model in ~five minutes.
//
// This walks the paper's Section 4 end to end:
//   1. a producer store (MVCC, monotonic commit versions);
//   2. a standalone watch system fed through the Ingester contract;
//   3. a watcher using the Section 4.2.1 API: snapshot, watch(low, high,
//      version), onEvent / onProgress / onResync;
//   4. what happens when the watcher falls too far behind (resync — never
//      silent loss).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cdc/feeds.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace {

constexpr common::TimeMicros kMs = common::kMicrosPerMilli;

// A minimal watcher that implements the paper's WatchCallback interface
// directly (applications may instead use watch::MaterializedRange, which
// packages this whole protocol).
class PrintingWatcher : public watch::WatchCallback {
 public:
  void OnEvent(const watch::ChangeEvent& event) override {
    std::printf("  [watcher] onEvent   key=%-8s version=%llu %s\n", event.key.c_str(),
                static_cast<unsigned long long>(event.version),
                event.mutation.kind == common::MutationKind::kPut
                    ? ("value=" + event.mutation.value).c_str()
                    : "DELETE");
  }
  void OnProgress(const watch::ProgressEvent& event) override {
    std::printf("  [watcher] onProgress[%s, %s) complete up to version %llu\n",
                event.range.low.c_str(),
                event.range.unbounded_above() ? "+inf" : event.range.high.c_str(),
                static_cast<unsigned long long>(event.version));
  }
  void OnResync() override {
    std::printf("  [watcher] onResync  -> my version is no longer retained; I must read\n"
                "            a fresh snapshot from the store and watch again from there.\n");
    resyncs++;
  }

  int resyncs = 0;
};

}  // namespace

int main() {
  // Everything runs on a deterministic discrete-event simulator.
  sim::Simulator sim(/*seed=*/1);
  sim::Network net(&sim, {.base = 0, .jitter = 0});

  // 1. Producer storage: an MVCC store whose commits carry monotonic versions
  //    (the paper's "simplifying assumption" — TrueTime/TSO/gtid stand-ins).
  storage::MvccStore store("accounts-db");

  // 2. A standalone watch system ("Snappy"-style). Its state is SOFT: a
  //    bounded window of recent events plus a progress frontier. We keep the
  //    window tiny here so step 4 can demonstrate resync.
  watch::WatchSystem snappy(&sim, &net, "snappy",
                            {.window = {.max_events = 4},
                             .delivery_latency = 1 * kMs,
                             .progress_period = 10 * kMs});

  // 3. CDC feeds the store's commits into the watch system through the
  //    Ingester contract — two key-range shards, each with its own pipeline
  //    and range-scoped progress.
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &snappy,
                            {.shards = {{"", "m"}, {"m", ""}},
                             .base_latency = 1 * kMs,
                             .stagger = 2 * kMs,
                             .progress_period = 10 * kMs});

  std::printf("== 1. Write through the store; the watcher sees ordered change events ==\n");
  PrintingWatcher watcher;
  // Watch the whole key space from "the beginning" (version 0).
  auto handle = snappy.Watch("", "", common::kNoVersion, &watcher);

  store.Apply("alice", common::Mutation::Put("$20"));
  store.Apply("bob", common::Mutation::Put("$35"));
  sim.RunUntil(50 * kMs);

  std::printf("\n== 2. Transactions commit atomically at one version ==\n");
  storage::Transaction txn = store.Begin();
  txn.Put("alice", "$10");  // Alice pays Bob 10.
  txn.Put("bob", "$45");
  auto version = store.Commit(std::move(txn));
  std::printf("  committed transfer at version %llu\n",
              static_cast<unsigned long long>(*version));
  sim.RunUntil(100 * kMs);

  std::printf("\n== 3. Range watches only receive their keys ==\n");
  PrintingWatcher bob_only;
  auto bob_handle = snappy.Watch("bob", "bob\xff", snappy.MaxIngestedVersion(), &bob_only);
  store.Apply("alice", common::Mutation::Put("$5"));
  store.Apply("bob", common::Mutation::Put("$50"));
  sim.RunUntil(150 * kMs);

  std::printf("\n== 4. Falling behind the retained window is LOUD (resync), never silent ==\n");
  PrintingWatcher laggard;
  // Ask for history the 4-event window no longer retains:
  auto lag_handle = snappy.Watch("", "", common::kNoVersion, &laggard);
  sim.RunUntil(200 * kMs);

  std::printf("\n  Recovery: read a snapshot from the store, then watch from its version.\n");
  auto snapshot = store.Scan(common::KeyRange::All(), store.LatestVersion());
  for (const storage::Entry& e : *snapshot) {
    std::printf("  [snapshot] %s = %s (version %llu)\n", e.key.c_str(), e.value.c_str(),
                static_cast<unsigned long long>(e.version));
  }
  PrintingWatcher recovered;
  auto rec_handle = snappy.Watch("", "", store.LatestVersion(), &recovered);
  store.Apply("carol", common::Mutation::Put("$100"));
  sim.RunUntil(250 * kMs);

  std::printf("\nDone. The store remained the single source of truth throughout; the watch\n"
              "system carried only recoverable soft state.\n");
  return 0;
}
