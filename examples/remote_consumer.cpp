// Remote consumer: attaches to a running pubsubd from another process and
// replays the "events" topic through long-poll SUBSCRIBE streams.
//
// The subscription is event-driven end to end: the owner shard pushes each
// append into the session's handoff lane, the server's event loop turns it
// into a DELIVER frame, and Poll() here blocks on the socket — no busy
// polling between an append and this process printing it.
//
// Run against an already-serving publisher:
//   terminal 1:  ./build/examples/remote_publisher --serve-seconds=60
//   terminal 2:  ./build/examples/remote_consumer
//
// Flags: --host is fixed to 127.0.0.1; --port=7781 --from=0 --count=20
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"

namespace {

long Flag(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int port = static_cast<int>(Flag(argc, argv, "port", 7781));
  const pubsub::Offset from = static_cast<pubsub::Offset>(Flag(argc, argv, "from", 0));
  const long count = Flag(argc, argv, "count", 20);

  auto client = client::Client::Connect("127.0.0.1", port, {.client_name = "example-consumer"});
  if (!client.ok()) {
    std::fprintf(stderr,
                 "connect to 127.0.0.1:%d failed: %s\n"
                 "start a server first:  ./build/examples/remote_publisher "
                 "--port=%d --serve-seconds=60\n",
                 port, client.status().message().c_str(), port);
    return 1;
  }
  auto rtt = (*client)->Ping();
  std::printf("[consumer] connected to \"%s\" (ping %lld us)\n",
              (*client)->server_hello().server_name.c_str(),
              static_cast<long long>(rtt.ok() ? *rtt : -1));

  // One long-poll stream per partition, replaying from `from`. The server
  // pushes history first, then live appends as they happen.
  std::vector<std::unique_ptr<client::Subscription>> subs;
  for (pubsub::PartitionId p = 0; p < 2; ++p) {
    auto sub = (*client)->Subscribe("events", p, from);
    if (!sub.ok()) {
      std::fprintf(stderr, "subscribe events/%u: %s\n", static_cast<unsigned>(p),
                   sub.status().message().c_str());
      return 1;
    }
    subs.push_back(std::move(*sub));
  }

  long seen = 0;
  while (seen < count) {
    bool any = false;
    for (std::size_t p = 0; p < subs.size(); ++p) {
      std::vector<pubsub::StoredMessage> batch;
      // Short timeout per partition so one idle partition never starves the
      // other; the blocking happens down on the socket, not in a spin.
      if (subs[p]->Poll(&batch, 32, 200 * common::kMicrosPerMilli) == 0) {
        if (subs[p]->errored()) {
          std::fprintf(stderr, "stream %zu errored: %s\n", p, subs[p]->error().message.c_str());
          return 1;
        }
        continue;
      }
      any = true;
      for (const pubsub::StoredMessage& m : batch) {
        std::printf("[consumer] events/%zu offset=%llu key=%s value=%s\n", p,
                    static_cast<unsigned long long>(m.offset), m.message.key.c_str(),
                    m.message.value.c_str());
        if (++seen >= count) break;
      }
      if (seen >= count) break;
    }
    if (!any && (*client)->broken()) {
      std::fprintf(stderr, "connection lost after %ld messages\n", seen);
      return 1;
    }
  }
  std::printf("[consumer] done: %ld messages consumed\n", seen);
  return 0;
}
