// Remote publisher: a real multi-process deployment in one binary.
//
// This hosts the TCP front-end (server::Server, "pubsubd") over a started
// concurrent runtime, then talks to it the only way a remote process can —
// through client::Client over a real socket. Everything crosses the wire
// protocol: length-prefixed CRC-guarded frames, HELLO handshake, heartbeats,
// offset-acked publishes.
//
// Build & run (single terminal, publishes and exits):
//   ./build/examples/remote_publisher
//
// Two terminals (a real multi-process demo):
//   terminal 1:  ./build/examples/remote_publisher --serve-seconds=60
//   terminal 2:  ./build/examples/remote_consumer
//
// Flags: --port=7781 --messages=100 --serve-seconds=0
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "client/client.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"
#include "runtime/shard_pool.h"
#include "server/pubsubd.h"

namespace {

long Flag(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int port = static_cast<int>(Flag(argc, argv, "port", 7781));
  const long messages = Flag(argc, argv, "messages", 100);
  const long serve_seconds = Flag(argc, argv, "serve-seconds", 0);

  // 1. The server side: a started shard pool with its concurrent broker and
  //    watch service, fronted by the poll-driven TCP daemon.
  runtime::ShardPool pool{runtime::RuntimeOptions{}};
  runtime::ConcurrentBroker broker(&pool);
  runtime::ConcurrentWatchService watch(&pool);
  pool.Start();

  server::ServerOptions so;
  so.port = port;
  so.name = "example-pubsubd";
  server::Server server(&broker, &watch, &pool.metrics(), so);
  if (common::Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s (is port %d taken?)\n",
                 st.message().c_str(), port);
    pool.Stop();
    return 1;
  }
  std::printf("[server] pubsubd listening on 127.0.0.1:%d\n", server.port());

  // 2. The remote side: a client over a real TCP connection. Connect()
  //    performs the HELLO handshake and starts the keepalive heartbeat.
  auto client = client::Client::Connect("127.0.0.1", server.port(),
                                        {.client_name = "example-publisher"});
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", client.status().message().c_str());
    server.Stop();
    pool.Stop();
    return 1;
  }
  std::printf("[client] connected; server says it is \"%s\" (heartbeat every %lld ms)\n",
              (*client)->server_hello().server_name.c_str(),
              static_cast<long long>((*client)->server_hello().heartbeat_interval_us /
                                     common::kMicrosPerMilli));

  if (common::Status st = (*client)->CreateTopic("events", {.partitions = 2}); !st.ok()) {
    std::fprintf(stderr, "create topic: %s\n", st.message().c_str());
    return 1;
  }

  // 3. Offset-acked publishes: each call returns only once the owner shard
  //    has appended the record and the assigned offset has crossed back over
  //    the wire. An ack therefore means "durably in the log".
  for (long i = 0; i < messages; ++i) {
    pubsub::PublishResult pr;
    common::Status st = (*client)->Publish("events", "sensor-" + std::to_string(i % 8),
                                           "reading=" + std::to_string(i),
                                           /*partition=*/std::nullopt,
                                           net::PublishAck::kOffset, &pr);
    if (!st.ok()) {
      std::fprintf(stderr, "publish %ld failed: %s\n", i, st.message().c_str());
      return 1;
    }
    if (i < 3 || i == messages - 1) {
      std::printf("[client] publish #%ld acked at partition %llu offset %llu\n", i,
                  static_cast<unsigned long long>(pr.partition),
                  static_cast<unsigned long long>(pr.offset));
    } else if (i == 3) {
      std::printf("[client] ... (%ld more)\n", messages - 4);
    }
  }
  std::printf("[client] %ld publishes acked\n", messages);

  // 4. Optionally keep serving so a remote_consumer in another process can
  //    attach and replay the log.
  if (serve_seconds > 0) {
    std::printf("[server] serving for %lds — run ./build/examples/remote_consumer "
                "--port=%d in another terminal\n",
                serve_seconds, server.port());
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }

  client->reset();  // GOODBYE, then close.
  server.Stop();    // Before the pool: teardown posts to shard queues.
  pool.Stop();
  std::printf("[server] clean shutdown\n");
  return 0;
}
