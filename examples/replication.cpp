// Example: replicating a source store into a target store — the paper's
// §3.2.1 scenario, including the membership/ACL anomaly.
//
// The source removes mallory from group "eng" and THEN grants eng access to a
// secret document. A partitioned pubsub replicator applies the two changes on
// different partitions, so the target can transiently show a state that never
// existed: mallory in the group AND the group allowed. The watch replicator
// applies changes at progress frontiers, so the target only ever externalizes
// states the source actually passed through.
//
// Build & run:  ./build/examples/replication
#include <cstdio>

#include "cdc/feeds.h"
#include "pubsub/broker.h"
#include "replication/checker.h"
#include "replication/pubsub_replicator.h"
#include "replication/target_store.h"
#include "replication/watch_replicator.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"

namespace {
constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

const char kMember[] = "group/eng/member/mallory";
const char kAcl[] = "doc/secret/acl";

void RunScenario(sim::Simulator& sim, storage::MvccStore& source, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    storage::Transaction setup = source.Begin();
    setup.Put(kMember, "IN");
    setup.Put(kAcl, "eng:DENY");
    (void)source.Commit(std::move(setup));
    sim.RunUntil(sim.Now() + 15 * kMs);
    // The security-critical order: revoke membership FIRST...
    source.Apply(kMember, common::Mutation::Put("OUT"));
    // ...and only then open up the document.
    source.Apply(kAcl, common::Mutation::Put("eng:ALLOW"));
    sim.RunUntil(sim.Now() + 15 * kMs);
  }
}
}  // namespace

int main() {
  std::printf("=== Part 1: partitioned pubsub replication tears the ordering ===\n\n");
  {
    sim::Simulator sim(11);
    sim::Network net(&sim, {.base = 200, .jitter = 0});
    pubsub::Broker broker(&sim, &net);
    (void)broker.CreateTopic("cdc", {.partitions = 8});
    storage::MvccStore source("source-db");
    replication::SourceHistory history(&source);
    cdc::CdcPubsubFeed feed(&sim, &net, &source, nullptr, &broker, "cdc");

    replication::TargetStore target;
    replication::PointInTimeChecker pit(&history, &target);
    replication::AclInvariantChecker acl(&target, kMember, "IN", kAcl, "eng:ALLOW");
    replication::PubsubReplicatorOptions opts;
    opts.appliers = 4;
    opts.consumer.poll_period = 3 * kMs;
    replication::PubsubReplicator replicator(&sim, &net, &broker, "cdc", "appliers", &target,
                                             replication::PubsubReplicationMode::kPartitioned,
                                             opts);
    sim.RunUntil(100 * kMs);
    RunScenario(sim, source, 30);
    sim.RunUntil(sim.Now() + 3 * kSec);

    std::printf("  target converged to source:   %s\n", pit.Converged(target) ? "yes" : "no");
    std::printf("  states that never existed:    %llu of %llu externalized\n",
                static_cast<unsigned long long>(pit.anomalies()),
                static_cast<unsigned long long>(pit.externalized()));
    std::printf("  ACL invariant violations:     %llu  <- mallory could read the secret\n",
                static_cast<unsigned long long>(acl.violations()));
  }

  std::printf("\n=== Part 2: watch replication with frontier-atomic application ===\n\n");
  {
    sim::Simulator sim(11);
    sim::Network net(&sim, {.base = 200, .jitter = 0});
    storage::MvccStore source("source-db");
    replication::SourceHistory history(&source);
    watch::WatchSystem snappy(&sim, &net, "snappy",
                              {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
    cdc::CdcIngesterFeed feed(&sim, &source, nullptr, &snappy,
                              {.shards = {{"", "g"}, {"g", "m"}, {"m", ""}},
                               .base_latency = 1 * kMs,
                               .stagger = 2 * kMs,
                               .progress_period = 5 * kMs});
    watch::StoreSnapshotSource snap(&source);

    replication::TargetStore target;
    replication::PointInTimeChecker pit(&history, &target);
    replication::AclInvariantChecker acl(&target, kMember, "IN", kAcl, "eng:ALLOW");
    replication::WatchReplicator replicator(&sim, &snappy, &snap, &target,
                                            {{"", "g"}, {"g", "m"}, {"m", ""}});
    replicator.Start();
    sim.RunUntil(100 * kMs);
    RunScenario(sim, source, 30);
    sim.RunUntil(sim.Now() + 3 * kSec);

    std::printf("  target converged to source:   %s\n", pit.Converged(target) ? "yes" : "no");
    std::printf("  states that never existed:    %llu of %llu externalized\n",
                static_cast<unsigned long long>(pit.anomalies()),
                static_cast<unsigned long long>(pit.externalized()));
    std::printf("  ACL invariant violations:     %llu\n",
                static_cast<unsigned long long>(acl.violations()));
    std::printf("  events flowed over 3 independent shard pipelines; application waited\n"
                "  for the cross-range progress frontier before externalizing.\n");
  }

  std::printf("\nThe point (paper §4.4): ordering at the pubsub layer is the wrong layer.\n"
              "Range-scoped progress against the source's version order gives the target\n"
              "end-to-end snapshot consistency without serializing ingest.\n");
  return 0;
}
