// Example: knowledge regions, drawn live — Figure 5 of the paper.
//
// Three watchers materialize three key-range shards whose CDC pipelines run
// at different speeds, so each knows its range over a different version
// window (the blue rectangles). A read spanning all three ranges can be
// served snapshot-consistently at any version inside the INTERSECTION of the
// windows — the green box — stitched across watchers.
//
// Build & run:  ./build/examples/snapshot_stitching
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cdc/feeds.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/knowledge.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace {
constexpr common::TimeMicros kMs = common::kMicrosPerMilli;

// Draws each watcher's knowledge windows as rows of a version axis, plus the
// stitchable intersection.
void Draw(const std::vector<std::unique_ptr<watch::MaterializedRange>>& fleet,
          common::Version latest) {
  const common::Version axis_lo = latest > 60 ? latest - 60 : 0;
  auto bar = [axis_lo, latest](const watch::WindowSet& windows, char fill) {
    std::string line(static_cast<std::size_t>(latest - axis_lo) + 1, '.');
    for (const watch::VersionWindow& w : windows) {
      for (common::Version v = std::max(w.low, axis_lo); v <= std::min(w.high, latest); ++v) {
        line[static_cast<std::size_t>(v - axis_lo)] = fill;
      }
    }
    return line;
  };
  std::printf("  %-14s %-3llu%*s%llu\n", "version axis", static_cast<unsigned long long>(axis_lo),
              static_cast<int>(latest - axis_lo) - 5, "",
              static_cast<unsigned long long>(latest));
  std::vector<const watch::KnowledgeMap*> maps;
  for (const auto& mr : fleet) {
    maps.push_back(&mr->knowledge());
    const watch::WindowSet windows = mr->knowledge().ServableWindows(mr->range());
    const std::string label = "[" + mr->range().low + "," +
                              (mr->range().unbounded_above() ? "+inf" : mr->range().high) +
                              ")";
    std::printf("  %-14s %s\n", label.c_str(), bar(windows, '#').c_str());
  }
  const watch::WindowSet green =
      watch::KnowledgeMap::StitchableWindows(maps, common::KeyRange::All());
  std::printf("  %-14s %s\n", "green box", bar(green, 'G').c_str());
  auto best = watch::MaxOf(green);
  if (best.has_value()) {
    std::printf("  => a snapshot of the WHOLE key space is servable at any 'G' version; "
                "best = %llu\n",
                static_cast<unsigned long long>(*best));
  } else {
    std::printf("  => no common version yet; a spanning snapshot read would wait or "
                "fall back to the store\n");
  }
}
}  // namespace

int main() {
  sim::Simulator sim(17);
  sim::Network net(&sim, {.base = 0, .jitter = 0});
  storage::MvccStore store("source");

  // Three CDC shards with very different pipeline latencies: a fast one, a
  // medium one, and a laggard.
  watch::WatchSystem snappy(&sim, &net, "snappy",
                            {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &store, nullptr, &snappy,
                            {.shards = {{"", "h"}, {"h", "p"}, {"p", ""}},
                             .base_latency = 1 * kMs,
                             .stagger = 25 * kMs,  // Shard 2 runs 50ms behind shard 0.
                             .progress_period = 5 * kMs});
  watch::StoreSnapshotSource source(&store);

  std::vector<std::unique_ptr<watch::MaterializedRange>> fleet;
  for (const common::KeyRange& r :
       {common::KeyRange{"", "h"}, common::KeyRange{"h", "p"}, common::KeyRange{"p", ""}}) {
    auto mr = std::make_unique<watch::MaterializedRange>(
        &sim, &snappy, &source, r, watch::MaterializedOptions{.resync_delay = 2 * kMs});
    mr->Start();
    fleet.push_back(std::move(mr));
  }
  sim.RunUntil(100 * kMs);

  // Continuous writes across all three ranges.
  common::Rng rng(23);
  sim::PeriodicTask writer(&sim, 2 * kMs, [&] {
    static const char* prefixes[] = {"a", "k", "t"};
    store.Apply(std::string(prefixes[rng.Below(3)]) + "-" + std::to_string(rng.Below(20)),
                common::Mutation::Put("v" + std::to_string(sim.Now() / kMs)));
  });
  sim.RunUntil(400 * kMs);

  std::printf("Figure 5, live: '#' = versions a watcher can serve for its range;\n"
              "'G' = versions where ALL ranges can be stitched into one snapshot.\n\n");
  Draw(fleet, store.LatestVersion());

  std::printf("\nReading the stitched snapshot and verifying it against the store:\n");
  std::vector<const watch::KnowledgeMap*> maps;
  for (const auto& mr : fleet) {
    maps.push_back(&mr->knowledge());
  }
  auto version =
      watch::KnowledgeMap::MaxStitchableVersion(maps, common::KeyRange::All());
  if (version.has_value()) {
    std::size_t entries = 0;
    bool exact = true;
    for (const auto& mr : fleet) {
      auto part = mr->SnapshotScan(mr->range(), *version);
      if (!part.ok()) {
        exact = false;
        continue;
      }
      auto truth = store.Scan(mr->range(), *version);
      exact = exact && truth.ok() && part->size() == truth->size();
      for (std::size_t i = 0; exact && i < part->size(); ++i) {
        exact = (*part)[i].key == (*truth)[i].key && (*part)[i].value == (*truth)[i].value;
      }
      entries += part->size();
    }
    std::printf("  stitched %zu entries at version %llu: %s\n", entries,
                static_cast<unsigned long long>(*version),
                exact ? "EXACT match with the store's snapshot" : "MISMATCH (bug!)");
  }

  std::printf("\nNow the laggard's pipeline stalls completely for a while...\n");
  // Stall shard 2's watcher by partitioning it away... simplest: stop writing
  // to it and watch the green box shrink toward the laggard's frontier.
  sim.RunUntil(600 * kMs);
  Draw(fleet, store.LatestVersion());
  writer.Stop();
  sim.RunUntil(1000 * kMs);
  std::printf("\nAfter the writers stop, everyone catches up and the boxes align:\n\n");
  Draw(fleet, store.LatestVersion());
  return 0;
}
