// Example: the paper's VM-provisioning coordinator (§4.3), built as a
// watch-based reconciliation loop.
//
// "This coordinator service's goal is to ensure that every workload is
//  running on some set of virtual machines. [...] By watching both the
//  desired configuration (which workloads should be running) and the actual
//  configuration (the states of the available VMs and allocations of work),
//  the coordinator can correctly advance the actual state to the desired
//  configuration."
//
// We provision workloads, change our minds mid-flight, and crash a worker —
// and the fleet still converges, because work is derived from CURRENT state,
// not from a queue of stale task events.
//
// Build & run:  ./build/examples/work_coordinator
#include <cstdio>

#include "cdc/feeds.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/watch_system.h"
#include "workqueue/tracker.h"
#include "workqueue/types.h"
#include "workqueue/watch_queue.h"

namespace {
constexpr common::TimeMicros kMs = common::kMicrosPerMilli;
constexpr common::TimeMicros kSec = common::kMicrosPerSecond;

void PrintFleet(const storage::MvccStore& store, std::uint64_t n) {
  std::printf("  %-10s %-24s %-24s %s\n", "workload", "desired", "actual", "status");
  for (std::uint64_t id = 0; id < n; ++id) {
    auto desired_raw = store.GetLatest(workqueue::DesiredKey(id));
    auto actual = store.GetLatest(workqueue::ActualKey(id));
    if (!desired_raw.ok()) {
      continue;
    }
    auto desired = workqueue::DecodeDesired(*desired_raw);
    const std::string want = desired.has_value() ? desired->config : "?";
    const std::string have = actual.ok() ? *actual : "<unprovisioned>";
    std::printf("  %-10llu %-24s %-24s %s\n", static_cast<unsigned long long>(id),
                want.c_str(), have.c_str(), want == have ? "READY" : "converging...");
  }
}
}  // namespace

int main() {
  sim::Simulator sim(5);
  sim::Network net(&sim, {.base = 300, .jitter = 100});

  // The control-plane database holds both tables the coordinator watches:
  // ent/<id>/desired (what should run) and ent/<id>/actual (what does run).
  storage::MvccStore control("control-plane-db");
  workqueue::ConvergenceTracker tracker(&sim, &control);

  watch::WatchSystem snappy(&sim, &net, "snappy",
                            {.delivery_latency = 1 * kMs, .progress_period = 5 * kMs});
  cdc::CdcIngesterFeed feed(&sim, &control, nullptr, &snappy, {.progress_period = 5 * kMs});
  watch::StoreSnapshotSource source(&control);

  // Three coordinator workers own dynamically sharded ranges of workloads.
  sharding::AutoSharder sharder(&sim, &net, {.rebalance_period = 1 * kSec});
  workqueue::WatchQueueOptions opts;
  opts.workers = 3;
  opts.costs = {.warm = 5 * kMs, .cold = 30 * kMs};  // "Acquire VMs, bootstrap, start".
  opts.reconcile_period = 3 * kMs;
  workqueue::WatchWorkQueue coordinator(&sim, &net, &sharder, &snappy, &source, &control,
                                        opts);
  sim.RunUntil(300 * kMs);

  std::printf("== t=0.3s: operator requests 6 workloads (one urgent) ==\n");
  for (std::uint64_t id = 0; id < 6; ++id) {
    const bool urgent = id == 3;
    control.Apply(workqueue::DesiredKey(id),
                  common::Mutation::Put(workqueue::EncodeDesired(
                      urgent ? 9 : 1, urgent ? "vms=8,tier=gold" : "vms=2,tier=std")));
  }
  PrintFleet(control, 6);

  sim.RunUntil(2 * kSec);
  std::printf("\n== t=2s: the fleet has reconciled ==\n");
  PrintFleet(control, 6);

  std::printf("\n== t=2s: operator resizes workload 1 while worker-0 CRASHES ==\n");
  control.Apply(workqueue::DesiredKey(1),
                common::Mutation::Put(workqueue::EncodeDesired(1, "vms=16,tier=std")));
  net.SetUp(coordinator.WorkerNodes()[0], false);
  std::printf("  (killed %s; the auto-sharder will hand its workloads to the survivors)\n",
              coordinator.WorkerNodes()[0].c_str());

  sim.RunUntil(8 * kSec);
  std::printf("\n== t=8s: reconciled again, two workers doing three workers' ranges ==\n");
  PrintFleet(control, 6);

  std::printf("\n== scale-down: desired can also shrink; reconciliation is symmetric ==\n");
  control.Apply(workqueue::DesiredKey(3),
                common::Mutation::Put(workqueue::EncodeDesired(1, "vms=1,tier=std")));
  sim.RunUntil(12 * kSec);
  PrintFleet(control, 6);

  std::printf("\nSummary: %llu reconciliation steps executed, %llu workloads stuck, "
              "%llu stale steps,\nconvergence p99 = %.0f ms.\n",
              static_cast<unsigned long long>(coordinator.tasks_completed()),
              static_cast<unsigned long long>(tracker.StuckEntities()),
              static_cast<unsigned long long>(tracker.stale_executions()),
              tracker.latency_ms().Percentile(99));
  std::printf("\nNo task queue, no dead letters, no manual replays: the desired/actual\n"
              "tables plus watch ARE the work queue (paper §4.3).\n");
  return 0;
}
