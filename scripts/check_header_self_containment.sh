#!/usr/bin/env bash
# Header self-containment (IWYU-lite) check: every header under src/ must
# compile on its own, so no header depends on what its includer happened to
# include first. Each header is compiled as a standalone translation unit.
#
# Usage: scripts/check_header_self_containment.sh [compiler]
# Exits non-zero listing every header that fails; quiet on success.
set -u

cd "$(dirname "$0")/.."

CXX="${1:-${CXX:-c++}}"
STD="-std=c++20"
INCLUDES="-Isrc"

failures=0
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

while IFS= read -r header; do
  tu="$tmpdir/tu.cc"
  printf '#include "%s"\n' "${header#src/}" > "$tu"
  if ! out=$("$CXX" $STD $INCLUDES -fsyntax-only "$tu" 2>&1); then
    echo "NOT SELF-CONTAINED: $header"
    echo "$out" | head -n 15
    failures=$((failures + 1))
  fi
done < <(find src -name '*.h' | sort)

if [ "$failures" -ne 0 ]; then
  echo "$failures header(s) are not self-contained"
  exit 1
fi
echo "all src/ headers are self-contained"
