#!/usr/bin/env bash
# Tracing overhead: traced normal build vs -DPUBSUB_OBS_NOOP build of
# bench_runtime_throughput, interleaved reps, median-of-pair deltas.
#
#   scripts/measure_tracing_overhead.sh [normal_build_dir] [noop_build_dir] [reps]
#
# Both build dirs must already contain bench/bench_runtime_throughput (the
# noop dir configured with -DPUBSUB_OBS_NOOP=ON). Runs the two binaries back
# to back so each pair sees the same host conditions, extracts the per-shard
# msgs/sec, and reports the median over all (shard, rep) pairs of the
# traced-vs-noop throughput delta. Exits nonzero above the 5% acceptance bar.
set -euo pipefail

NORMAL="${1:-build}"
NOOP="${2:-build-noop}"
REPS="${3:-5}"

for d in "$NORMAL" "$NOOP"; do
  if [[ ! -x "$d/bench/bench_runtime_throughput" ]]; then
    echo "missing $d/bench/bench_runtime_throughput (configure + build first)" >&2
    exit 2
  fi
done

run() { # run <build_dir> -> one "shards msgs_per_sec" pair per line
  "$1/bench/bench_runtime_throughput" --trace --messages=10000 2>/dev/null |
    sed -n 's/^  \([0-9]*\) shard(s): \([0-9]*\) msgs\/sec.*/\1 \2/p'
}

pairs_file="$(mktemp)"
trap 'rm -f "$pairs_file"' EXIT
# Alternate which binary runs first so slow host drift (thermal throttling,
# background load) cancels instead of biasing one side.
for ((r = 0; r < REPS; ++r)); do
  if ((r % 2 == 0)); then
    paste <(run "$NORMAL") <(run "$NOOP") >> "$pairs_file"
  else
    paste <(run "$NOOP") <(run "$NORMAL") >> "$pairs_file.swapped"
  fi
done
if [[ -s "$pairs_file.swapped" ]]; then
  awk '{ print $3, $4, $1, $2 }' "$pairs_file.swapped" >> "$pairs_file"
  rm -f "$pairs_file.swapped"
fi

deltas_file="$(mktemp)"
trap 'rm -f "$pairs_file" "$deltas_file"' EXIT
awk '
  $1 != $3 { print "shard-count mismatch between runs" > "/dev/stderr"; exit 2 }
  { delta = ($4 - $2) / $4 * 100.0; print delta
    printf "  %s shards: traced %s vs noop %s msgs/sec (delta %.1f%%)\n", $1, $2, $4, delta \
      > "/dev/stderr" }' "$pairs_file" | sort -n > "$deltas_file"

# Median of the sorted per-pair deltas (portable awk: no asort).
median="$(awk '{ v[NR] = $1 } END {
  if (NR == 0) exit 2
  if (NR % 2) print v[int(NR/2) + 1]; else print (v[NR/2] + v[NR/2 + 1]) / 2.0
}' "$deltas_file")"
printf 'tracing overhead (median of %d pairs, traced vs PUBSUB_OBS_NOOP build): %.1f%%\n' \
  "$(wc -l < "$deltas_file")" "$median"
awk -v m="$median" 'BEGIN { exit (m <= 5.0) ? 0 : 1 }'
