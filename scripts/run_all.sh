#!/usr/bin/env bash
# Builds everything, runs the full test suite, every experiment, and every
# example. Usage: scripts/run_all.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure
for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done
for e in "$BUILD"/examples/*; do
  [ -x "$e" ] && [ -f "$e" ] && "$e"
done
