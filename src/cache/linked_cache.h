// LinkedCache: a client-side look-aside cache that speaks the watch protocol
// — the paper's "applications ... may leverage linked caches similar to [2]
// that speak that protocol" (§4.2.1, citing Adya et al., "Fast key-value
// stores", HotOS '19).
//
// Each cached entry is *linked*: on fill, the client reads the value from the
// store and opens a watch on exactly that key from the read version. The
// entry then stays correct forever — updates and deletes stream in, a resync
// (or broken session) invalidates just that entry, and LRU eviction closes
// the link. Unlike a TTL cache there is no freshness/efficiency dial to
// mis-set, and unlike pubsub invalidation there is no routing race: the link
// is end-to-end between this client and the store's version order.
#ifndef SRC_CACHE_LINKED_CACHE_H_
#define SRC_CACHE_LINKED_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/status.h"
#include "common/types.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/api.h"

namespace cache {

struct LinkedCacheOptions {
  std::size_t capacity = 1024;  // Entries; LRU beyond this.
  // The network identity of this client ("" = co-located).
  sim::NodeId node;
};

class LinkedCache {
 public:
  LinkedCache(sim::Simulator* sim, watch::NodeAwareWatchable* watchable,
              const storage::MvccStore* store, LinkedCacheOptions options = {})
      : sim_(sim), watchable_(watchable), store_(store), options_(options) {}

  LinkedCache(const LinkedCache&) = delete;
  LinkedCache& operator=(const LinkedCache&) = delete;

  // Serves from cache when the entry's link is live; otherwise reads the
  // store, installs the entry, and links it.
  common::Result<common::Value> Get(const common::Key& key) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second->handle->active()) {
      Touch(it->second.get());
      ++hits_;
      if (!it->second->value.has_value()) {
        return common::Status::NotFound("cached absence");
      }
      return *it->second->value;
    }
    if (it != entries_.end()) {
      Erase(it);  // Link died (resync / break): the value is untrusted.
    }
    ++misses_;
    // Fill: read the current value AND the store version, then link from
    // that version so no update can fall between the read and the watch.
    const common::Version version = store_->LatestVersion();
    auto value = store_->Get(key, version);
    if (!value.ok() && value.status().code() != common::StatusCode::kNotFound) {
      return value.status();
    }
    Install(key, value.ok() ? std::optional<common::Value>(*value) : std::nullopt, version);
    if (!value.ok()) {
      return common::Status::NotFound(key);
    }
    return *value;
  }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t invalidation_updates() const { return invalidation_updates_; }
  std::uint64_t links_dropped() const { return links_dropped_; }

  bool IsLinked(const common::Key& key) const {
    auto it = entries_.find(key);
    return it != entries_.end() && it->second->handle->active();
  }

 private:
  struct Entry;

  // Per-entry watch callback: routes events for exactly one key.
  class Link : public watch::WatchCallback {
   public:
    Link(LinkedCache* owner, Entry* entry) : owner_(owner), entry_(entry) {}

    void OnEvent(const watch::ChangeEvent& event) override {
      owner_->OnEntryEvent(entry_, event);
    }
    void OnProgress(const watch::ProgressEvent&) override {}
    void OnResync() override { owner_->OnEntryResync(entry_); }

   private:
    LinkedCache* owner_;
    Entry* entry_;
  };

  struct Entry {
    common::Key key;
    std::optional<common::Value> value;  // nullopt: known-absent.
    std::unique_ptr<Link> link;
    std::unique_ptr<watch::WatchHandle> handle;
    std::list<common::Key>::iterator lru_pos;
  };

  void Install(const common::Key& key, std::optional<common::Value> value,
               common::Version version) {
    auto entry = std::make_unique<Entry>();
    entry->key = key;
    entry->value = std::move(value);
    entry->link = std::make_unique<Link>(this, entry.get());
    entry->handle = watchable_->WatchFrom(common::KeyRange::Single(key).low,
                                          common::KeyRange::Single(key).high, version,
                                          entry->link.get(), options_.node);
    lru_.push_front(key);
    entry->lru_pos = lru_.begin();
    entries_[key] = std::move(entry);
    while (entries_.size() > options_.capacity) {
      auto victim = entries_.find(lru_.back());
      Erase(victim);
    }
  }

  void Touch(Entry* entry) {
    lru_.erase(entry->lru_pos);
    lru_.push_front(entry->key);
    entry->lru_pos = lru_.begin();
  }

  void Erase(std::map<common::Key, std::unique_ptr<Entry>>::iterator it) {
    it->second->handle->Cancel();
    lru_.erase(it->second->lru_pos);
    entries_.erase(it);
  }

  void OnEntryEvent(Entry* entry, const watch::ChangeEvent& event) {
    if (event.mutation.kind == common::MutationKind::kPut) {
      entry->value = event.mutation.value;
    } else {
      entry->value = std::nullopt;  // Cache the absence; the link keeps it honest.
    }
    ++invalidation_updates_;
  }

  void OnEntryResync(Entry* entry) {
    // The link fell behind: this value can no longer be trusted. Drop the
    // entry; the next Get refills and relinks.
    ++links_dropped_;
    auto it = entries_.find(entry->key);
    if (it != entries_.end() && it->second.get() == entry) {
      Erase(it);
    }
  }

  sim::Simulator* sim_;
  watch::NodeAwareWatchable* watchable_;
  const storage::MvccStore* store_;
  LinkedCacheOptions options_;
  std::map<common::Key, std::unique_ptr<Entry>> entries_;
  std::list<common::Key> lru_;  // Front: most recent.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidation_updates_ = 0;
  std::uint64_t links_dropped_ = 0;
};

}  // namespace cache

#endif  // SRC_CACHE_LINKED_CACHE_H_
