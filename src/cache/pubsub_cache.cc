#include "cache/pubsub_cache.h"

#include "cdc/codec.h"

namespace cache {

PubsubCacheFleet::PubsubCacheFleet(sim::Simulator* sim, sim::Network* net,
                                   sharding::AutoSharder* sharder,
                                   const storage::MvccStore* store, pubsub::Broker* broker,
                                   const std::string& topic, const pubsub::GroupId& group,
                                   PubsubCacheOptions options)
    : sim_(sim), net_(net), sharder_(sharder), store_(store), options_(options) {
  // The pubsub layer learns about cache (re)assignments later than the pods
  // do. Registered before the pods join so it sees the initial assignment.
  sharder_subscription_ = sharder_->Subscribe(
      [this](const common::KeyRange& range, const std::optional<sharding::WorkerId>& owner,
             sharding::Generation) {
        pubsub_view_.Assign(range, owner.value_or(sim::NodeId()));
      },
      options_.pubsub_routing_latency);
  for (std::uint32_t i = 0; i < options_.pods; ++i) {
    auto pod = std::make_unique<Pod>();
    pod->node = options_.pod_prefix + std::to_string(i);
    net_->AddNode(pod->node);
    pod->consumer = std::make_unique<pubsub::GroupConsumer>(
        sim_, net_, broker, group, topic, pod->node,
        [this](pubsub::PartitionId, const pubsub::StoredMessage& m) {
          auto ev = cdc::DecodeChangeEvent(m.message.value);
          if (!ev.ok()) {
            return true;  // Drop undecodable messages.
          }
          // The consumer-group contract: the message is acknowledged once the
          // pod the PUBSUB LAYER believes owns the key has processed it —
          // whether or not that pod still owns the key. This ack is what
          // loses the invalidation in the Figure 2 race. (With owner_ack_only
          // the handler withholds the ack until routing and ownership agree.)
          return HandleInvalidation(*ev);
        },
        options_.consumer);
    pod->consumer->Start();
    sharder_->AddWorker(pod->node);
    pods_.push_back(std::move(pod));
  }
}

PubsubCacheFleet::~PubsubCacheFleet() {
  sharder_->Unsubscribe(sharder_subscription_);
}

PubsubCacheFleet::Pod* PubsubCacheFleet::PodByNode(const sim::NodeId& node) {
  for (auto& pod : pods_) {
    if (pod->node == node) {
      return pod.get();
    }
  }
  return nullptr;
}

bool PubsubCacheFleet::HandleInvalidation(const common::ChangeEvent& event) {
  // The pubsub layer routes the invalidation to the pod *it believes* owns
  // the key. During a reassignment window that is the old owner (Figure 2);
  // the new owner never hears about it, and the message is consumed.
  const sim::NodeId& believed_owner = pubsub_view_.Get(event.key);
  if (options_.owner_ack_only &&
      sharder_->Owner(event.key) != (believed_owner.empty()
                                         ? std::optional<sharding::WorkerId>()
                                         : std::optional<sharding::WorkerId>(believed_owner))) {
    // Lease discipline: routing disagrees with the authoritative owner (or
    // there is no owner). Withhold the ack; the message is redelivered —
    // and everything behind it in the partition waits.
    return false;
  }
  Pod* pod = believed_owner.empty() ? nullptr : PodByNode(believed_owner);
  if (pod == nullptr) {
    ++invalidations_ignored_;
    return !options_.owner_ack_only;
  }
  auto it = pod->entries.find(event.key);
  if (it == pod->entries.end()) {
    ++invalidations_ignored_;
    return true;
  }
  pod->entries.erase(it);
  ++invalidations_applied_;
  return true;
}

bool PubsubCacheFleet::Expired(const Entry& entry) const {
  return options_.ttl > 0 && sim_->Now() - entry.installed_at >= options_.ttl;
}

common::Result<common::Value> PubsubCacheFleet::Get(const common::Key& key) {
  const std::optional<sharding::WorkerId> owner = sharder_->Owner(key);
  if (!owner.has_value()) {
    ++unavailable_;  // Lease gap: no pod may serve this key.
    return common::Status::Unavailable("no owner for key (lease gap)");
  }
  Pod* pod = PodByNode(*owner);
  if (pod == nullptr || !net_->IsUp(pod->node)) {
    ++unavailable_;
    return common::Status::Unavailable("owner pod down");
  }
  auto it = pod->entries.find(key);
  if (it != pod->entries.end() && !Expired(it->second)) {
    ++hits_;
    // Harness-side freshness audit (invisible to the application).
    auto truth = store_->GetLatest(key);
    if (!truth.ok() || *truth != it->second.value) {
      ++stale_serves_;
    }
    return it->second.value;
  }
  // Miss: fill from the store. The value is read now but installed after
  // fill_latency — an invalidation that races into the gap is applied to the
  // (absent) old entry and the stale install wins.
  ++misses_;
  auto value = store_->GetLatest(key);
  if (!value.ok()) {
    return value.status();
  }
  const common::Value to_install = *value;
  const sim::NodeId owner_node = pod->node;
  sim_->After(options_.fill_latency, [this, owner_node, key, to_install] {
    Pod* p = PodByNode(owner_node);
    if (p == nullptr) {
      return;
    }
    // Install only if this pod still owns the key (standard guard).
    if (sharder_->Owner(key) == std::optional<sharding::WorkerId>(owner_node)) {
      p->entries[key] = Entry{to_install, sim_->Now()};
    }
  });
  return *value;
}

std::uint64_t PubsubCacheFleet::AuditStaleEntries() const {
  std::uint64_t stale = 0;
  for (const auto& pod : pods_) {
    for (const auto& [key, entry] : pod->entries) {
      if (Expired(entry)) {
        continue;  // Will age out: not permanently stale.
      }
      if (sharder_->Owner(key) != std::optional<sharding::WorkerId>(pod->node)) {
        continue;  // Not servable from this pod; harmless residue.
      }
      auto truth = store_->GetLatest(key);
      if (!truth.ok() || *truth != entry.value) {
        ++stale;
      }
    }
  }
  return stale;
}

std::vector<sim::NodeId> PubsubCacheFleet::PodNodes() const {
  std::vector<sim::NodeId> out;
  out.reserve(pods_.size());
  for (const auto& pod : pods_) {
    out.push_back(pod->node);
  }
  return out;
}

}  // namespace cache
