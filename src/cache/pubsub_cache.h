// PubsubCacheFleet: a distributed look-aside cache kept fresh by pubsub
// invalidations — the architecture of Section 3.2.2. Cache pods own dynamic
// key ranges assigned by an AutoSharder; fills are demand reads from the
// store; invalidations flow producer store -> CDC -> pubsub topic -> a
// consumer group over the pods.
//
// The fleet deliberately reproduces the paper's failure structure:
//   * the pubsub consumer group partitions messages by key hash, while the
//     auto-sharder partitions ownership by key range — two independent
//     assignment maps that disagree during moves (Figure 2);
//   * an invalidation delivered to (and acknowledged by) a pod that no longer
//     owns the key is simply lost; a pod that just took ownership and filled
//     a stale value keeps serving it indefinitely;
//   * the classic mitigations are available as options: entry TTLs (staleness
//     eventually ages out) and sharder leases (no-owner gaps trade
//     availability for fewer races).
#ifndef SRC_CACHE_PUBSUB_CACHE_H_
#define SRC_CACHE_PUBSUB_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/interval_map.h"
#include "common/status.h"
#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"

namespace cache {

struct PubsubCacheOptions {
  std::uint32_t pods = 4;
  std::string pod_prefix = "cache-pod-";
  // Simulated delay between reading a fill value from the store and
  // installing it in the pod (the in-flight window of the install race).
  common::TimeMicros fill_latency = 2 * common::kMicrosPerMilli;
  // Entry TTL; 0 disables (the paper's fallback for papering over misses).
  common::TimeMicros ttl = 0;
  // How long the pubsub layer takes to learn about an auto-sharder
  // reassignment (Figure 2: "p_new may learn about the reassignment before
  // the pubsub system"). Until it learns, it keeps delivering invalidations
  // to the old owner.
  common::TimeMicros pubsub_routing_latency = 20 * common::kMicrosPerMilli;
  // The paper's leasing mitigation (§3.2.2): "a leasing mechanism to ensure
  // that at most one cache server at a time is allowed to acknowledge a
  // change event". When true, an invalidation is acknowledged only once the
  // pubsub layer's routing agrees with the authoritative owner; otherwise it
  // is redelivered (stalling the partition behind it).
  bool owner_ack_only = false;
  pubsub::ConsumerOptions consumer;
};

class PubsubCacheFleet {
 public:
  // The invalidation topic must already exist on `broker`; `sharder` assigns
  // cache ownership; `store` is the authority used for fills and audits.
  PubsubCacheFleet(sim::Simulator* sim, sim::Network* net, sharding::AutoSharder* sharder,
                   const storage::MvccStore* store, pubsub::Broker* broker,
                   const std::string& topic, const pubsub::GroupId& group,
                   PubsubCacheOptions options = {});
  ~PubsubCacheFleet();

  PubsubCacheFleet(const PubsubCacheFleet&) = delete;
  PubsubCacheFleet& operator=(const PubsubCacheFleet&) = delete;

  // Client read: routes to the owning pod. Serves the cached entry if
  // present/unexpired; otherwise fills from the store. Returns kUnavailable
  // when no pod owns the key (lease gap) or the owner is down.
  common::Result<common::Value> Get(const common::Key& key);

  // -- Harness metrics / audit ----------------------------------------------------

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t unavailable() const { return unavailable_; }
  std::uint64_t stale_serves() const { return stale_serves_; }
  std::uint64_t invalidations_applied() const { return invalidations_applied_; }
  std::uint64_t invalidations_ignored() const { return invalidations_ignored_; }

  // Counts cached entries whose value differs from the store right now. Run
  // after quiescing: any remaining mismatch is a permanently stale entry (the
  // paper's "stale value cached indefinitely").
  std::uint64_t AuditStaleEntries() const;

  std::vector<sim::NodeId> PodNodes() const;

 private:
  struct Entry {
    common::Value value;
    common::TimeMicros installed_at = 0;
  };

  struct Pod {
    sim::NodeId node;
    std::map<common::Key, Entry> entries;
    std::unique_ptr<pubsub::GroupConsumer> consumer;
  };

  Pod* PodByNode(const sim::NodeId& node);
  // Returns whether the message should be acknowledged.
  bool HandleInvalidation(const common::ChangeEvent& event);
  bool Expired(const Entry& entry) const;

  sim::Simulator* sim_;
  sim::Network* net_;
  sharding::AutoSharder* sharder_;
  const storage::MvccStore* store_;
  PubsubCacheOptions options_;
  std::vector<std::unique_ptr<Pod>> pods_;
  // The pubsub layer's (lagging) view of key ownership: which member it
  // routes a key's invalidations to. Empty owner: not yet assigned.
  common::IntervalMap<sim::NodeId> pubsub_view_{sim::NodeId()};
  std::uint64_t sharder_subscription_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t unavailable_ = 0;
  std::uint64_t stale_serves_ = 0;
  std::uint64_t invalidations_applied_ = 0;
  std::uint64_t invalidations_ignored_ = 0;
};

}  // namespace cache

#endif  // SRC_CACHE_PUBSUB_CACHE_H_
