#include "cache/watch_cache.h"

#include <algorithm>

namespace cache {

WatchCacheFleet::WatchCacheFleet(sim::Simulator* sim, sim::Network* net,
                                 sharding::AutoSharder* sharder,
                                 watch::NodeAwareWatchable* watchable,
                                 const watch::SnapshotSource* source,
                                 const storage::MvccStore* store, WatchCacheOptions options)
    : sim_(sim),
      net_(net),
      sharder_(sharder),
      watchable_(watchable),
      source_(source),
      store_(store),
      options_(options) {
  for (std::uint32_t i = 0; i < options_.pods; ++i) {
    auto pod = std::make_unique<Pod>();
    pod->node = options_.pod_prefix + std::to_string(i);
    net_->AddNode(pod->node);
    Pod* raw = pod.get();
    pod->subscription = sharder_->Subscribe(
        [this, raw](const common::KeyRange& range,
                    const std::optional<sharding::WorkerId>& owner, sharding::Generation) {
          OnAssignment(raw, range, owner);
        },
        options_.assignment_latency);
    sharder_->AddWorker(pod->node);
    pods_.push_back(std::move(pod));
  }
}

WatchCacheFleet::~WatchCacheFleet() {
  for (auto& pod : pods_) {
    sharder_->Unsubscribe(pod->subscription);
  }
}

void WatchCacheFleet::OnAssignment(Pod* pod, const common::KeyRange& range,
                                   const std::optional<sharding::WorkerId>& owner) {
  const bool mine = owner == std::optional<sharding::WorkerId>(pod->node);
  // If the pod already materializes exactly this range and keeps it, no churn.
  auto exact = pod->ranges.find(range.low);
  if (mine && exact != pod->ranges.end() && exact->second->range() == range) {
    return;
  }
  // Drop any existing materializations overlapping the (re)assigned range —
  // shard boundaries changed or ownership moved away.
  for (auto it = pod->ranges.begin(); it != pod->ranges.end();) {
    if (it->second->range().Overlaps(range)) {
      it->second->Stop();
      it = pod->ranges.erase(it);
    } else {
      ++it;
    }
  }
  if (mine) {
    watch::MaterializedOptions mopts = options_.materialized;
    mopts.node = pod->node;
    auto mr = std::make_unique<watch::MaterializedRange>(sim_, watchable_, source_, range,
                                                         mopts);
    mr->Start();
    pod->ranges.emplace(range.low, std::move(mr));
  }
}

const watch::MaterializedRange* WatchCacheFleet::RangeFor(const Pod& pod,
                                                          const common::Key& key) const {
  auto it = pod.ranges.upper_bound(key);
  if (it == pod.ranges.begin()) {
    return nullptr;
  }
  --it;
  if (!it->second->range().Contains(key)) {
    return nullptr;
  }
  return it->second.get();
}

common::Result<common::Value> WatchCacheFleet::Get(const common::Key& key,
                                                   common::Version min_version) {
  const std::optional<sharding::WorkerId> owner = sharder_->Owner(key);
  if (!owner.has_value()) {
    ++unavailable_;
    return common::Status::Unavailable("no owner for key");
  }
  Pod* pod = nullptr;
  for (auto& p : pods_) {
    if (p->node == *owner) {
      pod = p.get();
      break;
    }
  }
  if (pod == nullptr || !net_->IsUp(pod->node)) {
    ++unavailable_;
    return common::Status::Unavailable("owner pod down");
  }
  const watch::MaterializedRange* mr = RangeFor(*pod, key);
  if (mr == nullptr || !mr->ready()) {
    ++unavailable_;  // Handoff in progress: honest unavailability, not staleness.
    return common::Status::Unavailable("materialization not ready");
  }
  auto value = min_version == common::kNoVersion ? mr->Get(key)
                                                 : mr->GetAtLeast(key, min_version);
  if (value.ok()) {
    ++hits_;
    auto truth = store_->GetLatest(key);
    if (!truth.ok() || *truth != *value) {
      ++stale_serves_;  // Bounded staleness while events are in flight.
    }
  } else if (value.status().code() == common::StatusCode::kNotFound) {
    ++hits_;  // A materialized miss is an authoritative "absent".
  } else if (value.status().code() == common::StatusCode::kUnavailable) {
    ++unavailable_;  // Read-your-writes refusal: behind the client's token.
  }
  return value;
}

common::Result<WatchCacheFleet::StitchedSnapshot> WatchCacheFleet::SnapshotReadAtLeast(
    const common::KeyRange& range, common::Version min_version) {
  auto snap = SnapshotRead(range);
  if (snap.ok() && snap->version < min_version) {
    ++snapshot_reads_failed_;
    return common::Status::Unavailable("stitchable snapshot is below the requested version");
  }
  return snap;
}

void WatchCacheFleet::ReadAtVersion(common::KeyRange range, common::Version min_version,
                                    common::TimeMicros timeout, SnapshotCallback callback) {
  // Poll the fleet's pooled knowledge until the snapshot becomes servable at
  // or above min_version, or give up at the deadline. (A production system
  // would subscribe to knowledge-change notifications; the sim's cadence
  // bounds wait latency at poll_period.)
  constexpr common::TimeMicros kPollPeriod = 2 * common::kMicrosPerMilli;
  const common::TimeMicros deadline = sim_->Now() + timeout;
  auto attempt = std::make_shared<std::function<void()>>();
  *attempt = [this, range = std::move(range), min_version, deadline,
              callback = std::move(callback), attempt]() mutable {
    auto snap = SnapshotReadAtLeast(range, min_version);
    if (snap.ok()) {
      callback(std::move(snap));
      *attempt = nullptr;  // Break the self-reference cycle.
      return;
    }
    if (sim_->Now() + kPollPeriod > deadline) {
      callback(common::Status::Unavailable("snapshot at requested version not available "
                                           "before the deadline"));
      *attempt = nullptr;
      return;
    }
    sim_->After(kPollPeriod, [attempt] {
      if (*attempt) {
        (*attempt)();
      }
    });
  };
  (*attempt)();
}

common::Result<WatchCacheFleet::StitchedSnapshot> WatchCacheFleet::SnapshotRead(
    const common::KeyRange& range) {
  // Gather every ready materialization overlapping the range, fleet-wide.
  std::vector<const watch::MaterializedRange*> pieces;
  std::vector<const watch::KnowledgeMap*> maps;
  for (const auto& pod : pods_) {
    for (const auto& [low, mr] : pod->ranges) {
      if (mr->ready() && mr->range().Overlaps(range)) {
        pieces.push_back(mr.get());
        maps.push_back(&mr->knowledge());
      }
    }
  }
  const std::optional<common::Version> version =
      watch::KnowledgeMap::MaxStitchableVersion(maps, range);
  if (!version.has_value()) {
    ++snapshot_reads_failed_;
    return common::Status::Unavailable("no common version covers the range");
  }
  // Collect entries from each piece at the common version; pieces may
  // overlap (redundant knowledge), so deduplicate by key.
  std::map<common::Key, storage::Entry> merged;
  for (const watch::MaterializedRange* mr : pieces) {
    const common::KeyRange clipped = range.Intersect(mr->range());
    if (clipped.Empty() || !mr->knowledge().ServableAt(clipped, *version)) {
      continue;  // Another piece covers this span at the stitched version.
    }
    auto entries = mr->SnapshotScan(clipped, *version);
    if (!entries.ok()) {
      continue;
    }
    for (storage::Entry& e : *entries) {
      merged.emplace(e.key, std::move(e));
    }
  }
  StitchedSnapshot out;
  out.version = *version;
  out.entries.reserve(merged.size());
  for (auto& [key, entry] : merged) {
    out.entries.push_back(std::move(entry));
  }
  ++snapshot_reads_served_;
  return out;
}

std::uint64_t WatchCacheFleet::TotalResyncs() const {
  std::uint64_t total = 0;
  for (const auto& pod : pods_) {
    for (const auto& [low, mr] : pod->ranges) {
      total += mr->resyncs();
    }
  }
  return total;
}

std::uint64_t WatchCacheFleet::AuditStaleEntries() const {
  std::uint64_t stale = 0;
  for (const auto& pod : pods_) {
    for (const auto& [low, mr] : pod->ranges) {
      if (!mr->ready()) {
        continue;
      }
      auto truth = store_->Scan(mr->range(), store_->LatestVersion());
      if (!truth.ok()) {
        continue;
      }
      for (const storage::Entry& e : *truth) {
        auto mine = mr->Get(e.key);
        if (!mine.ok() || *mine != e.value) {
          ++stale;
        }
      }
    }
  }
  return stale;
}

std::vector<sim::NodeId> WatchCacheFleet::PodNodes() const {
  std::vector<sim::NodeId> out;
  out.reserve(pods_.size());
  for (const auto& pod : pods_) {
    out.push_back(pod->node);
  }
  return out;
}

}  // namespace cache
