// WatchCacheFleet: the paper's alternative (Sections 4.3–4.4): auto-sharded
// cache pods that each *materialize* their assigned key ranges via the watch
// protocol (snapshot + watch + resync), maintain knowledge regions, and can
// therefore serve snapshot-consistent reads — including reads stitched across
// pods at a common version (Figure 5's green box).
//
// Ownership handoff is safe by construction: a pod that acquires a range
// reads a fresh snapshot and watches from the snapshot version, so there is
// no missed-invalidation race; a pod that loses a range just drops it. A
// lagging pod is resynced loudly by the watch system.
#ifndef SRC_CACHE_WATCH_CACHE_H_
#define SRC_CACHE_WATCH_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/api.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"

namespace cache {

struct WatchCacheOptions {
  std::uint32_t pods = 4;
  std::string pod_prefix = "wcache-pod-";
  // Latency with which pods learn about assignment changes.
  common::TimeMicros assignment_latency = 2 * common::kMicrosPerMilli;
  watch::MaterializedOptions materialized;
};

class WatchCacheFleet {
 public:
  WatchCacheFleet(sim::Simulator* sim, sim::Network* net, sharding::AutoSharder* sharder,
                  watch::NodeAwareWatchable* watchable, const watch::SnapshotSource* source,
                  const storage::MvccStore* store, WatchCacheOptions options = {});
  ~WatchCacheFleet();

  WatchCacheFleet(const WatchCacheFleet&) = delete;
  WatchCacheFleet& operator=(const WatchCacheFleet&) = delete;

  // Client read: routed to the owning pod's materialization. Returns
  // kUnavailable if no pod is ready for the key (handoff in progress).
  // A nonzero `min_version` requests read-your-writes: the value is
  // guaranteed to reflect every commit up to that version, or the read
  // fails with kUnavailable (retryable) rather than serving stale data.
  common::Result<common::Value> Get(const common::Key& key,
                                    common::Version min_version = common::kNoVersion);

  // Snapshot-consistent read of a full range, stitched across however many
  // pods currently hold pieces of it, at the highest commonly known version.
  // Returns the entries and the snapshot version used.
  struct StitchedSnapshot {
    std::vector<storage::Entry> entries;
    common::Version version = common::kNoVersion;
  };
  common::Result<StitchedSnapshot> SnapshotRead(const common::KeyRange& range);

  // Snapshot-consistent read of `range` at a version >= `min_version`,
  // delivered asynchronously: `callback` fires as soon as the fleet's pooled
  // knowledge can serve it (or with kUnavailable at `timeout`). This is the
  // §5 "stitching protocol" surface: writers pass their commit version to
  // readers, and readers get a consistent snapshot no older than that.
  using SnapshotCallback = std::function<void(common::Result<StitchedSnapshot>)>;
  void ReadAtVersion(common::KeyRange range, common::Version min_version,
                     common::TimeMicros timeout, SnapshotCallback callback);

  // Like SnapshotRead, but refuses snapshots below `min_version` (the
  // building block of ReadAtVersion).
  common::Result<StitchedSnapshot> SnapshotReadAtLeast(const common::KeyRange& range,
                                                       common::Version min_version);

  // -- Metrics / audit -------------------------------------------------------------

  std::uint64_t hits() const { return hits_; }
  std::uint64_t unavailable() const { return unavailable_; }
  std::uint64_t stale_serves() const { return stale_serves_; }
  std::uint64_t snapshot_reads_served() const { return snapshot_reads_served_; }
  std::uint64_t snapshot_reads_failed() const { return snapshot_reads_failed_; }
  std::uint64_t TotalResyncs() const;

  // Counts owned, ready materialized values that differ from the store. After
  // quiescing this must be zero — the watch protocol cannot strand staleness.
  std::uint64_t AuditStaleEntries() const;

  std::vector<sim::NodeId> PodNodes() const;

 private:
  struct Pod {
    sim::NodeId node;
    // Materialized ranges keyed by range low bound.
    std::map<common::Key, std::unique_ptr<watch::MaterializedRange>> ranges;
    std::uint64_t subscription = 0;
  };

  void OnAssignment(Pod* pod, const common::KeyRange& range,
                    const std::optional<sharding::WorkerId>& owner);
  const watch::MaterializedRange* RangeFor(const Pod& pod, const common::Key& key) const;

  sim::Simulator* sim_;
  sim::Network* net_;
  sharding::AutoSharder* sharder_;
  watch::NodeAwareWatchable* watchable_;
  const watch::SnapshotSource* source_;
  const storage::MvccStore* store_;
  WatchCacheOptions options_;
  std::vector<std::unique_ptr<Pod>> pods_;

  std::uint64_t hits_ = 0;
  std::uint64_t unavailable_ = 0;
  std::uint64_t stale_serves_ = 0;
  std::uint64_t snapshot_reads_served_ = 0;
  std::uint64_t snapshot_reads_failed_ = 0;
};

}  // namespace cache

#endif  // SRC_CACHE_WATCH_CACHE_H_
