// Wire codec for change events carried through the pubsub substrate (the
// watch path passes ChangeEvent structs natively; pubsub carries opaque
// bytes, so CDC-over-pubsub must serialize).
//
// Format (length-prefixed, so keys/values may contain any byte):
//   <kind:1>' '<version>' '<txn_last:1>' '<key_len>' '<key><value>
#ifndef SRC_CDC_CODEC_H_
#define SRC_CDC_CODEC_H_

#include <charconv>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace cdc {

inline common::Value EncodeChangeEvent(const common::ChangeEvent& event) {
  common::Value out;
  out.push_back(event.mutation.kind == common::MutationKind::kPut ? 'P' : 'D');
  out.push_back(' ');
  out += std::to_string(event.version);
  out.push_back(' ');
  out.push_back(event.txn_last ? '1' : '0');
  out.push_back(' ');
  out += std::to_string(event.key.size());
  out.push_back(' ');
  out += event.key;
  if (event.mutation.kind == common::MutationKind::kPut) {
    out += event.mutation.value;
  }
  return out;
}

inline common::Result<common::ChangeEvent> DecodeChangeEvent(const common::Value& data) {
  common::ChangeEvent event;
  if (data.size() < 2 || (data[0] != 'P' && data[0] != 'D') || data[1] != ' ') {
    return common::Status::InvalidArgument("bad change event header");
  }
  const bool is_put = data[0] == 'P';
  std::size_t pos = 2;

  auto parse_u64 = [&data, &pos](std::uint64_t* out) -> bool {
    const char* begin = data.data() + pos;
    const char* end = data.data() + data.size();
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == end || *ptr != ' ') {
      return false;
    }
    pos = static_cast<std::size_t>(ptr - data.data()) + 1;
    return true;
  };

  std::uint64_t version = 0;
  if (!parse_u64(&version)) {
    return common::Status::InvalidArgument("bad version");
  }
  event.version = version;

  if (pos + 1 >= data.size() || (data[pos] != '0' && data[pos] != '1') ||
      data[pos + 1] != ' ') {
    return common::Status::InvalidArgument("bad txn_last flag");
  }
  event.txn_last = data[pos] == '1';
  pos += 2;

  std::uint64_t key_len = 0;
  if (!parse_u64(&key_len)) {
    return common::Status::InvalidArgument("bad key length");
  }
  if (pos + key_len > data.size()) {
    return common::Status::InvalidArgument("truncated key");
  }
  event.key = data.substr(pos, key_len);
  pos += key_len;
  if (is_put) {
    event.mutation = common::Mutation::Put(data.substr(pos));
  } else {
    if (pos != data.size()) {
      return common::Status::InvalidArgument("delete event carries a value");
    }
    event.mutation = common::Mutation::Delete();
  }
  return event;
}

}  // namespace cdc

#endif  // SRC_CDC_CODEC_H_
