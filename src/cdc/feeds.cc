#include "cdc/feeds.h"

#include "cdc/codec.h"
#include "obs/trace.h"

namespace cdc {

CdcPubsubFeed::CdcPubsubFeed(sim::Simulator* sim, sim::Network* net, storage::MvccStore* store,
                             const storage::FilteredView* view, pubsub::Broker* broker,
                             std::string topic, PubsubFeedOptions options)
    : sim_(sim),
      net_(net),
      view_(view),
      broker_(broker),
      topic_(std::move(topic)),
      options_(options) {
  if (!net_->IsUp(options_.node)) {
    net_->AddNode(options_.node);
  }
  store->AddCommitObserver(
      [this](const storage::CommitRecord& record) { OnCommit(record); });
  retry_task_ =
      std::make_unique<sim::PeriodicTask>(sim_, options_.retry_period, [this] { Pump(); });
}

CdcPubsubFeed::~CdcPubsubFeed() = default;

void CdcPubsubFeed::OnCommit(const storage::CommitRecord& record) {
  if (view_ != nullptr) {
    std::optional<storage::CommitRecord> filtered = view_->FilterCommit(record);
    if (!filtered.has_value()) {
      return;
    }
    for (common::ChangeEvent& ev : filtered->changes) {
      queue_.push_back(std::move(ev));
    }
  } else {
    for (const common::ChangeEvent& ev : record.changes) {
      queue_.push_back(ev);
    }
  }
  if (obs::TracingEnabled()) {
    // Trace origin: the commit was observed by CDC.
    for (common::ChangeEvent& ev : queue_) {
      if (!ev.trace.considered()) {
        ev.trace = obs::TraceContext::Start();
      }
    }
  }
  sim_->After(options_.publish_latency, [this] { Pump(); });
}

void CdcPubsubFeed::Pump() {
  if (queue_.empty() || !net_->Reachable(options_.node, broker_->node())) {
    return;
  }
  for (const common::ChangeEvent& ev : queue_) {
    // Keyed publish routes per-key to a stable partition; keyless round-robins.
    pubsub::Message msg{options_.keyed ? ev.key : common::Key(), EncodeChangeEvent(ev), 0};
    msg.trace = ev.trace;
    if (msg.trace.active()) {
      msg.trace.Stamp(obs::Stage::kFeed, obs::NowMicros());  // Handed to pubsub.
    }
    auto res = broker_->Publish(topic_, std::move(msg));
    if (!res.ok()) {
      return;  // Topic missing; keep the queue and retry.
    }
    ++published_;
  }
  queue_.clear();
}

CdcIngesterFeed::CdcIngesterFeed(sim::Simulator* sim, storage::MvccStore* store,
                                 const storage::FilteredView* view, watch::Ingester* ingester,
                                 IngesterFeedOptions options)
    : sim_(sim), store_(store), view_(view), ingester_(ingester), options_(options) {
  std::vector<common::KeyRange> ranges = options_.shards;
  if (ranges.empty()) {
    ranges.push_back(common::KeyRange::All());
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    shards_.push_back(Shard{ranges[i],
                            options_.base_latency +
                                static_cast<common::TimeMicros>(i) * options_.stagger,
                            common::kNoVersion});
  }
  store->AddCommitObserver(
      [this](const storage::CommitRecord& record) { OnCommit(record); });
  if (options_.progress_period > 0) {
    progress_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.progress_period,
                                                         [this] { EmitProgress(); });
  }
}

CdcIngesterFeed::~CdcIngesterFeed() = default;

void CdcIngesterFeed::OnCommit(const storage::CommitRecord& record) {
  const storage::CommitRecord* effective = &record;
  std::optional<storage::CommitRecord> filtered;
  if (view_ != nullptr) {
    filtered = view_->FilterCommit(record);
    if (!filtered.has_value()) {
      // Invisible commit: it still advances each shard's fed frontier (there
      // is nothing to deliver below this version).
      for (Shard& shard : shards_) {
        shard.fed_version = record.version;
      }
      return;
    }
    effective = &*filtered;
  }
  for (Shard& shard : shards_) {
    for (const common::ChangeEvent& ev : effective->changes) {
      if (!shard.range.Contains(ev.key)) {
        continue;
      }
      ++appended_;
      common::ChangeEvent traced = ev;
      if (obs::TracingEnabled()) {
        if (!traced.trace.considered()) {
          traced.trace = obs::TraceContext::Start();  // Origin: commit observed.
        }
        if (traced.trace.active()) {  // Sampled-out records skip the clock read.
          traced.trace.Stamp(obs::Stage::kFeed, obs::NowMicros());  // Into the pipeline.
        }
      }
      sim_->After(shard.latency, [this, traced] { ingester_->Append(traced); });
    }
    // Everything at or below this commit version has now been handed to the
    // shard's (FIFO) pipeline.
    shard.fed_version = effective->version;
  }
}

void CdcIngesterFeed::EmitProgress() {
  // Progress for versions with no changes in a shard is still progress: use
  // the store's latest version as the frontier for every shard, delivered
  // behind that shard's pipeline so it arrives after the events it covers.
  const common::Version latest = store_->LatestVersion();
  for (Shard& shard : shards_) {
    shard.fed_version = latest;
    const common::ProgressEvent ev{shard.range, latest};
    sim_->After(shard.latency, [this, ev] { ingester_->Progress(ev); });
  }
}

std::vector<common::KeyRange> UniformShards(std::uint64_t universe, std::uint32_t n,
                                            int key_width) {
  std::vector<common::KeyRange> out;
  if (n == 0) {
    return out;
  }
  common::Key prev_low;  // "" — start of key space.
  for (std::uint32_t i = 1; i < n; ++i) {
    common::Key boundary = common::IndexKey(universe * i / n, key_width);
    out.push_back(common::KeyRange{prev_low, boundary});
    prev_low = std::move(boundary);
  }
  out.push_back(common::KeyRange{prev_low, common::Key()});  // Tail to +inf.
  return out;
}

}  // namespace cdc
