// Change-data-capture feeds: tail an MvccStore's commit stream into either
//   * a pubsub topic (CdcPubsubFeed) — the architecture Section 3.2.1
//     critiques: the pubsub log becomes a competing intermediate store; or
//   * a watch system's Ingester (CdcIngesterFeed) — the paper's proposal:
//     sharded delivery with range-scoped progress, soft state only.
//
// Both feeds can apply a FilteredView (Section 4.1) so only exposed derived
// values leave the producer.
#ifndef SRC_CDC_FEEDS_H_
#define SRC_CDC_FEEDS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "pubsub/broker.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "storage/view.h"
#include "watch/api.h"

namespace cdc {

// -- Store -> pubsub -----------------------------------------------------------

struct PubsubFeedOptions {
  // Node the CDC process runs on (publishes fail while unreachable —
  // the events are buffered and retried, as a real CDC connector would).
  sim::NodeId node = "cdc";
  common::TimeMicros publish_latency = 1 * common::kMicrosPerMilli;
  common::TimeMicros retry_period = 50 * common::kMicrosPerMilli;
  // true: publish with the change key (key-hash partition routing, per-key
  // order). false: keyless publish (round-robin partitions) — the "arbitrary
  // order" concurrent-replication configuration of Section 3.2.1.
  bool keyed = true;
};

class CdcPubsubFeed {
 public:
  // If `view` is non-null, commits are filtered through it first.
  CdcPubsubFeed(sim::Simulator* sim, sim::Network* net, storage::MvccStore* store,
                const storage::FilteredView* view, pubsub::Broker* broker, std::string topic,
                PubsubFeedOptions options = {});
  ~CdcPubsubFeed();

  CdcPubsubFeed(const CdcPubsubFeed&) = delete;
  CdcPubsubFeed& operator=(const CdcPubsubFeed&) = delete;

  std::uint64_t published() const { return published_; }
  std::uint64_t pending() const { return queue_.size(); }

 private:
  void OnCommit(const storage::CommitRecord& record);
  void Pump();

  sim::Simulator* sim_;
  sim::Network* net_;
  const storage::FilteredView* view_;
  pubsub::Broker* broker_;
  std::string topic_;
  PubsubFeedOptions options_;
  std::vector<common::ChangeEvent> queue_;  // FIFO of events awaiting publish.
  std::uint64_t published_ = 0;
  std::unique_ptr<sim::PeriodicTask> retry_task_;
};

// -- Store -> watch ingester ------------------------------------------------------

struct IngesterFeedOptions {
  // Key-range shards with independent delivery pipelines; empty means one
  // shard covering everything. Shards let the CDC layer choose its own
  // partitioning, decoupled from both the store and the watch system
  // (Section 4.2.2).
  std::vector<common::KeyRange> shards;
  // Base one-way pipeline latency; shard i adds i * stagger on top, so
  // cross-shard delivery is out of order (the realistic case progress events
  // exist to cope with).
  common::TimeMicros base_latency = 1 * common::kMicrosPerMilli;
  common::TimeMicros stagger = 2 * common::kMicrosPerMilli;
  // Cadence of range-scoped progress emission per shard.
  common::TimeMicros progress_period = 20 * common::kMicrosPerMilli;
};

class CdcIngesterFeed {
 public:
  CdcIngesterFeed(sim::Simulator* sim, storage::MvccStore* store,
                  const storage::FilteredView* view, watch::Ingester* ingester,
                  IngesterFeedOptions options = {});
  ~CdcIngesterFeed();

  CdcIngesterFeed(const CdcIngesterFeed&) = delete;
  CdcIngesterFeed& operator=(const CdcIngesterFeed&) = delete;

  std::uint64_t appended() const { return appended_; }

 private:
  struct Shard {
    common::KeyRange range;
    common::TimeMicros latency;
    // Highest version fully handed to the pipeline for this shard.
    common::Version fed_version = 0;
  };

  void OnCommit(const storage::CommitRecord& record);
  void EmitProgress();

  sim::Simulator* sim_;
  storage::MvccStore* store_;
  const storage::FilteredView* view_;
  watch::Ingester* ingester_;
  IngesterFeedOptions options_;
  std::vector<Shard> shards_;
  std::uint64_t appended_ = 0;
  std::unique_ptr<sim::PeriodicTask> progress_task_;
};

// Splits the IndexKey space [0, universe) into `n` contiguous shards — a
// convenience for experiments that use common::IndexKey keys.
std::vector<common::KeyRange> UniformShards(std::uint64_t universe, std::uint32_t n,
                                            int key_width = 8);

}  // namespace cdc

#endif  // SRC_CDC_FEEDS_H_
