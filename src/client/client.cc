#include "client/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace client {

namespace {

std::int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

common::StatusCode CodeFromWire(std::uint32_t code) {
  if (code > static_cast<std::uint32_t>(common::StatusCode::kInternal)) {
    return common::StatusCode::kInternal;
  }
  return static_cast<common::StatusCode>(code);
}

common::Status StatusFromError(const net::ErrorBody& e) {
  return common::Status(CodeFromWire(e.code), e.message);
}

}  // namespace

common::Result<std::unique_ptr<Client>> Client::Connect(const std::string& host, int port,
                                                        ClientOptions options) {
  auto fd = net::TcpConnect(host, port);
  if (!fd.ok()) {
    return fd.status();
  }
  std::unique_ptr<Client> c(new Client(std::move(*fd), std::move(options)));
  const common::Status st = c->Handshake();
  if (!st.ok()) {
    return st;
  }
  if (c->options_.auto_heartbeat) {
    c->StartHeartbeats();
  }
  return c;
}

Client::Client(net::Fd fd, ClientOptions options)
    : fd_(std::move(fd)),
      options_(std::move(options)),
      decoder_(options_.max_payload) {
  // Offered version, bounded to what this build can actually frame; the
  // HELLO response may negotiate it further down.
  wire_version_ = std::min<std::uint32_t>(
      std::max<std::uint32_t>(options_.wire_version, net::kMinProtocolVersion),
      net::kProtocolVersion);
}

Client::~Client() {
  if (beat_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(beat_mu_);
      beat_stop_ = true;
    }
    beat_cv_.notify_all();
    beat_thread_.join();
  }
  if (!broken_ && fd_.valid()) {
    // Best-effort GOODBYE so the server logs a graceful close, not a break.
    (void)SendFrame(net::Verb::kGoodbye, NextId(), "");
  }
}

common::Status Client::Handshake() {
  net::HelloRequest req;
  req.wire_version = wire_version_;
  req.client_name = options_.client_name;
  std::string payload;
  net::Encode(req, &payload);
  std::string response;
  const std::uint64_t rid = NextId();
  RETURN_IF_ERROR(SendFrame(net::Verb::kHello, rid, payload));
  const common::Status st =
      Call(net::Verb::kHello, rid, "", &response, nullptr, /*send=*/false);
  if (!st.ok()) {
    return st;
  }
  if (!net::Decode(response, &hello_)) {
    MarkBroken("malformed HELLO response");
    return BrokenStatus();
  }
  if (hello_.wire_version < net::kMinProtocolVersion) {
    MarkBroken("server negotiated unsupported version " + std::to_string(hello_.wire_version));
    return BrokenStatus();
  }
  wire_version_ = std::min(wire_version_, hello_.wire_version);
  return common::Status::Ok();
}

void Client::StartHeartbeats() {
  const common::TimeMicros interval =
      std::max<common::TimeMicros>(1000, hello_.heartbeat_interval_us / 2);
  beat_thread_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(beat_mu_);
    while (!beat_stop_) {
      beat_cv_.wait_for(lock, std::chrono::microseconds(interval),
                        [this] { return beat_stop_; });
      if (beat_stop_ || broken_) {
        continue;
      }
      net::HeartbeatBody beat;
      beat.t_us = SteadyMicros();
      std::string payload;
      net::Encode(beat, &payload);
      // Writes only — the user thread owns all reads; the echo is dropped by
      // RouteFrame when nobody is waiting on its request id.
      (void)SendFrame(net::Verb::kHeartbeat, 0, payload);
    }
  });
}

void Client::KillConnectionForTest() {
  MarkBroken("killed by test");
  std::lock_guard<std::mutex> lock(write_mu_);
  fd_.Close();
}

common::Status Client::BrokenStatus() const {
  return common::Status::FailedPrecondition("connection broken: " + broken_why_);
}

void Client::MarkBroken(const std::string& why) {
  if (!broken_.exchange(true)) {
    broken_why_ = why;
  }
}

common::Status Client::SendFrame(net::Verb verb, std::uint64_t request_id,
                                 const std::string& payload) {
  if (broken_) {
    return BrokenStatus();
  }
  std::string frame;
  net::EncodeFrame(frame, verb, request_id, payload,
                   static_cast<std::uint8_t>(wire_version_));
  std::lock_guard<std::mutex> lock(write_mu_);
  const common::Status st = net::WriteAll(fd_.get(), frame.data(), frame.size());
  if (!st.ok()) {
    MarkBroken("write failed: " + st.message());
    return BrokenStatus();
  }
  return common::Status::Ok();
}

void Client::RouteFrame(const net::Frame& frame) {
  if (frame.verb == net::Verb::kDeliver || frame.verb == net::Verb::kWatchPush) {
    auto it = streams_.find(frame.request_id);
    if (it == streams_.end()) {
      ++dropped_pushes_;  // Stream cancelled locally; late pushes are expected.
      return;
    }
    it->second->payloads.emplace_back(frame.payload);
    return;
  }
  if (frame.verb == net::Verb::kError) {
    // Connection-level (id 0) errors break the client; stream-scoped errors
    // latch on the stream; anything else is a pending call's response.
    net::ErrorBody err;
    const bool decoded = net::Decode(frame.payload, &err);
    if (frame.request_id == 0) {
      MarkBroken(decoded ? ("server error: " + err.message) : "server error");
      return;
    }
    auto it = streams_.find(frame.request_id);
    if (it != streams_.end()) {
      it->second->errored = true;
      if (decoded) {
        it->second->error = err;
      }
      return;
    }
  }
  responses_[frame.request_id] = Response{frame.verb, std::string(frame.payload)};
}

common::Status Client::PumpUntil(const std::function<bool()>& until,
                                 common::TimeMicros timeout_us) {
  const std::int64_t start = SteadyMicros();
  char buf[65536];
  while (!until()) {
    if (broken_) {
      return BrokenStatus();
    }
    std::int64_t wait_us = -1;
    if (timeout_us > 0) {
      wait_us = timeout_us - (SteadyMicros() - start);
      if (wait_us <= 0) {
        return common::Status::Unavailable("timed out waiting for server");
      }
    }
    if (!net::WaitReadable(fd_.get(), wait_us)) {
      return common::Status::Unavailable("timed out waiting for server");
    }
    std::size_t n = 0;
    const net::IoStatus st = net::ReadSome(fd_.get(), buf, sizeof(buf), &n);
    if (st == net::IoStatus::kEof) {
      MarkBroken("server closed the connection");
      return BrokenStatus();
    }
    if (st == net::IoStatus::kError) {
      MarkBroken("read failed");
      return BrokenStatus();
    }
    if (st == net::IoStatus::kWouldBlock) {
      continue;  // Spurious readability; re-park.
    }
    decoder_.Feed({buf, n});
    net::Frame frame;
    for (;;) {
      const net::FrameDecoder::Result r = decoder_.Next(&frame);
      if (r == net::FrameDecoder::Result::kFrame) {
        RouteFrame(frame);
      } else if (r == net::FrameDecoder::Result::kNeedMore) {
        break;
      } else {
        MarkBroken(std::string("frame error: ") + net::FrameErrorName(decoder_.error()));
        return BrokenStatus();
      }
    }
  }
  return common::Status::Ok();
}

common::Status Client::Call(net::Verb verb, std::uint64_t request_id, const std::string& payload,
                            std::string* response, common::TimeMicros* retry_after_us,
                            bool send) {
  if (send) {
    RETURN_IF_ERROR(SendFrame(verb, request_id, payload));
  }
  const common::Status pumped = PumpUntil(
      [this, request_id] {
        if (responses_.count(request_id) > 0) {
          return true;
        }
        // A stream-open refusal: the rid is pre-registered as a stream, so
        // RouteFrame latched the ERROR there instead of the response slot.
        auto it = streams_.find(request_id);
        return it != streams_.end() && it->second->errored;
      },
      options_.call_timeout_us);
  if (!pumped.ok()) {
    return pumped;
  }
  if (responses_.count(request_id) == 0) {
    auto it = streams_.find(request_id);
    const net::ErrorBody err = it->second->error;
    if (retry_after_us != nullptr) {
      *retry_after_us = err.retry_after_us;
    }
    return err.code == 0 ? common::Status::Internal("stream refused") : StatusFromError(err);
  }
  auto node = responses_.extract(request_id);
  Response& r = node.mapped();
  if (r.verb == net::Verb::kError) {
    net::ErrorBody err;
    if (!net::Decode(r.payload, &err)) {
      MarkBroken("malformed ERROR payload");
      return BrokenStatus();
    }
    if (retry_after_us != nullptr) {
      *retry_after_us = err.retry_after_us;
    }
    return StatusFromError(err);
  }
  if (r.verb != verb) {
    MarkBroken("response verb mismatch");
    return BrokenStatus();
  }
  if (response != nullptr) {
    *response = std::move(r.payload);
  }
  return common::Status::Ok();
}

common::Status Client::CreateTopic(const std::string& topic, const pubsub::TopicConfig& config) {
  net::CreateTopicRequest req;
  req.topic = topic;
  req.config = config;
  std::string payload;
  net::Encode(req, &payload);
  std::string response;
  return Call(net::Verb::kCreateTopic, NextId(), payload, &response);
}

common::Status Client::Publish(const std::string& topic, common::Key key, common::Value value,
                               std::optional<pubsub::PartitionId> partition, net::PublishAck ack,
                               pubsub::PublishResult* result, common::TimeMicros publish_time,
                               pubsub::Headers headers) {
  if (!headers.empty() && wire_version_ < 2) {
    return common::Status::InvalidArgument("record headers require protocol v2");
  }
  net::PublishRequest req;
  req.topic = topic;
  req.ack = ack;
  req.has_partition = partition.has_value();
  req.partition = partition.value_or(0);
  req.key = std::move(key);
  req.value = std::move(value);
  req.publish_time = publish_time;
  req.headers = std::move(headers);
  std::string payload;
  net::Encode(req, &payload);

  if (ack == net::PublishAck::kNone) {
    return SendFrame(net::Verb::kPublish, NextId(), payload);
  }
  for (std::size_t attempt = 0;; ++attempt) {
    std::string response;
    common::TimeMicros retry_after = 0;
    const std::uint64_t rid = NextId();
    const common::Status st = Call(net::Verb::kPublish, rid, payload, &response, &retry_after);
    if (st.ok()) {
      if (result != nullptr) {
        net::PublishResponse resp;
        if (!net::Decode(response, &resp)) {
          MarkBroken("malformed PUBLISH response");
          return BrokenStatus();
        }
        result->partition = resp.partition;
        result->offset = resp.offset;
      }
      return st;
    }
    // The server's retry_after is the owner shard's saturation hint: sleep
    // it verbatim and retry — the loud-backpressure loop, client side.
    if (st.code() != common::StatusCode::kUnavailable || retry_after <= 0 ||
        attempt >= options_.max_backpressure_retries) {
      return st;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(retry_after));
  }
}

common::Result<std::vector<pubsub::StoredMessage>> Client::Fetch(const std::string& topic,
                                                                 pubsub::PartitionId partition,
                                                                 pubsub::Offset offset,
                                                                 std::uint32_t max) {
  net::FetchRequest req;
  req.topic = topic;
  req.partition = partition;
  req.offset = offset;
  req.max = max;
  std::string payload;
  net::Encode(req, &payload);
  for (std::size_t attempt = 0;; ++attempt) {
    std::string response;
    common::TimeMicros retry_after = 0;
    const common::Status st = Call(net::Verb::kFetch, NextId(), payload, &response, &retry_after);
    if (st.ok()) {
      net::MessageBatch batch;
      if (!net::Decode(response, &batch, wire_version_)) {
        MarkBroken("malformed FETCH response");
        return BrokenStatus();
      }
      return std::move(batch.messages);
    }
    if (st.code() != common::StatusCode::kUnavailable || retry_after <= 0 ||
        attempt >= options_.max_backpressure_retries) {
      return st;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(retry_after));
  }
}

common::Result<pubsub::Offset> Client::Commit(const pubsub::GroupId& group,
                                              pubsub::PartitionId partition, pubsub::Offset offset,
                                              net::CommitMode mode) {
  net::CommitRequest req;
  req.group = group;
  req.partition = partition;
  req.offset = offset;
  req.mode = mode;
  std::string payload;
  net::Encode(req, &payload);
  for (std::size_t attempt = 0;; ++attempt) {
    std::string response;
    common::TimeMicros retry_after = 0;
    const common::Status st = Call(net::Verb::kCommit, NextId(), payload, &response, &retry_after);
    if (st.ok()) {
      net::CommitResponse resp;
      if (!net::Decode(response, &resp)) {
        MarkBroken("malformed COMMIT response");
        return BrokenStatus();
      }
      return resp.has_committed ? resp.committed : pubsub::Offset{0};
    }
    if (st.code() != common::StatusCode::kUnavailable || retry_after <= 0 ||
        attempt >= options_.max_backpressure_retries) {
      return st;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(retry_after));
  }
}

common::Result<std::unique_ptr<Subscription>> Client::Subscribe(const std::string& topic,
                                                                pubsub::PartitionId partition,
                                                                pubsub::Offset start,
                                                                std::uint32_t max_batch,
                                                                std::optional<pubsub::Filter> filter) {
  if (filter.has_value() && wire_version_ < 2) {
    return common::Status::InvalidArgument("filtered subscribe requires protocol v2");
  }
  net::SubscribeRequest req;
  req.topic = topic;
  req.partition = partition;
  req.start = start;
  req.max_batch = max_batch;
  if (filter.has_value()) {
    req.has_filter = true;
    req.filter = std::move(*filter);
  }
  std::string payload;
  net::Encode(req, &payload);
  const std::uint64_t rid = NextId();
  // Register before sending: the first DELIVER can beat the pump back to us.
  auto state = std::make_shared<StreamState>();
  streams_[rid] = state;
  std::string response;
  const common::Status st = Call(net::Verb::kSubscribe, rid, payload, &response);
  if (!st.ok()) {
    streams_.erase(rid);
    return st;
  }
  return std::unique_ptr<Subscription>(new Subscription(this, rid, std::move(state)));
}

common::Result<std::unique_ptr<Watch>> Client::Watch(common::Key low, common::Key high,
                                                     common::Version version) {
  net::WatchRequest req;
  req.low = std::move(low);
  req.high = std::move(high);
  req.version = version;
  return OpenWatch(req);
}

common::Result<std::unique_ptr<Watch>> Client::WatchFiltered(pubsub::Filter filter,
                                                             common::Version version) {
  if (wire_version_ < 2) {
    return common::Status::InvalidArgument("filtered watch requires protocol v2");
  }
  net::WatchRequest req;
  // low/high restate the filter's range so a range-only server (or a future
  // downleveled path) still scopes the stream correctly.
  req.low = filter.range.low;
  req.high = filter.range.high;
  req.version = version;
  req.has_filter = true;
  req.filter = std::move(filter);
  return OpenWatch(req);
}

common::Result<std::unique_ptr<Watch>> Client::OpenWatch(const net::WatchRequest& req) {
  std::string payload;
  net::Encode(req, &payload);
  const std::uint64_t rid = NextId();
  auto state = std::make_shared<StreamState>();
  streams_[rid] = state;
  std::string response;
  const common::Status st = Call(net::Verb::kWatch, rid, payload, &response);
  if (!st.ok()) {
    streams_.erase(rid);
    return st;
  }
  return std::unique_ptr<::client::Watch>(new ::client::Watch(this, rid, std::move(state)));
}

common::Result<common::TimeMicros> Client::Ping() {
  net::HeartbeatBody beat;
  beat.t_us = SteadyMicros();
  std::string payload;
  net::Encode(beat, &payload);
  std::string response;
  const common::Status st = Call(net::Verb::kHeartbeat, NextId(), payload, &response);
  if (!st.ok()) {
    return st;
  }
  net::HeartbeatBody echo;
  if (!net::Decode(response, &echo) || echo.t_us != beat.t_us) {
    MarkBroken("malformed HEARTBEAT echo");
    return BrokenStatus();
  }
  return SteadyMicros() - beat.t_us;
}

void Client::CancelStream(std::uint64_t stream_id) {
  streams_.erase(stream_id);
  if (broken_) {
    return;
  }
  // Full round trip so the server has reclaimed the stream (and its
  // subscription handoff lane) by the time Cancel returns.
  std::string response;
  (void)Call(net::Verb::kCancel, stream_id, "", &response);
}

// -- Subscription --------------------------------------------------------------

Subscription::~Subscription() {
  if (!cancelled_) {
    Cancel();
  }
}

void Subscription::Cancel() {
  if (cancelled_) {
    return;
  }
  cancelled_ = true;
  client_->CancelStream(id_);
}

std::size_t Subscription::Poll(std::vector<pubsub::StoredMessage>* out, std::size_t max,
                               common::TimeMicros timeout_us) {
  std::size_t n = 0;
  for (;;) {
    while (n < max && pending_pos_ < pending_.size()) {
      out->push_back(std::move(pending_[pending_pos_]));
      ++pending_pos_;
      ++n;
    }
    if (n >= max) {
      return n;
    }
    pending_.clear();
    pending_pos_ = 0;
    if (!state_->payloads.empty()) {
      net::MessageBatch batch;
      const bool ok = net::Decode(state_->payloads.front(), &batch, client_->wire_version_);
      state_->payloads.pop_front();
      if (!ok) {
        client_->MarkBroken("malformed DELIVER payload");
        return n;
      }
      pending_ = std::move(batch.messages);
      continue;
    }
    if (cancelled_ || state_->errored || client_->broken()) {
      return n;
    }
    if (n > 0) {
      return n;  // Don't block once something was delivered.
    }
    const common::Status st = client_->PumpUntil(
        [this] { return !state_->payloads.empty() || state_->errored; }, timeout_us);
    if (!st.ok()) {
      return n;  // Timeout or broken connection; caller re-polls.
    }
  }
}

// -- Watch ---------------------------------------------------------------------

Watch::~Watch() {
  if (!cancelled_) {
    Cancel();
  }
}

void Watch::Cancel() {
  if (cancelled_) {
    return;
  }
  cancelled_ = true;
  client_->CancelStream(id_);
}

std::size_t Watch::Poll(std::vector<net::WatchItem>* out, common::TimeMicros timeout_us) {
  if (resynced_ && state_->payloads.empty()) {
    return 0;  // W4: the stream is over.
  }
  if (state_->payloads.empty() && !cancelled_ && !client_->broken()) {
    (void)client_->PumpUntil(
        [this] { return !state_->payloads.empty() || state_->errored; }, timeout_us);
  }
  std::size_t n = 0;
  while (!state_->payloads.empty()) {
    net::WatchPush push;
    const bool ok = net::Decode(state_->payloads.front(), &push);
    state_->payloads.pop_front();
    if (!ok) {
      client_->MarkBroken("malformed WATCH_PUSH payload");
      return n;
    }
    for (net::WatchItem& item : push.items) {
      if (item.kind == net::WatchItem::Kind::kResync) {
        resynced_ = true;
      }
      out->push_back(std::move(item));
      ++n;
    }
  }
  return n;
}

}  // namespace client
