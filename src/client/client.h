// Blocking client library for pubsubd. One Client is one TCP connection and
// one protocol session: Connect() performs the HELLO handshake and (by
// default) starts a background heartbeat thread that keeps the session alive
// through the server's dead-peer window; the request verbs are synchronous
// call/response; Subscribe() and Watch() return pull-style stream objects
// over the server's push frames.
//
// Threading model: ONE user thread drives the client (requests and stream
// polls); the heartbeat thread only writes (sends are serialized by an
// internal mutex) and never reads. All frame reads happen on the user
// thread, which demultiplexes push frames (DELIVER / WATCH_PUSH) into their
// streams' queues while waiting for its own response.
//
// Backpressure: a server ERROR carrying retry_after_us is the runtime's
// saturation hint propagated over the wire. Publish/Commit retry through it
// automatically (bounded by ClientOptions::max_backpressure_retries, sleeping
// the hinted backoff each time) so callers see kUnavailable only when the
// server stays saturated past the retry budget — never a silent drop.
#ifndef SRC_CLIENT_CLIENT_H_
#define SRC_CLIENT_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/frame_decoder.h"
#include "net/messages.h"
#include "net/socket.h"
#include "net/wire.h"
#include "pubsub/broker.h"  // PublishResult, GroupId.
#include "pubsub/filter.h"
#include "pubsub/types.h"

namespace client {

struct ClientOptions {
  std::string client_name = "client";
  // Protocol version offered in HELLO; the session speaks
  // min(this, server). Set to 1 to exercise the v1 (filter-less,
  // header-less) wire shape against a v2 server.
  std::uint32_t wire_version = net::kProtocolVersion;
  // Decoder bound for server→client frames.
  std::size_t max_payload = net::kMaxPayload;
  // Background keepalive (beats at half the server's advertised interval).
  bool auto_heartbeat = true;
  // Deadline for a single request/response round trip (<= 0: wait forever).
  common::TimeMicros call_timeout_us = 10 * common::kMicrosPerSecond;
  // How many kUnavailable+retry_after rounds Publish/Commit ride out before
  // surfacing the error.
  std::size_t max_backpressure_retries = 1024;
};

class Subscription;
class Watch;

class Client {
 public:
  // Connects, handshakes (HELLO), and starts the heartbeat thread. The
  // returned client is ready for requests.
  static common::Result<std::unique_ptr<Client>> Connect(const std::string& host, int port,
                                                         ClientOptions options = {});

  // Best-effort GOODBYE, then closes. Outstanding streams become inert.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // The server's HELLO contract (heartbeat interval, payload bound, name).
  const net::HelloResponse& server_hello() const { return hello_; }
  // The version this session actually speaks: min(offered, server's HELLO).
  std::uint32_t wire_version() const { return wire_version_; }
  // True once the connection has failed; every call then returns
  // kFailedPrecondition without touching the socket.
  bool broken() const { return broken_; }

  common::Status CreateTopic(const std::string& topic, const pubsub::TopicConfig& config);

  // Publish with the requested ack level. kNone returns after the bytes are
  // written (no response awaited; backpressure errors surface on later
  // calls). kAccept/kOffset await the ack; `result` (may be null) receives
  // the assigned partition/offset for kOffset. Retries backpressure errors
  // per ClientOptions.
  common::Status Publish(const std::string& topic, common::Key key, common::Value value,
                         std::optional<pubsub::PartitionId> partition = std::nullopt,
                         net::PublishAck ack = net::PublishAck::kAccept,
                         pubsub::PublishResult* result = nullptr,
                         common::TimeMicros publish_time = 0,
                         pubsub::Headers headers = {});

  common::Result<std::vector<pubsub::StoredMessage>> Fetch(const std::string& topic,
                                                           pubsub::PartitionId partition,
                                                           pubsub::Offset offset,
                                                           std::uint32_t max);

  // kCommit acks acceptance (returns 0); kCommitReadBack/kQuery return the
  // committed offset read on the owner shard. Retries backpressure.
  common::Result<pubsub::Offset> Commit(const pubsub::GroupId& group,
                                        pubsub::PartitionId partition, pubsub::Offset offset,
                                        net::CommitMode mode = net::CommitMode::kCommit);

  // Opens a server-pushed delivery stream. The subscription must not outlive
  // the client. `filter` (v2 sessions only) asks the broker to deliver only
  // matching records — the O(matching) fanout path; on a v1 session a filter
  // is refused client-side (kInvalidArgument) rather than silently dropped.
  common::Result<std::unique_ptr<Subscription>> Subscribe(
      const std::string& topic, pubsub::PartitionId partition, pubsub::Offset start,
      std::uint32_t max_batch = 256, std::optional<pubsub::Filter> filter = std::nullopt);

  // Opens a watch stream ([low, high) from `version`). Must not outlive the
  // client. (Qualified return type: the method name shadows the class.)
  common::Result<std::unique_ptr<::client::Watch>> Watch(common::Key low, common::Key high,
                                                         common::Version version);

  // Filtered watch (v2 sessions only): the filter's range is the watch range
  // and its prefix narrows delivery broker-side. Header predicates are
  // refused by the server (change events carry no headers).
  common::Result<std::unique_ptr<::client::Watch>> WatchFiltered(pubsub::Filter filter,
                                                                 common::Version version);

  // Synchronous liveness round trip; returns the measured RTT.
  common::Result<common::TimeMicros> Ping();

  // Abrupt connection death: closes the socket with no GOODBYE and no
  // stream CANCELs, exactly like a killed process. The client is broken
  // afterwards. Churn/dead-peer tests only.
  void KillConnectionForTest();

 private:
  friend class Subscription;
  friend class ::client::Watch;

  struct StreamState {
    std::deque<std::string> payloads;  // Undrained push payloads.
    bool errored = false;
    net::ErrorBody error;
  };

  Client(net::Fd fd, ClientOptions options);

  common::Status Handshake();
  void StartHeartbeats();
  common::Result<std::unique_ptr<::client::Watch>> OpenWatch(const net::WatchRequest& req);

  // Sends one frame (serialized with the heartbeat thread).
  common::Status SendFrame(net::Verb verb, std::uint64_t request_id, const std::string& payload);
  // Sends a request (unless `send` is false: the frame was already written,
  // e.g. the handshake) and blocks for its response (same verb or ERROR,
  // same request id), demuxing pushes meanwhile. On ERROR, returns the
  // decoded status; `retry_after_us` (may be null) receives the hint.
  common::Status Call(net::Verb verb, std::uint64_t request_id, const std::string& payload,
                      std::string* response, common::TimeMicros* retry_after_us = nullptr,
                      bool send = true);

  // Reads and routes frames until `until` says stop or the deadline passes.
  // kOk when `until` fired; kUnavailable on timeout; connection errors mark
  // the client broken.
  common::Status PumpUntil(const std::function<bool()>& until, common::TimeMicros timeout_us);

  // Routes one decoded frame: pushes → stream queues, responses → slots.
  void RouteFrame(const net::Frame& frame);

  common::Status BrokenStatus() const;
  void MarkBroken(const std::string& why);

  std::uint64_t NextId() { return next_id_++; }

  // Stream half-life: Subscription/Watch unregister on destruction; frames
  // for unknown stream ids are dropped (counted in dropped_pushes_).
  void CancelStream(std::uint64_t stream_id);

  net::Fd fd_;
  ClientOptions options_;
  net::FrameDecoder decoder_;
  net::HelloResponse hello_;
  std::uint32_t wire_version_ = net::kProtocolVersion;  // Negotiated in HELLO.

  std::uint64_t next_id_ = 1;
  std::atomic<bool> broken_{false};
  std::string broken_why_;

  // Response slots for in-flight calls (user thread only).
  struct Response {
    net::Verb verb;
    std::string payload;
  };
  std::map<std::uint64_t, Response> responses_;
  std::map<std::uint64_t, std::shared_ptr<StreamState>> streams_;
  std::uint64_t dropped_pushes_ = 0;

  std::mutex write_mu_;  // Serializes user-thread sends with heartbeats.

  std::thread beat_thread_;
  std::mutex beat_mu_;
  std::condition_variable beat_cv_;
  bool beat_stop_ = false;
};

// Pull interface over a DELIVER stream. Single-threaded with its client.
class Subscription {
 public:
  ~Subscription();

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  // Appends up to `max` messages to `out` (log order). Blocks up to
  // `timeout_us` (<= 0: forever) for the first message. Returns the number
  // appended; 0 on timeout. A server-side stream error surfaces as 0 with
  // error() set.
  std::size_t Poll(std::vector<pubsub::StoredMessage>* out, std::size_t max,
                   common::TimeMicros timeout_us);

  // Cancels server-side (CANCEL round trip) and detaches.
  void Cancel();

  bool errored() const { return state_->errored; }
  const net::ErrorBody& error() const { return state_->error; }

 private:
  friend class Client;
  Subscription(Client* client, std::uint64_t id, std::shared_ptr<Client::StreamState> state)
      : client_(client), id_(id), state_(std::move(state)) {}

  Client* client_;
  std::uint64_t id_;
  std::shared_ptr<Client::StreamState> state_;
  std::vector<pubsub::StoredMessage> pending_;  // Decoded but undrained.
  std::size_t pending_pos_ = 0;
  bool cancelled_ = false;
};

// Pull interface over a WATCH_PUSH stream. `resynced()` latching true means
// the stream is over (W4): re-snapshot and re-watch.
class Watch {
 public:
  ~Watch();

  Watch(const Watch&) = delete;
  Watch& operator=(const Watch&) = delete;

  // Appends available items to `out`, blocking up to `timeout_us` for the
  // first. Returns the number appended. After a resync item, nothing more
  // ever arrives.
  std::size_t Poll(std::vector<net::WatchItem>* out, common::TimeMicros timeout_us);

  void Cancel();

  bool resynced() const { return resynced_; }

 private:
  friend class Client;
  Watch(Client* client, std::uint64_t id, std::shared_ptr<Client::StreamState> state)
      : client_(client), id_(id), state_(std::move(state)) {}

  Client* client_;
  std::uint64_t id_;
  std::shared_ptr<Client::StreamState> state_;
  bool resynced_ = false;
  bool cancelled_ = false;
};

}  // namespace client

#endif  // SRC_CLIENT_CLIENT_H_
