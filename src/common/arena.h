// Arena: a slab bump allocator for batch-scoped byte storage. A publish batch
// stages its record payloads here — each Add claims contiguous bytes from the
// current slab instead of constructing a per-message heap std::string — and
// the whole batch's storage dies (or is recycled via Reset) in one step.
//
// Ownership discipline: the arena owns every byte it hands out; returned
// pointers and string_views stay valid until Reset() or destruction. There is
// no per-allocation free — that is the point. Not thread-safe: an arena
// belongs to one producer (or one shard) at a time, exactly like the staging
// buffers it backs.
#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace common {

class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  // `slab_bytes` is the granularity of growth; allocations larger than a slab
  // get a dedicated slab of exactly their size.
  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes == 0 ? 1 : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Claims `n` contiguous bytes (n == 0 returns a non-null sentinel into the
  // current slab). No alignment guarantee beyond byte — this is byte-payload
  // storage, not object storage.
  char* Allocate(std::size_t n) {
    if (slabs_.empty() || used_ + n > slabs_.back().size) {
      NewSlab(n);
    }
    char* p = slabs_.back().bytes.get() + used_;
    used_ += n;
    bytes_allocated_ += n;
    return p;
  }

  // Copies `s` into the arena and returns a view over the copy.
  std::string_view CopyString(std::string_view s) {
    char* p = Allocate(s.size());
    if (!s.empty()) {
      std::memcpy(p, s.data(), s.size());
    }
    return std::string_view(p, s.size());
  }

  // Rewinds the arena, invalidating every outstanding pointer/view. The
  // largest slab is retained and reused so a steady-state batch loop settles
  // into zero allocations; the rest are freed.
  void Reset() {
    if (!slabs_.empty()) {
      std::size_t largest = 0;
      for (std::size_t i = 1; i < slabs_.size(); ++i) {
        if (slabs_[i].size > slabs_[largest].size) {
          largest = i;
        }
      }
      Slab keep = std::move(slabs_[largest]);
      slabs_.clear();
      slabs_.push_back(std::move(keep));
    }
    used_ = 0;
    bytes_allocated_ = 0;
  }

  // Total bytes handed out since construction/Reset.
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  // Bytes of slab storage currently held (capacity, not usage).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Slab& slab : slabs_) {
      total += slab.size;
    }
    return total;
  }
  std::size_t slab_count() const { return slabs_.size(); }

 private:
  struct Slab {
    std::unique_ptr<char[]> bytes;
    std::size_t size = 0;
  };

  void NewSlab(std::size_t at_least) {
    const std::size_t size = at_least > slab_bytes_ ? at_least : slab_bytes_;
    Slab slab;
    slab.bytes = std::make_unique<char[]>(size);
    slab.size = size;
    slabs_.push_back(std::move(slab));
    used_ = 0;
  }

  std::size_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t used_ = 0;  // Bump offset into slabs_.back().
  std::size_t bytes_allocated_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_ARENA_H_
