// IntervalMap<V>: a total map from the key space to values of type V,
// represented as ordered, disjoint, contiguous segments. This is the
// load-bearing structure behind range-scoped progress tracking (watch),
// dynamic shard assignment tables (sharding), and knowledge regions (Figure 5
// of the paper).
//
// Segments are half-open [start, next_start); the final segment extends to
// +infinity. The map always covers the entire key space: constructing it
// requires a default value.
#ifndef SRC_COMMON_INTERVAL_MAP_H_
#define SRC_COMMON_INTERVAL_MAP_H_

#include <cassert>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace common {

template <typename V>
class IntervalMap {
 public:
  struct Segment {
    KeyRange range;
    V value;
  };

  explicit IntervalMap(V default_value) { segments_[Key()] = std::move(default_value); }

  // The value governing `key`.
  const V& Get(std::string_view key) const {
    auto it = segments_.upper_bound(Key(key));
    assert(it != segments_.begin());
    --it;
    return it->second;
  }

  // Sets [range.low, range.high) to `value`, splitting overlapping segments at
  // the boundaries.
  void Assign(const KeyRange& range, V value) {
    Transform(range, [&value](const V&) { return value; });
  }

  // Applies `fn` to every segment overlapping `range`, after splitting
  // segments at the range boundaries so `fn` sees only fully-covered
  // segments. `fn` receives the current value and returns the new value.
  void Transform(const KeyRange& range, const std::function<V(const V&)>& fn) {
    if (range.Empty()) {
      return;
    }
    SplitAt(range.low);
    if (!range.unbounded_above()) {
      SplitAt(range.high);
    }
    auto it = segments_.find(range.low);
    assert(it != segments_.end());
    while (it != segments_.end()) {
      if (!range.unbounded_above() && it->first >= range.high) {
        break;
      }
      it->second = fn(it->second);
      ++it;
    }
    Coalesce(range);
  }

  // Visits every segment overlapping `range` without modifying the map. The
  // visited ranges are clipped to `range`.
  void Visit(const KeyRange& range,
             const std::function<void(const KeyRange&, const V&)>& visit) const {
    if (range.Empty()) {
      return;
    }
    auto it = segments_.upper_bound(range.low);
    assert(it != segments_.begin());
    --it;
    for (; it != segments_.end(); ++it) {
      KeyRange seg_range = SegmentRange(it);
      KeyRange clipped = seg_range.Intersect(range);
      if (clipped.Empty()) {
        if (!range.unbounded_above() && seg_range.low >= range.high) {
          break;
        }
        continue;
      }
      visit(clipped, it->second);
    }
  }

  // All segments, in key order.
  std::vector<Segment> Segments() const {
    std::vector<Segment> out;
    out.reserve(segments_.size());
    for (auto it = segments_.begin(); it != segments_.end(); ++it) {
      out.push_back(Segment{SegmentRange(it), it->second});
    }
    return out;
  }

  std::size_t segment_count() const { return segments_.size(); }

  // Folds `fn` over all segment values overlapping `range` (clipped), starting
  // from `init`. Convenient for min/max queries, e.g. the progress frontier of
  // a watched range.
  template <typename Acc>
  Acc Fold(const KeyRange& range, Acc init,
           const std::function<Acc(Acc, const KeyRange&, const V&)>& fn) const {
    Acc acc = std::move(init);
    Visit(range, [&acc, &fn](const KeyRange& r, const V& v) { acc = fn(std::move(acc), r, v); });
    return acc;
  }

 private:
  using Map = std::map<Key, V>;

  KeyRange SegmentRange(typename Map::const_iterator it) const {
    auto next = std::next(it);
    return KeyRange{it->first, next == segments_.end() ? Key() : next->first};
  }

  // Ensures a segment boundary exists at `key` (no-op at the key-space start).
  void SplitAt(const Key& key) {
    if (key.empty()) {
      return;
    }
    auto it = segments_.upper_bound(key);
    assert(it != segments_.begin());
    --it;
    if (it->first == key) {
      return;
    }
    segments_.emplace(key, it->second);
  }

  // Merges adjacent equal-valued segments in the neighbourhood of `range`.
  void Coalesce(const KeyRange& range) {
    auto it = segments_.upper_bound(range.low);
    if (it != segments_.begin()) {
      --it;
    }
    if (it != segments_.begin()) {
      --it;  // Also consider the segment immediately preceding the range.
    }
    while (it != segments_.end()) {
      auto next = std::next(it);
      if (next == segments_.end()) {
        break;
      }
      const bool past_range = !range.unbounded_above() && it->first > range.high;
      if (past_range) {
        break;
      }
      if (it->second == next->second) {
        segments_.erase(next);
        continue;  // Re-examine the same segment against its new neighbour.
      }
      ++it;
    }
  }

  Map segments_;
};

}  // namespace common

#endif  // SRC_COMMON_INTERVAL_MAP_H_
