// Lightweight metrics used by the experiment harness: counters, gauges, and
// sample-based histograms with percentile queries. Deterministic (no clock
// reads); values come from the simulator.
#ifndef SRC_COMMON_METRICS_H_
#define SRC_COMMON_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace common {

class Counter {
 public:
  void Increment(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

// Stores raw samples; percentile queries sort a copy. Fine at the sample
// volumes the harness produces (bounded by simulated events).
class Histogram {
 public:
  void Record(double sample) { samples_.push_back(sample); }

  std::size_t count() const { return samples_.size(); }

  double Sum() const {
    double s = 0;
    for (double v : samples_) {
      s += v;
    }
    return s;
  }

  double Mean() const { return samples_.empty() ? 0.0 : Sum() / static_cast<double>(count()); }

  double Max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  // p in [0, 100].
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  void Reset() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

// A named registry so components can export metrics without wiring plumbing
// through every constructor. One registry per experiment run.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  void Reset() {
    counters_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace common

#endif  // SRC_COMMON_METRICS_H_
