// Lightweight metrics used by the experiment harness and the concurrent
// runtime: counters, gauges-as-counters, and bounded sample histograms with
// percentile queries. Deterministic (no clock reads); values come from the
// simulator or from caller-supplied timestamps.
//
// Thread safety: Counter is lock-free (relaxed atomic); Histogram::Record and
// all Histogram queries take an internal mutex; MetricsRegistry lookup is
// mutex-guarded and returns references with stable addresses (std::map nodes
// never move), so shards may cache and hit them concurrently. The iteration
// accessors (counters()/histograms()) are for quiesced, single-threaded
// harness reads only.
#ifndef SRC_COMMON_METRICS_H_
#define SRC_COMMON_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace common {

class Counter {
 public:
  void Increment(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A last-writer-wins sampled value (watermarks: delivery lag, queue depth).
// Unlike Counter it records a level, not a rate; samplers overwrite it.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A point-in-time copy of one histogram, taken under the histogram's lock so
// count/sum/max/samples are mutually consistent even while writers keep
// recording: `samples.size() == min(count, reservoir_size)` always holds, and
// no racing Record can be half-visible (counted but not sampled, or
// vice versa). This is the unit cross-shard aggregation works in — see
// MergedHistogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::vector<double> samples;  // The reservoir at snapshot time.
};

// Bounded histogram: count / sum / max are exact; percentile queries read a
// fixed-size reservoir (Vitter's algorithm R with a deterministically seeded
// Rng). Below the reservoir bound every sample is retained, so percentiles
// are exact there; above it they are unbiased estimates. Identical record
// sequences produce identical reservoirs, keeping experiment output
// reproducible.
class Histogram {
 public:
  static constexpr std::size_t kDefaultReservoirSize = 4096;
  static constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

  Histogram() : Histogram(kDefaultReservoirSize) {}
  explicit Histogram(std::size_t reservoir_size, std::uint64_t seed = kDefaultSeed)
      : reservoir_size_(reservoir_size == 0 ? 1 : reservoir_size), seed_(seed), rng_(seed) {}

  void Record(double sample) {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    sum_ += sample;
    max_ = count_ == 1 ? sample : std::max(max_, sample);
    if (samples_.size() < reservoir_size_) {
      samples_.push_back(sample);
      return;
    }
    // Algorithm R: the i-th sample replaces a reservoir slot with
    // probability reservoir_size / i.
    const std::uint64_t j = rng_.Below(count_);
    if (j < reservoir_size_) {
      samples_[static_cast<std::size_t>(j)] = sample;
    }
  }

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::size_t>(count_);
  }

  double Sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }

  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  double Max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : max_;
  }

  // p in [0, 100]. Exact while count() <= reservoir_size(); estimated beyond.
  double Percentile(double p) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  // Consistent copy under one lock acquisition: the only correct input to
  // cross-shard merging. Reading count() and Percentile() as two separate
  // calls while writers record yields torn pairs (a sample counted in one
  // read but missing from the other) — the double-count class of bug the
  // metrics regression suite pins down.
  HistogramSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    HistogramSnapshot snap;
    snap.count = count_;
    snap.sum = sum_;
    snap.max = count_ == 0 ? 0.0 : max_;
    snap.samples = samples_;
    return snap;
  }

  std::size_t reservoir_size() const { return reservoir_size_; }

  // Samples currently held (== min(count, reservoir_size)); test hook for the
  // boundedness guarantee.
  std::size_t retained_samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    count_ = 0;
    sum_ = 0.0;
    max_ = 0.0;
    rng_ = Rng(seed_);  // Restart the sampling stream: Reset is deterministic.
  }

 private:
  mutable std::mutex mu_;
  std::size_t reservoir_size_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<double> samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

// Cross-shard histogram aggregation. Shards record into private histograms
// (no lock contention on a shared one); a reader folds their snapshots into
// a MergedHistogram and queries percentiles of the *pooled* distribution.
//
// The merge is a weighted union of the reservoirs, NOT an average of
// per-shard percentiles: averaging percentiles is wrong whenever shards saw
// different sample counts or different distributions (the p99 of a shard
// that recorded 10 samples must not weigh as much as the p99 of one that
// recorded a million). Each retained sample from a shard with count C and
// reservoir size R stands for C/R recorded values; Percentile() walks the
// value-sorted weighted samples to the requested cumulative rank.
class MergedHistogram {
 public:
  void Add(const HistogramSnapshot& snap) {
    if (snap.count == 0 || snap.samples.empty()) {
      return;
    }
    const double weight =
        static_cast<double>(snap.count) / static_cast<double>(snap.samples.size());
    weighted_.reserve(weighted_.size() + snap.samples.size());
    for (double s : snap.samples) {
      weighted_.push_back({s, weight});
    }
    if (count_ == 0 || snap.max > max_) {
      max_ = snap.max;
    }
    count_ += snap.count;
    sum_ += snap.sum;
  }

  std::uint64_t count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

  // p in [0, 100]: the value at cumulative weight p% of the pooled count.
  double Percentile(double p) const {
    if (weighted_.empty()) {
      return 0.0;
    }
    std::vector<std::pair<double, double>> sorted = weighted_;
    std::sort(sorted.begin(), sorted.end());
    double total = 0.0;
    for (const auto& [value, weight] : sorted) {
      total += weight;
    }
    const double rank = (p / 100.0) * total;
    double cum = 0.0;
    for (const auto& [value, weight] : sorted) {
      cum += weight;
      if (cum >= rank) {
        return value;
      }
    }
    return sorted.back().first;
  }

 private:
  std::vector<std::pair<double, double>> weighted_;  // (value, weight) pairs.
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

// A named registry so components can export metrics without wiring plumbing
// through every constructor. One registry per experiment run. Lookup may be
// called from any thread; the returned references stay valid for the
// registry's lifetime (Reset invalidates them).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
  }
  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_[name];
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
  }

  // Quiesced-read iteration only: do not call concurrently with lookups that
  // may insert.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }

  // Concurrent-safe histogram snapshot: holds the registry lock while
  // walking the map (so a racing histogram() insert cannot invalidate the
  // iteration) and takes each histogram's own consistent Snapshot(). Names
  // not starting with `prefix` are skipped (empty prefix = all). This — not
  // histograms() — is the path for live aggregation while shards record.
  std::map<std::string, HistogramSnapshot> SnapshotHistograms(const std::string& prefix = "") {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, HistogramSnapshot> out;
    for (const auto& [name, hist] : histograms_) {
      if (name.compare(0, prefix.size(), prefix) == 0) {
        out.emplace(name, hist.Snapshot());
      }
    }
    return out;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    histograms_.clear();
    gauges_.clear();
  }

 private:
  std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace common

#endif  // SRC_COMMON_METRICS_H_
