// Deterministic PRNG used throughout the simulator and workload generators.
// All experiments are seeded so anomaly counts are exactly reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>

namespace common {

// xoshiro256** seeded via splitmix64. Small, fast, and deterministic across
// platforms (unlike std::default_random_engine / std::*_distribution).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    while (true) {
      const std::uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (used for inter-arrival times).
  double Exponential(double mean) {
    double u = NextDouble();
    while (u <= 0.0) {
      u = NextDouble();
    }
    return -mean * std::log(u);
  }

  // Zipf-like skewed index in [0, n): rank r is chosen with probability
  // proportional to 1/(r+1)^theta. theta = 0 is uniform.
  std::uint64_t Zipf(std::uint64_t n, double theta) {
    assert(n > 0);
    if (theta <= 0.0) {
      return Below(n);
    }
    // Inverse-CDF on the (approximate) continuous Zipf distribution; accurate
    // enough for workload skew and much cheaper than tabulating harmonics.
    const double u = NextDouble();
    if (theta == 1.0) {
      const double h = std::log(static_cast<double>(n) + 1.0);
      const double x = std::exp(u * h) - 1.0;
      const auto idx = static_cast<std::uint64_t>(x);
      return idx < n ? idx : n - 1;
    }
    const double e = 1.0 - theta;
    const double h = (std::pow(static_cast<double>(n) + 1.0, e) - 1.0) / e;
    const double x = std::pow(u * h * e + 1.0, 1.0 / e) - 1.0;
    const auto idx = static_cast<std::uint64_t>(x);
    return idx < n ? idx : n - 1;
  }

  // Derives an independent child stream (for per-component determinism).
  Rng Fork() { return Rng(Next()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4] = {};
};

// Fixed-width zero-padded decimal keys ("k00001234") so lexicographic key
// order matches numeric order; used by workload generators and tests.
inline std::string IndexKey(std::uint64_t index, int width = 8) {
  std::string digits = std::to_string(index);
  std::string out = "k";
  if (static_cast<int>(digits.size()) < width) {
    out.append(static_cast<std::size_t>(width) - digits.size(), '0');
  }
  out += digits;
  return out;
}

}  // namespace common

#endif  // SRC_COMMON_RNG_H_
