// Status / Result<T>: exception-free error handling in the style of
// absl::Status. All fallible public APIs in this library return one of these.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace common {

enum class StatusCode : int {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,      // e.g. requested version no longer retained.
  kUnavailable,     // e.g. node down, partitioned, no lease owner.
  kAborted,         // e.g. transaction conflict.
  kResourceExhausted,
  kInternal,
};

constexpr std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m = "") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m = "") {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Aborted(std::string m = "") { return Status(StatusCode::kAborted, std::move(m)); }
  static Status ResourceExhausted(std::string m = "") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m = "") { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {        // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace common

// Propagates a non-OK status from an expression, absl-style.
#define RETURN_IF_ERROR(expr)              \
  do {                                     \
    ::common::Status _st = (expr);         \
    if (!_st.ok()) {                       \
      return _st;                          \
    }                                      \
  } while (false)

#endif  // SRC_COMMON_STATUS_H_
