// Core value types shared across the library: keys, versions, key ranges, and
// mutations. These mirror the vocabulary of the paper's Section 4.2 watch API:
// change events are organized "by key and by transaction version".
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "obs/trace.h"

namespace common {

// Keys are ordered byte strings; ranges over them are half-open [low, high).
using Key = std::string;
using Value = std::string;

// A monotonic transaction version (the paper's "simplifying assumption": the
// source of truth has monotonic transaction versions, e.g. TrueTime / TSO /
// gtid). Version 0 is reserved to mean "before any committed state".
using Version = std::uint64_t;
inline constexpr Version kNoVersion = 0;
inline constexpr Version kMaxVersion = ~static_cast<Version>(0);

// Simulated time, in microseconds since simulation start.
using TimeMicros = std::int64_t;
inline constexpr TimeMicros kMicrosPerMilli = 1000;
inline constexpr TimeMicros kMicrosPerSecond = 1000 * 1000;

// A half-open key range [low, high). An empty `high` means "unbounded above"
// (the range extends to the end of the key space); this makes the full key
// space representable as KeyRange{"", ""}.
struct KeyRange {
  Key low;
  Key high;  // Exclusive; empty means +infinity.

  static KeyRange All() { return KeyRange{"", ""}; }
  static KeyRange Single(Key k) {
    Key next = k;
    next.push_back('\0');  // The smallest key strictly greater than k.
    return KeyRange{std::move(k), std::move(next)};
  }

  bool unbounded_above() const { return high.empty(); }

  bool Contains(std::string_view key) const {
    if (key < low) {
      return false;
    }
    return unbounded_above() || key < high;
  }

  bool Empty() const { return !unbounded_above() && high <= low; }

  // True when the two ranges share at least one key.
  bool Overlaps(const KeyRange& other) const {
    if (Empty() || other.Empty()) {
      return false;
    }
    const bool this_below = !unbounded_above() && high <= other.low;
    const bool other_below = !other.unbounded_above() && other.high <= low;
    return !this_below && !other_below;
  }

  // True when `other` is fully contained within this range.
  bool Covers(const KeyRange& other) const {
    if (other.Empty()) {
      return true;
    }
    if (other.low < low) {
      return false;
    }
    if (unbounded_above()) {
      return true;
    }
    if (other.unbounded_above()) {
      return false;
    }
    return other.high <= high;
  }

  // The overlap of the two ranges (possibly empty).
  KeyRange Intersect(const KeyRange& other) const {
    KeyRange out;
    out.low = std::max(low, other.low);
    if (unbounded_above()) {
      out.high = other.high;
    } else if (other.unbounded_above()) {
      out.high = high;
    } else {
      out.high = std::min(high, other.high);
    }
    if (!out.unbounded_above() && out.high < out.low) {
      out.high = out.low;  // Normalize to an empty range at `low`.
    }
    return out;
  }

  friend bool operator==(const KeyRange&, const KeyRange&) = default;
};

// The kind of change applied to a key. `kPut` carries the new value; `kDelete`
// removes the key (replication layers may turn this into a tombstone).
enum class MutationKind : std::uint8_t {
  kPut,
  kDelete,
};

// A single-key mutation, as carried by change events.
struct Mutation {
  MutationKind kind = MutationKind::kPut;
  Value value;  // Meaningful only for kPut.

  static Mutation Put(Value v) { return Mutation{MutationKind::kPut, std::move(v)}; }
  static Mutation Delete() { return Mutation{MutationKind::kDelete, {}}; }

  friend bool operator==(const Mutation&, const Mutation&) = default;
};

// A change event: "key K changed to M as of version V" (paper Section 4.2.1).
// `txn_last` marks the final event of a transaction so consumers can apply
// transactions atomically if they choose to.
struct ChangeEvent {
  Key key;
  Mutation mutation;
  Version version = kNoVersion;
  bool txn_last = true;
  // Latency-tracing context (obs layer). Last member so aggregate
  // initializers that omit it keep working; excluded from equality and from
  // WAL serialization — tracing is measurement, not semantics.
  obs::TraceContext trace{};

  friend bool operator==(const ChangeEvent& a, const ChangeEvent& b) {
    return a.key == b.key && a.mutation == b.mutation && a.version == b.version &&
           a.txn_last == b.txn_last;
  }
};

// A progress event: all change events affecting [low, high) have been supplied
// up to and including `version` (paper Section 4.2.1). Progress is range
// scoped rather than global or tied to static partitions.
struct ProgressEvent {
  KeyRange range;
  Version version = kNoVersion;

  friend bool operator==(const ProgressEvent&, const ProgressEvent&) = default;
};

}  // namespace common

#endif  // SRC_COMMON_TYPES_H_
