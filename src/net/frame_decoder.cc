#include "net/frame_decoder.h"

#include <algorithm>

namespace net {

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(std::min(max_payload, kMaxPayload)) {}

void FrameDecoder::Feed(std::string_view data) {
  if (failed() || data.empty()) {
    return;
  }
  // Compact before growing when the dead prefix dominates: appends then reuse
  // the buffer's capacity instead of letting it creep per consumed frame.
  if (head_ > 0 && head_ >= buffer_.size() / 2) {
    buffer_.erase(0, head_);
    head_ = 0;
  }
  buffer_.append(data.data(), data.size());
}

FrameDecoder::Result FrameDecoder::Fail(FrameError e) {
  error_ = e;
  return Result::kError;
}

FrameDecoder::Result FrameDecoder::Next(Frame* out) {
  if (failed()) {
    return Result::kError;
  }
  const std::size_t avail = buffer_.size() - head_;
  if (avail < kHeaderSize) {
    return Result::kNeedMore;
  }
  const char* h = buffer_.data() + head_;
  // Validate in integrity order: the CRC vouches for the whole header, so
  // check the cheap sentinels first (desync reads as bad magic, not as a
  // mysterious CRC miss), then the CRC, then trust the fields.
  if (GetU16(h) != kMagic) {
    return Fail(FrameError::kBadMagic);
  }
  const std::uint8_t version = static_cast<std::uint8_t>(h[2]);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Fail(FrameError::kBadVersion);
  }
  const std::uint32_t stored_header_crc = GetU32(h + 20);
  if (wal::UnmaskCrc(stored_header_crc) != wal::Crc32c({h, kHeaderSize - 4})) {
    return Fail(FrameError::kHeaderCorrupt);
  }
  if (!KnownVerb(static_cast<std::uint8_t>(h[3]))) {
    return Fail(FrameError::kBadVerb);
  }
  const std::uint32_t payload_len = GetU32(h + 4);
  if (payload_len > max_payload_) {
    return Fail(FrameError::kOversized);
  }
  if (avail < kHeaderSize + payload_len) {
    return Result::kNeedMore;
  }
  const std::string_view payload{buffer_.data() + head_ + kHeaderSize, payload_len};
  const std::uint32_t stored_payload_crc = GetU32(h + 16);
  if (wal::UnmaskCrc(stored_payload_crc) != wal::Crc32c(payload)) {
    return Fail(FrameError::kPayloadCorrupt);
  }
  out->verb = static_cast<Verb>(h[3]);
  out->version = version;
  out->request_id = GetU64(h + 8);
  out->payload = payload;
  head_ += kHeaderSize + payload_len;
  ++frames_decoded_;
  return Result::kFrame;
}

}  // namespace net
