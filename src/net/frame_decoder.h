// FrameDecoder: incremental, allocation-conscious parser for the net frame
// stream. Bytes arrive in arbitrary chunks (Feed); complete frames come out
// one at a time (Next), with the payload viewed in place — no per-frame
// allocation, and the contiguous buffer is compacted only when the consumed
// prefix dominates it.
//
// Corruption is terminal and loud. Every rejection carries a typed
// FrameError; after the first error the decoder refuses further input — a
// TCP stream that has lost framing cannot resynchronize (there is no frame
// boundary to hunt for once a length field is untrusted), so the connection
// owner must tear the session down and let the client reconnect. Truncation
// (a clean prefix of a valid frame) is NOT an error while the stream is
// open: Next() simply reports kNeedMore until the rest arrives; it becomes
// an error only when the owner observes EOF with buffered bytes
// (BytesBuffered() > 0).
#ifndef SRC_NET_FRAME_DECODER_H_
#define SRC_NET_FRAME_DECODER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace net {

// Why a frame (and therefore the connection) was rejected.
enum class FrameError : std::uint8_t {
  kNone = 0,
  kBadMagic,        // Stream desync or a non-protocol peer.
  kBadVersion,      // Protocol version mismatch (peer must reconnect/upgrade).
  kHeaderCorrupt,   // Header CRC failed: bit flip or torn header.
  kBadVerb,         // Structurally valid header naming an unknown verb.
  kOversized,       // payload_len exceeds the decoder's bound.
  kPayloadCorrupt,  // Payload CRC failed.
};

inline const char* FrameErrorName(FrameError e) {
  switch (e) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad_magic";
    case FrameError::kBadVersion: return "bad_version";
    case FrameError::kHeaderCorrupt: return "header_corrupt";
    case FrameError::kBadVerb: return "bad_verb";
    case FrameError::kOversized: return "oversized";
    case FrameError::kPayloadCorrupt: return "payload_corrupt";
  }
  return "?";
}

class FrameDecoder {
 public:
  // `max_payload` bounds accepted frames (and therefore buffer growth);
  // clamped to the protocol ceiling.
  explicit FrameDecoder(std::size_t max_payload = kMaxPayload);

  FrameDecoder(const FrameDecoder&) = delete;
  FrameDecoder& operator=(const FrameDecoder&) = delete;

  // Appends raw bytes. No-op once the decoder has failed.
  void Feed(std::string_view data);

  enum class Result : std::uint8_t {
    kFrame,     // *out holds the next frame (payload view valid until the
                // next Feed/Next call).
    kNeedMore,  // A clean partial frame; feed more bytes.
    kError,     // Terminal; see error().
  };

  Result Next(Frame* out);

  bool failed() const { return error_ != FrameError::kNone; }
  FrameError error() const { return error_; }
  // Unconsumed bytes (a partial frame, or everything after a failure). At
  // EOF a nonzero value means the peer died mid-frame.
  std::size_t BytesBuffered() const { return buffer_.size() - head_; }
  std::uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  Result Fail(FrameError e);

  std::size_t max_payload_;
  std::string buffer_;
  std::size_t head_ = 0;  // Consumed prefix; compacted lazily.
  FrameError error_ = FrameError::kNone;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace net

#endif  // SRC_NET_FRAME_DECODER_H_
