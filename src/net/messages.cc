#include "net/messages.h"

#include <algorithm>
#include <utility>

namespace net {

namespace {

// Sequence counts are bounded so a structurally valid but hostile count
// cannot force a huge reserve before element decoding fails naturally. The
// frame payload bound is the real limit; this only caps the pre-reserve.
constexpr std::uint32_t kMaxReserve = 4096;

void EncodeHeaders(const pubsub::Headers& headers, Writer& w) {
  w.U32(static_cast<std::uint32_t>(headers.size()));
  for (const auto& [name, value] : headers) {
    w.Str(name);
    w.Str(value);
  }
}

bool DecodeHeaders(Reader& r, pubsub::Headers* headers) {
  std::uint32_t n = 0;
  if (!r.U32(&n)) {
    return false;
  }
  headers->clear();
  headers->reserve(std::min(n, kMaxReserve));
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::string value;
    if (!r.Str(&name) || !r.Str(&value)) {
      return false;
    }
    headers->emplace_back(std::move(name), std::move(value));
  }
  return true;
}

// v2 messages always carry a header block (count may be zero); v1 never does.
void EncodeMessage(const pubsub::Message& m, Writer& w, std::uint32_t wire_version) {
  w.Str(m.key);
  w.Str(m.value);
  w.I64(m.publish_time);
  if (wire_version >= 2) {
    EncodeHeaders(m.headers, w);
  }
}

bool DecodeMessage(Reader& r, pubsub::Message* m, std::uint32_t wire_version) {
  if (!r.Str(&m->key) || !r.Str(&m->value) || !r.I64(&m->publish_time)) {
    return false;
  }
  if (wire_version >= 2) {
    return DecodeHeaders(r, &m->headers);
  }
  m->headers.clear();
  return true;
}

void EncodeStored(const pubsub::StoredMessage& m, Writer& w, std::uint32_t wire_version) {
  w.U64(m.offset);
  EncodeMessage(m.message, w, wire_version);
}

bool DecodeStored(Reader& r, pubsub::StoredMessage* m, std::uint32_t wire_version) {
  return r.U64(&m->offset) && DecodeMessage(r, &m->message, wire_version);
}

// Filter block: range low/high (empty high = unbounded, mirroring KeyRange),
// prefix, then the header conjunction. Op bytes outside the enum are a
// malformation, not a soft skip.
void EncodeFilter(const pubsub::Filter& f, Writer& w) {
  w.Str(f.range.low);
  w.Str(f.range.high);
  w.Str(f.key_prefix);
  w.U32(static_cast<std::uint32_t>(f.headers.size()));
  for (const pubsub::HeaderPredicate& p : f.headers) {
    w.Str(p.name);
    w.U8(static_cast<std::uint8_t>(p.op));
    w.Str(p.value);
  }
}

bool DecodeFilter(Reader& r, pubsub::Filter* f) {
  std::uint32_t n = 0;
  if (!r.Str(&f->range.low) || !r.Str(&f->range.high) || !r.Str(&f->key_prefix) || !r.U32(&n)) {
    return false;
  }
  f->headers.clear();
  f->headers.reserve(std::min(n, kMaxReserve));
  for (std::uint32_t i = 0; i < n; ++i) {
    pubsub::HeaderPredicate p;
    std::uint8_t op = 0;
    if (!r.Str(&p.name) || !r.U8(&op) || !r.Str(&p.value)) {
      return false;
    }
    if (op > static_cast<std::uint8_t>(pubsub::HeaderPredicate::Op::kNe)) {
      return false;
    }
    p.op = static_cast<pubsub::HeaderPredicate::Op>(op);
    f->headers.push_back(std::move(p));
  }
  return true;
}

void EncodeChange(const common::ChangeEvent& e, Writer& w) {
  w.Str(e.key);
  w.U8(static_cast<std::uint8_t>(e.mutation.kind));
  w.Str(e.mutation.value);
  w.U64(e.version);
  w.Bool(e.txn_last);
}

bool DecodeChange(Reader& r, common::ChangeEvent* e) {
  std::uint8_t kind = 0;
  if (!r.Str(&e->key) || !r.U8(&kind) || !r.Str(&e->mutation.value) || !r.U64(&e->version) ||
      !r.Bool(&e->txn_last)) {
    return false;
  }
  if (kind > static_cast<std::uint8_t>(common::MutationKind::kDelete)) {
    return false;
  }
  e->mutation.kind = static_cast<common::MutationKind>(kind);
  return true;
}

}  // namespace

void Encode(const HelloRequest& m, std::string* out) {
  Writer w(out);
  w.U32(m.wire_version);
  w.Str(m.client_name);
}

bool Decode(std::string_view payload, HelloRequest* m) {
  Reader r(payload);
  return r.U32(&m->wire_version) && r.Str(&m->client_name) && r.AtEnd();
}

void Encode(const HelloResponse& m, std::string* out) {
  Writer w(out);
  w.U32(m.wire_version);
  w.I64(m.heartbeat_interval_us);
  w.U32(m.heartbeat_misses);
  w.U32(m.max_payload);
  w.Str(m.server_name);
}

bool Decode(std::string_view payload, HelloResponse* m) {
  Reader r(payload);
  return r.U32(&m->wire_version) && r.I64(&m->heartbeat_interval_us) &&
         r.U32(&m->heartbeat_misses) && r.U32(&m->max_payload) && r.Str(&m->server_name) &&
         r.AtEnd();
}

void Encode(const ErrorBody& m, std::string* out) {
  Writer w(out);
  w.U32(m.code);
  w.I64(m.retry_after_us);
  w.Str(m.message);
}

bool Decode(std::string_view payload, ErrorBody* m) {
  Reader r(payload);
  return r.U32(&m->code) && r.I64(&m->retry_after_us) && r.Str(&m->message) && r.AtEnd();
}

void Encode(const CreateTopicRequest& m, std::string* out) {
  Writer w(out);
  w.Str(m.topic);
  w.U32(m.config.partitions);
  w.I64(m.config.retention.retention);
  w.U64(m.config.retention.max_messages);
  w.Bool(m.config.retention.compacted);
  w.I64(m.config.retention.compaction_window);
}

bool Decode(std::string_view payload, CreateTopicRequest* m) {
  Reader r(payload);
  return r.Str(&m->topic) && r.U32(&m->config.partitions) &&
         r.I64(&m->config.retention.retention) && r.U64(&m->config.retention.max_messages) &&
         r.Bool(&m->config.retention.compacted) &&
         r.I64(&m->config.retention.compaction_window) && r.AtEnd();
}

void Encode(const PublishRequest& m, std::string* out) {
  Writer w(out);
  w.Str(m.topic);
  w.U8(static_cast<std::uint8_t>(m.ack));
  w.Bool(m.has_partition);
  w.U32(m.partition);
  w.Str(m.key);
  w.Str(m.value);
  w.I64(m.publish_time);
  if (!m.headers.empty()) {
    EncodeHeaders(m.headers, w);
  }
}

bool Decode(std::string_view payload, PublishRequest* m) {
  Reader r(payload);
  std::uint8_t ack = 0;
  if (!(r.Str(&m->topic) && r.U8(&ack) && r.Bool(&m->has_partition) && r.U32(&m->partition) &&
        r.Str(&m->key) && r.Str(&m->value) && r.I64(&m->publish_time))) {
    return false;
  }
  if (ack > static_cast<std::uint8_t>(PublishAck::kOffset)) {
    return false;
  }
  m->ack = static_cast<PublishAck>(ack);
  m->headers.clear();
  if (!r.AtEnd() && !DecodeHeaders(r, &m->headers)) {
    return false;
  }
  return r.AtEnd();
}

void Encode(const PublishResponse& m, std::string* out) {
  Writer w(out);
  w.Bool(m.has_offset);
  w.U32(m.partition);
  w.U64(m.offset);
}

bool Decode(std::string_view payload, PublishResponse* m) {
  Reader r(payload);
  return r.Bool(&m->has_offset) && r.U32(&m->partition) && r.U64(&m->offset) && r.AtEnd();
}

void Encode(const FetchRequest& m, std::string* out) {
  Writer w(out);
  w.Str(m.topic);
  w.U32(m.partition);
  w.U64(m.offset);
  w.U32(m.max);
}

bool Decode(std::string_view payload, FetchRequest* m) {
  Reader r(payload);
  return r.Str(&m->topic) && r.U32(&m->partition) && r.U64(&m->offset) && r.U32(&m->max) &&
         r.AtEnd();
}

void Encode(const MessageBatch& m, std::string* out, std::uint32_t wire_version) {
  Writer w(out);
  w.U32(static_cast<std::uint32_t>(m.messages.size()));
  for (const pubsub::StoredMessage& s : m.messages) {
    EncodeStored(s, w, wire_version);
  }
}

bool Decode(std::string_view payload, MessageBatch* m, std::uint32_t wire_version) {
  Reader r(payload);
  std::uint32_t n = 0;
  if (!r.U32(&n)) {
    return false;
  }
  m->messages.clear();
  m->messages.reserve(std::min(n, kMaxReserve));
  for (std::uint32_t i = 0; i < n; ++i) {
    pubsub::StoredMessage s;
    if (!DecodeStored(r, &s, wire_version)) {
      return false;
    }
    m->messages.push_back(std::move(s));
  }
  return r.AtEnd();
}

void Encode(const SubscribeRequest& m, std::string* out) {
  Writer w(out);
  w.Str(m.topic);
  w.U32(m.partition);
  w.U64(m.start);
  w.U32(m.max_batch);
  if (m.has_filter) {
    w.Bool(true);
    EncodeFilter(m.filter, w);
  }
}

bool Decode(std::string_view payload, SubscribeRequest* m) {
  Reader r(payload);
  if (!(r.Str(&m->topic) && r.U32(&m->partition) && r.U64(&m->start) && r.U32(&m->max_batch))) {
    return false;
  }
  m->has_filter = false;
  m->filter = pubsub::Filter{};
  if (r.AtEnd()) {
    return true;  // v1 shape: no filter block.
  }
  if (!r.Bool(&m->has_filter) || !m->has_filter) {
    return false;  // A present block with a false flag is a malformation.
  }
  return DecodeFilter(r, &m->filter) && r.AtEnd();
}

void Encode(const CommitRequest& m, std::string* out) {
  Writer w(out);
  w.Str(m.group);
  w.U32(m.partition);
  w.U64(m.offset);
  w.U8(static_cast<std::uint8_t>(m.mode));
}

bool Decode(std::string_view payload, CommitRequest* m) {
  Reader r(payload);
  std::uint8_t mode = 0;
  if (!(r.Str(&m->group) && r.U32(&m->partition) && r.U64(&m->offset) && r.U8(&mode) &&
        r.AtEnd())) {
    return false;
  }
  if (mode > static_cast<std::uint8_t>(CommitMode::kQuery)) {
    return false;
  }
  m->mode = static_cast<CommitMode>(mode);
  return true;
}

void Encode(const CommitResponse& m, std::string* out) {
  Writer w(out);
  w.Bool(m.has_committed);
  w.U64(m.committed);
}

bool Decode(std::string_view payload, CommitResponse* m) {
  Reader r(payload);
  return r.Bool(&m->has_committed) && r.U64(&m->committed) && r.AtEnd();
}

void Encode(const WatchRequest& m, std::string* out) {
  Writer w(out);
  w.Str(m.low);
  w.Str(m.high);
  w.U64(m.version);
  if (m.has_filter) {
    w.Bool(true);
    EncodeFilter(m.filter, w);
  }
}

bool Decode(std::string_view payload, WatchRequest* m) {
  Reader r(payload);
  if (!(r.Str(&m->low) && r.Str(&m->high) && r.U64(&m->version))) {
    return false;
  }
  m->has_filter = false;
  m->filter = pubsub::Filter{};
  if (r.AtEnd()) {
    return true;  // v1 shape: no filter block.
  }
  if (!r.Bool(&m->has_filter) || !m->has_filter) {
    return false;
  }
  return DecodeFilter(r, &m->filter) && r.AtEnd();
}

void Encode(const WatchPush& m, std::string* out) {
  Writer w(out);
  w.U32(static_cast<std::uint32_t>(m.items.size()));
  for (const WatchItem& item : m.items) {
    w.U8(static_cast<std::uint8_t>(item.kind));
    switch (item.kind) {
      case WatchItem::Kind::kEvent:
        EncodeChange(item.event, w);
        break;
      case WatchItem::Kind::kProgress:
        w.Str(item.progress.range.low);
        w.Str(item.progress.range.high);
        w.U64(item.progress.version);
        break;
      case WatchItem::Kind::kResync:
        break;
    }
  }
}

bool Decode(std::string_view payload, WatchPush* m) {
  Reader r(payload);
  std::uint32_t n = 0;
  if (!r.U32(&n)) {
    return false;
  }
  m->items.clear();
  m->items.reserve(std::min(n, kMaxReserve));
  for (std::uint32_t i = 0; i < n; ++i) {
    WatchItem item;
    std::uint8_t kind = 0;
    if (!r.U8(&kind) || kind > static_cast<std::uint8_t>(WatchItem::Kind::kResync)) {
      return false;
    }
    item.kind = static_cast<WatchItem::Kind>(kind);
    switch (item.kind) {
      case WatchItem::Kind::kEvent:
        if (!DecodeChange(r, &item.event)) {
          return false;
        }
        break;
      case WatchItem::Kind::kProgress:
        if (!r.Str(&item.progress.range.low) || !r.Str(&item.progress.range.high) ||
            !r.U64(&item.progress.version)) {
          return false;
        }
        break;
      case WatchItem::Kind::kResync:
        break;
    }
    m->items.push_back(std::move(item));
  }
  return r.AtEnd();
}

void Encode(const HeartbeatBody& m, std::string* out) {
  Writer w(out);
  w.I64(m.t_us);
}

bool Decode(std::string_view payload, HeartbeatBody* m) {
  Reader r(payload);
  return r.I64(&m->t_us) && r.AtEnd();
}

}  // namespace net
