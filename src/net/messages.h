// Typed payload codecs for every frame verb (net/wire.h). Each message is a
// plain struct plus an Encode (appends to a payload string) and a Decode
// (bounds-checked; returns false on any malformation, including trailing
// bytes — a schema mismatch is as terminal as a CRC miss). The structs are
// the protocol's source of truth; docs/PROTOCOL.md §8 restates them.
#ifndef SRC_NET_MESSAGES_H_
#define SRC_NET_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "net/wire.h"
#include "pubsub/filter.h"
#include "pubsub/types.h"

namespace net {

// StatusCode travels as its numeric value; both ends share common/status.h.

// -- HELLO ---------------------------------------------------------------------

// First frame each way. The client states its protocol version (also in the
// frame header; restated here so a version-mismatch ERROR can be produced by
// the dispatch layer, which sees only decoded payloads) and a diagnostic
// name. The server's reply carries the session contract: how often to beat,
// how many missed beats are lethal, and the payload bound it will enforce.
struct HelloRequest {
  std::uint32_t wire_version = kProtocolVersion;
  std::string client_name;
};

struct HelloResponse {
  std::uint32_t wire_version = kProtocolVersion;
  std::int64_t heartbeat_interval_us = 0;
  std::uint32_t heartbeat_misses = 0;
  std::uint32_t max_payload = 0;
  std::string server_name;
};

// -- ERROR ---------------------------------------------------------------------

// Response to any request, or connection-level (request_id 0) immediately
// before a server-initiated close. `retry_after_us` is nonzero exactly when
// the failure is backpressure (kUnavailable): the end-to-end propagation of
// the runtime's retry hints.
struct ErrorBody {
  std::uint32_t code = 0;  // common::StatusCode numeric value.
  std::int64_t retry_after_us = 0;
  std::string message;
};

// -- Topic / publish / fetch ---------------------------------------------------

struct CreateTopicRequest {
  std::string topic;
  pubsub::TopicConfig config;
};

// Acknowledgement levels a publisher can request. kNone keeps the verb
// fire-and-forget (no response frame at all); kAccept acks acceptance into
// the owning shard's queue (the runtime's "accepted publishes are never
// dropped" contract); kOffset acks with the assigned partition/offset after
// the append actually executed.
enum class PublishAck : std::uint8_t { kNone = 0, kAccept = 1, kOffset = 2 };

struct PublishRequest {
  std::string topic;
  PublishAck ack = PublishAck::kAccept;
  bool has_partition = false;
  pubsub::PartitionId partition = 0;
  common::Key key;
  common::Value value;
  common::TimeMicros publish_time = 0;
  // v2: record headers, encoded as an optional trailing block (count + pairs)
  // present only when non-empty. A v1 payload simply ends after publish_time,
  // so old clients round-trip unchanged and decode as headerless.
  pubsub::Headers headers;
};

struct PublishResponse {
  bool has_offset = false;  // False for kAccept acks.
  pubsub::PartitionId partition = 0;
  pubsub::Offset offset = 0;
};

struct FetchRequest {
  std::string topic;
  pubsub::PartitionId partition = 0;
  pubsub::Offset offset = 0;
  std::uint32_t max = 0;
};

// FETCH responses and DELIVER pushes share one batch shape. The batch codec
// is version-parameterized: v2 sessions carry each message's header block
// (count + pairs, always present, possibly zero), v1 sessions omit it.
struct MessageBatch {
  std::vector<pubsub::StoredMessage> messages;
};

// -- Subscribe (long-poll delivery stream) -------------------------------------

// Opens a server-pushed stream: the response (same verb, empty payload) acks
// the subscription, then DELIVER frames carrying this request id flow until
// CANCEL or disconnect.
struct SubscribeRequest {
  std::string topic;
  pubsub::PartitionId partition = 0;
  pubsub::Offset start = 0;
  std::uint32_t max_batch = 256;
  // v2: optional trailing filter block. Encoded only when has_filter; a v1
  // payload ends after max_batch and decodes as unfiltered. Servers reject a
  // filter arriving on a session that negotiated v1.
  bool has_filter = false;
  pubsub::Filter filter;
};

// -- Commit --------------------------------------------------------------------

enum class CommitMode : std::uint8_t {
  kCommit = 0,          // Commit, ack acceptance.
  kCommitReadBack = 1,  // Commit, ack with the post-commit committed offset.
  kQuery = 2,           // No write; ack with the current committed offset.
};

struct CommitRequest {
  std::string group;  // pubsub::GroupId; kept as std::string so the wire
                      // layer depends only on pubsub/types.h.
  pubsub::PartitionId partition = 0;
  pubsub::Offset offset = 0;
  CommitMode mode = CommitMode::kCommit;
};

struct CommitResponse {
  bool has_committed = false;  // False for plain kCommit acks.
  pubsub::Offset committed = 0;
};

// -- Watch ---------------------------------------------------------------------

struct WatchRequest {
  common::Key low;
  common::Key high;
  common::Version version = 0;
  // v2: optional trailing filter block (same shape as SubscribeRequest's).
  // The filter's range must agree with low/high when present; encoders set
  // low/high from filter.range so v1 servers still honor the range part.
  bool has_filter = false;
  pubsub::Filter filter;
};

// One element of a WATCH_PUSH frame: a change event, a range progress
// event, or the terminal resync marker (after which the server delivers
// nothing further on the stream — the wire restatement of W4).
struct WatchItem {
  enum class Kind : std::uint8_t { kEvent = 0, kProgress = 1, kResync = 2 };
  Kind kind = Kind::kEvent;
  common::ChangeEvent event;        // kEvent only.
  common::ProgressEvent progress;   // kProgress only.
};

struct WatchPush {
  std::vector<WatchItem> items;
};

// -- Heartbeat -----------------------------------------------------------------

// Liveness beat; the server echoes it (same request id, same t_us) so the
// client can measure liveness round trips. Any frame refreshes the server's
// dead-peer clock — HEARTBEAT is simply the frame idle clients have.
struct HeartbeatBody {
  std::int64_t t_us = 0;
};

// -- Encode / decode -----------------------------------------------------------

void Encode(const HelloRequest& m, std::string* out);
void Encode(const HelloResponse& m, std::string* out);
void Encode(const ErrorBody& m, std::string* out);
void Encode(const CreateTopicRequest& m, std::string* out);
void Encode(const PublishRequest& m, std::string* out);
void Encode(const PublishResponse& m, std::string* out);
void Encode(const FetchRequest& m, std::string* out);
void Encode(const MessageBatch& m, std::string* out,
            std::uint32_t wire_version = kProtocolVersion);
void Encode(const SubscribeRequest& m, std::string* out);
void Encode(const CommitRequest& m, std::string* out);
void Encode(const CommitResponse& m, std::string* out);
void Encode(const WatchRequest& m, std::string* out);
void Encode(const WatchPush& m, std::string* out);
void Encode(const HeartbeatBody& m, std::string* out);

bool Decode(std::string_view payload, HelloRequest* m);
bool Decode(std::string_view payload, HelloResponse* m);
bool Decode(std::string_view payload, ErrorBody* m);
bool Decode(std::string_view payload, CreateTopicRequest* m);
bool Decode(std::string_view payload, PublishRequest* m);
bool Decode(std::string_view payload, PublishResponse* m);
bool Decode(std::string_view payload, FetchRequest* m);
bool Decode(std::string_view payload, MessageBatch* m,
            std::uint32_t wire_version = kProtocolVersion);
bool Decode(std::string_view payload, SubscribeRequest* m);
bool Decode(std::string_view payload, CommitRequest* m);
bool Decode(std::string_view payload, CommitResponse* m);
bool Decode(std::string_view payload, WatchRequest* m);
bool Decode(std::string_view payload, WatchPush* m);
bool Decode(std::string_view payload, HeartbeatBody* m);

}  // namespace net

#endif  // SRC_NET_MESSAGES_H_
