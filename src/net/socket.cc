#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdint>

namespace net {

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

common::Result<sockaddr_in> ResolveV4(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || res == nullptr) {
    return common::Status::InvalidArgument("cannot resolve host: " + host);
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

}  // namespace

common::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return common::Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return common::Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

common::Result<Fd> TcpListen(const std::string& host, int port, int backlog, int* bound_port) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) {
    return addr.status();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return common::Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr)) < 0) {
    return common::Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return common::Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    }
  }
  RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

common::Result<Fd> TcpConnect(const std::string& host, int port) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) {
    return addr.status();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return common::Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return common::Status::Unavailable(std::string("connect: ") + std::strerror(errno));
  }
  SetNoDelay(fd.get());
  return fd;
}

IoStatus ReadSome(int fd, char* buf, std::size_t len, std::size_t* n) {
  *n = 0;
  ssize_t rc;
  do {
    rc = ::read(fd, buf, len);
  } while (rc < 0 && errno == EINTR);
  if (rc > 0) {
    *n = static_cast<std::size_t>(rc);
    return IoStatus::kOk;
  }
  if (rc == 0) {
    return IoStatus::kEof;
  }
  return errno == EAGAIN || errno == EWOULDBLOCK ? IoStatus::kWouldBlock : IoStatus::kError;
}

IoStatus WriteSome(int fd, const char* buf, std::size_t len, std::size_t* n) {
  *n = 0;
  ssize_t rc;
  do {
    // MSG_NOSIGNAL: a dead peer yields EPIPE (loud teardown), not SIGPIPE.
    rc = ::send(fd, buf, len, MSG_NOSIGNAL);
  } while (rc < 0 && errno == EINTR);
  if (rc >= 0) {
    *n = static_cast<std::size_t>(rc);
    return IoStatus::kOk;
  }
  return errno == EAGAIN || errno == EWOULDBLOCK ? IoStatus::kWouldBlock : IoStatus::kError;
}

common::Status WriteAll(int fd, const char* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    std::size_t n = 0;
    switch (WriteSome(fd, buf + sent, len - sent, &n)) {
      case IoStatus::kOk:
        sent += n;
        break;
      case IoStatus::kWouldBlock: {
        // Blocking sockets only land here via SO_SNDTIMEO; wait for space.
        pollfd p{fd, POLLOUT, 0};
        ::poll(&p, 1, -1);
        break;
      }
      default:
        return common::Status::Unavailable(std::string("write: ") + std::strerror(errno));
    }
  }
  return common::Status::Ok();
}

bool WaitReadable(int fd, std::int64_t timeout_us) {
  pollfd p{fd, POLLIN, 0};
  const int timeout_ms =
      timeout_us <= 0 ? -1 : static_cast<int>((timeout_us + 999) / 1000);
  int rc;
  do {
    rc = ::poll(&p, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  return rc > 0;
}

}  // namespace net
