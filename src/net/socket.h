// Thin POSIX TCP helpers shared by pubsubd and the client library: an RAII
// fd, listen/connect constructors, and EINTR/EAGAIN-normalizing read/write
// wrappers. IPv4 loopback/hostname only — this layer exists to put real
// kernel sockets under the protocol, not to be a portability shim.
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <utility>

#include "common/status.h"

namespace net {

// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void Close();

 private:
  int fd_ = -1;
};

// Listens on host:port (port 0 picks an ephemeral port; *bound_port receives
// the actual one). The returned socket is non-blocking with SO_REUSEADDR.
common::Result<Fd> TcpListen(const std::string& host, int port, int backlog, int* bound_port);

// Blocking connect to host:port; the returned socket is blocking with
// TCP_NODELAY (the protocol writes whole frames; Nagle only adds latency).
common::Result<Fd> TcpConnect(const std::string& host, int port);

common::Status SetNonBlocking(int fd);
void SetNoDelay(int fd);

// Result of a non-blocking socket read/write step.
enum class IoStatus : std::uint8_t {
  kOk,        // Progress was made (*n bytes).
  kWouldBlock,
  kEof,       // Peer closed (read only).
  kError,     // errno-level failure; treat the connection as dead.
};

// Reads once into buf (EINTR retried). kOk with *n == 0 never happens: a
// zero-byte read is kEof.
IoStatus ReadSome(int fd, char* buf, std::size_t len, std::size_t* n);

// Writes once from buf (EINTR retried). EPIPE/ECONNRESET surface as kError.
IoStatus WriteSome(int fd, const char* buf, std::size_t len, std::size_t* n);

// Blocking helpers for the client library (the socket must be blocking).
common::Status WriteAll(int fd, const char* buf, std::size_t len);
// Waits up to timeout_us (<= 0: indefinitely) for readability. Returns true
// when readable, false on timeout; errors surface as readable (the next read
// reports them).
bool WaitReadable(int fd, std::int64_t timeout_us);

}  // namespace net

#endif  // SRC_NET_SOCKET_H_
