// Wire protocol core: the length-prefixed binary frame every byte on a
// pubsubd connection belongs to, plus the bounds-checked little-endian
// reader/writer the payload codecs (net/messages.h) are built from.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     2  magic        0x5053 ("PS")
//        2     1  version      kProtocolVersion
//        3     1  verb         Verb enum
//        4     4  payload_len  bytes following the header (<= negotiated max)
//        8     8  request_id   echoed verbatim in responses; identifies the
//                              stream for server-push frames (DELIVER and
//                              WATCH_PUSH carry the originating SUBSCRIBE /
//                              WATCH request id)
//       16     4  payload_crc  masked CRC32C of the payload bytes
//       20     4  header_crc   masked CRC32C of bytes [0, 20)
//       24   len  payload
//
// Both CRCs use the WAL's masked CRC32C (wal/crc32c.h) so a frame whose
// payload itself carries CRCs does not degenerate. The header CRC makes
// truncation, bit flips, and desync (mid-stream garbage) detectable before a
// corrupt length field can commit the decoder to a bogus read; the payload
// CRC guards the body. Any integrity failure is terminal for the connection:
// a byte stream that has lost framing cannot be trusted to regain it.
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "wal/crc32c.h"

namespace net {

inline constexpr std::uint16_t kMagic = 0x5053;  // "PS".
// v1: original frame set. v2 adds optional content-filter blocks to
// SUBSCRIBE/WATCH, record headers on PUBLISH, and per-message headers in
// DELIVER/FETCH batches. The decoder accepts the whole range; each session
// speaks min(client, server) as negotiated in HELLO.
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
// Absolute payload ceiling; servers may negotiate a smaller bound in HELLO.
inline constexpr std::size_t kMaxPayload = 16u << 20;

// Request verbs are client-initiated (the server responds with the same verb
// or ERROR, echoing the request id); push verbs flow server→client on a
// stream opened by SUBSCRIBE or WATCH.
enum class Verb : std::uint8_t {
  kHello = 1,       // Handshake; must be the first frame in each direction.
  kPublish = 2,
  kFetch = 3,
  kSubscribe = 4,   // Opens a long-poll delivery stream (DELIVER pushes).
  kWatch = 5,       // Opens a watch stream (WATCH_PUSH pushes).
  kCommit = 6,      // Commit / read back a group offset.
  kHeartbeat = 7,   // Liveness beat; server echoes it.
  kError = 8,       // Response-side only; carries code + retry_after.
  kCreateTopic = 9,
  kDeliver = 10,    // Push: a batch of stored messages for a subscription.
  kWatchPush = 11,  // Push: watch events / progress / resync for a watch.
  kCancel = 12,     // Tears down the stream named by its request id.
  kGoodbye = 13,    // Graceful close; peers that vanish without it are dead.
};

inline bool KnownVerb(std::uint8_t v) {
  return v >= static_cast<std::uint8_t>(Verb::kHello) &&
         v <= static_cast<std::uint8_t>(Verb::kGoodbye);
}

inline const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kHello: return "HELLO";
    case Verb::kPublish: return "PUBLISH";
    case Verb::kFetch: return "FETCH";
    case Verb::kSubscribe: return "SUBSCRIBE";
    case Verb::kWatch: return "WATCH";
    case Verb::kCommit: return "COMMIT";
    case Verb::kHeartbeat: return "HEARTBEAT";
    case Verb::kError: return "ERROR";
    case Verb::kCreateTopic: return "CREATE_TOPIC";
    case Verb::kDeliver: return "DELIVER";
    case Verb::kWatchPush: return "WATCH_PUSH";
    case Verb::kCancel: return "CANCEL";
    case Verb::kGoodbye: return "GOODBYE";
  }
  return "?";
}

// A decoded frame. `payload` views the decoder's internal buffer and is
// valid only until the next Feed()/Next() call — dispatchers decode payloads
// immediately (net/messages.h) rather than retaining the view.
struct Frame {
  Verb verb = Verb::kHello;
  // Header version byte, in [kMinProtocolVersion, kProtocolVersion]. The
  // dispatcher reads it off the first (HELLO) frame to pin the session's
  // negotiated version.
  std::uint8_t version = kProtocolVersion;
  std::uint64_t request_id = 0;
  std::string_view payload;
};

// -- Little-endian primitives --------------------------------------------------

inline void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline std::uint16_t GetU16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

inline std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

inline std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

// Appends a complete frame (header + payload) to `out`. The payload must fit
// kMaxPayload; callers enforce any tighter negotiated bound. `version` is
// the header version byte — sessions speaking a downlevel negotiated
// version pass it explicitly.
inline void EncodeFrame(std::string& out, Verb verb, std::uint64_t request_id,
                        std::string_view payload, std::uint8_t version = kProtocolVersion) {
  const std::size_t header_at = out.size();
  PutU16(out, kMagic);
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(verb));
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU64(out, request_id);
  PutU32(out, wal::MaskCrc(wal::Crc32c(payload)));
  PutU32(out, wal::MaskCrc(wal::Crc32c({out.data() + header_at, kHeaderSize - 4})));
  out.append(payload.data(), payload.size());
}

// -- Payload writer / reader ---------------------------------------------------

// Payload encoding: fixed-width little-endian integers, strings and blobs as
// u32 length + bytes, sequences as u32 count + elements. No varints — the
// frame is already length-delimited and the decoder must stay allocation-
// and branch-cheap.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v) { PutU16(*out_, v); }
  void U32(std::uint32_t v) { PutU32(*out_, v); }
  void U64(std::uint64_t v) { PutU64(*out_, v); }
  void I64(std::int64_t v) { PutU64(*out_, static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

// Bounds-checked reader: every getter returns false once the payload is
// exhausted or a length prefix overruns it, and `ok()` latches the failure.
// Codecs bubble the single bool up so a malformed payload is one typed error
// (kMalformedPayload), never UB.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  // A fully-consumed payload; trailing bytes mean a codec/schema mismatch.
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

  bool U8(std::uint8_t* v) {
    if (!Need(1)) return false;
    *v = static_cast<unsigned char>(data_[pos_++]);
    return true;
  }
  bool U16(std::uint16_t* v) {
    if (!Need(2)) return false;
    *v = GetU16(data_.data() + pos_);
    pos_ += 2;
    return true;
  }
  bool U32(std::uint32_t* v) {
    if (!Need(4)) return false;
    *v = GetU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool U64(std::uint64_t* v) {
    if (!Need(8)) return false;
    *v = GetU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool I64(std::int64_t* v) {
    std::uint64_t u = 0;
    if (!U64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }
  bool Bool(bool* v) {
    std::uint8_t b = 0;
    if (!U8(&b)) return false;
    *v = b != 0;
    return true;
  }
  bool Str(std::string* s) {
    std::uint32_t len = 0;
    if (!U32(&len) || !Need(len)) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace net

#endif  // SRC_NET_WIRE_H_
