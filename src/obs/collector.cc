#include "obs/collector.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace obs {
namespace {

// Minimal JSON string escaping for the exposition surface (names and causes
// are ASCII identifiers in practice, but stay safe anyway).
void AppendJsonString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string FamilyPrefix(std::size_t family) {
  // Family 0 is the aggregate; family s+1 is shard s.
  if (family == 0) {
    return "obs.";
  }
  return "obs.s" + std::to_string(family - 1) + ".";
}

}  // namespace

Collector::Collector(common::MetricsRegistry* metrics, CollectorOptions options)
    : metrics_(metrics), options_(options) {
  pair_hist_.resize(options_.shards + 1);
  for (auto& family : pair_hist_) {
    for (auto& path : family) {
      for (auto& row : path) {
        row.fill(nullptr);
      }
    }
  }
  completed_counter_ = &metrics_->counter("obs.traces_completed");
}

common::Histogram* Collector::PairHistogram(std::size_t family, Path path, std::size_t from,
                                            std::size_t to) {
  common::Histogram*& slot = pair_hist_[family][static_cast<std::size_t>(path)][from][to];
  if (slot == nullptr) {
    const std::string name = FamilyPrefix(family) + PathName(path) + "." +
                             StageName(static_cast<Stage>(from)) + "_to_" +
                             StageName(static_cast<Stage>(to)) + "_us";
    slot = &metrics_->histogram(name);
  }
  return slot;
}

void Collector::Complete(Path path, const TraceContext& trace, std::size_t shard) {
  if (!trace.active()) {
    return;
  }
  // Collect the stamped stages in stage order; bridge over unstamped ones.
  std::array<std::size_t, kStageCount> stamped{};
  std::size_t n = 0;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (trace.at[s] != 0) {
      stamped[n++] = s;
    }
  }
  if (n < 2) {
    return;  // Nothing to measure.
  }
  const std::int64_t total = trace.at[stamped[n - 1]] - trace.at[stamped[0]];

  std::lock_guard<std::mutex> lock(mu_);
  const bool shard_in_range = shard < options_.shards;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t from = stamped[i];
    const std::size_t to = stamped[i + 1];
    // Clock skew / same-tick stamps can produce tiny negatives; clamp so the
    // histograms stay interpretable.
    const double d =
        static_cast<double>(std::max<std::int64_t>(0, trace.at[to] - trace.at[from]));
    PairHistogram(0, path, from, to)->Record(d);
    if (shard_in_range) {
      PairHistogram(shard + 1, path, from, to)->Record(d);
    }
  }
  // End-to-end (first stamped → last stamped). With exactly two stamped
  // stages the consecutive-pair loop above already recorded this pair.
  if (n > 2) {
    const double d = static_cast<double>(std::max<std::int64_t>(0, total));
    PairHistogram(0, path, stamped[0], stamped[n - 1])->Record(d);
    if (shard_in_range) {
      PairHistogram(shard + 1, path, stamped[0], stamped[n - 1])->Record(d);
    }
  }
  ++traces_completed_;
  completed_counter_->Increment();

  // Worst-K sampler: `worst_` stays sorted ascending by total.
  if (options_.worst_traces > 0) {
    if (worst_.size() < options_.worst_traces || total > worst_.front().total_us) {
      TraceRecord rec;
      rec.path = path;
      rec.id = trace.id;
      rec.shard = shard;
      rec.total_us = total;
      rec.at = trace.at;
      auto pos = std::lower_bound(
          worst_.begin(), worst_.end(), total,
          [](const TraceRecord& r, std::int64_t t) { return r.total_us < t; });
      worst_.insert(pos, rec);
      if (worst_.size() > options_.worst_traces) {
        worst_.erase(worst_.begin());
      }
    }
  }
}

void Collector::LogEvent(EventKind kind, std::string cause, std::string detail,
                         std::size_t shard) {
  metrics_->counter(std::string("obs.event.") + EventKindName(kind) + "." + cause).Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ObsEvent ev;
  ev.seq = next_event_seq_++;
  ev.kind = kind;
  ev.cause = std::move(cause);
  ev.detail = std::move(detail);
  ev.shard = shard;
  ev.t_us = NowMicros();
  events_.push_back(std::move(ev));
  while (events_.size() > options_.max_events) {
    events_.pop_front();
    ++events_dropped_;
  }
}

std::uint64_t Collector::traces_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_completed_;
}

std::vector<ObsEvent> Collector::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ObsEvent>(events_.begin(), events_.end());
}

std::vector<TraceRecord> Collector::WorstTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out(worst_.rbegin(), worst_.rend());  // Slowest first.
  return out;
}

Snapshot Collector::TakeSnapshot() const {
  Snapshot snap;
  // Stage-pair histograms: walk the cached pointer tables so we only report
  // families that were actually fed (quiesced-read contract).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t family = 0; family < pair_hist_.size(); ++family) {
      for (std::size_t p = 0; p < kPathCount; ++p) {
        for (std::size_t from = 0; from < kStageCount; ++from) {
          for (std::size_t to = from + 1; to < kStageCount; ++to) {
            const common::Histogram* h = pair_hist_[family][p][from][to];
            if (h == nullptr || h->count() == 0) {
              continue;
            }
            StageLatency sl;
            sl.path = PathName(static_cast<Path>(p));
            sl.from = StageName(static_cast<Stage>(from));
            sl.to = StageName(static_cast<Stage>(to));
            sl.shard = family == 0 ? -1 : static_cast<int>(family - 1);
            sl.count = h->count();
            sl.p50_us = h->Percentile(50);
            sl.p99_us = h->Percentile(99);
            sl.p999_us = h->Percentile(99.9);
            sl.max_us = h->Max();
            sl.mean_us = h->Mean();
            snap.stages.push_back(std::move(sl));
          }
        }
      }
    }
    snap.events.assign(events_.begin(), events_.end());
    snap.worst.assign(worst_.rbegin(), worst_.rend());
    snap.traces_completed = traces_completed_;
    snap.events_dropped = events_dropped_;
  }
  for (const auto& [name, c] : metrics_->counters()) {
    snap.counters.emplace_back(name, c.value());
  }
  for (const auto& [name, g] : metrics_->gauges()) {
    snap.gauges.emplace_back(name, g.value());
  }
  return snap;
}

std::string Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"traces_completed\": " << traces_completed
      << ",\n  \"events_dropped\": " << events_dropped << ",\n  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageLatency& s = stages[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"path\": ";
    AppendJsonString(out, s.path);
    out << ", \"from\": ";
    AppendJsonString(out, s.from);
    out << ", \"to\": ";
    AppendJsonString(out, s.to);
    out << ", \"shard\": " << s.shard << ", \"count\": " << s.count
        << ", \"p50_us\": " << s.p50_us << ", \"p99_us\": " << s.p99_us
        << ", \"p999_us\": " << s.p999_us << ", \"max_us\": " << s.max_us
        << ", \"mean_us\": " << s.mean_us << "}";
  }
  out << (stages.empty() ? "]" : "\n  ]") << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    AppendJsonString(out, counters[i].first);
    out << ": " << counters[i].second;
  }
  out << (counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    AppendJsonString(out, gauges[i].first);
    out << ": " << gauges[i].second;
  }
  out << (gauges.empty() ? "}" : "\n  }") << ",\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ObsEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"seq\": " << e.seq << ", \"kind\": ";
    AppendJsonString(out, EventKindName(e.kind));
    out << ", \"cause\": ";
    AppendJsonString(out, e.cause);
    out << ", \"detail\": ";
    AppendJsonString(out, e.detail);
    out << ", \"shard\": " << e.shard << ", \"t_us\": " << e.t_us << "}";
  }
  out << (events.empty() ? "]" : "\n  ]") << ",\n  \"worst_traces\": [";
  for (std::size_t i = 0; i < worst.size(); ++i) {
    const TraceRecord& w = worst[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"path\": ";
    AppendJsonString(out, PathName(w.path));
    out << ", \"id\": " << w.id << ", \"shard\": " << w.shard
        << ", \"total_us\": " << w.total_us << ", \"stages\": {";
    bool first = true;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      if (w.at[s] == 0) {
        continue;
      }
      if (!first) {
        out << ", ";
      }
      first = false;
      AppendJsonString(out, StageName(static_cast<Stage>(s)));
      out << ": " << w.at[s];
    }
    out << "}}";
  }
  out << (worst.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string Snapshot::ToText() const {
  std::ostringstream out;
  out << "obs snapshot: " << traces_completed << " traces completed, " << events.size()
      << " events (" << events_dropped << " dropped), " << worst.size() << " worst traces\n";
  for (const StageLatency& s : stages) {
    out << "  " << s.path << " " << s.from << "->" << s.to;
    if (s.shard >= 0) {
      out << " [s" << s.shard << "]";
    }
    out << ": n=" << s.count << " p50=" << s.p50_us << "us p99=" << s.p99_us
        << "us p99.9=" << s.p999_us << "us max=" << s.max_us << "us\n";
  }
  for (const auto& [name, v] : gauges) {
    out << "  gauge " << name << "=" << v << "\n";
  }
  for (const ObsEvent& e : events) {
    out << "  event #" << e.seq << " " << EventKindName(e.kind) << " cause=" << e.cause
        << " detail=" << e.detail << " shard=" << e.shard << "\n";
  }
  for (const TraceRecord& w : worst) {
    out << "  worst " << PathName(w.path) << " id=" << w.id << " total=" << w.total_us
        << "us\n";
  }
  return out.str();
}

std::string DumpJson(const Collector& collector) { return collector.TakeSnapshot().ToJson(); }

}  // namespace obs
