// obs::Collector — the sink half of the tracing layer. Components hand it
// completed TraceContexts and lifecycle events; it turns them into
//
//   * per-stage latency histograms in the shared common::MetricsRegistry,
//     one family per shard ("obs.s3.watch.append_to_deliver_us") plus an
//     aggregate family ("obs.watch.append_to_deliver_us");
//   * a bounded resync/rebalance event log with causes (why did a session
//     leave the live state? why did a group rebalance?), mirrored into
//     per-cause counters;
//   * a bounded slow-trace sampler retaining the K worst end-to-end traces
//     with their full stage breakdowns;
//   * on demand, an obs::Snapshot — a quiesced read of all of the above —
//     with text and JSON expositions.
//
// Thread safety: Complete() and LogEvent() may be called from any thread
// (histograms and counters are the thread-safe common::Metrics types; the
// event log and sampler take small internal mutexes). TakeSnapshot() may run
// concurrently too, but exact values are only guaranteed when the system is
// quiesced (the registry iteration contract).
#ifndef SRC_OBS_COLLECTOR_H_
#define SRC_OBS_COLLECTOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "obs/trace.h"

namespace obs {

// The two delivery pipelines a trace can complete on.
enum class Path : std::uint8_t { kPubsub = 0, kWatch = 1 };
inline constexpr std::size_t kPathCount = 2;

inline const char* PathName(Path p) { return p == Path::kPubsub ? "pubsub" : "watch"; }

// Lifecycle events worth a log line, not just a counter bump.
enum class EventKind : std::uint8_t { kResync, kRebalance, kSessionBreak, kSoftStateCrash };

inline const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kResync: return "resync";
    case EventKind::kRebalance: return "rebalance";
    case EventKind::kSessionBreak: return "session_break";
    case EventKind::kSoftStateCrash: return "soft_state_crash";
  }
  return "?";
}

struct ObsEvent {
  std::uint64_t seq = 0;  // Monotonic across the collector's lifetime.
  EventKind kind = EventKind::kResync;
  std::string cause;   // e.g. "window_floor", "backlog_overflow", "member_join".
  std::string detail;  // Free-form: session id, group id, generation.
  std::size_t shard = 0;
  std::int64_t t_us = 0;  // obs::NowMicros() at log time.
};

// A completed end-to-end trace as retained by the slow sampler.
struct TraceRecord {
  Path path = Path::kPubsub;
  std::uint64_t id = 0;
  std::size_t shard = 0;
  std::int64_t total_us = 0;
  std::array<std::int64_t, kStageCount> at{};
};

// One stage-pair latency summary inside a Snapshot.
struct StageLatency {
  std::string path;  // "pubsub" | "watch".
  std::string from;  // Stage names, e.g. "origin" → "append".
  std::string to;
  int shard = -1;  // -1: the aggregate family.
  std::uint64_t count = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0, max_us = 0, mean_us = 0;
};

struct Snapshot {
  std::vector<StageLatency> stages;  // Only pairs with count > 0.
  std::vector<std::pair<std::string, std::int64_t>> counters;  // Full registry.
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<ObsEvent> events;       // Oldest first.
  std::vector<TraceRecord> worst;     // Slowest first.
  std::uint64_t traces_completed = 0;
  std::uint64_t events_dropped = 0;   // Log-bound overflow (oldest evicted).

  std::string ToJson() const;
  std::string ToText() const;
};

struct CollectorOptions {
  std::size_t shards = 1;        // Per-shard histogram families s0..s{n-1}.
  std::size_t worst_traces = 8;  // K of the slow-trace sampler.
  std::size_t max_events = 256;  // Event-log bound (oldest evicted, counted).
};

class Collector {
 public:
  explicit Collector(common::MetricsRegistry* metrics, CollectorOptions options = {});

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // Feeds a completed trace: consecutive stamped stages become histogram
  // samples (unstamped stages are bridged over), the first→last delta is the
  // end-to-end total, and the slow sampler keeps it if it is among the K
  // worst. Inactive traces are ignored. `shard` beyond options.shards clamps
  // to the aggregate family only.
  void Complete(Path path, const TraceContext& trace, std::size_t shard = 0);

  // Logs a lifecycle event and bumps "obs.event.<kind>.<cause>".
  void LogEvent(EventKind kind, std::string cause, std::string detail, std::size_t shard = 0);

  common::MetricsRegistry& metrics() { return *metrics_; }
  const CollectorOptions& options() const { return options_; }

  std::uint64_t traces_completed() const;
  std::vector<ObsEvent> Events() const;       // Oldest first.
  std::vector<TraceRecord> WorstTraces() const;  // Slowest first.

  Snapshot TakeSnapshot() const;

 private:
  // Histogram pointer for a (path, from, to) pair in the given family
  // (shard + 1; family 0 is the aggregate). Pointers resolved lazily under
  // mu_ and cached — registry references are stable.
  common::Histogram* PairHistogram(std::size_t family, Path path, std::size_t from,
                                   std::size_t to);

  common::MetricsRegistry* metrics_;
  CollectorOptions options_;

  mutable std::mutex mu_;  // Guards the caches, event log, and sampler.
  // [family][path][from][to] → histogram; family 0 aggregate, s+1 per shard.
  std::vector<std::array<std::array<std::array<common::Histogram*, kStageCount>, kStageCount>,
                         kPathCount>>
      pair_hist_;
  std::deque<ObsEvent> events_;
  std::uint64_t next_event_seq_ = 1;
  std::uint64_t events_dropped_ = 0;
  std::vector<TraceRecord> worst_;  // Sorted ascending by total_us.
  std::uint64_t traces_completed_ = 0;

  common::Counter* completed_counter_;
};

// Convenience: snapshot → JSON in one call (the exposition surface harnesses
// and benches dump).
std::string DumpJson(const Collector& collector);

}  // namespace obs

#endif  // SRC_OBS_COLLECTOR_H_
