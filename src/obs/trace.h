// Cross-layer latency tracing (header-only core, no library dependencies).
//
// A TraceContext is stamped onto a record at its origin — a publish call or a
// store commit — and carried *inside* the record through every stage of its
// delivery pipeline: publish → PartitionLog append → fetch → dispatch →
// consumer ack on the pubsub path, and commit → CDC → RetainedWindow ingest →
// WatchSystem dispatch → callback ack on the watch path. Each stage writes a
// wall-clock timestamp into a fixed per-stage slot; when the record completes
// (ack), obs::Collector turns consecutive stamps into per-stage latency
// histogram samples.
//
// Tracing is a measurement layer, not a semantic one: TraceContext is
// excluded from record equality, never serialized by the WAL, and invisible
// to every delivery contract. Stamps read the host's steady clock (not the
// deterministic simulator clock) because the interesting latencies — shard
// queues, worker batches, cross-thread fan-in — accrue in host time; with
// tracing disabled (the default) no clock is ever read, so deterministic
// tests and experiments are unaffected.
//
// Cost model: with tracing disabled at runtime every stamp site is one
// relaxed atomic load (origin sites) or a dead `id != 0` branch (carry
// sites). With tracing enabled, SetTraceSampleEvery(n) admits every n-th
// origin and leaves the rest untraced at the cost of one relaxed counter
// bump, so the clock reads and histogram inserts amortize to 1/n per record.
// Compiling with -DPUBSUB_OBS_NOOP removes even those: Start() returns an
// inactive context and Stamp() compiles to nothing, which is the
// "compiled-to-no-op" baseline the overhead bench compares against.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace obs {

// Stages shared by both delivery paths; a path uses the subset that exists
// for it and the Collector bridges over unstamped stages.
//
//   pubsub: kOrigin (publish accepted) → kAppend (partition-log append) →
//           kFetch (fetch handed to consumer) → kDeliver (handler invoked) →
//           kAck (message acknowledged / offset committed)
//   watch:  kOrigin (commit observed) → kFeed (CDC handed to pipeline) →
//           kAppend (retained-window ingest) → kDeliver (callback invoked) →
//           kAck (callback returned)
enum class Stage : std::uint8_t { kOrigin = 0, kFeed, kAppend, kFetch, kDeliver, kAck };
inline constexpr std::size_t kStageCount = 6;

inline const char* StageName(Stage s) {
  switch (s) {
    case Stage::kOrigin: return "origin";
    case Stage::kFeed: return "feed";
    case Stage::kAppend: return "append";
    case Stage::kFetch: return "fetch";
    case Stage::kDeliver: return "deliver";
    case Stage::kAck: return "ack";
  }
  return "?";
}

// Microseconds on the host steady clock. Monotonic per thread; cross-thread
// deltas are as good as the host's clock domain (steady_clock is global on
// the platforms this builds for).
inline std::int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace internal {
inline std::atomic<bool> g_tracing_enabled{false};
inline std::atomic<std::uint64_t> g_next_trace_id{1};
inline std::atomic<std::uint64_t> g_trace_sample_every{1};
inline std::atomic<std::uint64_t> g_trace_origin_seq{0};

// SplitMix64 finalizer. Admission uses `Mix64(seq) % every == 0` rather than
// a plain modulo: origin order is often periodic (e.g. a producer loop that
// alternates one publish and one watch ingest), and a bare `seq % every` with
// an even period aliases with that pattern — every admitted slot lands on the
// same path and the other path's histograms stay empty.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace internal

#ifdef PUBSUB_OBS_NOOP
inline constexpr bool TracingEnabled() { return false; }
inline void SetTracingEnabled(bool) {}
inline void SetTraceSampleEvery(std::uint64_t) {}
inline constexpr std::uint64_t TraceSampleEvery() { return 1; }
#else
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}
inline void SetTracingEnabled(bool on) {
  internal::g_tracing_enabled.store(on, std::memory_order_relaxed);
}
// Trace admission sampling: with SetTraceSampleEvery(n), every n-th origin
// starts an active trace and the rest stay untraced (zero downstream cost).
// n == 1 (the default) traces every record — what the unit tests' exact
// accounting relies on; production-shaped loads sample (e.g. 1/64) to keep
// the per-record cost of clock reads and histogram inserts off the hot path.
inline void SetTraceSampleEvery(std::uint64_t every) {
  internal::g_trace_sample_every.store(every == 0 ? 1 : every, std::memory_order_relaxed);
}
inline std::uint64_t TraceSampleEvery() {
  return internal::g_trace_sample_every.load(std::memory_order_relaxed);
}
#endif

struct TraceContext {
  // id values: 0 = never offered to the sampler (a record born before any
  // origin site ran); kSampledOut = offered at an origin and declined — later
  // origin sites must not re-draw, or the effective sampling rate multiplies
  // by the number of origin sites the record crosses; anything else = live.
  static constexpr std::uint64_t kSampledOut = ~std::uint64_t{0};

  std::uint64_t id = 0;
  std::array<std::int64_t, kStageCount> at{};  // Stage → micros; 0 = not reached.

  bool active() const { return id != 0 && id != kSampledOut; }
  // Whether an origin site already ran the sampler for this record.
  bool considered() const { return id != 0; }

  void Stamp(Stage stage, std::int64_t t_us) {
#ifdef PUBSUB_OBS_NOOP
    (void)stage;
    (void)t_us;
#else
    if (active()) {
      at[static_cast<std::size_t>(stage)] = t_us;
    }
#endif
  }

  std::int64_t stamp(Stage stage) const { return at[static_cast<std::size_t>(stage)]; }

  // Starts a trace at its origin stage. When tracing is disabled returns an
  // untouched (id == 0) context; when the sampler declines, returns the
  // kSampledOut sentinel so downstream origin sites (which guard on
  // `!considered()`) draw the lottery at most once per record.
  static TraceContext Start() {
    TraceContext trace;
#ifndef PUBSUB_OBS_NOOP
    if (TracingEnabled()) {
      const std::uint64_t every =
          internal::g_trace_sample_every.load(std::memory_order_relaxed);
      if (every > 1 &&
          internal::Mix64(internal::g_trace_origin_seq.fetch_add(
              1, std::memory_order_relaxed)) % every != 0) {
        trace.id = kSampledOut;  // Declined: one relaxed counter bump, nothing more.
        return trace;
      }
      trace.id = internal::g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
      trace.at[static_cast<std::size_t>(Stage::kOrigin)] = NowMicros();
    }
#endif
    return trace;
  }
};

}  // namespace obs

#endif  // SRC_OBS_TRACE_H_
