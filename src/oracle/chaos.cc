#include "oracle/chaos.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "cache/watch_cache.h"
#include "cdc/feeds.h"
#include "common/rng.h"
#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "replication/checker.h"
#include "replication/pubsub_replicator.h"
#include "replication/target_store.h"
#include "sharding/autosharder.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"
#include "watch/materialized.h"
#include "watch/snapshot_source.h"
#include "watch/watch_system.h"

namespace oracle {

namespace {

const char* KindName(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kCrashWatcher:
      return "crash-watcher";
    case ChaosKind::kCrashCachePod:
      return "crash-cache-pod";
    case ChaosKind::kPartitionApplier:
      return "partition-applier";
    case ChaosKind::kPartitionCdc:
      return "partition-cdc";
    case ChaosKind::kStoreGc:
      return "store-gc";
    case ChaosKind::kShardMove:
      return "shard-move";
    case ChaosKind::kGroupChurn:
      return "group-churn";
    case ChaosKind::kSoftStateCrash:
      return "soft-state-crash";
    case ChaosKind::kSeekToTime:
      return "seek-to-time";
  }
  return "unknown";
}

constexpr const char* kLossyTopic = "lossy";
constexpr const char* kLossyGroup = "lossy-group";
constexpr const char* kReplTopic = "repl";
constexpr const char* kReplGroup = "repl-group";

}  // namespace

std::string DescribeChaosEvent(const ChaosEvent& event) {
  std::ostringstream os;
  os << KindName(event.kind) << " at=" << event.at << "us";
  if (event.duration > 0) {
    os << " for=" << event.duration << "us";
  }
  os << " arg=" << event.arg;
  return os.str();
}

std::vector<ChaosEvent> ChaosSweep::MakeSchedule(std::uint64_t seed) const {
  // A stream independent of the simulator's (which the workload and network
  // consume), so the schedule is a pure function of the seed.
  common::Rng rng(seed ^ 0x5eedc0ffee15f00dULL);
  const common::TimeMicros lo = 100 * common::kMicrosPerMilli;
  const common::TimeMicros hi = options_.fault_window - 500 * common::kMicrosPerMilli;
  std::vector<ChaosEvent> out;
  out.reserve(options_.events);
  for (std::size_t i = 0; i < options_.events; ++i) {
    ChaosEvent ev;
    ev.kind = static_cast<ChaosKind>(rng.Below(kChaosKinds));
    ev.at = rng.Range(lo, hi);
    ev.duration = rng.Range(20 * common::kMicrosPerMilli, 400 * common::kMicrosPerMilli);
    // Every outage heals inside the fault window, so quiesce needs no
    // schedule-specific repair pass.
    ev.duration = std::min(ev.duration, options_.fault_window - ev.at);
    ev.arg = rng.Next();
    out.push_back(ev);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return out;
}

SweepResult ChaosSweep::RunSchedule(std::uint64_t seed,
                                    const std::vector<ChaosEvent>& schedule) const {
  sim::Simulator sim(seed);
  sim::Network net(&sim, sim::LatencyModel{200, 100});

  // -- Producer store + seeded workload --------------------------------------
  storage::MvccStore store;
  replication::SourceHistory history(&store);

  // -- Watch side: sharded CDC feed -> watch system -> caches + watchers ------
  watch::WatchSystemOptions wopts;
  wopts.window.max_events = 4096;
  wopts.max_session_backlog = 256;
  watch::WatchSystem ws(&sim, &net, "watch", wopts);

  cdc::IngesterFeedOptions iopts;
  iopts.shards = cdc::UniformShards(options_.keys, 4);
  cdc::CdcIngesterFeed ingester_feed(&sim, &store, nullptr, &ws, iopts);

  watch::StoreSnapshotSource snapshot_source(&store);

  sharding::SharderOptions shopts;
  shopts.rebalance_period = 500 * common::kMicrosPerMilli;
  sharding::AutoSharder sharder(&sim, &net, shopts);
  cache::WatchCacheOptions copts;
  copts.pods = 3;
  copts.materialized.net = &net;  // Crashed pods pause instead of spinning.
  cache::WatchCacheFleet fleet(&sim, &net, &sharder, &ws, &snapshot_source, &store, copts);
  const std::vector<sim::NodeId> pod_nodes = fleet.PodNodes();

  std::vector<std::unique_ptr<watch::MaterializedRange>> watchers;
  const std::vector<common::KeyRange> watcher_ranges = cdc::UniformShards(options_.keys, 2);
  for (std::size_t i = 0; i < watcher_ranges.size(); ++i) {
    watch::MaterializedOptions mopts;
    mopts.node = "watcher-" + std::to_string(i);
    mopts.net = &net;
    net.AddNode(mopts.node);
    auto mr = std::make_unique<watch::MaterializedRange>(&sim, &ws, &snapshot_source,
                                                         watcher_ranges[i], mopts);
    mr->Start();
    watchers.push_back(std::move(mr));
  }

  // -- Pubsub side: lossless replicated topic + lossy churned topic -----------
  pubsub::Broker broker(&sim, &net, "broker", /*gc_period=*/200 * common::kMicrosPerMilli);

  pubsub::TopicConfig repl_config;
  repl_config.partitions = 1;  // kSerial needs publish order == commit order.
  (void)broker.CreateTopic(kReplTopic, repl_config);

  pubsub::TopicConfig lossy_config;
  lossy_config.partitions = 2;
  lossy_config.retention.retention = 600 * common::kMicrosPerMilli;
  lossy_config.retention.compacted = true;
  lossy_config.retention.compaction_window = 300 * common::kMicrosPerMilli;
  (void)broker.CreateTopic(kLossyTopic, lossy_config);

  cdc::PubsubFeedOptions repl_feed_opts;
  repl_feed_opts.node = "cdc-repl";
  cdc::CdcPubsubFeed repl_feed(&sim, &net, &store, nullptr, &broker, kReplTopic,
                               repl_feed_opts);
  cdc::PubsubFeedOptions lossy_feed_opts;
  lossy_feed_opts.node = "cdc-lossy";
  cdc::CdcPubsubFeed lossy_feed(&sim, &net, &store, nullptr, &broker, kLossyTopic,
                                lossy_feed_opts);

  replication::TargetStore target;
  replication::PointInTimeChecker checker(&history, &target);
  replication::PubsubReplicatorOptions replicator_opts;
  replicator_opts.consumer.poll_period = 20 * common::kMicrosPerMilli;
  replication::PubsubReplicator replicator(&sim, &net, &broker, kReplTopic, kReplGroup, &target,
                                           replication::PubsubReplicationMode::kSerial,
                                           replicator_opts);

  std::vector<std::unique_ptr<pubsub::GroupConsumer>> lossy_consumers;
  std::vector<bool> lossy_running;
  for (int i = 0; i < 3; ++i) {
    auto consumer = std::make_unique<pubsub::GroupConsumer>(
        &sim, &net, &broker, kLossyGroup, kLossyTopic, "lossy-" + std::to_string(i),
        [](pubsub::PartitionId, const pubsub::StoredMessage&) { return true; });
    consumer->Start();
    lossy_consumers.push_back(std::move(consumer));
    lossy_running.push_back(true);
  }

  // -- Oracle ------------------------------------------------------------------
  InvariantOracle oracle(&sim);
  oracle.ObserveBroker(&broker);
  oracle.ObserveWatchSystem(&ws);
  oracle.ObserveCache(&fleet);
  oracle.ObserveReplication(&checker, &target);

  // -- Seeded write workload ---------------------------------------------------
  std::uint64_t commits = 0;
  sim::PeriodicTask writer(&sim, options_.write_period, [&] {
    if (sim.Now() > options_.fault_window) {
      return;  // Quiescing: no new commits.
    }
    common::Rng& rng = sim.rng();
    storage::Transaction txn = store.Begin();
    const std::uint64_t n = 1 + rng.Below(3);
    for (std::uint64_t i = 0; i < n; ++i) {
      const common::Key key = common::IndexKey(rng.Below(options_.keys));
      if (rng.Bernoulli(0.1)) {
        txn.Delete(key);
      } else {
        txn.Put(key, "v" + std::to_string(commits) + "." + std::to_string(i));
      }
    }
    if (store.Commit(std::move(txn)).ok()) {
      ++commits;
    }
  });

  // -- Fault injection ---------------------------------------------------------
  auto apply = [&](const ChaosEvent& ev) {
    switch (ev.kind) {
      case ChaosKind::kCrashWatcher: {
        const std::size_t i = ev.arg % watchers.size();
        const sim::NodeId node = "watcher-" + std::to_string(i);
        net.SetUp(node, false);
        watchers[i]->CrashLocalState();
        sim.After(ev.duration, [&net, &watchers, node, i] {
          net.SetUp(node, true);
          watchers[i]->Start();
        });
        break;
      }
      case ChaosKind::kCrashCachePod: {
        const sim::NodeId node = pod_nodes[ev.arg % pod_nodes.size()];
        net.SetUp(node, false);
        sim.After(ev.duration, [&net, node] { net.SetUp(node, true); });
        break;
      }
      case ChaosKind::kPartitionApplier: {
        net.Partition("broker", "applier-0");
        sim.After(ev.duration, [&net] { net.Heal("broker", "applier-0"); });
        break;
      }
      case ChaosKind::kPartitionCdc: {
        const sim::NodeId node = (ev.arg % 2 == 0) ? "cdc-repl" : "cdc-lossy";
        net.Partition("broker", node);
        sim.After(ev.duration, [&net, node] { net.Heal("broker", node); });
        break;
      }
      case ChaosKind::kStoreGc:
        store.AdvanceGcWatermark(store.LatestVersion());
        break;
      case ChaosKind::kShardMove: {
        const common::Key key = common::IndexKey(ev.arg % options_.keys);
        const sim::NodeId to = pod_nodes[(ev.arg / options_.keys) % pod_nodes.size()];
        sharder.MoveShard(key, to);
        break;
      }
      case ChaosKind::kGroupChurn: {
        const std::size_t i = ev.arg % lossy_consumers.size();
        if (lossy_running[i]) {
          lossy_running[i] = false;
          lossy_consumers[i]->Stop();
          sim.After(ev.duration, [&lossy_consumers, &lossy_running, i] {
            lossy_consumers[i]->Start();
            lossy_running[i] = true;
          });
        }
        break;
      }
      case ChaosKind::kSoftStateCrash:
        ws.CrashSoftState();
        break;
      case ChaosKind::kSeekToTime: {
        const common::TimeMicros back =
            static_cast<common::TimeMicros>(ev.arg % (2 * common::kMicrosPerSecond));
        const common::TimeMicros t = sim.Now() > back ? sim.Now() - back : 0;
        broker.SeekGroupToTime(kLossyGroup, kLossyTopic, t);
        break;
      }
    }
  };
  for (const ChaosEvent& ev : schedule) {
    sim.At(ev.at, [&apply, &oracle, ev] {
      apply(ev);
      oracle.Check();  // Continuous invariants must hold right after the fault.
    });
  }
  sim::PeriodicTask checker_task(&sim, 100 * common::kMicrosPerMilli,
                                 [&oracle] { oracle.Check(); });

  // -- Run, quiesce, and audit -------------------------------------------------
  sim.RunUntil(options_.fault_window);
  // Outages self-heal inside the window (MakeSchedule clamps durations), but
  // belt-and-braces: re-heal the fixed fault surface before draining.
  net.Heal("broker", "applier-0");
  net.Heal("broker", "cdc-repl");
  net.Heal("broker", "cdc-lossy");
  sim.RunUntil(options_.fault_window + options_.quiesce_grace);
  oracle.CheckQuiesced();

  SweepResult result;
  result.seed = seed;
  result.violations = oracle.violations();
  result.schedule = schedule;
  result.stats.commits = commits;
  result.stats.watch_events_delivered = ws.events_delivered();
  result.stats.watch_resyncs = ws.resyncs_sent();
  result.stats.broker_gced = broker.TotalGced(kLossyTopic);
  result.stats.broker_compacted = broker.TotalCompactedAway(kLossyTopic);
  result.stats.silent_skips = broker.TotalSilentSkips(kLossyTopic);
  result.stats.checks = oracle.checks_run();
  return result;
}

SweepResult ChaosSweep::Shrink(std::uint64_t seed, std::vector<ChaosEvent> schedule) const {
  SweepResult last = RunSchedule(seed, schedule);
  if (last.ok()) {
    return last;
  }
  bool improved = true;
  while (improved && !schedule.empty()) {
    improved = false;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      std::vector<ChaosEvent> candidate = schedule;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      SweepResult attempt = RunSchedule(seed, candidate);
      if (!attempt.ok()) {
        schedule = std::move(candidate);
        last = std::move(attempt);
        improved = true;
        break;  // Restart the scan over the smaller schedule.
      }
    }
  }
  return last;
}

}  // namespace oracle
