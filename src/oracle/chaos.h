// ChaosSweep: a deterministic fault-schedule driver for the invariant oracle.
//
// Each run builds the full cross-layer stack — MVCC store with a seeded write
// workload, CDC into both a watch system (sharded ingester feed) and a pubsub
// broker (a lossless serially-replicated topic plus a lossy
// retention+compaction topic with a churned consumer group), an auto-sharded
// watch-cache fleet, standalone materialized watchers, and a replication
// target with point-in-time checking — then injects a seeded schedule of
// crashes, partitions, GC pressure, shard moves, group churn, soft-state
// wipes, and seeks. The oracle's Check() runs after every injected fault and
// on a periodic cadence; after the schedule drains and faults heal,
// CheckQuiesced() asserts completeness, cache freshness, and replication
// consistency.
//
// Everything derives from the seed through the simulator's event queue, so a
// violating schedule replays exactly — which is what makes Shrink() possible:
// it greedily deletes events while the violation reproduces, returning a
// minimal reproducing schedule.
#ifndef SRC_ORACLE_CHAOS_H_
#define SRC_ORACLE_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "oracle/invariant_oracle.h"

namespace oracle {

enum class ChaosKind : std::uint8_t {
  kCrashWatcher,      // Crash a standalone watcher node (loses local state).
  kCrashCachePod,     // Take a cache pod's node down; restore later.
  kPartitionApplier,  // Partition the broker from the replication applier.
  kPartitionCdc,      // Partition the broker from a CDC publisher.
  kStoreGc,           // Advance the MVCC GC watermark to the latest version.
  kShardMove,         // Move a cache shard to another pod.
  kGroupChurn,        // Stop a lossy-topic group consumer; restart it later.
  kSoftStateCrash,    // Drop the watch system's soft state.
  kSeekToTime,        // Seek the lossy group to a past timestamp.
};
inline constexpr int kChaosKinds = 9;

struct ChaosEvent {
  ChaosKind kind = ChaosKind::kStoreGc;
  common::TimeMicros at = 0;        // Absolute injection time.
  common::TimeMicros duration = 0;  // Outage length for events that heal.
  std::uint64_t arg = 0;            // Kind-specific selector (node, key, ...).
};

std::string DescribeChaosEvent(const ChaosEvent& event);

struct ChaosOptions {
  std::size_t events = 24;  // Faults per schedule.
  // Faults and writes happen in (0, fault_window]; the run then heals and
  // drains until fault_window + quiesce_grace before CheckQuiesced().
  common::TimeMicros fault_window = 6 * common::kMicrosPerSecond;
  common::TimeMicros quiesce_grace = 4 * common::kMicrosPerSecond;
  std::uint64_t keys = 256;  // IndexKey universe for the write workload.
  common::TimeMicros write_period = 2 * common::kMicrosPerMilli;
};

struct SweepStats {
  std::uint64_t commits = 0;
  std::uint64_t watch_events_delivered = 0;
  std::uint64_t watch_resyncs = 0;
  std::uint64_t broker_gced = 0;
  std::uint64_t broker_compacted = 0;
  std::uint64_t silent_skips = 0;
  std::uint64_t checks = 0;
};

struct SweepResult {
  std::uint64_t seed = 0;
  std::vector<Violation> violations;
  std::vector<ChaosEvent> schedule;  // The schedule that produced this result.
  SweepStats stats;

  bool ok() const { return violations.empty(); }
};

class ChaosSweep {
 public:
  explicit ChaosSweep(ChaosOptions options = {}) : options_(options) {}

  // The seed's full fault schedule, sorted by injection time.
  std::vector<ChaosEvent> MakeSchedule(std::uint64_t seed) const;

  // Runs the seed's full schedule.
  SweepResult Run(std::uint64_t seed) const { return RunSchedule(seed, MakeSchedule(seed)); }

  // Runs an explicit (possibly reduced) schedule under the seed's workload.
  SweepResult RunSchedule(std::uint64_t seed, const std::vector<ChaosEvent>& schedule) const;

  // Greedily deletes schedule events while the violation still reproduces;
  // returns the result of the minimal reproducing schedule. If `schedule`
  // does not violate, returns its (clean) result unchanged.
  SweepResult Shrink(std::uint64_t seed, std::vector<ChaosEvent> schedule) const;

 private:
  ChaosOptions options_;
};

}  // namespace oracle

#endif  // SRC_ORACLE_CHAOS_H_
