#include "oracle/invariant_oracle.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace oracle {

namespace {

std::string DescribeEvent(const common::ChangeEvent& event) {
  std::ostringstream os;
  os << (event.mutation.kind == common::MutationKind::kPut ? "put" : "del") << " " << event.key
     << " @v" << event.version;
  return os.str();
}

std::string RangeKey(const common::KeyRange& range) {
  return range.low + '\0' + range.high;
}

}  // namespace

std::optional<std::string> FindShadowedSurvivor(const std::deque<pubsub::StoredMessage>& log,
                                                common::TimeMicros horizon,
                                                pubsub::Offset compact_end) {
  // Newest retained offset per key among records the last compaction saw.
  std::unordered_map<common::Key, pubsub::Offset> newest;
  for (const pubsub::StoredMessage& m : log) {
    if (m.offset >= compact_end) {
      continue;  // Appended after the compaction pass; exempt until the next.
    }
    auto [it, inserted] = newest.try_emplace(m.message.key, m.offset);
    if (!inserted && m.offset > it->second) {
      it->second = m.offset;
    }
  }
  for (const pubsub::StoredMessage& m : log) {
    if (m.offset >= compact_end || m.message.publish_time >= horizon) {
      continue;
    }
    const pubsub::Offset newest_offset = newest.at(m.message.key);
    if (newest_offset != m.offset) {
      std::ostringstream os;
      os << "offset " << m.offset << " (key " << m.message.key << ", published at "
         << m.message.publish_time << ") survived compaction at horizon " << horizon
         << " despite newer retained offset " << newest_offset;
      return os.str();
    }
  }
  return std::nullopt;
}

void InvariantOracle::ObserveBroker(pubsub::Broker* broker) {
  broker_ = broker;
  // AddObserver (not set_observer) so a durability journal can observe the
  // same broker alongside the oracle.
  broker_->AddObserver(this);
}

void InvariantOracle::ObserveWatchSystem(watch::WatchSystem* system) {
  watch_ = system;
  watch_->set_observer(this);
}

void InvariantOracle::AddViolation(std::string invariant, std::string detail) {
  if (violations_.size() >= kMaxViolations) {
    return;
  }
  if (!seen_.insert(invariant + '|' + detail).second) {
    return;  // Already recorded; continuous checks would otherwise flood.
  }
  violations_.push_back(Violation{std::move(invariant), std::move(detail), sim_->Now()});
}

std::string InvariantOracle::Report() const {
  std::ostringstream os;
  for (const Violation& v : violations_) {
    os << "[" << v.invariant << "] t=" << v.at << "us: " << v.detail << "\n";
  }
  return os.str();
}

// -- Broker hooks --------------------------------------------------------------

void InvariantOracle::OnRebalance(const pubsub::GroupId& group, std::uint64_t generation,
                                  const std::vector<pubsub::MemberId>& members,
                                  const std::map<pubsub::PartitionId, pubsub::MemberId>&
                                      assignment) {
  GroupTrack& track = groups_[group];
  std::set<pubsub::PartitionId> partitions;
  for (const auto& [partition, owner] : assignment) {
    partitions.insert(partition);
  }
  if (track.saw_rebalance) {
    if (generation <= track.generation) {
      std::ostringstream os;
      os << "group " << group << " generation went " << track.generation << " -> " << generation;
      AddViolation("group-generation-monotonic", os.str());
    }
    // A rebalance needs a cause: either membership changed or the topic
    // changed shape (partition growth re-spreads the same members).
    if (members == track.last_members && partitions == track.last_partitions) {
      std::ostringstream os;
      os << "group " << group << " rebalanced to generation " << generation
         << " with unchanged membership (" << members.size()
         << " members) — a no-op rejoin must not invalidate assignments";
      AddViolation("group-spurious-rebalance", os.str());
    }
  }
  track.saw_rebalance = true;
  track.generation = generation;
  track.last_members = members;
  track.last_partitions = std::move(partitions);

  // Assignment soundness: every owner is a member. (Coverage of all
  // partitions is checked against the broker's topic config in CheckBroker,
  // where the partition count is known.)
  for (const auto& [partition, owner] : assignment) {
    if (std::find(members.begin(), members.end(), owner) == members.end()) {
      std::ostringstream os;
      os << "group " << group << " partition " << partition << " assigned to non-member "
         << owner;
      AddViolation("group-assignment-soundness", os.str());
    }
  }
  if (members.empty() && !assignment.empty()) {
    AddViolation("group-assignment-soundness",
                 "group " + group + " has an assignment but no members");
  }
}

void InvariantOracle::OnSeek(const pubsub::GroupId& group, pubsub::PartitionId partition,
                             pubsub::Offset offset) {
  // A seek is the one legitimate committed-offset rewind: lower the floor.
  committed_floor_[group][partition] = offset;
}

void InvariantOracle::OnCommitOffset(const pubsub::GroupId& group, pubsub::PartitionId partition,
                                     pubsub::Offset offset) {
  // Eager monotonicity check at the faulting call (Check() re-verifies
  // against the same floor later).
  pubsub::Offset& floor = committed_floor_[group][partition];
  if (offset < floor) {
    std::ostringstream os;
    os << "group " << group << " partition " << partition << " committed offset regressed "
       << floor << " -> " << offset << " without a seek";
    AddViolation("group-committed-monotonic", os.str());
  } else {
    floor = offset;
  }
}

// -- Watch hooks ---------------------------------------------------------------

void InvariantOracle::OnIngest(const common::ChangeEvent& event) {
  ingest_history_.push_back(event);
  for (auto& [id, track] : sessions_) {
    if (event.version > track.start_version && track.range.Contains(event.key)) {
      track.expected.push_back(event);
    }
  }
}

void InvariantOracle::OnSessionStart(std::uint64_t session_id, const common::KeyRange& range,
                                     common::Version start_version) {
  SessionTrack track;
  track.range = range;
  track.start_version = start_version;
  // Events ingested before the session existed are owed as replay iff the
  // window can serve them; if it cannot, the session is resynced before any
  // delivery and OnResync drops this track.
  for (const common::ChangeEvent& event : ingest_history_) {
    if (event.version > start_version && range.Contains(event.key)) {
      track.expected.push_back(event);
    }
  }
  sessions_[session_id] = std::move(track);
}

void InvariantOracle::OnDeliver(std::uint64_t session_id, const common::ChangeEvent& event) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    AddViolation("watch-no-gap", "delivery on untracked session " +
                                     std::to_string(session_id) + ": " + DescribeEvent(event));
    return;
  }
  SessionTrack& track = it->second;
  if (track.expected.empty()) {
    AddViolation("watch-no-gap", "session " + std::to_string(session_id) +
                                     " received unexpected " + DescribeEvent(event));
    return;
  }
  const common::ChangeEvent& want = track.expected.front();
  if (!(want == event)) {
    std::ostringstream os;
    os << "session " << session_id << " expected " << DescribeEvent(want) << " but received "
       << DescribeEvent(event) << " (gap or reorder)";
    AddViolation("watch-no-gap", os.str());
    // Resynchronize the shadow stream at the delivered event so one gap does
    // not cascade into a violation per subsequent delivery.
    while (!track.expected.empty() && !(track.expected.front() == event)) {
      track.expected.pop_front();
    }
  }
  if (!track.expected.empty()) {
    track.expected.pop_front();
  }
  ++track.delivered;
}

void InvariantOracle::OnResync(std::uint64_t session_id) {
  // The contract transfers responsibility to the watcher's re-snapshot; the
  // session owes nothing further.
  sessions_.erase(session_id);
}

void InvariantOracle::OnSoftStateCrash() {
  // The window floor rises above everything ever buffered: pre-crash events
  // can never again be replayed (sessions needing them get resyncs), so the
  // shadow history restarts. Progress frontiers legitimately regress.
  ingest_history_.clear();
  frontier_floor_.clear();
}

// -- Checks --------------------------------------------------------------------

void InvariantOracle::CheckBroker() {
  for (const std::string& topic : broker_->TopicNames()) {
    const pubsub::PartitionId partitions = broker_->PartitionCount(topic);
    for (pubsub::PartitionId p = 0; p < partitions; ++p) {
      const pubsub::PartitionLog* log = broker_->Log(topic, p);
      std::ostringstream where;
      where << topic << "/" << p;

      // Conservation: every allocated offset is retained or accounted.
      const std::uint64_t accounted = log->size() + log->gced() + log->compacted_away();
      if (accounted != log->end_offset()) {
        std::ostringstream os;
        os << where.str() << ": size " << log->size() << " + gced " << log->gced()
           << " + compacted " << log->compacted_away() << " != end offset "
           << log->end_offset();
        AddViolation("log-conservation", os.str());
      }

      // Offset monotonicity of the retained window.
      LogTrack& track = log_tracks_[topic][p];
      if (log->first_offset() < track.first) {
        std::ostringstream os;
        os << where.str() << ": first offset regressed " << track.first << " -> "
           << log->first_offset();
        AddViolation("log-offset-monotonic", os.str());
      }
      if (log->end_offset() < track.end) {
        std::ostringstream os;
        os << where.str() << ": end offset regressed " << track.end << " -> "
           << log->end_offset();
        AddViolation("log-offset-monotonic", os.str());
      }
      track.first = log->first_offset();
      track.end = log->end_offset();

      // Compaction left no shadowed pre-horizon survivors.
      if (auto shadowed = FindShadowedSurvivor(log->entries(), log->last_compaction_horizon(),
                                               log->compact_end_offset())) {
        AddViolation("log-compaction-shadow", where.str() + ": " + *shadowed);
      }
    }
  }

  for (const pubsub::GroupId& group : broker_->GroupIds()) {
    const pubsub::GroupView view = broker_->ViewGroup(group);
    GroupTrack& track = groups_[group];

    // Topic binding is immutable.
    if (track.topic.empty()) {
      track.topic = view.topic;
    } else if (!view.topic.empty() && view.topic != track.topic) {
      AddViolation("group-topic-binding",
                   "group " + group + " moved from topic " + track.topic + " to " + view.topic);
    }
    if (view.generation < track.generation) {
      std::ostringstream os;
      os << "group " << group << " generation regressed " << track.generation << " -> "
         << view.generation;
      AddViolation("group-generation-monotonic", os.str());
    }
    track.generation = view.generation;

    // Assignment soundness against the topic's actual partition count: with
    // members present, every partition has exactly one owner, and owners are
    // members. (The assignment map gives at-most-one by construction; this
    // checks coverage and membership.)
    if (!view.members.empty() && broker_->HasTopic(view.topic)) {
      const pubsub::PartitionId partitions = broker_->PartitionCount(view.topic);
      for (pubsub::PartitionId p = 0; p < partitions; ++p) {
        auto owner = view.assignment.find(p);
        if (owner == view.assignment.end()) {
          std::ostringstream os;
          os << "group " << group << " partition " << p << " has no owner despite "
             << view.members.size() << " members";
          AddViolation("group-assignment-soundness", os.str());
        } else if (std::find(view.members.begin(), view.members.end(), owner->second) ==
                   view.members.end()) {
          std::ostringstream os;
          os << "group " << group << " partition " << p << " owned by non-member "
             << owner->second;
          AddViolation("group-assignment-soundness", os.str());
        }
      }
    }

    // Committed offsets: bounded by the log end, monotone except across seeks.
    for (const auto& [partition, committed] : view.committed) {
      const pubsub::PartitionLog* log = broker_->Log(view.topic, partition);
      if (log != nullptr && committed > log->end_offset()) {
        std::ostringstream os;
        os << "group " << group << " partition " << partition << " committed " << committed
           << " beyond end offset " << log->end_offset();
        AddViolation("group-committed-bounded", os.str());
      }
      pubsub::Offset& floor = committed_floor_[group][partition];
      if (committed < floor) {
        std::ostringstream os;
        os << "group " << group << " partition " << partition << " committed offset regressed "
           << floor << " -> " << committed << " without a seek";
        AddViolation("group-committed-monotonic", os.str());
      }
      floor = committed;
    }
  }
}

void InvariantOracle::CheckWatch() {
  // Exact in-flight accounting: only live sessions may carry in-flight
  // deliveries (the counter resets the moment a session leaves kLive).
  watch_->VisitSessions([this](const watch::WatchSystem::SessionInfo& info) {
    if (!info.live && info.in_flight != 0) {
      std::ostringstream os;
      os << "session " << info.id << " is not live but has " << info.in_flight
         << " in-flight deliveries";
      AddViolation("watch-in-flight-exact", os.str());
    }
  });

  // Progress-frontier monotonicity, probed over the full key space and every
  // tracked session range. Floors reset on soft-state crash.
  auto probe = [this](const common::KeyRange& range) {
    const common::Version frontier = watch_->progress_tracker().FrontierFor(range);
    common::Version& floor = frontier_floor_[RangeKey(range)];
    if (frontier < floor) {
      std::ostringstream os;
      os << "progress frontier for [" << range.low << ", " << range.high << ") regressed "
         << floor << " -> " << frontier;
      AddViolation("progress-frontier-monotonic", os.str());
    }
    floor = std::max(floor, frontier);
  };
  probe(common::KeyRange::All());
  for (const auto& [id, track] : sessions_) {
    probe(track.range);
  }
}

void InvariantOracle::Check() {
  ++checks_run_;
  if (broker_ != nullptr) {
    CheckBroker();
  }
  if (watch_ != nullptr) {
    CheckWatch();
  }
}

void InvariantOracle::CheckQuiesced() {
  Check();

  if (watch_ != nullptr) {
    // Completeness: a still-live session has been delivered every event it is
    // owed, with nothing left in flight. Broken sessions are exempt — their
    // watchers re-snapshot, which is the loud path the contract allows.
    std::map<std::uint64_t, watch::WatchSystem::SessionInfo> live;
    watch_->VisitSessions([&live](const watch::WatchSystem::SessionInfo& info) {
      if (info.live) {
        live[info.id] = info;
      }
    });
    for (const auto& [id, track] : sessions_) {
      auto it = live.find(id);
      if (it == live.end()) {
        continue;
      }
      if (!track.expected.empty()) {
        std::ostringstream os;
        os << "live session " << id << " is owed " << track.expected.size()
           << " undelivered events after quiesce (next: " << DescribeEvent(track.expected.front())
           << ")";
        AddViolation("watch-no-gap", os.str());
      }
      if (it->second.in_flight != 0) {
        std::ostringstream os;
        os << "live session " << id << " still has " << it->second.in_flight
           << " in-flight deliveries after quiesce";
        AddViolation("watch-in-flight-exact", os.str());
      }
    }
  }

  if (fleet_ != nullptr) {
    const std::uint64_t stale = fleet_->AuditStaleEntries();
    if (stale != 0) {
      AddViolation("cache-freshness", "watch cache fleet holds " + std::to_string(stale) +
                                          " stale entries after quiesce");
    }
  }

  if (repl_checker_ != nullptr) {
    if (repl_checker_->anomalies() != 0) {
      AddViolation("replication-point-in-time",
                   std::to_string(repl_checker_->anomalies()) +
                       " externalized target states never existed in the source");
    }
    if (repl_target_ != nullptr && !repl_checker_->Converged(*repl_target_)) {
      AddViolation("replication-convergence",
                   "target state hash does not match the source's final state after quiesce");
    }
  }
}

}  // namespace oracle
