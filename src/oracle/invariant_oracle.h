// InvariantOracle: a cross-layer runtime checker. It subscribes to the
// harness-side observer hooks of the pubsub broker and the watch system and
// keeps its own shadow bookkeeping, so it can continuously assert the
// correctness contracts the paper's analysis turns on:
//
//   * watch no-gap — a live watch session receives exactly the ingested
//     events in its range with version > its start version, in ingest order;
//     anything else must surface as a loud resync, never a silent skip
//     (Section 4.2's delivery contract);
//   * log conservation — every offset a partition ever allocated is either
//     retained or accounted to GC / compaction, and reads that skip history
//     are counted in silent_skips (Section 3.1's "undetectable loss" made
//     detectable harness-side);
//   * group-assignment soundness — every partition of a group's topic is
//     owned by exactly one current member per generation, generations only
//     grow, a group's topic binding never changes, and no rebalance fires
//     without a membership change;
//   * progress-frontier monotonicity — range-scoped progress never regresses
//     (except across an explicit soft-state crash);
//   * cache freshness / replication consistency — after quiescing, watch-fed
//     caches hold no stale entries, and the serially replicated target is
//     point-in-time consistent and converged.
//
// Check() runs the continuous invariants and may be called at any instant
// (the chaos driver calls it after every injected fault). CheckQuiesced()
// adds the completeness invariants that only hold once the system has been
// healed and drained. Violations accumulate with the simulated time at which
// they were detected; a clean run has ok() == true.
#ifndef SRC_ORACLE_INVARIANT_ORACLE_H_
#define SRC_ORACLE_INVARIANT_ORACLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cache/watch_cache.h"
#include "common/types.h"
#include "pubsub/broker.h"
#include "pubsub/log.h"
#include "replication/checker.h"
#include "replication/target_store.h"
#include "sim/simulator.h"
#include "watch/watch_system.h"

namespace oracle {

struct Violation {
  std::string invariant;  // Stable identifier, e.g. "watch-no-gap".
  std::string detail;     // Human-readable context.
  common::TimeMicros at = 0;
};

// Pure predicate behind the compaction-shadowing invariant, exposed for unit
// tests (the fixed PartitionLog::Compact can no longer be driven into the bad
// state through its API). Returns a description of the first retained
// pre-horizon record that is shadowed by a newer retained record for the same
// key, considering only records present at the last compaction
// (offset < compact_end); nullopt if the log is compaction-clean.
std::optional<std::string> FindShadowedSurvivor(const std::deque<pubsub::StoredMessage>& log,
                                                common::TimeMicros horizon,
                                                pubsub::Offset compact_end);

class InvariantOracle : public pubsub::BrokerObserver, public watch::WatchSystemObserver {
 public:
  explicit InvariantOracle(sim::Simulator* sim) : sim_(sim) {}

  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  // -- Registration (each installs this oracle as the component's observer) ----

  void ObserveBroker(pubsub::Broker* broker);
  void ObserveWatchSystem(watch::WatchSystem* system);
  void ObserveCache(const cache::WatchCacheFleet* fleet) { fleet_ = fleet; }
  void ObserveReplication(const replication::PointInTimeChecker* checker,
                          const replication::TargetStore* target) {
    repl_checker_ = checker;
    repl_target_ = target;
  }

  // -- Checks ------------------------------------------------------------------

  // Continuous invariants; callable at any instant.
  void Check();
  // Continuous + completeness invariants; call only after faults are healed
  // and the schedule has drained (writers stopped, deliveries flushed).
  void CheckQuiesced();

  // Records a violation detected by an external checker (e.g. the WAL
  // replication failover check, which the oracle cannot observe directly
  // without a layering inversion). Deduped like internal violations.
  void ReportExternalViolation(std::string invariant, std::string detail) {
    AddViolation(std::move(invariant), std::move(detail));
  }

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  // One line per violation, for logs and failure messages.
  std::string Report() const;

  // -- BrokerObserver ----------------------------------------------------------

  void OnRebalance(const pubsub::GroupId& group, std::uint64_t generation,
                   const std::vector<pubsub::MemberId>& members,
                   const std::map<pubsub::PartitionId, pubsub::MemberId>& assignment) override;
  void OnSeek(const pubsub::GroupId& group, pubsub::PartitionId partition,
              pubsub::Offset offset) override;
  void OnCommitOffset(const pubsub::GroupId& group, pubsub::PartitionId partition,
                      pubsub::Offset offset) override;

  // -- WatchSystemObserver -----------------------------------------------------

  void OnIngest(const common::ChangeEvent& event) override;
  void OnSessionStart(std::uint64_t session_id, const common::KeyRange& range,
                      common::Version start_version) override;
  void OnDeliver(std::uint64_t session_id, const common::ChangeEvent& event) override;
  void OnResync(std::uint64_t session_id) override;
  void OnSoftStateCrash() override;

 private:
  // Shadow state for one live watch session: the events it is still owed.
  struct SessionTrack {
    common::KeyRange range;
    common::Version start_version = 0;
    std::deque<common::ChangeEvent> expected;
    std::uint64_t delivered = 0;
  };

  struct GroupTrack {
    std::string topic;
    std::uint64_t generation = 0;
    std::vector<pubsub::MemberId> last_members;
    // Partition keys of the last assignment: a rebalance with unchanged
    // membership is legitimate iff the topic changed shape (partition growth).
    std::set<pubsub::PartitionId> last_partitions;
    bool saw_rebalance = false;
  };

  struct LogTrack {
    pubsub::Offset first = 0;
    pubsub::Offset end = 0;
  };

  void AddViolation(std::string invariant, std::string detail);
  void CheckBroker();
  void CheckWatch();

  sim::Simulator* sim_;
  pubsub::Broker* broker_ = nullptr;
  watch::WatchSystem* watch_ = nullptr;
  const cache::WatchCacheFleet* fleet_ = nullptr;
  const replication::PointInTimeChecker* repl_checker_ = nullptr;
  const replication::TargetStore* repl_target_ = nullptr;

  // Watch shadow state.
  std::vector<common::ChangeEvent> ingest_history_;
  std::map<std::uint64_t, SessionTrack> sessions_;

  // Broker shadow state.
  std::map<pubsub::GroupId, GroupTrack> groups_;
  // Committed-offset floor per (group, partition); lowered only by OnSeek.
  std::map<pubsub::GroupId, std::map<pubsub::PartitionId, pubsub::Offset>> committed_floor_;
  std::map<std::string, std::map<pubsub::PartitionId, LogTrack>> log_tracks_;

  // Progress-frontier floor per probed range (low + '\0' + high).
  std::map<std::string, common::Version> frontier_floor_;

  std::vector<Violation> violations_;
  std::set<std::string> seen_;  // Dedup key: invariant + detail.
  std::uint64_t checks_run_ = 0;

  static constexpr std::size_t kMaxViolations = 64;
};

}  // namespace oracle

#endif  // SRC_ORACLE_INVARIANT_ORACLE_H_
