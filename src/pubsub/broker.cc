#include "pubsub/broker.h"

#include <algorithm>

namespace pubsub {

Broker::Broker(sim::Simulator* sim, sim::Network* net, sim::NodeId node,
               common::TimeMicros gc_period)
    : sim_(sim), net_(net), node_(std::move(node)) {
  net_->AddNode(node_);
  maintenance_ = std::make_unique<sim::PeriodicTask>(sim_, gc_period, [this] {
    EnforceRetention();
    SweepDeadMembers();
  });
}

Broker::~Broker() {
  // Fire (don't drop) every parked waiter: a registered wakeup must always
  // run exactly once, even when the registry dies first. The callbacks run
  // as immediate events on the (longer-lived) simulator and re-check state
  // themselves — the standard contract for every waker in this codebase.
  for (auto& [ticket, waiter] : waiter_index_) {
    sim_->After(0, std::move(waiter.fn));
  }
  waiter_index_.clear();
  append_waiters_.clear();
  rebalance_waiters_.clear();
  interests_.clear();
}

common::Status Broker::CreateTopic(const std::string& topic, TopicConfig config) {
  if (topics_.count(topic) > 0) {
    return common::Status::AlreadyExists(topic);
  }
  if (config.partitions == 0) {
    return common::Status::InvalidArgument("topic needs at least one partition");
  }
  Topic t;
  t.config = config;
  t.partitions.reserve(config.partitions);
  t.interest.reserve(config.partitions);
  for (PartitionId p = 0; p < config.partitions; ++p) {
    t.partitions.push_back(std::make_unique<PartitionLog>(config.retention));
    t.interest.push_back(std::make_unique<InterestIndex>());
  }
  topics_.emplace(topic, std::move(t));
  return common::Status::Ok();
}

common::Status Broker::RemoveTopic(const std::string& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  // Fire every append waiter parked on the topic's partitions before the
  // registry entries vanish: long-pollers must wake and observe the removal
  // (their re-check finds the topic gone), never hang on a dead partition.
  for (auto w = append_waiters_.begin(); w != append_waiters_.end();) {
    if (w->first.first != topic) {
      ++w;
      continue;
    }
    for (const auto& [ticket, offset] : w->second) {
      auto entry = waiter_index_.find(ticket);
      sim_->After(0, std::move(entry->second.fn));
      waiter_index_.erase(entry);
    }
    w = append_waiters_.erase(w);
  }
  // Filtered interests on the topic die with it: parked match waiters fire
  // (wakers re-check and find the topic gone) and registrations are dropped
  // — the per-partition index itself is destroyed with the Topic.
  for (auto in = interests_.begin(); in != interests_.end();) {
    if (in->second.topic != topic) {
      ++in;
      continue;
    }
    if (in->second.ticket != 0) {
      auto entry = waiter_index_.find(in->second.ticket);
      sim_->After(0, std::move(entry->second.fn));
      waiter_index_.erase(entry);
    }
    in = interests_.erase(in);
  }
  topics_.erase(it);
  return common::Status::Ok();
}

common::Status Broker::AddPartitions(const std::string& topic, PartitionId additional) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  if (additional == 0) {
    return common::Status::InvalidArgument("additional partitions must be > 0");
  }
  Topic& t = it->second;
  t.partitions.reserve(t.partitions.size() + additional);
  t.interest.reserve(t.interest.size() + additional);
  for (PartitionId p = 0; p < additional; ++p) {
    t.partitions.push_back(std::make_unique<PartitionLog>(t.config.retention));
    t.interest.push_back(std::make_unique<InterestIndex>());
  }
  t.config.partitions += additional;
  // The topic changed shape: every bound group rebalances now so the new
  // partitions have owners (leaving them unowned until the next membership
  // change would violate assignment coverage).
  for (auto& [id, group] : groups_) {
    if (group.topic == topic && !group.members.empty()) {
      Rebalance(id, group, "partition_growth");
    }
  }
  return common::Status::Ok();
}

Broker::WaitTicket Broker::WaitForAppend(const std::string& topic, PartitionId partition,
                                         Offset offset, std::function<void()> fn) {
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.config.partitions) {
    return 0;
  }
  if (it->second.partitions[partition]->end_offset() > offset) {
    // Already satisfied: fire as an immediate event, no registration. The
    // caller's check-then-park loop treats this like any other wakeup.
    sim_->After(0, std::move(fn));
    return 0;
  }
  const WaitTicket ticket = next_wait_ticket_++;
  waiter_index_.emplace(ticket, Waiter{topic, partition, offset, GroupId(), 0, std::move(fn)});
  append_waiters_[{topic, partition}].emplace(ticket, offset);
  return ticket;
}

Broker::WaitTicket Broker::WaitForRebalance(const GroupId& group, std::function<void()> fn) {
  const WaitTicket ticket = next_wait_ticket_++;
  waiter_index_.emplace(ticket, Waiter{std::string(), 0, 0, group, 0, std::move(fn)});
  rebalance_waiters_[group].insert(ticket);
  return ticket;
}

bool Broker::CancelWait(WaitTicket ticket) {
  auto it = waiter_index_.find(ticket);
  if (it == waiter_index_.end()) {
    return false;
  }
  const Waiter& w = it->second;
  if (w.interest != 0) {
    auto in = interests_.find(w.interest);
    if (in != interests_.end() && in->second.ticket == ticket) {
      in->second.ticket = 0;
    }
  } else if (!w.topic.empty()) {
    auto p = append_waiters_.find({w.topic, w.partition});
    if (p != append_waiters_.end()) {
      p->second.erase(ticket);
      if (p->second.empty()) {
        append_waiters_.erase(p);
      }
    }
  } else {
    auto g = rebalance_waiters_.find(w.group);
    if (g != rebalance_waiters_.end()) {
      g->second.erase(ticket);
      if (g->second.empty()) {
        rebalance_waiters_.erase(g);
      }
    }
  }
  waiter_index_.erase(it);
  return true;
}

void Broker::NotifyAppendWaiters(const std::string& topic, PartitionId partition, Offset end) {
  auto it = append_waiters_.find({topic, partition});
  if (it == append_waiters_.end()) {
    return;
  }
  // Collect first (firing order = ticket order, deterministic), then erase:
  // a fired callback runs later as its own event and may re-register.
  std::vector<WaitTicket> due;
  for (const auto& [ticket, offset] : it->second) {
    if (offset < end) {
      due.push_back(ticket);
    }
  }
  for (const WaitTicket ticket : due) {
    auto w = waiter_index_.find(ticket);
    sim_->After(0, std::move(w->second.fn));
    waiter_index_.erase(w);
    it->second.erase(ticket);
  }
  if (it->second.empty()) {
    append_waiters_.erase(it);
  }
}

std::uint64_t Broker::HashKey(std::string_view key) {
  // FNV-1a: deterministic across platforms.
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

common::Result<PublishResult> Broker::Publish(const std::string& topic, Message msg,
                                              std::optional<PartitionId> partition) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  Topic& t = it->second;
  PartitionId p;
  if (partition.has_value()) {
    if (*partition >= t.config.partitions) {
      return common::Status::InvalidArgument("partition out of range");
    }
    p = *partition;
  } else if (!msg.key.empty()) {
    p = static_cast<PartitionId>(HashKey(msg.key) % t.config.partitions);
  } else {
    p = t.next_round_robin;
    t.next_round_robin = (t.next_round_robin + 1) % t.config.partitions;
  }
  msg.publish_time = sim_->Now();
  if (obs::TracingEnabled()) {
    if (!msg.trace.considered()) {
      msg.trace = obs::TraceContext::Start();  // Origin: publish accepted.
    }
    if (msg.trace.active()) {  // Sampled-out records skip the clock read.
      msg.trace.Stamp(obs::Stage::kAppend, obs::NowMicros());
    }
  }
  const Offset offset = t.partitions[p]->Append(std::move(msg));
  NotifyAppendWaiters(topic, p, t.partitions[p]->end_offset());
  DispatchInterests(t, p);
  return PublishResult{p, offset};
}

common::Result<PublishResult> Broker::PublishSpan(const std::string& topic, std::string_view key,
                                                  std::string_view value, const Headers* headers,
                                                  std::optional<PartitionId> partition) {
  // The one and only owned-Message construction for this record: the spans
  // (typically arena slices staged by a producer batch) are materialized
  // into log-owned strings here, at append.
  Message msg;
  msg.key.assign(key.data(), key.size());
  msg.value.assign(value.data(), value.size());
  if (headers != nullptr) {
    msg.headers = *headers;
  }
  return Publish(topic, std::move(msg), partition);
}

void Broker::DispatchInterests(Topic& t, PartitionId partition) {
  InterestIndex& idx = *t.interest[partition];
  if (idx.subscriber_count() == 0) {
    return;
  }
  const auto& entries = t.partitions[partition]->entries();
  if (entries.empty()) {
    return;  // A zero-size cap can drop the record at append time.
  }
  const StoredMessage& sm = entries.back();
  const std::uint64_t scanned_before = idx.lanes_scanned();
  const std::uint64_t matched_before = idx.lanes_matched();
  std::uint64_t woken = 0;
  bool matched_any = false;
  idx.Match(sm.message.key, sm.message.headers, [&](InterestIndex::SubscriberId id) {
    matched_any = true;
    auto it = interests_.find(id);
    if (it == interests_.end()) {
      return;
    }
    Interest& interest = it->second;
    // Only a parked waiter whose target offset has arrived wakes; a consumer
    // mid-catch-up (no parked waiter) will meet this record via its filtered
    // fetch cursor instead.
    if (interest.ticket == 0 || sm.offset < interest.wait_offset) {
      return;
    }
    auto w = waiter_index_.find(interest.ticket);
    sim_->After(0, std::move(w->second.fn));
    waiter_index_.erase(w);
    interest.ticket = 0;
    ++woken;
  });
  if (fanout_wakeups_ != nullptr) {
    fanout_wakeups_->Increment(static_cast<std::int64_t>(woken));
    fanout_lanes_scanned_->Increment(
        static_cast<std::int64_t>(idx.lanes_scanned() - scanned_before));
    fanout_lanes_matched_->Increment(
        static_cast<std::int64_t>(idx.lanes_matched() - matched_before));
    if (matched_any) {
      fanout_appends_matched_->Increment();
    }
  }
}

Broker::InterestId Broker::AddInterest(const std::string& topic, PartitionId partition,
                                       Filter filter) {
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.config.partitions) {
    return 0;
  }
  const InterestId id = next_interest_++;
  it->second.interest[partition]->Add(id, std::move(filter));
  interests_.emplace(id, Interest{topic, partition, 0, 0});
  return id;
}

bool Broker::RemoveInterest(InterestId id) {
  auto it = interests_.find(id);
  if (it == interests_.end()) {
    return false;
  }
  Interest& interest = it->second;
  if (interest.ticket != 0) {
    waiter_index_.erase(interest.ticket);  // Cancel without firing.
  }
  auto t = topics_.find(interest.topic);
  if (t != topics_.end() && interest.partition < t->second.config.partitions) {
    t->second.interest[interest.partition]->Remove(id);
  }
  interests_.erase(it);
  return true;
}

Broker::WaitTicket Broker::WaitForMatch(InterestId id, Offset offset, std::function<void()> fn) {
  auto in = interests_.find(id);
  if (in == interests_.end()) {
    return 0;
  }
  Interest& interest = in->second;
  auto t = topics_.find(interest.topic);
  if (t == topics_.end() || interest.partition >= t->second.config.partitions) {
    return 0;
  }
  const PartitionLog& log = *t->second.partitions[interest.partition];
  const Filter* filter = t->second.interest[interest.partition]->FilterOf(id);
  if (filter != nullptr && log.end_offset() > offset) {
    // A matching record may already be retained at or past `offset`: fire
    // immediately with no registration, mirroring WaitForAppend. The common
    // caller parks only once caught up, so this probe is usually empty.
    std::vector<StoredMessage> probe;
    Offset next = offset;
    if (log.ScanInto(
            offset, 1, 0,
            [filter](const StoredMessage& m) { return filter->Matches(m.message); }, &probe,
            &next) > 0) {
      sim_->After(0, std::move(fn));
      return 0;
    }
  }
  if (interest.ticket != 0) {
    waiter_index_.erase(interest.ticket);  // Re-park replaces the old wakeup.
  }
  const WaitTicket ticket = next_wait_ticket_++;
  waiter_index_.emplace(
      ticket, Waiter{interest.topic, interest.partition, offset, GroupId(), id, std::move(fn)});
  interest.ticket = ticket;
  interest.wait_offset = offset;
  return ticket;
}

common::Result<std::size_t> Broker::FetchFilteredInto(const std::string& topic,
                                                      PartitionId partition, Offset offset,
                                                      std::size_t max, std::size_t max_scan,
                                                      const Filter& filter,
                                                      std::vector<StoredMessage>* out,
                                                      Offset* next_offset,
                                                      std::uint64_t* scanned) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  if (partition >= it->second.config.partitions) {
    return common::Status::InvalidArgument("partition out of range");
  }
  const std::size_t before = out->size();
  std::uint64_t examined = 0;
  const std::size_t appended = it->second.partitions[partition]->ScanInto(
      offset, max, max_scan,
      [&filter](const StoredMessage& m) { return filter.Matches(m.message); }, out, next_offset,
      &examined);
  if (scanned != nullptr) {
    *scanned += examined;
  }
  if (fanout_fetch_scanned_ != nullptr) {
    fanout_fetch_scanned_->Increment(static_cast<std::int64_t>(examined));
    fanout_fetch_matched_->Increment(static_cast<std::int64_t>(appended));
  }
  if (obs::TracingEnabled() && appended != 0) {
    const std::int64_t now = obs::NowMicros();
    for (std::size_t i = before; i < out->size(); ++i) {
      (*out)[i].message.trace.Stamp(obs::Stage::kFetch, now);  // Handed to consumer.
    }
  }
  return appended;
}

const InterestIndex* Broker::Interests(const std::string& topic, PartitionId partition) const {
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.config.partitions) {
    return nullptr;
  }
  return it->second.interest[partition].get();
}

common::Result<std::vector<StoredMessage>> Broker::Fetch(const std::string& topic,
                                                         PartitionId partition, Offset offset,
                                                         std::size_t max) const {
  std::vector<StoredMessage> messages;
  auto appended = FetchInto(topic, partition, offset, max, &messages);
  if (!appended.ok()) {
    return appended.status();
  }
  return messages;
}

common::Result<std::size_t> Broker::FetchInto(const std::string& topic, PartitionId partition,
                                              Offset offset, std::size_t max,
                                              std::vector<StoredMessage>* out) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  if (partition >= it->second.config.partitions) {
    return common::Status::InvalidArgument("partition out of range");
  }
  const std::size_t before = out->size();
  const std::size_t appended = it->second.partitions[partition]->ReadInto(offset, max, out);
  if (obs::TracingEnabled() && appended != 0) {  // Empty polls skip the clock read.
    const std::int64_t now = obs::NowMicros();
    for (std::size_t i = before; i < out->size(); ++i) {
      (*out)[i].message.trace.Stamp(obs::Stage::kFetch, now);  // Handed to consumer.
    }
  }
  return appended;
}

common::Result<std::size_t> Broker::FetchSpans(const std::string& topic, PartitionId partition,
                                               Offset offset, std::size_t max,
                                               std::vector<MessageSpan>* out, ReadPin* pin) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  if (partition >= it->second.config.partitions) {
    return common::Status::InvalidArgument("partition out of range");
  }
  PartitionLog* log = it->second.partitions[partition].get();
  if (pin != nullptr) {
    // Pin before reading; rebinding an already-held pin on the same log
    // overlaps the counts (new pin taken before the old releases), so the
    // log never transiently applies deferred retention between batches.
    *pin = ReadPin(log);
  }
  return log->ReadSpansInto(offset, max, out);
}

Offset Broker::EndOffset(const std::string& topic, PartitionId partition) const {
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.config.partitions) {
    return 0;
  }
  return it->second.partitions[partition]->end_offset();
}

Offset Broker::FirstOffset(const std::string& topic, PartitionId partition) const {
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.config.partitions) {
    return 0;
  }
  return it->second.partitions[partition]->first_offset();
}

common::Result<std::uint64_t> Broker::JoinGroup(const GroupId& group, const std::string& topic,
                                                const MemberId& member) {
  Group& g = groups_[group];
  if (g.topic.empty()) {
    g.topic = topic;
  } else if (g.topic != topic) {
    // A group's topic binding is immutable: letting a late joiner rewrite it
    // would silently repoint every member's assignment at a different log.
    return common::Status::FailedPrecondition("group '" + group + "' consumes topic '" +
                                              g.topic + "', not '" + topic + "'");
  }
  const auto [it, inserted] = g.members.insert_or_assign(member, sim_->Now());
  (void)it;
  if (inserted) {
    Rebalance(group, g, "member_join");
  }
  // A rejoin by a present member is heartbeat-equivalent: bumping the
  // generation here would invalidate every member's AssignedPartitions.
  return g.generation;
}

void Broker::LeaveGroup(const GroupId& group, const MemberId& member) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return;
  }
  if (it->second.members.erase(member) > 0) {
    Rebalance(group, it->second, "member_leave");
  }
}

void Broker::Heartbeat(const GroupId& group, const MemberId& member) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return;
  }
  auto m = it->second.members.find(member);
  if (m != it->second.members.end()) {
    m->second = sim_->Now();
  }
}

std::vector<PartitionId> Broker::AssignedPartitions(const GroupId& group, const MemberId& member,
                                                    std::uint64_t generation) const {
  std::vector<PartitionId> out;
  auto it = groups_.find(group);
  if (it == groups_.end() || it->second.generation != generation) {
    return out;
  }
  for (const auto& [partition, owner] : it->second.assignment) {
    if (owner == member) {
      out.push_back(partition);
    }
  }
  return out;
}

std::uint64_t Broker::GroupGeneration(const GroupId& group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.generation;
}

void Broker::CommitOffset(const GroupId& group, PartitionId partition, Offset offset) {
  Group& g = groups_[group];
  Offset& committed = g.committed[partition];
  if (offset > committed) {
    committed = offset;
    for (BrokerObserver* o : observers_) {
      o->OnCommitOffset(group, partition, committed);
    }
  }
}

void Broker::SeekGroup(const GroupId& group, PartitionId partition, Offset offset) {
  groups_[group].committed[partition] = offset;  // May rewind: that is the point.
  for (BrokerObserver* o : observers_) {
    o->OnSeek(group, partition, offset);
  }
}

void Broker::SeekGroupToTime(const GroupId& group, const std::string& topic,
                             common::TimeMicros timestamp) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return;
  }
  for (PartitionId p = 0; p < it->second.config.partitions; ++p) {
    // First retained message at or after the timestamp; if everything is
    // older, land at the end (nothing replays).
    const Offset target = it->second.partitions[p]->OffsetAtOrAfter(timestamp);
    groups_[group].committed[p] = target;
    for (BrokerObserver* o : observers_) {
      o->OnSeek(group, p, target);
    }
  }
}

Offset Broker::CommittedOffset(const GroupId& group, PartitionId partition) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return 0;
  }
  auto c = it->second.committed.find(partition);
  return c == it->second.committed.end() ? 0 : c->second;
}

std::uint64_t Broker::GroupBacklog(const GroupId& group, const std::string& topic) const {
  auto t = topics_.find(topic);
  if (t == topics_.end()) {
    return 0;
  }
  std::uint64_t backlog = 0;
  for (PartitionId p = 0; p < t->second.config.partitions; ++p) {
    const Offset end = t->second.partitions[p]->end_offset();
    const Offset committed = CommittedOffset(group, p);
    backlog += end > committed ? end - committed : 0;
  }
  return backlog;
}

std::uint64_t Broker::TotalGced(const std::string& topic) const {
  auto t = topics_.find(topic);
  if (t == topics_.end()) {
    return 0;
  }
  std::uint64_t total = 0;
  for (const auto& p : t->second.partitions) {
    total += p->gced();
  }
  return total;
}

std::uint64_t Broker::TotalCompactedAway(const std::string& topic) const {
  auto t = topics_.find(topic);
  if (t == topics_.end()) {
    return 0;
  }
  std::uint64_t total = 0;
  for (const auto& p : t->second.partitions) {
    total += p->compacted_away();
  }
  return total;
}

std::uint64_t Broker::TotalSilentSkips(const std::string& topic) const {
  auto t = topics_.find(topic);
  if (t == topics_.end()) {
    return 0;
  }
  std::uint64_t total = 0;
  for (const auto& p : t->second.partitions) {
    total += p->silent_skips();
  }
  return total;
}

void Broker::EnforceRetention() {
  const common::TimeMicros now = sim_->Now();
  for (auto& [name, topic] : topics_) {
    const RetentionPolicy& policy = topic.config.retention;
    for (auto& log : topic.partitions) {
      if (policy.compacted && policy.compaction_window > 0) {
        log->Compact(now - policy.compaction_window);
      }
      if (policy.retention > 0) {
        log->GcBefore(now - policy.retention);
      }
    }
  }
}

void Broker::SweepDeadMembers() {
  const common::TimeMicros now = sim_->Now();
  for (auto& [id, group] : groups_) {
    bool changed = false;
    for (auto it = group.members.begin(); it != group.members.end();) {
      if (now - it->second > session_timeout_) {
        it = group.members.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    if (changed) {
      Rebalance(id, group, "member_eviction");
    }
  }
}

void Broker::Rebalance(const GroupId& id, Group& group, const char* cause) {
  ++group.generation;
  group.assignment.clear();
  if (obs_ != nullptr) {
    obs_->LogEvent(obs::EventKind::kRebalance, cause,
                   "group=" + id + " gen=" + std::to_string(group.generation) +
                       " members=" + std::to_string(group.members.size()),
                   obs_shard_);
  }
  auto topic = topics_.find(group.topic);
  if (topic != topics_.end() && !group.members.empty()) {
    // Range assignment: contiguous partition blocks over sorted members
    // (std::map iteration is already sorted, giving determinism).
    std::vector<MemberId> members;
    members.reserve(group.members.size());
    for (const auto& [m, hb] : group.members) {
      members.push_back(m);
    }
    const PartitionId n = topic->second.config.partitions;
    for (PartitionId p = 0; p < n; ++p) {
      group.assignment[p] = members[p % members.size()];
    }
  }
  if (!observers_.empty()) {
    std::vector<MemberId> members;
    members.reserve(group.members.size());
    for (const auto& [m, hb] : group.members) {
      members.push_back(m);
    }
    for (BrokerObserver* o : observers_) {
      o->OnRebalance(id, group.generation, members, group.assignment);
    }
  }
  // Wake parked rebalance waiters (one-shot, immediate events, ticket order).
  auto waiters = rebalance_waiters_.find(id);
  if (waiters != rebalance_waiters_.end()) {
    for (const WaitTicket ticket : waiters->second) {
      auto w = waiter_index_.find(ticket);
      sim_->After(0, std::move(w->second.fn));
      waiter_index_.erase(w);
    }
    rebalance_waiters_.erase(waiters);
  }
}

std::vector<std::string> Broker::TopicNames() const {
  std::vector<std::string> out;
  out.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) {
    out.push_back(name);
  }
  return out;
}

std::vector<GroupId> Broker::GroupIds() const {
  std::vector<GroupId> out;
  out.reserve(groups_.size());
  for (const auto& [id, group] : groups_) {
    out.push_back(id);
  }
  return out;
}

GroupView Broker::ViewGroup(const GroupId& group) const {
  GroupView view;
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return view;
  }
  view.topic = it->second.topic;
  view.generation = it->second.generation;
  for (const auto& [m, hb] : it->second.members) {
    view.members.push_back(m);
  }
  view.assignment = it->second.assignment;
  view.committed = it->second.committed;
  return view;
}

const PartitionLog* Broker::Log(const std::string& topic, PartitionId partition) const {
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.config.partitions) {
    return nullptr;
  }
  return it->second.partitions[partition].get();
}

const TopicConfig* Broker::TopicConfigFor(const std::string& topic) const {
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : &it->second.config;
}

PartitionLog* Broker::MutableLog(const std::string& topic, PartitionId partition) {
  auto it = topics_.find(topic);
  if (it == topics_.end() || partition >= it->second.config.partitions) {
    return nullptr;
  }
  return it->second.partitions[partition].get();
}

void Broker::RestoreGroupState(const GroupId& group, const std::string& topic,
                               PartitionId partition, Offset committed) {
  Group& g = groups_[group];
  if (g.topic.empty()) {
    g.topic = topic;
  }
  const Offset end = EndOffset(topic, partition);
  g.committed[partition] = std::min(committed, end);
}

}  // namespace pubsub
