// Broker: topics, partitions, publish routing, retention enforcement, and
// group-coordinator state (member liveness, partition assignment, committed
// offsets, generations). Runs as a node ("broker") on the simulated network;
// consumers interact with it through poll/heartbeat RPCs gated on
// reachability.
#ifndef SRC_PUBSUB_BROKER_H_
#define SRC_PUBSUB_BROKER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "obs/collector.h"
#include "pubsub/filter.h"
#include "pubsub/interest_index.h"
#include "pubsub/log.h"
#include "pubsub/types.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pubsub {

using GroupId = std::string;
using MemberId = std::string;  // Also the member's network node id.

struct PublishResult {
  PartitionId partition = 0;
  Offset offset = 0;
};

// Harness-side observer of group-coordinator transitions, used by the
// invariant oracle and the WAL journal. Callbacks run synchronously inside
// the broker; they must not re-enter the broker.
class BrokerObserver {
 public:
  virtual ~BrokerObserver() = default;

  // Fired after every rebalance with the group's new coordinator state.
  virtual void OnRebalance(const GroupId& group, std::uint64_t generation,
                           const std::vector<MemberId>& members,
                           const std::map<PartitionId, MemberId>& assignment) = 0;

  // Fired when an explicit seek rewrites a group's committed offset (the one
  // legitimate non-monotonic committed-offset transition).
  virtual void OnSeek(const GroupId& group, PartitionId partition, Offset offset) = 0;

  // Fired when a commit advances a group's committed offset, with the
  // post-merge value. Default no-op so existing observers are unaffected.
  virtual void OnCommitOffset(const GroupId& group, PartitionId partition, Offset offset) {
    (void)group;
    (void)partition;
    (void)offset;
  }
};

// Read-only snapshot of one group's coordinator state (oracle introspection).
struct GroupView {
  std::string topic;
  std::uint64_t generation = 0;
  std::vector<MemberId> members;
  std::map<PartitionId, MemberId> assignment;
  std::map<PartitionId, Offset> committed;
};

class Broker {
 public:
  // `node` is the broker's network identity. Retention is enforced every
  // `gc_period` of simulated time.
  Broker(sim::Simulator* sim, sim::Network* net, sim::NodeId node = "broker",
         common::TimeMicros gc_period = 500 * common::kMicrosPerMilli);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Teardown fires every still-parked long-poll waiter (append and
  // rebalance) as an immediate simulator event, so event-driven consumers
  // parked on this broker wake, re-check, and discover the broker is gone
  // instead of hanging forever. The simulator must outlive the broker (it
  // does wherever brokers are built: harnesses and ShardCore both destroy
  // the broker before the sim).
  ~Broker();

  const sim::NodeId& node() const { return node_; }

  // -- Topics -----------------------------------------------------------------

  common::Status CreateTopic(const std::string& topic, TopicConfig config);
  // Removes a topic (topic delete / failover re-point). Every append waiter
  // parked on any of its partitions fires immediately — the resync signal;
  // wakers re-check and observe the topic is gone — and every group bound to
  // the topic keeps its (now dangling) soft state for the members to discover
  // on their next join. kNotFound for unknown topics.
  common::Status RemoveTopic(const std::string& topic);
  bool HasTopic(const std::string& topic) const { return topics_.count(topic) > 0; }
  PartitionId PartitionCount(const std::string& topic) const {
    auto it = topics_.find(topic);
    return it == topics_.end() ? 0 : it->second.config.partitions;
  }

  // -- Publishing ---------------------------------------------------------------

  // Routes by config (key hash / round robin) unless `partition` is given.
  common::Result<PublishResult> Publish(const std::string& topic, Message msg,
                                        std::optional<PartitionId> partition = std::nullopt);

  // Span-staged publish: the arena-backed batch path hands the broker
  // borrowed key/value views (slices of a producer's arena) and the owned
  // Message strings are constructed exactly once, here at append — no
  // intermediate per-message std::string on the producer side. `headers`
  // is borrowed too (nullptr: none); copied at append like key/value.
  common::Result<PublishResult> PublishSpan(const std::string& topic, std::string_view key,
                                            std::string_view value,
                                            const Headers* headers = nullptr,
                                            std::optional<PartitionId> partition = std::nullopt);

  // Grows an existing topic by `additional` empty partitions (the autosharder
  // / operator "scale out the topic" path). Existing partitions and offsets
  // are untouched. Every group bound to the topic rebalances immediately so
  // the new partitions have owners (cause "partition_growth"); free consumers
  // are expected to re-discover partitions on their next poll.
  common::Status AddPartitions(const std::string& topic, PartitionId additional);

  // -- Fetching -----------------------------------------------------------------

  // Reads up to `max` messages from `offset`. Silently resumes at the
  // earliest retained offset if `offset` has been garbage collected — the
  // behaviour Section 3.1 identifies as undetectable message loss.
  common::Result<std::vector<StoredMessage>> Fetch(const std::string& topic,
                                                   PartitionId partition, Offset offset,
                                                   std::size_t max) const;

  // Allocation-free Fetch for hot pollers (the runtime's shard-side pump):
  // appends up to `max` messages into `*out`, reusing its capacity, and
  // returns the number appended. Same reset and trace-stamping semantics.
  common::Result<std::size_t> FetchInto(const std::string& topic, PartitionId partition,
                                        Offset offset, std::size_t max,
                                        std::vector<StoredMessage>* out) const;

  // Zero-copy Fetch: appends up to `max` borrowed MessageSpans into `*out`
  // and (re)binds `*pin` to the partition's log, deferring retention
  // reclamation until the pin is released — the views cannot dangle while
  // the pin lives. Rebinding an already-held pin on the same log never lets
  // the pin count touch zero, so deferred retention stays deferred across
  // consecutive batches. No trace stamping: spans are borrows, not copies.
  common::Result<std::size_t> FetchSpans(const std::string& topic, PartitionId partition,
                                         Offset offset, std::size_t max,
                                         std::vector<MessageSpan>* out, ReadPin* pin) const;

  Offset EndOffset(const std::string& topic, PartitionId partition) const;
  Offset FirstOffset(const std::string& topic, PartitionId partition) const;

  // -- Filtered subscriptions (the interest-index fanout subsystem) -------------
  //
  // A filtered consumer registers its interest — (topic, partition, Filter) —
  // once, then parks one-shot WaitForMatch wakeups against it. Appends are
  // dispatched through the partition's InterestIndex, so only consumers whose
  // filters match the appended record wake: append-time fanout work is
  // O(matching subscriptions), not O(all sessions). Catch-up reads go through
  // FetchFilteredInto, which evaluates the filter broker-side and returns
  // only matching records plus a scan-resume cursor.

  using InterestId = std::uint64_t;
  using WaitTicket = std::uint64_t;  // Shared with the long-poll wakeups below.

  // Registers a filter; returns 0 for an unknown topic/partition. An
  // interest survives until RemoveInterest (or topic removal). Interests
  // with identical canonical filters share one index lane (subgrouping).
  InterestId AddInterest(const std::string& topic, PartitionId partition, Filter filter);
  // Deregisters, cancelling any parked WaitForMatch wakeup without firing
  // it. Returns false for unknown ids (harmless after topic removal).
  bool RemoveInterest(InterestId id);
  // Parks `fn` (one-shot, fired as an immediate event) until a record at or
  // past `offset` matching the interest's filter is appended. If such a
  // record is already retained, fires immediately and returns 0, mirroring
  // WaitForAppend. Tickets share WaitForAppend's namespace: CancelWait works
  // on them and broker teardown fires them. At most one wakeup is parked per
  // interest; a re-park replaces (cancels) the previous one.
  WaitTicket WaitForMatch(InterestId id, Offset offset, std::function<void()> fn);
  // Filtered FetchInto: appends up to `max` records matching `filter`
  // starting at `offset`, examining at most `max_scan` records (0:
  // unbounded) so one selective fetch cannot stall on a long non-matching
  // run. `*next_offset` receives the scan-resume cursor — it advances past
  // scanned non-matching records, so zero matches still makes progress.
  // `*scanned` (optional) accumulates records examined.
  common::Result<std::size_t> FetchFilteredInto(const std::string& topic, PartitionId partition,
                                                Offset offset, std::size_t max,
                                                std::size_t max_scan, const Filter& filter,
                                                std::vector<StoredMessage>* out,
                                                Offset* next_offset,
                                                std::uint64_t* scanned = nullptr) const;
  // Outstanding interest registrations (tests/leak checks, the filtered
  // analogue of PendingWaiters).
  std::size_t PendingInterests() const { return interests_.size(); }
  // Read-only view of a partition's interest index (oracle/bench
  // introspection); nullptr if unknown.
  const InterestIndex* Interests(const std::string& topic, PartitionId partition) const;

  // -- Long-poll wakeups (the event-driven delivery subsystem) ------------------
  //
  // Instead of sleeping on a poll timer, an event-driven consumer parks a
  // wakeup on the broker: WaitForAppend registers `fn` to run — as an
  // immediate simulator event, preserving deterministic ordering — as soon as
  // `partition` holds a message at or past `offset` (end_offset > offset).
  // If data is already available the wakeup fires immediately. Wakeups are
  // one-shot: a fired waiter is deregistered and must re-arm. Returns 0 (no
  // registration) for an unknown topic/partition; CancelWait on a fired or
  // unknown ticket is a harmless no-op returning false.
  WaitTicket WaitForAppend(const std::string& topic, PartitionId partition, Offset offset,
                           std::function<void()> fn);
  // Fires (one-shot, as an immediate event) on the group's next rebalance —
  // how an event-driven group consumer learns its assignment changed without
  // polling for the generation. Always registers, even for a group that does
  // not exist yet (a joining member may park before its join lands).
  WaitTicket WaitForRebalance(const GroupId& group, std::function<void()> fn);
  bool CancelWait(WaitTicket ticket);
  // Outstanding registrations (tests/leak checks).
  std::size_t PendingWaiters() const { return waiter_index_.size(); }

  // -- Consumer groups ----------------------------------------------------------

  // Joins (or re-joins) a group consuming `topic`. Returns the group
  // generation. A *new* member triggers a rebalance; an already-present
  // member's rejoin only refreshes its heartbeat (no generation bump, so
  // other members' assignments stay valid). Joining an existing group with a
  // different topic fails with kFailedPrecondition — the group's topic
  // binding is immutable.
  common::Result<std::uint64_t> JoinGroup(const GroupId& group, const std::string& topic,
                                          const MemberId& member);
  void LeaveGroup(const GroupId& group, const MemberId& member);

  // Records member liveness; members that miss `session_timeout` are evicted
  // by the liveness sweep (run with the GC timer) and the group rebalances.
  void Heartbeat(const GroupId& group, const MemberId& member);

  // The partitions currently assigned to `member` under `generation`;
  // empty if the generation is stale (member must re-join).
  std::vector<PartitionId> AssignedPartitions(const GroupId& group, const MemberId& member,
                                              std::uint64_t generation) const;
  std::uint64_t GroupGeneration(const GroupId& group) const;

  // Offset commit/fetch (per group, per partition).
  void CommitOffset(const GroupId& group, PartitionId partition, Offset offset);
  Offset CommittedOffset(const GroupId& group, PartitionId partition) const;

  // -- "Replay and snapshot" (the ad hoc extension surface of §3.3) -------------
  //
  // Modeled on GCP Pub/Sub's seek-to-offset/timestamp: rewinds (or advances)
  // a group's committed position, causing redelivery of everything after the
  // seek point. The paper's observation: this is a storage read API grafted
  // onto a messaging system — it bypasses the normal commit discipline, and a
  // seek below the retained log silently lands at the earliest offset.
  void SeekGroup(const GroupId& group, PartitionId partition, Offset offset);
  // Seeks every partition of `topic` to the first message published at or
  // after `timestamp`.
  void SeekGroupToTime(const GroupId& group, const std::string& topic,
                       common::TimeMicros timestamp);

  // -- Backlog / loss accounting (harness-visible, not consumer-visible) --------

  // Consumer lag: end_offset - committed, summed over partitions.
  std::uint64_t GroupBacklog(const GroupId& group, const std::string& topic) const;
  std::uint64_t TotalGced(const std::string& topic) const;
  std::uint64_t TotalCompactedAway(const std::string& topic) const;
  std::uint64_t TotalSilentSkips(const std::string& topic) const;

  void set_session_timeout(common::TimeMicros t) { session_timeout_ = t; }

  // Attaches the observability collector (nullptr detaches). The broker
  // stamps trace stages on messages it appends/serves and logs rebalances
  // with their causes. `shard` tags the collector's per-shard histogram
  // family when the broker runs inside a ShardPool core.
  void set_obs(obs::Collector* obs, std::size_t shard = 0) {
    obs_ = obs;
    obs_shard_ = shard;
    if (obs != nullptr) {
      common::MetricsRegistry& m = obs->metrics();
      fanout_wakeups_ = &m.counter("fanout.wakeups");
      fanout_appends_matched_ = &m.counter("fanout.appends_matched");
      fanout_lanes_scanned_ = &m.counter("fanout.lanes_scanned");
      fanout_lanes_matched_ = &m.counter("fanout.lanes_matched");
      fanout_fetch_scanned_ = &m.counter("fanout.fetch_scanned");
      fanout_fetch_matched_ = &m.counter("fanout.fetch_matched");
    } else {
      fanout_wakeups_ = nullptr;
      fanout_appends_matched_ = nullptr;
      fanout_lanes_scanned_ = nullptr;
      fanout_lanes_matched_ = nullptr;
      fanout_fetch_scanned_ = nullptr;
      fanout_fetch_matched_ = nullptr;
    }
  }

  // The deterministic key hash behind kByKeyHash routing. Public so routing
  // layers (e.g. runtime::ConcurrentBroker) can pick the same partition the
  // broker would. Takes a view so span-staged publishes route without
  // materializing a key string.
  static std::uint64_t HashKey(std::string_view key);

  // -- Oracle introspection (harness-only, not consumer-visible) ----------------

  // Replaces the whole observer set with `observer` (nullptr clears). Kept
  // for single-observer callers; layered harnesses (oracle + journal) use
  // Add/RemoveObserver instead.
  void set_observer(BrokerObserver* observer) {
    observers_.clear();
    if (observer != nullptr) {
      observers_.push_back(observer);
    }
  }
  void AddObserver(BrokerObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(BrokerObserver* observer) {
    observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                     observers_.end());
  }
  std::vector<std::string> TopicNames() const;
  std::vector<GroupId> GroupIds() const;
  // Snapshot of a group's coordinator state; empty view for unknown groups.
  GroupView ViewGroup(const GroupId& group) const;
  // Direct (read-only) access to a partition's log; nullptr if unknown.
  const PartitionLog* Log(const std::string& topic, PartitionId partition) const;
  // Config of an existing topic; nullptr if unknown.
  const TopicConfig* TopicConfigFor(const std::string& topic) const;

  // -- Durability hooks (harness/journal-only) ----------------------------------

  // Mutable partition access so a journal can attach PartitionLog callbacks
  // and drive Restore* replay; nullptr if unknown.
  PartitionLog* MutableLog(const std::string& topic, PartitionId partition);

  // Recovery-only: re-applies a journaled committed offset. Group membership
  // and generations are deliberately soft state (members re-join after a
  // restart, Kafka-style), so only the topic binding and committed offsets
  // are restored. The committed value is clamped to the partition's end
  // offset as a guard against a journal that outran message durability.
  void RestoreGroupState(const GroupId& group, const std::string& topic, PartitionId partition,
                         Offset committed);

 private:
  struct Topic {
    TopicConfig config;
    std::vector<std::unique_ptr<PartitionLog>> partitions;
    // Parallel to `partitions`: the per-partition filtered-interest index.
    std::vector<std::unique_ptr<InterestIndex>> interest;
    PartitionId next_round_robin = 0;
  };

  struct Group {
    std::string topic;
    std::uint64_t generation = 0;
    // Member -> last heartbeat time.
    std::map<MemberId, common::TimeMicros> members;
    // Partition -> member (range assignment over sorted members).
    std::map<PartitionId, MemberId> assignment;
    std::map<PartitionId, Offset> committed;
  };

  void EnforceRetention();
  void SweepDeadMembers();
  void Rebalance(const GroupId& id, Group& group, const char* cause);
  // Fires (and deregisters) every append waiter on (topic, partition) whose
  // target offset is now available, i.e. offset < end.
  void NotifyAppendWaiters(const std::string& topic, PartitionId partition, Offset end);

  // Fires parked WaitForMatch wakeups whose filters match the record just
  // appended to (topic, partition) — the O(matching) append fanout path.
  void DispatchInterests(Topic& t, PartitionId partition);

  // One parked long-poll wakeup. Exactly one key is meaningful: data waiters
  // carry (topic, partition, offset); rebalance waiters carry the group id;
  // filtered match waiters carry an interest id (plus topic/partition for
  // observability).
  struct Waiter {
    std::string topic;
    PartitionId partition = 0;
    Offset offset = 0;
    GroupId group;
    InterestId interest = 0;
    std::function<void()> fn;
  };

  // One registered filtered interest and its (at most one) parked wakeup.
  struct Interest {
    std::string topic;
    PartitionId partition = 0;
    WaitTicket ticket = 0;  // Parked WaitForMatch ticket; 0 = none.
    Offset wait_offset = 0;
  };

  sim::Simulator* sim_;
  sim::Network* net_;
  sim::NodeId node_;
  common::TimeMicros session_timeout_ = 3 * common::kMicrosPerSecond;
  std::map<std::string, Topic> topics_;
  std::map<GroupId, Group> groups_;
  std::vector<BrokerObserver*> observers_;
  std::unique_ptr<sim::PeriodicTask> maintenance_;
  obs::Collector* obs_ = nullptr;
  std::size_t obs_shard_ = 0;
  // The waiter registry. waiter_index_ owns the waiters; the per-partition
  // and per-group maps index into it by ticket so the append hot path only
  // touches its own partition's parked set.
  std::map<WaitTicket, Waiter> waiter_index_;
  std::map<std::pair<std::string, PartitionId>, std::map<WaitTicket, Offset>> append_waiters_;
  std::map<GroupId, std::set<WaitTicket>> rebalance_waiters_;
  WaitTicket next_wait_ticket_ = 1;
  // Filtered-interest registry; ids are globally unique across the broker so
  // they double as InterestIndex subscriber ids.
  std::map<InterestId, Interest> interests_;
  InterestId next_interest_ = 1;
  // Fanout metric counters, resolved once in set_obs (nullptr when no obs).
  common::Counter* fanout_wakeups_ = nullptr;
  common::Counter* fanout_appends_matched_ = nullptr;
  common::Counter* fanout_lanes_scanned_ = nullptr;
  common::Counter* fanout_lanes_matched_ = nullptr;
  common::Counter* fanout_fetch_scanned_ = nullptr;
  common::Counter* fanout_fetch_matched_ = nullptr;
};

}  // namespace pubsub

#endif  // SRC_PUBSUB_BROKER_H_
