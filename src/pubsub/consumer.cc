#include "pubsub/consumer.h"

#include <set>

namespace pubsub {

GroupConsumer::GroupConsumer(sim::Simulator* sim, sim::Network* net, Broker* broker,
                             GroupId group, std::string topic, MemberId member,
                             MessageHandler handler, ConsumerOptions options)
    : sim_(sim),
      net_(net),
      broker_(broker),
      group_(std::move(group)),
      topic_(std::move(topic)),
      member_(std::move(member)),
      handler_(std::move(handler)),
      options_(options) {
  if (!net_->IsUp(member_)) {
    net_->AddNode(member_);
  }
}

GroupConsumer::~GroupConsumer() {
  // Neutralize any parked wakeups / in-flight pump events without the side
  // effects of Stop() (leaving the group is an explicit act, not teardown).
  *alive_ = false;
  CancelWaits();
}

std::function<void()> GroupConsumer::WakeFn() {
  auto alive = alive_;
  return [this, alive] {
    if (*alive) {
      Pump();
    }
  };
}

void GroupConsumer::SchedulePump(common::TimeMicros delay) { sim_->After(delay, WakeFn()); }

void GroupConsumer::CancelWaits() {
  for (Broker::WaitTicket ticket : wait_tickets_) {
    (void)broker_->CancelWait(ticket);
  }
  wait_tickets_.clear();
}

void GroupConsumer::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  *alive_ = false;  // Orphan callbacks from a previous Start/Stop cycle.
  alive_ = std::make_shared<bool>(true);
  if (net_->Reachable(member_, broker_->node())) {
    (void)broker_->JoinGroup(group_, topic_, member_);
  }
  if (options_.event_driven) {
    // The periodic slot becomes a coarse safety-net sweep: it catches any
    // wakeup path that forgot to ring and resumes after outages heal.
    poll_task_ =
        std::make_unique<sim::PeriodicTask>(sim_, options_.heartbeat_period, [this] { Pump(); });
    SchedulePump(0);
  } else {
    poll_task_ =
        std::make_unique<sim::PeriodicTask>(sim_, options_.poll_period, [this] { Poll(); });
  }
  heartbeat_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.heartbeat_period,
                                                        [this] { SendHeartbeat(); });
}

void GroupConsumer::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  *alive_ = false;
  CancelWaits();
  poll_task_.reset();
  heartbeat_task_.reset();
  if (net_->Reachable(member_, broker_->node())) {
    broker_->LeaveGroup(group_, member_);
  }
}

void GroupConsumer::OnCrash() {
  // Node is already marked down by the injector; in-memory delivery state is
  // lost (anything delivered-but-uncommitted will be redelivered). Parked
  // wakeups die with the process image.
  delivery_attempts_.clear();
  CancelWaits();
}

void GroupConsumer::OnRestart() {
  if (running_ && net_->Reachable(member_, broker_->node())) {
    (void)broker_->JoinGroup(group_, topic_, member_);
    if (options_.event_driven) {
      SchedulePump(0);
    }
  }
}

void GroupConsumer::SendHeartbeat() {
  if (!running_ || !net_->Reachable(member_, broker_->node())) {
    return;
  }
  broker_->Heartbeat(group_, member_);
}

void GroupConsumer::PruneStaleDeliveryState(std::uint64_t generation,
                                            const std::vector<PartitionId>& assigned) {
  if (generation == last_seen_generation_) {
    return;
  }
  last_seen_generation_ = generation;
  const std::set<PartitionId> owned(assigned.begin(), assigned.end());
  for (auto it = delivery_attempts_.begin(); it != delivery_attempts_.end();) {
    if (owned.count(it->first) == 0) {
      it = delivery_attempts_.erase(it);
    } else {
      ++it;
    }
  }
}

bool GroupConsumer::DrainPartition(PartitionId partition, std::size_t* budget) {
  const Offset committed = broker_->CommittedOffset(group_, partition);
  auto batch = broker_->Fetch(topic_, partition, committed, *budget);
  if (!batch.ok()) {
    return false;
  }
  Offset commit_to = committed;
  bool nack_blocked = false;
  for (const StoredMessage& m : *batch) {
    // Trace stamps happen on a local copy: the stored message is shared
    // log state and deliver/ack times are per-consumer.
    obs::TraceContext trace = m.message.trace;
    trace.Stamp(obs::Stage::kDeliver, trace.active() ? obs::NowMicros() : 0);
    const bool ack = handler_(partition, m);
    if (ack) {
      if (trace.active()) {
        trace.Stamp(obs::Stage::kAck, obs::NowMicros());
        if (options_.obs != nullptr) {
          options_.obs->Complete(obs::Path::kPubsub, trace, options_.obs_shard);
        }
      }
      ++delivered_;
      delivered_bytes_ += m.message.key.size() + m.message.value.size();
      commit_to = m.offset + 1;
      delivery_attempts_[partition].erase(m.offset);
      --*budget;
      continue;
    }
    // Nack: leave uncommitted so it is redelivered, unless the redelivery
    // budget is exhausted — then dead-letter (or drop) and move on.
    std::uint32_t& attempts = delivery_attempts_[partition][m.offset];
    ++attempts;
    if (options_.max_redeliveries > 0 && attempts >= options_.max_redeliveries) {
      if (!options_.dead_letter_topic.empty()) {
        // The dead-letter record is a *new* publish, not a continuation of
        // the failed delivery: reset the trace so the broker starts a fresh
        // one, instead of double-counting the original's feed/append stages.
        Message dead = m.message;
        dead.trace = obs::TraceContext{};
        (void)broker_->Publish(options_.dead_letter_topic, std::move(dead));
      }
      ++dead_lettered_;
      commit_to = m.offset + 1;
      delivery_attempts_[partition].erase(m.offset);
      continue;
    }
    nack_blocked = true;
    break;  // Head-of-line: retry this partition from the nack later.
  }
  // One commit per drained batch (not per message): same committed frontier,
  // a fraction of the coordinator/journal traffic.
  if (commit_to > committed) {
    broker_->CommitOffset(group_, partition, commit_to);
  }
  return nack_blocked;
}

void GroupConsumer::Poll() {
  if (!running_ || !net_->Reachable(member_, broker_->node())) {
    return;
  }
  const std::uint64_t generation = broker_->GroupGeneration(group_);
  std::vector<PartitionId> assigned = broker_->AssignedPartitions(group_, member_, generation);
  PruneStaleDeliveryState(generation, assigned);
  if (assigned.empty()) {
    // Possibly evicted (e.g. after a long outage): re-join.
    (void)broker_->JoinGroup(group_, topic_, member_);
    return;
  }
  std::size_t budget = options_.max_poll_messages;
  for (PartitionId p : assigned) {
    if (budget == 0) {
      break;
    }
    DrainPartition(p, &budget);
  }
}

void GroupConsumer::Pump() {
  if (!running_ || !options_.event_driven) {
    return;
  }
  // Re-arm from scratch each round: any still-parked tickets are stale (a
  // wakeup already fired, or the safety net got here first), so a spurious
  // extra pump is at worst a no-op fetch.
  CancelWaits();
  if (!net_->Reachable(member_, broker_->node())) {
    return;  // The safety-net sweep retries after the outage heals.
  }
  const std::uint64_t generation = broker_->GroupGeneration(group_);
  std::vector<PartitionId> assigned = broker_->AssignedPartitions(group_, member_, generation);
  PruneStaleDeliveryState(generation, assigned);
  if (assigned.empty()) {
    (void)broker_->JoinGroup(group_, topic_, member_);
    // Park on the group: the join's own rebalance (or a later one, once the
    // coordinator admits us) pumps again.
    wait_tickets_.push_back(broker_->WaitForRebalance(group_, WakeFn()));
    return;
  }
  std::size_t budget = options_.max_poll_messages;
  std::set<PartitionId> blocked;
  for (PartitionId p : assigned) {
    if (budget == 0) {
      break;
    }
    if (DrainPartition(p, &budget)) {
      blocked.insert(p);
    }
  }
  if (budget == 0) {
    // Batch cap hit with data likely remaining: yield and re-pump as a fresh
    // immediate event so co-scheduled work at this instant interleaves.
    SchedulePump(0);
    return;
  }
  // Caught up: park a data wakeup on every assigned partition plus a
  // rebalance wakeup on the group. A nack-blocked partition has data
  // available *now* — a data waiter would fire immediately and spin at this
  // instant — so it instead retries on the poll_period redelivery timer,
  // keeping event-driven redelivery pacing identical to periodic mode.
  for (PartitionId p : assigned) {
    if (blocked.count(p) > 0) {
      continue;
    }
    const Broker::WaitTicket ticket =
        broker_->WaitForAppend(topic_, p, broker_->CommittedOffset(group_, p), WakeFn());
    if (ticket != 0) {
      wait_tickets_.push_back(ticket);
    }
  }
  wait_tickets_.push_back(broker_->WaitForRebalance(group_, WakeFn()));
  if (!blocked.empty()) {
    SchedulePump(options_.poll_period);
  }
}

FreeConsumer::FreeConsumer(sim::Simulator* sim, sim::Network* net, Broker* broker,
                           std::string topic, sim::NodeId node, MessageHandler handler,
                           ConsumerOptions options, StartAt start_at)
    : sim_(sim),
      net_(net),
      broker_(broker),
      topic_(std::move(topic)),
      node_(std::move(node)),
      handler_(std::move(handler)),
      options_(options),
      start_at_(start_at) {
  if (!net_->IsUp(node_)) {
    net_->AddNode(node_);
  }
}

FreeConsumer::~FreeConsumer() {
  *alive_ = false;
  CancelWaits();
}

std::function<void()> FreeConsumer::WakeFn() {
  auto alive = alive_;
  return [this, alive] {
    if (*alive) {
      Pump();
    }
  };
}

void FreeConsumer::SchedulePump(common::TimeMicros delay) { sim_->After(delay, WakeFn()); }

void FreeConsumer::CancelWaits() {
  for (Broker::WaitTicket ticket : wait_tickets_) {
    (void)broker_->CancelWait(ticket);
  }
  wait_tickets_.clear();
}

void FreeConsumer::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  *alive_ = false;
  alive_ = std::make_shared<bool>(true);
  if (options_.event_driven) {
    poll_task_ =
        std::make_unique<sim::PeriodicTask>(sim_, options_.heartbeat_period, [this] { Pump(); });
    SchedulePump(0);
  } else {
    poll_task_ =
        std::make_unique<sim::PeriodicTask>(sim_, options_.poll_period, [this] { Poll(); });
  }
}

void FreeConsumer::Stop() {
  running_ = false;
  *alive_ = false;
  CancelWaits();
  poll_task_.reset();
}

std::uint64_t FreeConsumer::Backlog() const {
  std::uint64_t backlog = 0;
  for (const auto& [partition, position] : positions_) {
    const Offset end = broker_->EndOffset(topic_, partition);
    backlog += end > position ? end - position : 0;
  }
  return backlog;
}

void FreeConsumer::DiscoverPartitions() {
  const PartitionId n = broker_->PartitionCount(topic_);
  if (n == 0) {
    return;
  }
  for (PartitionId p = 0; p < n; ++p) {
    if (positions_.count(p) > 0) {
      continue;
    }
    positions_[p] = (!initial_discovery_done_ && start_at_ == StartAt::kLatest)
                        ? broker_->EndOffset(topic_, p)
                        : broker_->FirstOffset(topic_, p);
  }
  initial_discovery_done_ = true;
}

void FreeConsumer::Drain(std::size_t* budget) {
  for (auto& [partition, position] : positions_) {
    if (*budget == 0) {
      break;
    }
    auto batch = broker_->Fetch(topic_, partition, position, *budget);
    if (!batch.ok()) {
      continue;
    }
    for (const StoredMessage& m : *batch) {
      // Stamp deliver/ack on a local copy, exactly like GroupConsumer: the
      // stored message is shared log state. A free consumer owns its cursor,
      // so the handler's verdict never gates progress — delivery *is* the
      // acknowledgement.
      obs::TraceContext trace = m.message.trace;
      trace.Stamp(obs::Stage::kDeliver, trace.active() ? obs::NowMicros() : 0);
      (void)handler_(partition, m);
      if (trace.active()) {
        trace.Stamp(obs::Stage::kAck, obs::NowMicros());
        if (options_.obs != nullptr) {
          options_.obs->Complete(obs::Path::kPubsub, trace, options_.obs_shard);
        }
      }
      ++delivered_;
      delivered_bytes_ += m.message.key.size() + m.message.value.size();
      position = m.offset + 1;
      --*budget;
    }
  }
}

void FreeConsumer::Poll() {
  if (!running_ || !net_->Reachable(node_, broker_->node())) {
    return;
  }
  DiscoverPartitions();
  std::size_t budget = options_.max_poll_messages;
  Drain(&budget);
}

void FreeConsumer::Pump() {
  if (!running_ || !options_.event_driven) {
    return;
  }
  CancelWaits();
  if (!net_->Reachable(node_, broker_->node())) {
    return;  // Safety-net sweep retries after the outage heals.
  }
  DiscoverPartitions();
  std::size_t budget = options_.max_poll_messages;
  Drain(&budget);
  if (budget == 0) {
    SchedulePump(0);
    return;
  }
  // Caught up: park a wakeup per known partition. Partitions added while
  // parked have no waiter yet — the safety-net sweep discovers them.
  for (const auto& [partition, position] : positions_) {
    const Broker::WaitTicket ticket =
        broker_->WaitForAppend(topic_, partition, position, WakeFn());
    if (ticket != 0) {
      wait_tickets_.push_back(ticket);
    }
  }
}

}  // namespace pubsub
