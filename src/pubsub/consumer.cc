#include "pubsub/consumer.h"

namespace pubsub {

GroupConsumer::GroupConsumer(sim::Simulator* sim, sim::Network* net, Broker* broker,
                             GroupId group, std::string topic, MemberId member,
                             MessageHandler handler, ConsumerOptions options)
    : sim_(sim),
      net_(net),
      broker_(broker),
      group_(std::move(group)),
      topic_(std::move(topic)),
      member_(std::move(member)),
      handler_(std::move(handler)),
      options_(options) {
  if (!net_->IsUp(member_)) {
    net_->AddNode(member_);
  }
}

GroupConsumer::~GroupConsumer() = default;

void GroupConsumer::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (net_->Reachable(member_, broker_->node())) {
    (void)broker_->JoinGroup(group_, topic_, member_);
  }
  poll_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.poll_period, [this] { Poll(); });
  heartbeat_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.heartbeat_period,
                                                        [this] { SendHeartbeat(); });
}

void GroupConsumer::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  poll_task_.reset();
  heartbeat_task_.reset();
  if (net_->Reachable(member_, broker_->node())) {
    broker_->LeaveGroup(group_, member_);
  }
}

void GroupConsumer::OnCrash() {
  // Node is already marked down by the injector; in-memory delivery state is
  // lost (anything delivered-but-uncommitted will be redelivered).
  delivery_attempts_.clear();
}

void GroupConsumer::OnRestart() {
  if (running_ && net_->Reachable(member_, broker_->node())) {
    (void)broker_->JoinGroup(group_, topic_, member_);
  }
}

void GroupConsumer::SendHeartbeat() {
  if (!running_ || !net_->Reachable(member_, broker_->node())) {
    return;
  }
  broker_->Heartbeat(group_, member_);
}

void GroupConsumer::Poll() {
  if (!running_ || !net_->Reachable(member_, broker_->node())) {
    return;
  }
  const std::uint64_t generation = broker_->GroupGeneration(group_);
  std::vector<PartitionId> assigned = broker_->AssignedPartitions(group_, member_, generation);
  if (assigned.empty()) {
    // Possibly evicted (e.g. after a long outage): re-join.
    (void)broker_->JoinGroup(group_, topic_, member_);
    return;
  }
  std::size_t budget = options_.max_poll_messages;
  for (PartitionId p : assigned) {
    if (budget == 0) {
      break;
    }
    const Offset committed = broker_->CommittedOffset(group_, p);
    auto batch = broker_->Fetch(topic_, p, committed, budget);
    if (!batch.ok()) {
      continue;
    }
    for (const StoredMessage& m : *batch) {
      // Trace stamps happen on a local copy: the stored message is shared
      // log state and deliver/ack times are per-consumer.
      obs::TraceContext trace = m.message.trace;
      trace.Stamp(obs::Stage::kDeliver, trace.active() ? obs::NowMicros() : 0);
      bool ack = handler_(p, m);
      if (ack) {
        if (trace.active()) {
          trace.Stamp(obs::Stage::kAck, obs::NowMicros());
          if (options_.obs != nullptr) {
            options_.obs->Complete(obs::Path::kPubsub, trace, options_.obs_shard);
          }
        }
        ++delivered_;
        delivered_bytes_ += m.message.key.size() + m.message.value.size();
        broker_->CommitOffset(group_, p, m.offset + 1);
        delivery_attempts_[p].erase(m.offset);
        --budget;
        continue;
      }
      // Nack: leave uncommitted so it is redelivered, unless the redelivery
      // budget is exhausted — then dead-letter (or drop) and move on.
      std::uint32_t& attempts = delivery_attempts_[p][m.offset];
      ++attempts;
      if (options_.max_redeliveries > 0 && attempts >= options_.max_redeliveries) {
        if (!options_.dead_letter_topic.empty()) {
          (void)broker_->Publish(options_.dead_letter_topic, m.message);
        }
        ++dead_lettered_;
        broker_->CommitOffset(group_, p, m.offset + 1);
        delivery_attempts_[p].erase(m.offset);
        continue;
      }
      break;  // Head-of-line: retry this partition from the nack next poll.
    }
  }
}

FreeConsumer::FreeConsumer(sim::Simulator* sim, sim::Network* net, Broker* broker,
                           std::string topic, sim::NodeId node, MessageHandler handler,
                           ConsumerOptions options, StartAt start_at)
    : sim_(sim),
      net_(net),
      broker_(broker),
      topic_(std::move(topic)),
      node_(std::move(node)),
      handler_(std::move(handler)),
      options_(options),
      start_at_(start_at) {
  if (!net_->IsUp(node_)) {
    net_->AddNode(node_);
  }
}

FreeConsumer::~FreeConsumer() = default;

void FreeConsumer::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  poll_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.poll_period, [this] { Poll(); });
}

void FreeConsumer::Stop() {
  running_ = false;
  poll_task_.reset();
}

std::uint64_t FreeConsumer::Backlog() const {
  std::uint64_t backlog = 0;
  for (const auto& [partition, position] : positions_) {
    const Offset end = broker_->EndOffset(topic_, partition);
    backlog += end > position ? end - position : 0;
  }
  return backlog;
}

void FreeConsumer::Poll() {
  if (!running_ || !net_->Reachable(node_, broker_->node())) {
    return;
  }
  if (!positions_initialized_) {
    // Discover partitions on first contact with the broker.
    const PartitionId n = broker_->PartitionCount(topic_);
    for (PartitionId p = 0; p < n; ++p) {
      positions_[p] = start_at_ == StartAt::kEarliest ? broker_->FirstOffset(topic_, p)
                                                      : broker_->EndOffset(topic_, p);
    }
    positions_initialized_ = n > 0;
  }
  std::size_t budget = options_.max_poll_messages;
  for (auto& [partition, position] : positions_) {
    if (budget == 0) {
      break;
    }
    auto batch = broker_->Fetch(topic_, partition, position, budget);
    if (!batch.ok()) {
      continue;
    }
    for (const StoredMessage& m : *batch) {
      (void)handler_(partition, m);
      ++delivered_;
      delivered_bytes_ += m.message.key.size() + m.message.value.size();
      position = m.offset + 1;
      --budget;
    }
  }
}

}  // namespace pubsub
