// Consumers for the pubsub substrate.
//
//  * GroupConsumer — a consumer-group member: the broker assigns it
//    partitions, it polls its assignment from the group's committed offsets,
//    acknowledges messages, and commits. Delivery is at-least-once: an
//    unacknowledged or uncommitted message is redelivered (to this member or,
//    after a rebalance, to another).
//  * FreeConsumer — handles *all* messages in a topic (the paper's "free
//    consumer", after Koutanov): it tracks its own offsets and receives the
//    entire feed, which is the non-scalable fallback Section 3.2.2 describes
//    cache servers using.
//
// Both support two delivery modes, selected by ConsumerOptions::event_driven:
//
//  * periodic (default) — the classic poll loop: fetch every poll_period.
//    Latency floors at ~poll_period/2 regardless of load.
//  * event-driven — drain immediately while data is available, then park a
//    long-poll wakeup on the broker (WaitForAppend / WaitForRebalance) and a
//    coarse heartbeat-period sweep as a safety net. Delivery *sequences* are
//    identical to periodic mode (same log order, same ack gating); only the
//    simulated times differ.
//
// Both are simulated-network nodes: while a consumer's node is down or
// partitioned from the broker it makes no progress, and its backlog grows.
#ifndef SRC_PUBSUB_CONSUMER_H_
#define SRC_PUBSUB_CONSUMER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pubsub/broker.h"
#include "pubsub/types.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pubsub {

struct ConsumerOptions {
  common::TimeMicros poll_period = 50 * common::kMicrosPerMilli;
  common::TimeMicros heartbeat_period = 500 * common::kMicrosPerMilli;
  // Per-poll batch cap; with poll_period this bounds consumer throughput.
  std::size_t max_poll_messages = 100;
  // After this many failed deliveries of the same offset the message is
  // skipped (and routed to `dead_letter_topic` if set) so the partition can
  // make progress. 0 disables redelivery limiting.
  std::uint32_t max_redeliveries = 0;
  std::string dead_letter_topic;
  // Event-driven delivery: instead of sleeping poll_period between fetches,
  // drain while data is available and park a broker wakeup when caught up
  // (heartbeat_period acts as the safety-net sweep; nacked head-of-line
  // messages still retry on poll_period so redelivery pacing is unchanged).
  bool event_driven = false;
  // Observability sink: when set, the consumer stamps deliver/ack stages on
  // traced messages and completes their pubsub-path traces into the
  // collector (tagged with `obs_shard`'s histogram family).
  obs::Collector* obs = nullptr;
  std::size_t obs_shard = 0;
};

// Returns true to acknowledge; false leaves the message uncommitted for
// redelivery.
using MessageHandler = std::function<bool(PartitionId, const StoredMessage&)>;

class GroupConsumer {
 public:
  GroupConsumer(sim::Simulator* sim, sim::Network* net, Broker* broker, GroupId group,
                std::string topic, MemberId member, MessageHandler handler,
                ConsumerOptions options = {});
  ~GroupConsumer();

  GroupConsumer(const GroupConsumer&) = delete;
  GroupConsumer& operator=(const GroupConsumer&) = delete;

  // Joins the group and starts polling/heartbeating.
  void Start();
  // Leaves the group and stops.
  void Stop();

  // Crash/restart hooks for FailureInjector: a crashed member keeps its
  // timers but is gated off by the network; on restart it re-joins.
  void OnCrash();
  void OnRestart();

  const MemberId& member() const { return member_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t dead_lettered() const { return dead_lettered_; }

 private:
  void Poll();                                      // Periodic mode.
  void Pump();                                      // Event-driven mode.
  // Fetches one batch from the partition's committed offset, delivers it,
  // and commits once for the whole drained batch. Returns true if the
  // partition is head-of-line blocked on a nacked message (data available
  // but not deliverable until the redelivery retry).
  bool DrainPartition(PartitionId partition, std::size_t* budget);
  // On a generation change, drops redelivery counters for partitions this
  // member no longer owns — they describe the *previous* owner epoch, and
  // keeping them would fast-forward a later re-assignment of the same
  // partition straight to the dead-letter path.
  void PruneStaleDeliveryState(std::uint64_t generation,
                               const std::vector<PartitionId>& assigned);
  void CancelWaits();
  // A pump callback guarded against use after Stop()/destruction (parked
  // wakeups and scheduled events can outlive this object).
  std::function<void()> WakeFn();
  void SchedulePump(common::TimeMicros delay);
  void SendHeartbeat();

  sim::Simulator* sim_;
  sim::Network* net_;
  Broker* broker_;
  GroupId group_;
  std::string topic_;
  MemberId member_;
  MessageHandler handler_;
  ConsumerOptions options_;

  bool running_ = false;
  std::uint64_t last_seen_generation_ = 0;
  std::map<PartitionId, std::map<Offset, std::uint32_t>> delivery_attempts_;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t dead_lettered_ = 0;
  std::vector<Broker::WaitTicket> wait_tickets_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::unique_ptr<sim::PeriodicTask> poll_task_;
  std::unique_ptr<sim::PeriodicTask> heartbeat_task_;
};

class FreeConsumer {
 public:
  enum class StartAt : std::uint8_t { kEarliest, kLatest };

  FreeConsumer(sim::Simulator* sim, sim::Network* net, Broker* broker, std::string topic,
               sim::NodeId node, MessageHandler handler, ConsumerOptions options = {},
               StartAt start_at = StartAt::kEarliest);
  ~FreeConsumer();

  FreeConsumer(const FreeConsumer&) = delete;
  FreeConsumer& operator=(const FreeConsumer&) = delete;

  void Start();
  void Stop();

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  // This consumer's own backlog (end offsets minus positions).
  std::uint64_t Backlog() const;

 private:
  void Poll();                        // Periodic mode.
  void Pump();                        // Event-driven mode.
  void Drain(std::size_t* budget);
  // Adopts partitions this consumer has not seen yet. Runs on *every* poll:
  // topics grow (Broker::AddPartitions), and a one-shot discovery would
  // silently never fetch the new partitions. Partitions present at first
  // contact honour start_at_; later arrivals are consumed from their first
  // offset ("latest" predates a partition that did not exist yet).
  void DiscoverPartitions();
  void CancelWaits();
  std::function<void()> WakeFn();
  void SchedulePump(common::TimeMicros delay);

  sim::Simulator* sim_;
  sim::Network* net_;
  Broker* broker_;
  std::string topic_;
  sim::NodeId node_;
  MessageHandler handler_;
  ConsumerOptions options_;
  StartAt start_at_;

  bool running_ = false;
  bool initial_discovery_done_ = false;
  std::map<PartitionId, Offset> positions_;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::vector<Broker::WaitTicket> wait_tickets_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::unique_ptr<sim::PeriodicTask> poll_task_;
};

}  // namespace pubsub

#endif  // SRC_PUBSUB_CONSUMER_H_
