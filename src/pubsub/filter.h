// pubsub::Filter: a broker-side interest description for filtered
// subscriptions and watches. A filter is the conjunction of three parts —
// a key range (half-open, common::KeyRange semantics), a key prefix, and a
// small conjunctive predicate over record headers — and a record matches
// when every part holds. Filters are evaluated where the record is appended
// (the broker), not at the edge: the paper's §3 complaint is that pubsub
// systems promise selective delivery but implement it as deliver-everything,
// filter-client-side, which collapses under fanout. The InterestIndex
// (interest_index.h) turns a population of filters into O(matching) lookup;
// identical filters (canonical form) share one delivery lane (subgrouping).
//
// Header-only on purpose: the watch layer and the wire codecs use the type
// without needing a pubsub link dependency.
#ifndef SRC_PUBSUB_FILTER_H_
#define SRC_PUBSUB_FILTER_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "pubsub/types.h"

namespace pubsub {

// One header predicate. kExists matches any record carrying the header;
// kEq/kNe compare against the header's value and both require the header to
// be present (an absent header matches neither — absence is tested with the
// conjunction's shape, not per-predicate negation). Duplicate header names
// resolve to the first occurrence, matching Headers' ordered semantics.
struct HeaderPredicate {
  enum class Op : std::uint8_t { kExists = 0, kEq = 1, kNe = 2 };

  std::string name;
  Op op = Op::kEq;
  std::string value;  // Ignored for kExists.

  bool Matches(const Headers& headers) const {
    for (const auto& [n, v] : headers) {
      if (n != name) {
        continue;
      }
      switch (op) {
        case Op::kExists:
          return true;
        case Op::kEq:
          return v == value;
        case Op::kNe:
          return v != value;
      }
      return false;
    }
    return false;
  }

  friend bool operator==(const HeaderPredicate&, const HeaderPredicate&) = default;
  friend bool operator<(const HeaderPredicate& a, const HeaderPredicate& b) {
    if (a.name != b.name) return a.name < b.name;
    if (a.op != b.op) return a.op < b.op;
    return a.value < b.value;
  }
};

struct Filter {
  common::KeyRange range = common::KeyRange::All();
  std::string key_prefix;                  // Empty: no prefix constraint.
  std::vector<HeaderPredicate> headers;    // Conjunction; empty: no constraint.

  bool MatchesKey(std::string_view key) const {
    return range.Contains(key) && key.substr(0, key_prefix.size()) == key_prefix;
  }

  bool Matches(std::string_view key, const Headers& record_headers) const {
    if (!MatchesKey(key)) {
      return false;
    }
    for (const HeaderPredicate& p : headers) {
      if (!p.Matches(record_headers)) {
        return false;
      }
    }
    return true;
  }

  bool Matches(const Message& msg) const { return Matches(msg.key, msg.headers); }

  // True when the filter constrains nothing (every record matches).
  bool MatchesEverything() const {
    return range.Covers(common::KeyRange::All()) && key_prefix.empty() && headers.empty();
  }

  // The single key this filter's range selects, if the range is exactly
  // KeyRange::Single(k) — the exact-key hash-lane classification.
  std::optional<std::string> ExactKey() const {
    if (range.unbounded_above() || range.high.size() != range.low.size() + 1 ||
        range.high.back() != '\0' ||
        std::string_view(range.high).substr(0, range.low.size()) != range.low) {
      return std::nullopt;
    }
    return range.low;
  }

  // Sorts and dedups the header conjunction so equal filters have equal
  // representations — the precondition for subgrouping (shared lanes).
  void Canonicalize() {
    std::sort(headers.begin(), headers.end());
    headers.erase(std::unique(headers.begin(), headers.end()), headers.end());
  }

  // Unambiguous byte encoding of the canonical form, used as the shared-lane
  // dedup key. Length-prefixed fields so no two distinct filters collide.
  std::string CanonicalKey() const {
    Filter c = *this;
    c.Canonicalize();
    std::string out;
    auto put = [&out](std::string_view s) {
      const std::uint32_t n = static_cast<std::uint32_t>(s.size());
      out.append(reinterpret_cast<const char*>(&n), sizeof(n));
      out.append(s.data(), s.size());
    };
    put(c.range.low);
    out.push_back(c.range.unbounded_above() ? 1 : 0);
    put(c.range.high);
    put(c.key_prefix);
    const std::uint32_t preds = static_cast<std::uint32_t>(c.headers.size());
    out.append(reinterpret_cast<const char*>(&preds), sizeof(preds));
    for (const HeaderPredicate& p : c.headers) {
      put(p.name);
      out.push_back(static_cast<char>(p.op));
      put(p.value);
    }
    return out;
  }

  friend bool operator==(const Filter&, const Filter&) = default;
};

}  // namespace pubsub

#endif  // SRC_PUBSUB_FILTER_H_
