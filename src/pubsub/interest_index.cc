#include "pubsub/interest_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pubsub {

InterestIndex::InterestIndex() : ranges_(std::vector<LaneId>{}) {}

void InterestIndex::Add(SubscriberId id, Filter filter) {
  assert(id != 0);
  if (members_.count(id) > 0) {
    return;  // Caller bug; keep the first registration rather than corrupt.
  }
  filter.Canonicalize();
  std::string canonical = filter.CanonicalKey();
  auto shared = lane_by_canonical_.find(canonical);
  if (shared != lane_by_canonical_.end()) {
    // Subgrouping: an identical interest joins the existing lane.
    lanes_[shared->second].members.push_back(id);
    members_.emplace(id, shared->second);
    return;
  }
  const LaneId lane_id = next_lane_++;
  Lane lane;
  lane.filter = std::move(filter);
  lane.canonical = canonical;
  lane.members.push_back(id);
  InsertLaneHome(lane_id, lane);
  lane_by_canonical_.emplace(std::move(canonical), lane_id);
  lanes_.emplace(lane_id, std::move(lane));
  members_.emplace(id, lane_id);
}

bool InterestIndex::Remove(SubscriberId id) {
  auto member = members_.find(id);
  if (member == members_.end()) {
    return false;
  }
  const LaneId lane_id = member->second;
  members_.erase(member);
  Lane& lane = lanes_[lane_id];
  lane.members.erase(std::remove(lane.members.begin(), lane.members.end(), id),
                     lane.members.end());
  if (!lane.members.empty()) {
    return true;
  }
  // Last member out: dismantle the shared lane everywhere it is indexed.
  RemoveLaneHome(lane_id, lane);
  lane_by_canonical_.erase(lane.canonical);
  lanes_.erase(lane_id);
  return true;
}

void InterestIndex::InsertLaneHome(LaneId lane_id, Lane& lane) {
  if (auto exact = lane.filter.ExactKey(); exact.has_value()) {
    lane.home = Home::kExact;
    lane.home_key = *exact;
    exact_[lane.home_key].push_back(lane_id);
    return;
  }
  if (!lane.filter.key_prefix.empty()) {
    lane.home = Home::kPrefix;
    lane.home_key = lane.filter.key_prefix;
    TrieNode* node = &trie_root_;
    ++node->subtree_lanes;
    for (char c : lane.home_key) {
      std::unique_ptr<TrieNode>& child = node->children[c];
      if (child == nullptr) {
        child = std::make_unique<TrieNode>();
      }
      node = child.get();
      ++node->subtree_lanes;
    }
    node->lanes.push_back(lane_id);
    return;
  }
  if (!lane.filter.range.Covers(common::KeyRange::All())) {
    lane.home = Home::kRange;
    // An empty range matches nothing and covers no segment: the lane exists
    // (members are registered) but is never a stabbing candidate.
    ranges_.Transform(lane.filter.range, [lane_id](const std::vector<LaneId>& v) {
      std::vector<LaneId> next = v;
      next.push_back(lane_id);
      return next;
    });
    return;
  }
  lane.home = Home::kBroad;
  broad_.push_back(lane_id);
}

void InterestIndex::RemoveLaneHome(LaneId lane_id, const Lane& lane) {
  switch (lane.home) {
    case Home::kExact: {
      auto it = exact_.find(lane.home_key);
      if (it != exact_.end()) {
        it->second.erase(std::remove(it->second.begin(), it->second.end(), lane_id),
                         it->second.end());
        if (it->second.empty()) {
          exact_.erase(it);
        }
      }
      return;
    }
    case Home::kPrefix: {
      // Walk the prefix path decrementing subtree counts, then prune the
      // deepest now-empty suffix so churn does not leak trie nodes.
      std::vector<TrieNode*> path{&trie_root_};
      TrieNode* node = &trie_root_;
      for (char c : lane.home_key) {
        auto child = node->children.find(c);
        if (child == node->children.end()) {
          return;  // Unreachable when Add/Remove are paired.
        }
        node = child->second.get();
        path.push_back(node);
      }
      node->lanes.erase(std::remove(node->lanes.begin(), node->lanes.end(), lane_id),
                        node->lanes.end());
      for (TrieNode* n : path) {
        --n->subtree_lanes;
      }
      for (std::size_t depth = lane.home_key.size(); depth > 0; --depth) {
        TrieNode* child = path[depth];
        if (child->subtree_lanes != 0) {
          break;
        }
        path[depth - 1]->children.erase(lane.home_key[depth - 1]);
      }
      return;
    }
    case Home::kRange:
      ranges_.Transform(lane.filter.range, [lane_id](const std::vector<LaneId>& v) {
        std::vector<LaneId> next = v;
        next.erase(std::remove(next.begin(), next.end(), lane_id), next.end());
        return next;
      });
      return;
    case Home::kBroad:
      broad_.erase(std::remove(broad_.begin(), broad_.end(), lane_id), broad_.end());
      return;
  }
}

void InterestIndex::VisitLane(LaneId lane_id, std::string_view key, const Headers& headers,
                              const std::function<void(SubscriberId)>& fn) {
  auto it = lanes_.find(lane_id);
  if (it == lanes_.end()) {
    return;  // fn removed this lane's last member earlier in the same Match.
  }
  ++lanes_scanned_;
  if (!it->second.filter.Matches(key, headers)) {
    return;
  }
  ++lanes_matched_;
  // Fan out over a copy: fn may call Remove (a watcher resyncing mid-match),
  // which mutates — or destroys — this very lane.
  member_scratch_ = it->second.members;
  for (const SubscriberId id : member_scratch_) {
    ++subscribers_matched_;
    fn(id);
  }
}

void InterestIndex::Match(std::string_view key, const Headers& headers,
                          const std::function<void(SubscriberId)>& fn) {
  // Collect candidates per home, then evaluate in deterministic lane order —
  // a lane id can appear in only one home, so no dedup pass is needed.
  scratch_.clear();
  if (auto exact = exact_.find(std::string(key)); exact != exact_.end()) {
    scratch_.insert(scratch_.end(), exact->second.begin(), exact->second.end());
  }
  std::sort(scratch_.begin(), scratch_.end());
  for (const LaneId lane : scratch_) {
    VisitLane(lane, key, headers, fn);
  }

  scratch_.clear();
  const TrieNode* node = &trie_root_;
  scratch_.insert(scratch_.end(), node->lanes.begin(), node->lanes.end());
  for (char c : key) {
    auto child = node->children.find(c);
    if (child == node->children.end()) {
      break;
    }
    node = child->second.get();
    scratch_.insert(scratch_.end(), node->lanes.begin(), node->lanes.end());
  }
  std::sort(scratch_.begin(), scratch_.end());
  for (const LaneId lane : scratch_) {
    VisitLane(lane, key, headers, fn);
  }

  scratch_ = ranges_.Get(key);  // Stabbing query: the segment covering `key`.
  std::sort(scratch_.begin(), scratch_.end());
  for (const LaneId lane : scratch_) {
    VisitLane(lane, key, headers, fn);
  }

  scratch_ = broad_;  // Copy: fn may unsubscribe mid-visit.
  std::sort(scratch_.begin(), scratch_.end());
  for (const LaneId lane : scratch_) {
    VisitLane(lane, key, headers, fn);
  }
}

const Filter* InterestIndex::FilterOf(SubscriberId id) const {
  auto member = members_.find(id);
  if (member == members_.end()) {
    return nullptr;
  }
  auto lane = lanes_.find(member->second);
  return lane == lanes_.end() ? nullptr : &lane->second.filter;
}

}  // namespace pubsub
