// InterestIndex: the append-time fanout structure behind filtered
// subscriptions. A population of pubsub::Filters is indexed so that matching
// a record touches O(matching lanes + log) state instead of scanning every
// subscription — the difference between a broker that survives 100k
// filtered sessions and one that pays all of them on every append.
//
// Structure (each filter is classified into exactly one home):
//
//   * exact lanes  — filters whose range selects a single key
//                    (KeyRange::Single): a hash map key → lanes.
//   * prefix trie  — filters with a non-empty key prefix: lanes hang off the
//                    trie node for their prefix; a lookup walks the record
//                    key's char path and collects lanes at every node.
//   * range map    — bounded/offset key ranges: an IntervalMap whose segment
//                    values are the lane lists covering that segment, so a
//                    stabbing query is one ordered-map lookup.
//   * broad lanes  — filters with no key constraint at all (range == All and
//                    no prefix, e.g. header-only predicates): scanned on
//                    every append. These are the price of content-only
//                    filters; the matched-vs-scanned stats make them visible.
//
// Subgrouping: filters with identical canonical form share one lane
// (refcounted members). A lane's filter is evaluated once per record
// regardless of member count — identical interests cost one residual check,
// and delivery fans out along the shared lane.
//
// Candidate lanes from any home are residually verified against the full
// filter (range ∩ prefix ∩ header conjunction), so classification is purely
// an efficiency decision and can never change match semantics. The property
// suite (tests/pubsub/filter_property_test.cc) holds Match ≡ brute force
// over every subscriber.
//
// Thread model: externally synchronized. Inside the broker the index is
// shard-confined like every other broker structure.
#ifndef SRC_PUBSUB_INTEREST_INDEX_H_
#define SRC_PUBSUB_INTEREST_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interval_map.h"
#include "pubsub/filter.h"
#include "pubsub/types.h"

namespace pubsub {

class InterestIndex {
 public:
  using SubscriberId = std::uint64_t;
  using LaneId = std::uint64_t;

  InterestIndex();

  // Registers `id` (caller-allocated, non-zero, unique) under `filter`.
  // Filters equal after canonicalization join the same shared lane.
  void Add(SubscriberId id, Filter filter);

  // Deregisters; the shared lane is dismantled when its last member leaves.
  // Returns false for unknown ids (harmless no-op).
  bool Remove(SubscriberId id);

  // Visits every subscriber whose filter matches (key, headers). Each shared
  // lane's filter is evaluated once; matching lanes fan out to their members
  // in registration order. Lanes are visited in a deterministic home order
  // (exact, prefix, range, broad), each home in lane-id order.
  void Match(std::string_view key, const Headers& headers,
             const std::function<void(SubscriberId)>& fn);

  // The registered filter, or nullptr for unknown ids.
  const Filter* FilterOf(SubscriberId id) const;

  std::size_t subscriber_count() const { return members_.size(); }
  std::size_t lane_count() const { return lanes_.size(); }
  std::size_t broad_lane_count() const { return broad_.size(); }

  // Cumulative match-work accounting: lanes whose filters were evaluated vs
  // lanes that matched vs subscriber deliveries. scanned == matched means the
  // index only ever touched work it delivered (the O(matching) claim);
  // scanned >> matched means the population degenerated toward a full scan
  // (broad filters, pathological prefixes).
  std::uint64_t lanes_scanned() const { return lanes_scanned_; }
  std::uint64_t lanes_matched() const { return lanes_matched_; }
  std::uint64_t subscribers_matched() const { return subscribers_matched_; }

 private:
  enum class Home : std::uint8_t { kExact, kPrefix, kRange, kBroad };

  struct Lane {
    Filter filter;
    std::string canonical;
    Home home = Home::kBroad;
    std::string home_key;  // Exact key or prefix; empty for range/broad.
    std::vector<SubscriberId> members;
  };

  struct TrieNode {
    std::map<char, std::unique_ptr<TrieNode>> children;
    std::vector<LaneId> lanes;      // Lanes whose prefix ends here.
    std::size_t subtree_lanes = 0;  // Lanes at or below; prunes empty paths.
  };

  void InsertLaneHome(LaneId lane_id, Lane& lane);
  void RemoveLaneHome(LaneId lane_id, const Lane& lane);
  // Evaluates one candidate lane against the record, fanning out on match.
  void VisitLane(LaneId lane_id, std::string_view key, const Headers& headers,
                 const std::function<void(SubscriberId)>& fn);

  std::unordered_map<LaneId, Lane> lanes_;
  std::unordered_map<std::string, LaneId> lane_by_canonical_;
  std::unordered_map<SubscriberId, LaneId> members_;

  std::unordered_map<std::string, std::vector<LaneId>> exact_;
  TrieNode trie_root_;
  common::IntervalMap<std::vector<LaneId>> ranges_;
  std::vector<LaneId> broad_;

  LaneId next_lane_ = 1;
  std::uint64_t lanes_scanned_ = 0;
  std::uint64_t lanes_matched_ = 0;
  std::uint64_t subscribers_matched_ = 0;
  // Match-scratch: candidate lane ids collected per call, reused.
  std::vector<LaneId> scratch_;
  // Fanout scratch: the matched lane's member list is copied here before fn
  // runs, so fn may unsubscribe (mutating the lane) without invalidating the
  // iteration.
  std::vector<SubscriberId> member_scratch_;
};

}  // namespace pubsub

#endif  // SRC_PUBSUB_INTEREST_INDEX_H_
