#include "pubsub/log.h"

#include <unordered_map>

namespace pubsub {

std::uint64_t PartitionLog::Compact(common::TimeMicros horizon) {
  // Find, among messages older than the horizon, the last offset per key.
  std::unordered_map<common::Key, Offset> last_old_offset;
  for (const StoredMessage& m : log_) {
    if (m.message.publish_time >= horizon) {
      break;
    }
    last_old_offset[m.message.key] = m.offset;
  }
  if (last_old_offset.empty()) {
    return 0;
  }
  std::deque<StoredMessage> kept;
  std::uint64_t removed = 0;
  for (StoredMessage& m : log_) {
    if (m.message.publish_time >= horizon) {
      kept.push_back(std::move(m));
      continue;
    }
    auto it = last_old_offset.find(m.message.key);
    if (it != last_old_offset.end() && it->second == m.offset) {
      kept.push_back(std::move(m));
    } else {
      ++removed;
    }
  }
  log_ = std::move(kept);
  compacted_away_ += removed;
  return removed;
}

}  // namespace pubsub
