#include "pubsub/log.h"

#include <unordered_map>

namespace pubsub {

std::uint64_t PartitionLog::Compact(common::TimeMicros horizon) {
  if (pins_ > 0) {
    // A compaction pass rebuilds the deque, moving elements (and with them
    // the data of SSO-small strings) — fatal to any outstanding span. Defer
    // until the last ReadPin drops.
    pending_compact_horizon_ = std::max(pending_compact_horizon_, horizon);
    return 0;
  }
  // Kafka semantics: among messages older than the horizon, a record survives
  // only if it is the newest record for its key *in the entire log* — a
  // pre-horizon copy shadowed by any later record (before or after the
  // horizon) is dropped. Scan the whole log for the newest offset per key.
  std::unordered_map<common::Key, Offset> newest_offset;
  bool any_old = false;
  for (const StoredMessage& m : log_) {
    newest_offset[m.message.key] = m.offset;
    any_old = any_old || m.message.publish_time < horizon;
  }
  last_compaction_horizon_ = std::max(last_compaction_horizon_, horizon);
  compact_end_offset_ = next_offset_;
  std::uint64_t removed = 0;
  if (any_old) {
    std::deque<StoredMessage> kept;
    for (StoredMessage& m : log_) {
      if (m.message.publish_time >= horizon || newest_offset[m.message.key] == m.offset) {
        kept.push_back(std::move(m));
      } else {
        ++removed;
      }
    }
    log_ = std::move(kept);
    compacted_away_ += removed;
  }
  // Fire even when nothing was removed: the pass still advanced the
  // compaction bookkeeping the invariant oracle reads, and a journal must
  // replay that. Compaction is deterministic given log state and horizon, so
  // the journaled record only needs the horizon.
  if (retention_cb_) {
    retention_cb_(RetentionEvent{RetentionEvent::Kind::kCompact, horizon, first_offset(), removed});
  }
  return removed;
}

Offset PartitionLog::OffsetAtOrAfter(common::TimeMicros timestamp) const {
  // Publish times are monotonic in offset order (they are stamped with the
  // broker's simulated clock at append), so the first retained message at or
  // after `timestamp` is the answer — no copy, no full scan past the match.
  for (const StoredMessage& m : log_) {
    if (m.message.publish_time >= timestamp) {
      return m.offset;
    }
  }
  return end_offset();
}

}  // namespace pubsub
