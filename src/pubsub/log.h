// PartitionLog: one partition's durable, offset-addressed message log, with
// the two head-trimming behaviours the paper analyzes:
//
//  * retention GC — messages older than the retention period (or beyond the
//    size cap) are dropped entirely; and
//  * compaction — messages older than the compaction window keep only the
//    latest version per key.
//
// Crucially (Section 3.1), a reader positioned below the first retained
// offset is silently repositioned to the earliest retained message — exactly
// Kafka's `auto.offset.reset=earliest` — and nothing in the consumer-visible
// API reports how many messages were skipped. The log *does* track the skip
// internally so experiments can count the loss the application cannot see.
#ifndef SRC_PUBSUB_LOG_H_
#define SRC_PUBSUB_LOG_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "pubsub/span.h"
#include "pubsub/types.h"

namespace pubsub {

// Fired whenever retained history shrinks, so a durability layer can mirror
// the exact trim/compact decision into its journal. `first_offset` is the
// post-event first retained offset.
struct RetentionEvent {
  enum class Kind { kGcBefore, kSizeCap, kCompact };
  Kind kind;
  common::TimeMicros horizon = 0;  // kGcBefore / kCompact only.
  Offset first_offset = 0;
  std::uint64_t removed = 0;
};

class PartitionLog {
 public:
  using AppendCallback = std::function<void(const StoredMessage&)>;
  using RetentionCallback = std::function<void(const RetentionEvent&)>;

  explicit PartitionLog(RetentionPolicy policy) : policy_(policy) {}

  // Observation hooks for the WAL journal. The append callback fires before
  // any size-cap trim its append may trigger, so a journal sees the op order
  // exactly as it happened. Not fired by the Restore* replay APIs.
  void set_append_callback(AppendCallback cb) { append_cb_ = std::move(cb); }
  void set_retention_callback(RetentionCallback cb) { retention_cb_ = std::move(cb); }

  // Appends a message, returning its offset.
  Offset Append(Message msg) {
    log_.push_back(StoredMessage{next_offset_++, std::move(msg)});
    const Offset offset = log_.back().offset;
    if (append_cb_) {
      append_cb_(log_.back());
    }
    EnforceSizeCap();
    return offset;
  }

  // First offset still present (== end_offset() when empty after GC).
  Offset first_offset() const { return log_.empty() ? next_offset_ : log_.front().offset; }
  // One past the last appended offset.
  Offset end_offset() const { return next_offset_; }
  std::size_t size() const { return log_.size(); }

  // Reads up to `max` messages starting at `from`. If `from` precedes the
  // first retained offset, reading silently resumes at the earliest retained
  // message (the Kafka reset behaviour). `max` == 0 means unlimited.
  std::vector<StoredMessage> Read(Offset from, std::size_t max = 0) const {
    std::vector<StoredMessage> out;
    ReadInto(from, max, &out);
    return out;
  }

  // Allocation-free Read for hot pollers: appends up to `max` messages into
  // `*out` (not cleared), reusing its capacity. Returns the number appended.
  std::size_t ReadInto(Offset from, std::size_t max, std::vector<StoredMessage>* out) const {
    const std::size_t before = out->size();
    // Offsets are sorted but not dense (compaction leaves gaps), so position
    // by binary search rather than scanning from the retained head — an
    // event-driven pump fetching small batches per wakeup would otherwise
    // pay O(retained log) per fetch.
    auto it = std::lower_bound(
        log_.begin(), log_.end(), from,
        [](const StoredMessage& m, Offset offset) { return m.offset < offset; });
    for (; it != log_.end(); ++it) {
      out->push_back(*it);
      if (max != 0 && out->size() - before >= max) {
        break;
      }
    }
    const std::size_t appended = out->size() - before;
    if (appended != 0 && (*out)[before].offset > from) {
      // Reader fell below retained history; it cannot observe this, but the
      // harness can.
      silent_skips_ += (*out)[before].offset - from;
    } else if (appended == 0 && from < first_offset()) {
      silent_skips_ += first_offset() - from;
    }
    return appended;
  }

  // Zero-copy ReadInto: appends up to `max` MessageSpans viewing retained
  // records into `*out` (not cleared). The views alias log-owned storage —
  // the caller must hold a ReadPin on this log for as long as it touches
  // them; the pin defers retention reclamation so the views cannot dangle.
  // Same silent-reset semantics and accounting as ReadInto.
  std::size_t ReadSpansInto(Offset from, std::size_t max, std::vector<MessageSpan>* out) const {
    const std::size_t before = out->size();
    auto it = std::lower_bound(
        log_.begin(), log_.end(), from,
        [](const StoredMessage& m, Offset offset) { return m.offset < offset; });
    for (; it != log_.end(); ++it) {
      const Message& m = it->message;
      out->push_back(MessageSpan{it->offset, m.key, m.value, m.publish_time,
                                 m.headers.empty() ? nullptr : &m.headers});
      if (max != 0 && out->size() - before >= max) {
        break;
      }
    }
    const std::size_t appended = out->size() - before;
    if (appended != 0 && (*out)[before].offset > from) {
      silent_skips_ += (*out)[before].offset - from;
    } else if (appended == 0 && from < first_offset()) {
      silent_skips_ += first_offset() - from;
    }
    return appended;
  }

  // Predicate-filtered ReadInto for the filtered-subscription catch-up path:
  // scans forward from `from`, appending messages satisfying `pred` into
  // `*out`, until `max` matches are appended, `max_scan` records have been
  // examined (0: unbounded), or the log ends. `*next_offset` is set to the
  // offset after the last scanned record — the cursor resume point — so a
  // filter matching nothing still makes scan progress. Returns the number of
  // matches appended; `*scanned` (optional) counts records examined. Shares
  // ReadInto's silent-reset accounting when `from` fell below retention.
  std::size_t ScanInto(Offset from, std::size_t max, std::size_t max_scan,
                       const std::function<bool(const StoredMessage&)>& pred,
                       std::vector<StoredMessage>* out, Offset* next_offset,
                       std::uint64_t* scanned = nullptr) const {
    const std::size_t before = out->size();
    auto it = std::lower_bound(
        log_.begin(), log_.end(), from,
        [](const StoredMessage& m, Offset offset) { return m.offset < offset; });
    if (it != log_.end() && it->offset > from) {
      silent_skips_ += it->offset - from;
    } else if (it == log_.end() && from < first_offset()) {
      silent_skips_ += first_offset() - from;
    }
    std::uint64_t examined = 0;
    Offset next = std::max(from, first_offset());
    for (; it != log_.end(); ++it) {
      if (max_scan != 0 && examined >= max_scan) {
        break;
      }
      ++examined;
      next = it->offset + 1;
      if (pred(*it)) {
        out->push_back(*it);
        if (max != 0 && out->size() - before >= max) {
          break;
        }
      }
    }
    if (it == log_.end()) {
      next = next_offset_;  // Scanned to the live edge.
    }
    *next_offset = std::max(next, from);
    if (scanned != nullptr) {
      *scanned += examined;
    }
    return out->size() - before;
  }

  // Time-based retention: drops messages published before `horizon`.
  // Returns the number of messages garbage collected. While a ReadPin is
  // held the drop is deferred (0 returned now); the last unpin applies the
  // highest deferred horizon and fires the retention callback then.
  std::uint64_t GcBefore(common::TimeMicros horizon) {
    if (pins_ > 0) {
      pending_gc_horizon_ = std::max(pending_gc_horizon_, horizon);
      return 0;
    }
    std::uint64_t dropped = 0;
    while (!log_.empty() && log_.front().message.publish_time < horizon) {
      log_.pop_front();
      ++dropped;
    }
    gced_ += dropped;
    if (dropped > 0 && retention_cb_) {
      retention_cb_(RetentionEvent{RetentionEvent::Kind::kGcBefore, horizon, first_offset(), dropped});
    }
    return dropped;
  }

  // Compaction: for messages published before `horizon`, keeps only the
  // newest record per key across the whole log (Kafka semantics: a pre-horizon
  // copy shadowed by any later record is dropped; messages at/after the
  // horizon keep every version). Returns the number of messages removed.
  // Offsets of surviving messages are unchanged, so the log acquires offset
  // gaps — indistinguishable, to a reader, from normal consumption.
  // Deferred while pinned, like GcBefore: compaction rebuilds the deque and
  // moves SSO-small strings, which would invalidate handed-out spans.
  std::uint64_t Compact(common::TimeMicros horizon);

  // First retained offset whose publish time is >= `timestamp`, or
  // end_offset() if every retained message is older. Publish times are
  // monotonic in offset order, so this is the seek-to-time target.
  Offset OffsetAtOrAfter(common::TimeMicros timestamp) const;

  // Harness-only accounting (not part of the consumer-visible API).
  std::uint64_t gced() const { return gced_; }
  std::uint64_t compacted_away() const { return compacted_away_; }
  std::uint64_t silent_skips() const { return silent_skips_; }
  // Outstanding ReadPins (tests/leak checks).
  int pins() const { return pins_; }

  // Harness-only introspection for the invariant oracle: the retained
  // messages, the highest horizon Compact has been run with, and the log end
  // offset as of that compaction (records appended later may legitimately
  // shadow pre-horizon survivors until the next compaction pass).
  const std::deque<StoredMessage>& entries() const { return log_; }
  common::TimeMicros last_compaction_horizon() const { return last_compaction_horizon_; }
  Offset compact_end_offset() const { return compact_end_offset_; }

  // -- Recovery-only replay APIs (see wal::PartitionJournal) -------------------
  //
  // These mutate state without firing callbacks and without enforcing the
  // size cap: during journal replay every trim is driven by a journaled
  // record, so policy must not be re-applied on top.

  // Re-applies a journaled append. Offsets arrive in append order.
  void RestoreAppend(Offset offset, Message msg) {
    log_.push_back(StoredMessage{offset, std::move(msg)});
    next_offset_ = offset + 1;
  }

  // Drops retained messages with offset < `first` (counted into gced_). If
  // `first` is beyond end_offset() — every append up to it was dropped with
  // its wal segment — the log advances to start empty at `first`.
  std::uint64_t TrimTo(Offset first) {
    std::uint64_t dropped = 0;
    while (!log_.empty() && log_.front().offset < first) {
      log_.pop_front();
      ++dropped;
    }
    gced_ += dropped;
    if (first > next_offset_) {
      next_offset_ = first;
    }
    return dropped;
  }

  // Overwrites harness accounting and compaction bookkeeping with
  // snapshot-record values, superseding whatever partial replay accumulated.
  void RestoreAccounting(std::uint64_t gced, std::uint64_t compacted_away,
                         std::uint64_t silent_skips, common::TimeMicros last_compaction_horizon,
                         Offset compact_end_offset) {
    gced_ = gced;
    compacted_away_ = compacted_away;
    silent_skips_ = silent_skips;
    last_compaction_horizon_ = last_compaction_horizon;
    compact_end_offset_ = compact_end_offset;
  }

 private:
  friend class ReadPin;

  void AddPin() { ++pins_; }
  void ReleasePin() {
    if (--pins_ > 0) {
      return;
    }
    // Last pin dropped: apply the retention the pin deferred, in the order
    // the policies normally run (time GC, then compaction, then size cap).
    // Each re-checks pins_ == 0 implicitly by running the normal path, which
    // fires the retention callbacks a journal mirrors.
    if (pending_gc_horizon_ != 0) {
      const common::TimeMicros horizon = pending_gc_horizon_;
      pending_gc_horizon_ = 0;
      GcBefore(horizon);
    }
    if (pending_compact_horizon_ != 0) {
      const common::TimeMicros horizon = pending_compact_horizon_;
      pending_compact_horizon_ = 0;
      Compact(horizon);
    }
    if (pending_size_cap_) {
      pending_size_cap_ = false;
      EnforceSizeCap();
    }
  }

  void EnforceSizeCap() {
    if (policy_.max_messages == 0) {
      return;
    }
    if (pins_ > 0) {
      pending_size_cap_ = true;
      return;
    }
    std::uint64_t dropped = 0;
    while (log_.size() > policy_.max_messages) {
      log_.pop_front();
      ++gced_;
      ++dropped;
    }
    if (dropped > 0 && retention_cb_) {
      retention_cb_(RetentionEvent{RetentionEvent::Kind::kSizeCap, 0, first_offset(), dropped});
    }
  }

  RetentionPolicy policy_;
  std::deque<StoredMessage> log_;
  Offset next_offset_ = 0;
  std::uint64_t gced_ = 0;
  std::uint64_t compacted_away_ = 0;
  mutable std::uint64_t silent_skips_ = 0;
  common::TimeMicros last_compaction_horizon_ = 0;
  Offset compact_end_offset_ = 0;
  AppendCallback append_cb_;
  RetentionCallback retention_cb_;
  // Span-read pin state: outstanding pins and the retention they deferred.
  int pins_ = 0;
  common::TimeMicros pending_gc_horizon_ = 0;
  common::TimeMicros pending_compact_horizon_ = 0;
  bool pending_size_cap_ = false;
};

inline ReadPin::ReadPin(PartitionLog* log) : log_(log) {
  if (log_ != nullptr) {
    log_->AddPin();
  }
}

inline ReadPin::~ReadPin() { Release(); }

inline void ReadPin::Release() {
  if (log_ != nullptr) {
    PartitionLog* log = log_;
    log_ = nullptr;
    log->ReleasePin();
  }
}

}  // namespace pubsub

#endif  // SRC_PUBSUB_LOG_H_
