// Producer: a thin publishing client bound to a network node. Publishes are
// gated on reachability to the broker (an unreachable producer's publishes
// fail with kUnavailable and are counted).
#ifndef SRC_PUBSUB_PRODUCER_H_
#define SRC_PUBSUB_PRODUCER_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"
#include "pubsub/broker.h"
#include "sim/network.h"

namespace pubsub {

class Producer {
 public:
  Producer(sim::Network* net, Broker* broker, sim::NodeId node, std::string topic)
      : net_(net), broker_(broker), node_(std::move(node)), topic_(std::move(topic)) {
    if (!net_->IsUp(node_)) {
      net_->AddNode(node_);
    }
  }

  common::Result<PublishResult> Publish(common::Key key, common::Value value) {
    if (!net_->Reachable(node_, broker_->node())) {
      ++failed_;
      return common::Status::Unavailable("producer cannot reach broker");
    }
    ++published_;
    return broker_->Publish(topic_, Message{std::move(key), std::move(value), 0});
  }

  std::uint64_t published() const { return published_; }
  std::uint64_t failed() const { return failed_; }

 private:
  sim::Network* net_;
  Broker* broker_;
  sim::NodeId node_;
  std::string topic_;
  std::uint64_t published_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace pubsub

#endif  // SRC_PUBSUB_PRODUCER_H_
