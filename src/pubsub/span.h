// Zero-copy read views over a partition log. A fetch that returns
// StoredMessage copies key, value, and headers per record; the span path
// instead hands out string_views pointing directly into the retained log,
// valid for as long as a ReadPin on that log is held. The pin is what makes
// the borrow safe: while any pin is outstanding, retention reclamation
// (time GC, size-cap trim, compaction) on the pinned log is deferred, so a
// span can never dangle mid-read. The deferred work runs when the last pin
// drops — retention is delayed by one read, never skipped.
#ifndef SRC_PUBSUB_SPAN_H_
#define SRC_PUBSUB_SPAN_H_

#include <cstddef>
#include <string_view>
#include <utility>

#include "pubsub/types.h"

namespace pubsub {

class PartitionLog;

// Borrowed view of one retained record. The views alias storage owned by the
// PartitionLog; they are valid only while the ReadPin that produced them is
// alive. Copying the span copies the views, not the data.
struct MessageSpan {
  Offset offset = 0;
  std::string_view key;
  std::string_view value;
  common::TimeMicros publish_time = 0;
  // Borrowed headers (nullptr when the record has none). Header name/value
  // strings are owned by the log, like key/value.
  const Headers* headers = nullptr;
};

// RAII retention guard. While alive, the pinned log defers GcBefore /
// Compact / size-cap trims (they record their horizon and return 0); the
// last pin to release applies the pending retention in one pass. Movable,
// not copyable; a default-constructed pin guards nothing.
class ReadPin {
 public:
  ReadPin() = default;
  explicit ReadPin(PartitionLog* log);
  ~ReadPin();

  ReadPin(const ReadPin&) = delete;
  ReadPin& operator=(const ReadPin&) = delete;
  ReadPin(ReadPin&& other) noexcept : log_(other.log_) { other.log_ = nullptr; }
  ReadPin& operator=(ReadPin&& other) noexcept {
    if (this != &other) {
      Release();
      log_ = other.log_;
      other.log_ = nullptr;
    }
    return *this;
  }

  bool pinned() const { return log_ != nullptr; }
  // Early unpin (idempotent); the destructor calls this.
  void Release();

 private:
  PartitionLog* log_ = nullptr;
};

}  // namespace pubsub

#endif  // SRC_PUBSUB_SPAN_H_
