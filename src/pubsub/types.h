// Message and policy types for the pubsub substrate (the Kafka-style system
// the paper critiques: a bundled, hidden, durable message log with retention
// GC and compaction).
#ifndef SRC_PUBSUB_TYPES_H_
#define SRC_PUBSUB_TYPES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace pubsub {

using Offset = std::uint64_t;
using PartitionId = std::uint32_t;

// Record headers: small, ordered name/value attributes carried alongside the
// payload. The filtered-subscription predicates (pubsub::Filter) evaluate
// over these broker-side; they ride the WAL and the wire with the message.
using Headers = std::vector<std::pair<std::string, std::string>>;

struct Message {
  common::Key key;     // Routing / compaction key (may be empty).
  common::Value value; // Opaque payload.
  common::TimeMicros publish_time = 0;
  Headers headers;     // Attribute headers (filter predicates match these).
  // Latency-tracing context (obs layer). Last member so aggregate
  // initializers that omit it keep working; excluded from equality and from
  // WAL serialization — tracing is measurement, not semantics.
  obs::TraceContext trace{};

  friend bool operator==(const Message& a, const Message& b) {
    return a.key == b.key && a.value == b.value && a.publish_time == b.publish_time &&
           a.headers == b.headers;
  }
};

struct StoredMessage {
  Offset offset = 0;
  Message message;

  friend bool operator==(const StoredMessage&, const StoredMessage&) = default;
};

// Log retention: the policies whose interaction with backlogs Section 3.1
// identifies as the source of silent data loss.
struct RetentionPolicy {
  // Messages older than this are garbage collected (<= 0: no time limit).
  common::TimeMicros retention = 0;
  // Partition logs longer than this are truncated from the head (0: no
  // size limit).
  std::uint64_t max_messages = 0;
  // When true the log is compacted instead of truncated: messages older than
  // `compaction_window` keep only the latest version per key.
  bool compacted = false;
  common::TimeMicros compaction_window = 0;
};

struct TopicConfig {
  PartitionId partitions = 1;
  RetentionPolicy retention;
};

// How publishes pick a partition when no explicit partition is given.
enum class Routing : std::uint8_t {
  kByKeyHash,   // Deterministic: hash(key) % partitions.
  kRoundRobin,  // "Select a consumer at random" in the paper's terms.
};

}  // namespace pubsub

#endif  // SRC_PUBSUB_TYPES_H_
