// Consistency checkers for replication experiments (Section 3.2.1).
//
// SourceHistory observes every commit on the source MvccStore and keeps the
// fingerprint of the source state after each commit. PointInTimeChecker then
// classifies each externalized target state:
//
//   * point-in-time consistent — the target state equals some state the
//     source actually passed through (its fingerprint is in the history);
//   * snapshot anomaly — a state that NEVER existed in the source (the
//     paper's member-removed-then-group-granted example is one of these).
//
// Eventual consistency is checked separately: after quiescing, the target's
// final state must equal the source's final state.
#ifndef SRC_REPLICATION_CHECKER_H_
#define SRC_REPLICATION_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/types.h"
#include "replication/target_store.h"
#include "storage/mvcc_store.h"

namespace replication {

class SourceHistory {
 public:
  explicit SourceHistory(storage::MvccStore* store) {
    hashes_.insert(0);  // The empty initial state.
    store->AddCommitObserver([this](const storage::CommitRecord& record) {
      for (const common::ChangeEvent& ev : record.changes) {
        auto it = live_.find(ev.key);
        if (it != live_.end()) {
          hash_ ^= it->second;
        }
        if (ev.mutation.kind == common::MutationKind::kPut) {
          const std::uint64_t fp = EntryFingerprint(ev.key, ev.mutation.value);
          live_[ev.key] = fp;
          hash_ ^= fp;
        } else {
          live_.erase(ev.key);
        }
      }
      hashes_.insert(hash_);
      latest_ = record.version;
    });
  }

  SourceHistory(const SourceHistory&) = delete;
  SourceHistory& operator=(const SourceHistory&) = delete;

  bool Existed(std::uint64_t state_hash) const { return hashes_.count(state_hash) > 0; }
  std::uint64_t final_hash() const { return hash_; }
  common::Version latest_version() const { return latest_; }
  std::size_t states() const { return hashes_.size(); }

 private:
  std::unordered_set<std::uint64_t> hashes_;
  std::map<common::Key, std::uint64_t> live_;  // key -> its current fingerprint.
  std::uint64_t hash_ = 0;
  common::Version latest_ = common::kNoVersion;
};

class PointInTimeChecker {
 public:
  PointInTimeChecker(const SourceHistory* history, TargetStore* target) : history_(history) {
    target->AddExternalizeHook([this](const TargetStore& t) {
      ++externalized_;
      if (!history_->Existed(t.state_hash())) {
        ++anomalies_;
      }
    });
  }

  PointInTimeChecker(const PointInTimeChecker&) = delete;
  PointInTimeChecker& operator=(const PointInTimeChecker&) = delete;

  // Externalized target states that never existed in the source.
  std::uint64_t anomalies() const { return anomalies_; }
  std::uint64_t externalized() const { return externalized_; }

  // Eventual-consistency check (run after quiescing).
  bool Converged(const TargetStore& target) const {
    return target.state_hash() == history_->final_hash();
  }

 private:
  const SourceHistory* history_;
  std::uint64_t externalized_ = 0;
  std::uint64_t anomalies_ = 0;
};

// Domain invariant from the paper's Section 3.2.1 example: the source first
// removes member M from group G, then grants G access to document D. Under
// snapshot-consistent replication the target never simultaneously shows
// "M in G" and "G can access D". This checker watches for that forbidden
// conjunction on every externalized target state.
class AclInvariantChecker {
 public:
  AclInvariantChecker(TargetStore* target, common::Key member_key, common::Value member_in,
                      common::Key acl_key, common::Value acl_granted)
      : member_key_(std::move(member_key)),
        member_in_(std::move(member_in)),
        acl_key_(std::move(acl_key)),
        acl_granted_(std::move(acl_granted)) {
    target->AddExternalizeHook([this](const TargetStore& t) {
      auto member = t.Get(member_key_);
      auto acl = t.Get(acl_key_);
      if (member.ok() && *member == member_in_ && acl.ok() && *acl == acl_granted_) {
        ++violations_;
      }
    });
  }

  std::uint64_t violations() const { return violations_; }

 private:
  common::Key member_key_;
  common::Value member_in_;
  common::Key acl_key_;
  common::Value acl_granted_;
  std::uint64_t violations_ = 0;
};

}  // namespace replication

#endif  // SRC_REPLICATION_CHECKER_H_
