#include "replication/target_store.h"

namespace replication {

std::uint64_t EntryFingerprint(const common::Key& key, const common::Value& value) {
  // FNV-1a over key, a separator that cannot appear via length ambiguity, and
  // the value. Order-independence comes from XOR-combining entry fingerprints
  // at the store level, not from this function.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](const std::string& s) {
    const std::uint64_t len = s.size();
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(len >> (i * 8));
      h *= 1099511628211ULL;
    }
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  };
  mix(key);
  mix(value);
  // Avoid the degenerate 0 fingerprint (would be invisible under XOR).
  return h == 0 ? 1 : h;
}

}  // namespace replication
