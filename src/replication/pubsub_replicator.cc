#include "replication/pubsub_replicator.h"

#include "cdc/codec.h"

namespace replication {

PubsubReplicator::PubsubReplicator(sim::Simulator* sim, sim::Network* net,
                                   pubsub::Broker* broker, std::string topic,
                                   pubsub::GroupId group, TargetStore* target,
                                   PubsubReplicationMode mode, PubsubReplicatorOptions options)
    : sim_(sim), target_(target), mode_(mode) {
  const std::uint32_t appliers =
      mode_ == PubsubReplicationMode::kSerial ? 1 : options.appliers;
  for (std::uint32_t i = 0; i < appliers; ++i) {
    auto consumer = std::make_unique<pubsub::GroupConsumer>(
        sim_, net, broker, group, topic, options.applier_prefix + std::to_string(i),
        [this](pubsub::PartitionId, const pubsub::StoredMessage& m) {
          return HandleMessage(m);
        },
        options.consumer);
    consumer->Start();
    appliers_.push_back(std::move(consumer));
  }
}

PubsubReplicator::~PubsubReplicator() = default;

bool PubsubReplicator::HandleMessage(const pubsub::StoredMessage& message) {
  auto event = cdc::DecodeChangeEvent(message.message.value);
  if (!event.ok()) {
    ++decode_errors_;
    return true;  // Ack poison rather than wedging the partition.
  }
  ++events_applied_;
  switch (mode_) {
    case PubsubReplicationMode::kSerial:
      // One partition, publish order == commit order: accumulate the
      // transaction and externalize atomically at its final event.
      txn_buffer_.push_back(std::move(*event));
      if (txn_buffer_.back().txn_last) {
        target_->ApplyBatch(txn_buffer_);
        txn_buffer_.clear();
      }
      break;
    case PubsubReplicationMode::kConcurrentNaive:
    case PubsubReplicationMode::kPartitioned:
      target_->ApplyBlind(*event);
      break;
    case PubsubReplicationMode::kConcurrentVersioned:
      target_->ApplyVersioned(*event);
      break;
  }
  return true;
}

}  // namespace replication
