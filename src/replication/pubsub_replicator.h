// Pubsub-based replication (the baseline of Section 3.2.1). The CDC feed
// publishes change events to a topic; a consumer group of appliers writes
// them to the TargetStore. Four disciplines span the design space the paper
// walks through:
//
//   kSerial               "serialize all operations": one partition, one
//                         applier, transactions applied atomically in commit
//                         order. Point-in-time consistent — and a scale
//                         bottleneck.
//   kConcurrentNaive      keyless (round-robin) partitioning, many appliers,
//                         blind writes. Fast; violates even eventual
//                         consistency (stale overwrites, resurrected
//                         deletes).
//   kConcurrentVersioned  same, plus version checks and tombstones. Restores
//                         eventual consistency; still externalizes states
//                         that never existed in the source.
//   kPartitioned          key-hash partitioning, per-partition serial
//                         appliers, blind writes. Per-key order holds, so
//                         eventually consistent — but transactions spanning
//                         partitions are torn: snapshot anomalies remain.
#ifndef SRC_REPLICATION_PUBSUB_REPLICATOR_H_
#define SRC_REPLICATION_PUBSUB_REPLICATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pubsub/broker.h"
#include "pubsub/consumer.h"
#include "replication/target_store.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace replication {

enum class PubsubReplicationMode : std::uint8_t {
  kSerial,
  kConcurrentNaive,
  kConcurrentVersioned,
  kPartitioned,
};

struct PubsubReplicatorOptions {
  std::uint32_t appliers = 4;  // Forced to 1 for kSerial.
  std::string applier_prefix = "applier-";
  pubsub::ConsumerOptions consumer;
};

class PubsubReplicator {
 public:
  // `topic` must already exist with a partition layout matching the mode
  // (1 partition for kSerial; several otherwise).
  PubsubReplicator(sim::Simulator* sim, sim::Network* net, pubsub::Broker* broker,
                   std::string topic, pubsub::GroupId group, TargetStore* target,
                   PubsubReplicationMode mode, PubsubReplicatorOptions options = {});
  ~PubsubReplicator();

  PubsubReplicator(const PubsubReplicator&) = delete;
  PubsubReplicator& operator=(const PubsubReplicator&) = delete;

  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t decode_errors() const { return decode_errors_; }

 private:
  bool HandleMessage(const pubsub::StoredMessage& message);

  sim::Simulator* sim_;
  TargetStore* target_;
  PubsubReplicationMode mode_;
  std::vector<std::unique_ptr<pubsub::GroupConsumer>> appliers_;
  // kSerial only: buffer of the currently accumulating transaction.
  std::vector<common::ChangeEvent> txn_buffer_;
  std::uint64_t events_applied_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace replication

#endif  // SRC_REPLICATION_PUBSUB_REPLICATOR_H_
