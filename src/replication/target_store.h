// TargetStore: the destination of cross-store replication (Section 3.2.1) —
// a simple key-value store with three application disciplines:
//
//   * ApplyBlind      — last writer (by arrival order) wins;
//   * ApplyVersioned  — version checks + tombstones: a mutation applies only
//                       if its source version exceeds the version recorded
//                       for the key (the paper's mitigation that fixes
//                       eventual consistency but not snapshot consistency);
//   * ApplyBatch      — atomic application of a group of mutations with a
//                       single externally visible transition (what the
//                       watch replicator uses at progress frontiers).
//
// The store maintains an incremental, order-independent hash of its live
// contents so checkers can test point-in-time consistency: every externally
// visible target state should equal SOME state the source actually passed
// through.
#ifndef SRC_REPLICATION_TARGET_STORE_H_
#define SRC_REPLICATION_TARGET_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace replication {

// Order-independent state fingerprint: XOR of per-entry hashes. Two stores
// hold identical live contents iff (with overwhelming probability) their
// fingerprints match.
std::uint64_t EntryFingerprint(const common::Key& key, const common::Value& value);

class TargetStore {
 public:
  // Invoked after every externally visible state transition.
  using ExternalizeHook = std::function<void(const TargetStore&)>;

  TargetStore() = default;

  TargetStore(const TargetStore&) = delete;
  TargetStore& operator=(const TargetStore&) = delete;

  void ApplyBlind(const common::ChangeEvent& event) {
    MutateBlind(event);
    Externalize();
  }

  void ApplyVersioned(const common::ChangeEvent& event) {
    auto it = rows_.find(event.key);
    if (it != rows_.end() && it->second.version >= event.version) {
      ++version_rejects_;
      return;  // Stale mutation: version check wins.
    }
    Mutate(event.key, event.mutation, event.version, /*keep_tombstone=*/true);
    Externalize();
  }

  // Applies all events atomically: one externalized transition.
  void ApplyBatch(std::span<const common::ChangeEvent> events) {
    for (const common::ChangeEvent& event : events) {
      MutateBlind(event);
    }
    Externalize();
  }

  common::Result<common::Value> Get(const common::Key& key) const {
    auto it = rows_.find(key);
    if (it == rows_.end() || !it->second.value.has_value()) {
      return common::Status::NotFound(key);
    }
    return *it->second.value;
  }

  std::vector<std::pair<common::Key, common::Value>> ScanAll() const {
    std::vector<std::pair<common::Key, common::Value>> out;
    for (const auto& [key, row] : rows_) {
      if (row.value.has_value()) {
        out.emplace_back(key, *row.value);
      }
    }
    return out;
  }

  std::uint64_t state_hash() const { return hash_; }
  std::uint64_t applied() const { return applied_; }
  std::uint64_t version_rejects() const { return version_rejects_; }
  std::uint64_t externalizations() const { return externalizations_; }

  void AddExternalizeHook(ExternalizeHook hook) { hooks_.push_back(std::move(hook)); }

 private:
  struct Row {
    std::optional<common::Value> value;  // nullopt: tombstone.
    common::Version version = common::kNoVersion;
  };

  void MutateBlind(const common::ChangeEvent& event) {
    Mutate(event.key, event.mutation, event.version, /*keep_tombstone=*/false);
  }

  void Mutate(const common::Key& key, const common::Mutation& mutation,
              common::Version version, bool keep_tombstone) {
    Row& row = rows_[key];
    if (row.value.has_value()) {
      hash_ ^= EntryFingerprint(key, *row.value);
    }
    if (mutation.kind == common::MutationKind::kPut) {
      row.value = mutation.value;
      row.version = version;
      hash_ ^= EntryFingerprint(key, mutation.value);
    } else if (keep_tombstone) {
      row.value = std::nullopt;
      row.version = version;
    } else {
      // Blind mode drops the row record entirely (no tombstone memory).
      rows_.erase(key);
    }
    ++applied_;
  }

  void Externalize() {
    ++externalizations_;
    for (const ExternalizeHook& hook : hooks_) {
      hook(*this);
    }
  }

  std::map<common::Key, Row> rows_;
  std::uint64_t hash_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t version_rejects_ = 0;
  std::uint64_t externalizations_ = 0;
  std::vector<ExternalizeHook> hooks_;
};

}  // namespace replication

#endif  // SRC_REPLICATION_TARGET_STORE_H_
