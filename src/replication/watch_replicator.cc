#include "replication/watch_replicator.h"

#include <algorithm>

namespace replication {

// One watched shard: forwards events/progress/resync to the replicator.
class WatchReplicator::ShardWatcher : public watch::WatchCallback {
 public:
  ShardWatcher(WatchReplicator* owner, std::size_t index, common::KeyRange range)
      : owner_(owner), index_(index), range_(std::move(range)) {}

  void WatchFromVersion(common::Version version) {
    handle_ = owner_->watchable_->WatchFrom(range_.low, range_.high, version, this, "");
    ready_ = true;
  }

  void OnEvent(const watch::ChangeEvent& event) override { owner_->OnShardEvent(event); }
  void OnProgress(const watch::ProgressEvent& event) override {
    owner_->OnShardProgress(index_, event.version);
  }
  void OnResync() override { owner_->OnShardResync(index_); }

  const common::KeyRange& range() const { return range_; }
  bool ready() const { return ready_; }
  common::Version progress = common::kNoVersion;

 private:
  WatchReplicator* owner_;
  std::size_t index_;
  common::KeyRange range_;
  std::unique_ptr<watch::WatchHandle> handle_;
  bool ready_ = false;
};

WatchReplicator::WatchReplicator(sim::Simulator* sim, watch::NodeAwareWatchable* watchable,
                                 const watch::SnapshotSource* source, TargetStore* target,
                                 std::vector<common::KeyRange> shards,
                                 WatchReplicatorOptions options)
    : sim_(sim), watchable_(watchable), source_(source), target_(target), options_(options) {
  for (std::size_t i = 0; i < shards.size(); ++i) {
    shards_.push_back(std::make_unique<ShardWatcher>(this, i, shards[i]));
  }
}

WatchReplicator::~WatchReplicator() = default;

void WatchReplicator::Start() {
  // Bootstrap with ONE snapshot spanning every shard, so the target's very
  // first externalized state is a source state, then watch each shard from
  // that common version.
  sim_->After(options_.resync_delay, [this] {
    auto snap = source_->ReadSnapshot(common::KeyRange::All());
    if (!snap.ok()) {
      sim_->After(options_.resync_delay, [this] { Start(); });
      return;
    }
    std::vector<common::ChangeEvent> bootstrap;
    bootstrap.reserve(snap->entries.size());
    for (storage::Entry& e : snap->entries) {
      bootstrap.push_back(common::ChangeEvent{std::move(e.key),
                                              common::Mutation::Put(std::move(e.value)),
                                              snap->version, true});
    }
    target_->ApplyBatch(bootstrap);
    events_applied_ += bootstrap.size();
    applied_version_ = snap->version;
    for (auto& shard : shards_) {
      shard->progress = snap->version;
      shard->WatchFromVersion(snap->version);
    }
    apply_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.apply_period,
                                                      [this] { AdvanceFrontier(); });
  });
}

void WatchReplicator::OnShardEvent(const common::ChangeEvent& event) {
  if (event.version <= applied_version_) {
    return;  // Duplicate from a session overlap: already applied.
  }
  pending_[event.version].push_back(event);
}

void WatchReplicator::OnShardProgress(std::size_t shard_index, common::Version version) {
  shards_[shard_index]->progress = std::max(shards_[shard_index]->progress, version);
}

void WatchReplicator::OnShardResync(std::size_t shard_index) {
  // The shard fell behind the watch system's retained window. Re-snapshot
  // just that range and resume. The cross-range apply frontier stalls while
  // this happens, so the target never externalizes a torn state.
  ++resyncs_;
  ShardWatcher* shard = shards_[shard_index].get();
  sim_->After(options_.resync_delay, [this, shard] {
    auto snap = source_->ReadSnapshot(shard->range());
    if (!snap.ok()) {
      return;
    }
    // Stage the snapshot contents as pending events at the snapshot version;
    // they apply when the global frontier reaches them.
    for (storage::Entry& e : snap->entries) {
      pending_[snap->version].push_back(common::ChangeEvent{
          std::move(e.key), common::Mutation::Put(std::move(e.value)), snap->version, true});
    }
    shard->progress = std::max(shard->progress, snap->version);
    shard->WatchFromVersion(snap->version);
  });
}

void WatchReplicator::AdvanceFrontier() {
  common::Version frontier = common::kMaxVersion;
  for (const auto& shard : shards_) {
    if (!shard->ready()) {
      return;  // A shard is resyncing: hold the frontier.
    }
    frontier = std::min(frontier, shard->progress);
  }
  if (frontier == common::kMaxVersion || frontier <= applied_version_) {
    return;
  }
  // Apply every buffered version at or below the frontier, one atomic batch
  // per source commit, in version order.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first <= frontier) {
    target_->ApplyBatch(it->second);
    events_applied_ += it->second.size();
    it = pending_.erase(it);
  }
  applied_version_ = frontier;
}

}  // namespace replication
