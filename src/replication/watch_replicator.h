// WatchReplicator: replication the paper's way (Sections 4.3–4.4). K range
// shards are watched concurrently (scalable ingest); change events buffer per
// version; whenever the progress frontier across ALL shards advances, every
// buffered source version at or below the frontier is applied to the target
// atomically, in version order.
//
// Result: the target externalizes exactly the source's commit states — point-
// in-time consistency — while events flow concurrently over independently
// partitioned pipelines. This is what key-range progress buys that pubsub
// partition ordering cannot (partition boundaries would have to match
// transaction boundaries, which is impossible in general).
#ifndef SRC_REPLICATION_WATCH_REPLICATOR_H_
#define SRC_REPLICATION_WATCH_REPLICATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "replication/target_store.h"
#include "sim/simulator.h"
#include "watch/api.h"
#include "watch/snapshot_source.h"

namespace replication {

struct WatchReplicatorOptions {
  // How often to advance the apply frontier.
  common::TimeMicros apply_period = 10 * common::kMicrosPerMilli;
  // Simulated snapshot read cost when bootstrapping / resyncing a shard.
  common::TimeMicros resync_delay = 5 * common::kMicrosPerMilli;
};

class WatchReplicator {
 public:
  // Watches each range in `shards` (they should tile the replicated key
  // space). `source` is used for bootstrap and resync snapshots.
  WatchReplicator(sim::Simulator* sim, watch::NodeAwareWatchable* watchable,
                  const watch::SnapshotSource* source, TargetStore* target,
                  std::vector<common::KeyRange> shards, WatchReplicatorOptions options = {});
  ~WatchReplicator();

  WatchReplicator(const WatchReplicator&) = delete;
  WatchReplicator& operator=(const WatchReplicator&) = delete;

  void Start();

  // Highest source version fully applied to the target.
  common::Version applied_version() const { return applied_version_; }
  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t resyncs() const { return resyncs_; }

 private:
  class ShardWatcher;

  void OnShardEvent(const common::ChangeEvent& event);
  void OnShardProgress(std::size_t shard_index, common::Version version);
  void OnShardResync(std::size_t shard_index);
  void AdvanceFrontier();

  sim::Simulator* sim_;
  watch::NodeAwareWatchable* watchable_;
  const watch::SnapshotSource* source_;
  TargetStore* target_;
  WatchReplicatorOptions options_;
  std::vector<std::unique_ptr<ShardWatcher>> shards_;
  // Buffered change events by source version (one commit = one version).
  std::map<common::Version, std::vector<common::ChangeEvent>> pending_;
  common::Version applied_version_ = common::kNoVersion;
  std::uint64_t events_applied_ = 0;
  std::uint64_t resyncs_ = 0;
  std::unique_ptr<sim::PeriodicTask> apply_task_;
};

}  // namespace replication

#endif  // SRC_REPLICATION_WATCH_REPLICATOR_H_
