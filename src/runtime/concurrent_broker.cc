#include "runtime/concurrent_broker.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace runtime {

ConcurrentBroker::ConcurrentBroker(ShardPool* pool) : pool_(pool) {
  common::MetricsRegistry& metrics = pool_->metrics();
  publish_accepted_ = &metrics.counter("runtime.publish_accepted");
  publish_rejected_ = &metrics.counter("runtime.publish_rejected");
  heartbeat_dropped_ = &metrics.counter("runtime.heartbeat_dropped");

  // Durable mode: a recovered pool may already hold topics (replayed from the
  // shard journals). Seed the facade's routing map from shard 0 — every shard
  // recovers the identical topic set.
  if (pool_->options().durable_vfs != nullptr) {
    pool_->RunOn(0, [this](ShardCore& core) {
      std::lock_guard<std::mutex> lock(topics_mu_);
      for (const std::string& name : core.broker->TopicNames()) {
        const pubsub::TopicConfig* config = core.broker->TopicConfigFor(name);
        auto state = std::make_unique<TopicState>();
        state->config = *config;
        topics_.emplace(name, std::move(state));
      }
    });
  }
}

ConcurrentBroker::TopicState* ConcurrentBroker::FindTopic(const std::string& topic) {
  std::lock_guard<std::mutex> lock(topics_mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : it->second.get();
}

const ConcurrentBroker::TopicState* ConcurrentBroker::FindTopic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(topics_mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : it->second.get();
}

common::Status ConcurrentBroker::CreateTopic(const std::string& topic,
                                             pubsub::TopicConfig config) {
  {
    std::lock_guard<std::mutex> lock(topics_mu_);
    if (topics_.count(topic) > 0) {
      return common::Status::AlreadyExists(topic);
    }
  }
  common::Status status = common::Status::Ok();
  pool_->RunFenced([&] {
    for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
      ShardCore& core = pool_->core(s);
      // Durable mode routes through the journal so the topic record is on
      // disk before the topic accepts publishes.
      common::Status st = core.journal != nullptr ? core.journal->CreateTopic(topic, config)
                                                  : core.broker->CreateTopic(topic, config);
      if (!st.ok()) {
        status = st;  // All shards see identical state, so any failure repeats.
      }
    }
  });
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(topics_mu_);
    auto state = std::make_unique<TopicState>();
    state->config = config;
    topics_.emplace(topic, std::move(state));
  }
  return status;
}

bool ConcurrentBroker::HasTopic(const std::string& topic) const {
  return FindTopic(topic) != nullptr;
}

pubsub::PartitionId ConcurrentBroker::PartitionCount(const std::string& topic) const {
  const TopicState* state = FindTopic(topic);
  return state == nullptr ? 0 : state->config.partitions;
}

common::Result<pubsub::PartitionId> ConcurrentBroker::RoutePartition(
    TopicState* state, const pubsub::Message& msg,
    const std::optional<pubsub::PartitionId>& partition) {
  if (partition.has_value()) {
    if (*partition >= state->config.partitions) {
      return common::Status::InvalidArgument("partition out of range");
    }
    return *partition;
  }
  if (!msg.key.empty()) {
    return static_cast<pubsub::PartitionId>(pubsub::Broker::HashKey(msg.key) %
                                            state->config.partitions);
  }
  return static_cast<pubsub::PartitionId>(state->round_robin.fetch_add(
                                              1, std::memory_order_relaxed) %
                                          state->config.partitions);
}

common::Status ConcurrentBroker::TryPublish(const std::string& topic, pubsub::Message msg,
                                            std::optional<pubsub::PartitionId> partition,
                                            common::TimeMicros* retry_after) {
  TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  auto routed = RoutePartition(state, msg, partition);
  if (!routed.ok()) {
    return routed.status();
  }
  const pubsub::PartitionId p = *routed;
  const std::size_t shard = OwnerShard(p);
  // Every kUnavailable exit populates retry_after with a nonzero, bounded,
  // depth-scaled backoff — a zero (or untouched) hint makes callers
  // retry-spin, an unbounded one strands them.
  const common::TimeMicros backoff = pool_->RetryAfterHint(shard);
  if (pool_->ShardFailingOver(shard)) {
    publish_rejected_->Increment();
    if (retry_after != nullptr) {
      *retry_after = backoff;
    }
    return common::Status::Unavailable("shard " + std::to_string(shard) +
                                       " failing over; retry after " + std::to_string(backoff) +
                                       "us");
  }
  if (obs::TracingEnabled() && !msg.trace.considered()) {
    // Origin here (not on the shard) so origin→append covers the queue wait.
    msg.trace = obs::TraceContext::Start();
  }
  // Resolve the shard broker inside the task: a failover between enqueue and
  // execution replaces core(shard).broker, and a pointer captured here would
  // dangle.
  const bool posted =
      pool_->TryPost(shard, [pool = pool_, shard, topic, msg = std::move(msg), p]() mutable {
        // Cannot fail: the topic exists on every shard and p is range-checked.
        (void)pool->core(shard).broker->Publish(topic, std::move(msg), p);
      });
  if (!posted) {
    publish_rejected_->Increment();
    if (retry_after != nullptr) {
      *retry_after = backoff;
    }
    return common::Status::Unavailable("shard " + std::to_string(shard) +
                                       " saturated; retry after " + std::to_string(backoff) +
                                       "us");
  }
  publish_accepted_->Increment();
  return common::Status::Ok();
}

common::Status ConcurrentBroker::TryPublishBatch(const std::string& topic,
                                                 std::shared_ptr<PublishBatch> batch,
                                                 common::TimeMicros* retry_after,
                                                 std::size_t* accepted) {
  if (accepted != nullptr) {
    *accepted = 0;
  }
  if (batch == nullptr || batch->empty()) {
    return common::Status::Ok();
  }
  TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  // Route every staged record, grouping (partition, staged-index) per owner
  // shard. Staging order is kept within each group, which is what preserves
  // per-producer FIFO per partition.
  struct Routed {
    pubsub::PartitionId partition;
    std::size_t index;
  };
  std::map<std::size_t, std::vector<Routed>> groups;
  const std::vector<PublishBatch::Staged>& staged = batch->staged();
  for (std::size_t i = 0; i < staged.size(); ++i) {
    pubsub::PartitionId p;
    if (!staged[i].key.empty()) {
      p = static_cast<pubsub::PartitionId>(pubsub::Broker::HashKey(staged[i].key) %
                                           state->config.partitions);
    } else {
      p = static_cast<pubsub::PartitionId>(
          state->round_robin.fetch_add(1, std::memory_order_relaxed) %
          state->config.partitions);
    }
    groups[OwnerShard(p)].push_back(Routed{p, i});
  }
  for (auto& [shard, group] : groups) {
    // Taken before the lambda steals `group`: the rejected branch still needs
    // the count after a failed TryPost has consumed the moved-from vector.
    const std::size_t group_size = group.size();
    const bool rejected =
        pool_->ShardFailingOver(shard) ||
        !pool_->TryPost(shard, [pool = pool_, shard, topic, batch,
                                group = std::move(group)] {
          // One task appends the whole group; the owned Message is built
          // once per record, here at append, from the batch's arena views.
          pubsub::Broker* broker = pool->core(shard).broker.get();
          const std::vector<PublishBatch::Staged>& records = batch->staged();
          for (const Routed& r : group) {
            const PublishBatch::Staged& s = records[r.index];
            (void)broker->PublishSpan(topic, s.key, s.value, s.headers, r.partition);
          }
        });
    if (rejected) {
      const common::TimeMicros backoff = pool_->RetryAfterHint(shard);
      publish_rejected_->Increment(static_cast<std::int64_t>(group_size));
      if (retry_after != nullptr) {
        *retry_after = backoff;
      }
      return common::Status::Unavailable("shard " + std::to_string(shard) +
                                         " saturated; retry after " + std::to_string(backoff) +
                                         "us");
    }
    publish_accepted_->Increment(static_cast<std::int64_t>(group_size));
    if (accepted != nullptr) {
      *accepted += group_size;
    }
  }
  return common::Status::Ok();
}

common::Result<pubsub::PublishResult> ConcurrentBroker::PublishSync(
    const std::string& topic, pubsub::Message msg, std::optional<pubsub::PartitionId> partition) {
  TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  auto routed = RoutePartition(state, msg, partition);
  if (!routed.ok()) {
    return routed.status();
  }
  const pubsub::PartitionId p = *routed;
  if (obs::TracingEnabled() && !msg.trace.considered()) {
    msg.trace = obs::TraceContext::Start();
  }
  auto result = pool_->RunOn(OwnerShard(p), [&](ShardCore& core) {
    return core.broker->Publish(topic, std::move(msg), p);
  });
  if (result.ok()) {
    publish_accepted_->Increment();
  }
  return result;
}

common::Status ConcurrentBroker::TryPublishAsync(
    const std::string& topic, pubsub::Message msg, std::optional<pubsub::PartitionId> partition,
    common::TimeMicros* retry_after,
    std::function<void(common::Result<pubsub::PublishResult>)> done) {
  TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  auto routed = RoutePartition(state, msg, partition);
  if (!routed.ok()) {
    return routed.status();
  }
  const pubsub::PartitionId p = *routed;
  const std::size_t shard = OwnerShard(p);
  const common::TimeMicros backoff = pool_->RetryAfterHint(shard);
  if (pool_->ShardFailingOver(shard)) {
    publish_rejected_->Increment();
    if (retry_after != nullptr) {
      *retry_after = backoff;
    }
    return common::Status::Unavailable("shard " + std::to_string(shard) +
                                       " failing over; retry after " + std::to_string(backoff) +
                                       "us");
  }
  if (obs::TracingEnabled() && !msg.trace.considered()) {
    msg.trace = obs::TraceContext::Start();
  }
  // Broker resolved inside the task (failover may swap it); the append and
  // the completion both run on the owner shard's thread.
  const bool posted = pool_->TryPost(
      shard, [pool = pool_, shard, topic, msg = std::move(msg), p,
              done = std::move(done)]() mutable {
        done(pool->core(shard).broker->Publish(topic, std::move(msg), p));
      });
  if (!posted) {
    publish_rejected_->Increment();
    if (retry_after != nullptr) {
      *retry_after = backoff;
    }
    return common::Status::Unavailable("shard " + std::to_string(shard) +
                                       " saturated; retry after " + std::to_string(backoff) +
                                       "us");
  }
  publish_accepted_->Increment();
  return common::Status::Ok();
}

common::Result<std::vector<pubsub::StoredMessage>> ConcurrentBroker::Fetch(
    const std::string& topic, pubsub::PartitionId partition, pubsub::Offset offset,
    std::size_t max) {
  const TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  if (partition >= state->config.partitions) {
    return common::Status::InvalidArgument("partition out of range");
  }
  return pool_->RunOn(OwnerShard(partition), [&](ShardCore& core) {
    return core.broker->Fetch(topic, partition, offset, max);
  });
}

common::Status ConcurrentBroker::TryFetchAsync(
    const std::string& topic, pubsub::PartitionId partition, pubsub::Offset offset,
    std::size_t max, common::TimeMicros* retry_after,
    std::function<void(common::Result<std::vector<pubsub::StoredMessage>>)> done) {
  const TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  if (partition >= state->config.partitions) {
    return common::Status::InvalidArgument("partition out of range");
  }
  const std::size_t shard = OwnerShard(partition);
  const bool posted = pool_->TryPost(
      shard, [pool = pool_, shard, topic, partition, offset, max, done = std::move(done)] {
        done(pool->core(shard).broker->Fetch(topic, partition, offset, max));
      });
  if (!posted) {
    const common::TimeMicros backoff = pool_->RetryAfterHint(shard);
    if (retry_after != nullptr) {
      *retry_after = backoff;
    }
    return common::Status::Unavailable("shard " + std::to_string(shard) +
                                       " saturated; retry after " + std::to_string(backoff) +
                                       "us");
  }
  return common::Status::Ok();
}

common::Result<std::size_t> ConcurrentBroker::FetchSpans(
    const std::string& topic, pubsub::PartitionId partition, pubsub::Offset offset,
    std::size_t max,
    const std::function<void(const std::vector<pubsub::MessageSpan>&)>& consume) {
  const TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return common::Status::NotFound("no such topic: " + topic);
  }
  if (partition >= state->config.partitions) {
    return common::Status::InvalidArgument("partition out of range");
  }
  return pool_->RunOn(OwnerShard(partition), [&](ShardCore& core) -> common::Result<std::size_t> {
    // Pin + read + consume all happen on the owner shard's thread, so the
    // spans never cross a thread boundary and the pin's lifetime brackets
    // every touch of the borrowed bytes.
    std::vector<pubsub::MessageSpan> spans;
    pubsub::ReadPin pin;
    auto read = core.broker->FetchSpans(topic, partition, offset, max, &spans, &pin);
    if (!read.ok()) {
      return read.status();
    }
    consume(spans);
    return *read;
  });
}

pubsub::Offset ConcurrentBroker::EndOffset(const std::string& topic,
                                           pubsub::PartitionId partition) {
  return pool_->RunOn(OwnerShard(partition), [&](ShardCore& core) {
    return core.broker->EndOffset(topic, partition);
  });
}

pubsub::Offset ConcurrentBroker::FirstOffset(const std::string& topic,
                                             pubsub::PartitionId partition) {
  return pool_->RunOn(OwnerShard(partition), [&](ShardCore& core) {
    return core.broker->FirstOffset(topic, partition);
  });
}

std::unique_ptr<Subscription> ConcurrentBroker::Subscribe(const std::string& topic,
                                                          pubsub::PartitionId partition,
                                                          pubsub::Offset start,
                                                          SubscriptionOptions options) {
  const TopicState* state = FindTopic(topic);
  if (state == nullptr || partition >= state->config.partitions) {
    return nullptr;
  }
  const std::size_t shard = OwnerShard(partition);
  auto shared = std::make_shared<Subscription::Shared>();
  shared->pool = pool_;
  shared->shard = shard;
  shared->topic = topic;
  shared->partition = partition;
  shared->cursor = start;
  shared->handoff_capacity = options.handoff_capacity == 0 ? 1 : options.handoff_capacity;
  shared->shard_batch = options.shard_batch == 0 ? 1 : options.shard_batch;
  shared->wake_coalesce_us = options.wake_coalesce_us;
  shared->filter = std::move(options.filter);
  shared->policy = options.slow_consumer;
  shared->poll_period = pool_->options().subscription_poll_period;
  shared->event_driven = pool_->options().event_driven;
  shared->wakeup_latency = &pool_->metrics().histogram("runtime.wakeup_latency_us");
  shared->rings = &pool_->metrics().counter("runtime.doorbell_rings");
  shared->stall_count = &pool_->metrics().counter("runtime.slow_consumer.stalls");
  shared->drop_count = &pool_->metrics().counter("runtime.slow_consumer.drops");
  shared->disconnect_count = &pool_->metrics().counter("runtime.slow_consumer.disconnects");
  shared->obs = pool_->options().obs;
  auto sub = std::unique_ptr<Subscription>(new Subscription(pool_, shard, shared));
  if (shared->event_driven) {
    // First pump adopts the backlog (if any) and parks the shard-side waiter.
    pool_->Post(shard, [shared] { Subscription::PumpShard(shared); });
  }
  return sub;
}

common::Result<std::uint64_t> ConcurrentBroker::JoinGroup(const pubsub::GroupId& group,
                                                          const std::string& topic,
                                                          const pubsub::MemberId& member) {
  // Membership is replicated: every shard's coordinator applies the same join
  // and derives the same deterministic rebalance, so any shard can answer
  // assignment queries and per-partition commit checks stay local.
  std::optional<common::Result<std::uint64_t>> result;
  pool_->RunFenced([&] {
    for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
      auto r = pool_->core(s).broker->JoinGroup(group, topic, member);
      if (s == 0 || !r.ok()) {
        result = r;
      }
    }
  });
  return *result;
}

void ConcurrentBroker::LeaveGroup(const pubsub::GroupId& group, const pubsub::MemberId& member) {
  pool_->RunFenced([&] {
    for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
      pool_->core(s).broker->LeaveGroup(group, member);
    }
  });
}

void ConcurrentBroker::Heartbeat(const pubsub::GroupId& group, const pubsub::MemberId& member) {
  for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
    if (!pool_->TryPost(s, [pool = pool_, s, group, member] {
          pool->core(s).broker->Heartbeat(group, member);
        })) {
      heartbeat_dropped_->Increment();
    }
  }
}

std::vector<pubsub::PartitionId> ConcurrentBroker::AssignedPartitions(
    const pubsub::GroupId& group, const pubsub::MemberId& member, std::uint64_t generation) {
  return pool_->RunOn(0, [&](ShardCore& core) {
    return core.broker->AssignedPartitions(group, member, generation);
  });
}

std::uint64_t ConcurrentBroker::GroupGeneration(const pubsub::GroupId& group) {
  return pool_->RunOn(0,
                      [&](ShardCore& core) { return core.broker->GroupGeneration(group); });
}

void ConcurrentBroker::CommitOffset(const pubsub::GroupId& group, pubsub::PartitionId partition,
                                    pubsub::Offset offset) {
  pool_->RunOn(OwnerShard(partition), [&](ShardCore& core) {
    core.broker->CommitOffset(group, partition, offset);
  });
}

void ConcurrentBroker::CommitOffsetAsync(const pubsub::GroupId& group,
                                         pubsub::PartitionId partition, pubsub::Offset offset) {
  const std::size_t shard = OwnerShard(partition);
  pool_->Post(shard, [pool = pool_, shard, group, partition, offset] {
    pool->core(shard).broker->CommitOffset(group, partition, offset);
  });
}

pubsub::Offset ConcurrentBroker::CommittedOffset(const pubsub::GroupId& group,
                                                 pubsub::PartitionId partition) {
  return pool_->RunOn(OwnerShard(partition), [&](ShardCore& core) {
    return core.broker->CommittedOffset(group, partition);
  });
}

common::Status ConcurrentBroker::TryCommitAsync(const pubsub::GroupId& group,
                                                pubsub::PartitionId partition,
                                                std::optional<pubsub::Offset> commit_offset,
                                                common::TimeMicros* retry_after,
                                                std::function<void(pubsub::Offset)> done) {
  const std::size_t shard = OwnerShard(partition);
  const bool posted = pool_->TryPost(
      shard, [pool = pool_, shard, group, partition, commit_offset, done = std::move(done)] {
        pubsub::Broker* broker = pool->core(shard).broker.get();
        if (commit_offset.has_value()) {
          broker->CommitOffset(group, partition, *commit_offset);
        }
        if (done) {
          done(broker->CommittedOffset(group, partition));
        }
      });
  if (!posted) {
    const common::TimeMicros backoff = pool_->RetryAfterHint(shard);
    if (retry_after != nullptr) {
      *retry_after = backoff;
    }
    return common::Status::Unavailable("shard " + std::to_string(shard) +
                                       " saturated; retry after " + std::to_string(backoff) +
                                       "us");
  }
  return common::Status::Ok();
}

std::uint64_t ConcurrentBroker::TotalBacklog(const pubsub::GroupId& group,
                                             const std::string& topic) {
  std::uint64_t total = 0;
  pool_->RunFenced([&] {
    for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
      // Each shard contributes only its owned partitions (the others are
      // empty locally), so the fenced sum is exact.
      total += pool_->core(s).broker->GroupBacklog(group, topic);
    }
  });
  return total;
}

void ConcurrentBroker::SeekGroupToTime(const pubsub::GroupId& group, const std::string& topic,
                                       common::TimeMicros timestamp) {
  const TopicState* state = FindTopic(topic);
  if (state == nullptr) {
    return;
  }
  const pubsub::PartitionId partitions = state->config.partitions;
  pool_->RunFenced([&] {
    for (pubsub::PartitionId p = 0; p < partitions; ++p) {
      // Read the seek target from the partition's owning shard, then write
      // the committed offset on the same shard (commits are owner-local).
      pubsub::Broker* owner = pool_->core(OwnerShard(p)).broker.get();
      const pubsub::PartitionLog* log = owner->Log(topic, p);
      if (log == nullptr) {
        continue;
      }
      owner->SeekGroup(group, p, log->OffsetAtOrAfter(timestamp));
    }
  });
}

}  // namespace runtime
