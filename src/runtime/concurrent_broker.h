// ConcurrentBroker: thread-safe facade over the per-shard Brokers of a
// ShardPool. Routing discipline:
//
//   * partition p of every topic is owned by shard p % shards — publishes,
//     fetches, and offset reads for p run only on that shard's core;
//   * group *membership* (join / leave / heartbeat) is replicated to every
//     shard as a fenced multi-shard task, so each shard's coordinator derives
//     the identical deterministic assignment and generation;
//   * group *commits* are per-partition state and live with the partition's
//     owning shard, keeping the committed-offset-vs-log invariants local.
//
// Backpressure: TryPublish is the fire-and-forget hot path — when the owning
// shard's queue is full it returns kUnavailable with a retry-after hint and
// the rejection is counted (runtime.publish_rejected). Accepted publishes are
// never dropped: every accepted message is appended by the owning shard.
// Synchronous calls (fetch, commit, joins) block instead, which is their form
// of backpressure.
#ifndef SRC_RUNTIME_CONCURRENT_BROKER_H_
#define SRC_RUNTIME_CONCURRENT_BROKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "pubsub/broker.h"
#include "pubsub/span.h"
#include "pubsub/types.h"
#include "runtime/publish_batch.h"
#include "runtime/shard_pool.h"
#include "runtime/subscription.h"

namespace runtime {

class ConcurrentBroker {
 public:
  explicit ConcurrentBroker(ShardPool* pool);

  ConcurrentBroker(const ConcurrentBroker&) = delete;
  ConcurrentBroker& operator=(const ConcurrentBroker&) = delete;

  std::size_t OwnerShard(pubsub::PartitionId partition) const {
    return partition % pool_->shard_count();
  }

  // The underlying pool (hint computation, shard-count queries by embedders
  // like pubsubd that must not reach into facade internals).
  ShardPool* pool() const { return pool_; }

  // -- Topics (fenced: created on every shard) ---------------------------------

  common::Status CreateTopic(const std::string& topic, pubsub::TopicConfig config);
  bool HasTopic(const std::string& topic) const;
  pubsub::PartitionId PartitionCount(const std::string& topic) const;

  // -- Publishing ---------------------------------------------------------------

  // Fire-and-forget publish with explicit backpressure. Routing mirrors
  // Broker::Publish: explicit partition, else key hash, else round robin (the
  // facade keeps the round-robin cursor since the shard brokers each see only
  // their own partitions). On EVERY kUnavailable return — shard saturated or
  // failing over — `retry_after` (if non-null) receives a nonzero suggested
  // backoff in MICROSECONDS; callers may sleep it verbatim without a
  // zero-spin guard.
  common::Status TryPublish(const std::string& topic, pubsub::Message msg,
                            std::optional<pubsub::PartitionId> partition = std::nullopt,
                            common::TimeMicros* retry_after = nullptr);

  // Batched fire-and-forget publish — the arena-backed hot path. Routes each
  // staged record (key hash, else the facade's round-robin cursor), groups
  // records by owner shard, and posts ONE ring task per involved shard; the
  // task appends its whole group in staging order via Broker::PublishSpan,
  // so per-producer order per partition is preserved and the per-message
  // closure/queue cost is amortized over the group. Groups post in shard
  // order and independently: on the first saturated (or failing-over) shard
  // the remaining groups are NOT posted, kUnavailable is returned with
  // `retry_after` set, and `*accepted` (optional) reports how many staged
  // records earlier groups accepted. When one shard owns every record — the
  // single-partition / keyed hot path this exists for — that makes the batch
  // all-or-nothing. The batch is shared-owned by the posted tasks; do not
  // mutate (Clear/Add) a successfully posted batch until its tasks drained.
  common::Status TryPublishBatch(const std::string& topic, std::shared_ptr<PublishBatch> batch,
                                 common::TimeMicros* retry_after = nullptr,
                                 std::size_t* accepted = nullptr);

  // Synchronous publish: blocks through backpressure and returns the assigned
  // partition/offset. For tests and low-rate callers.
  common::Result<pubsub::PublishResult> PublishSync(
      const std::string& topic, pubsub::Message msg,
      std::optional<pubsub::PartitionId> partition = std::nullopt);

  // Non-blocking acked publish (the network front-end's offset-ack path):
  // routes like TryPublish, but once the append executes on the owner shard
  // `done` is invoked — on that shard's worker thread — with the assigned
  // partition/offset. Backpressure is synchronous and loud exactly like
  // TryPublish: on kUnavailable (queue full / failing over) `done` is never
  // called and `retry_after` receives a nonzero backoff. `done` must not
  // block (it runs inside the shard's task batch).
  common::Status TryPublishAsync(
      const std::string& topic, pubsub::Message msg,
      std::optional<pubsub::PartitionId> partition, common::TimeMicros* retry_after,
      std::function<void(common::Result<pubsub::PublishResult>)> done);

  // -- Fetching (synchronous, runs on the partition's owner shard) -------------

  common::Result<std::vector<pubsub::StoredMessage>> Fetch(const std::string& topic,
                                                           pubsub::PartitionId partition,
                                                           pubsub::Offset offset,
                                                           std::size_t max);

  // Non-blocking fetch for event-loop callers (pubsubd): the read runs on
  // the partition's owner shard and `done` is invoked there with the batch.
  // kUnavailable + retry_after when the shard queue is full (`done` never
  // called); kNotFound/kInvalidArgument for bad topic/partition. `done`
  // must not block.
  common::Status TryFetchAsync(
      const std::string& topic, pubsub::PartitionId partition, pubsub::Offset offset,
      std::size_t max, common::TimeMicros* retry_after,
      std::function<void(common::Result<std::vector<pubsub::StoredMessage>>)> done);
  // Zero-copy fetch, executed on the partition's owner shard: `consume` runs
  // on the shard's worker thread with borrowed MessageSpans viewing the
  // partition log directly — no StoredMessage copies are made. A ReadPin is
  // held for exactly the duration of the call (retention on that log is
  // deferred meanwhile), so the spans are valid only inside `consume`; copy
  // out (e.g. serialize onto a wire buffer) before returning. Returns the
  // span count. `consume` must not block or re-enter the pool.
  common::Result<std::size_t> FetchSpans(
      const std::string& topic, pubsub::PartitionId partition, pubsub::Offset offset,
      std::size_t max, const std::function<void(const std::vector<pubsub::MessageSpan>&)>& consume);

  pubsub::Offset EndOffset(const std::string& topic, pubsub::PartitionId partition);
  pubsub::Offset FirstOffset(const std::string& topic, pubsub::PartitionId partition);

  // -- Subscriptions (the event-driven consume path) ---------------------------

  // Opens a cursor on one partition starting at `start`. In event-driven
  // pools (RuntimeOptions::event_driven) the owner shard pushes appends into
  // the subscription's handoff buffer and rings its doorbell; otherwise the
  // subscription polls synchronously. Returns nullptr for an unknown topic
  // or out-of-range partition. The subscription must not outlive the pool.
  std::unique_ptr<Subscription> Subscribe(const std::string& topic,
                                          pubsub::PartitionId partition, pubsub::Offset start,
                                          SubscriptionOptions options = {});

  // -- Consumer groups ----------------------------------------------------------

  // Fenced: the join lands on every shard's coordinator; returns the (shared)
  // new generation.
  common::Result<std::uint64_t> JoinGroup(const pubsub::GroupId& group, const std::string& topic,
                                          const pubsub::MemberId& member);
  // Fenced, like JoinGroup.
  void LeaveGroup(const pubsub::GroupId& group, const pubsub::MemberId& member);

  // Best-effort: posted to every shard; a saturated shard's heartbeat is
  // dropped and counted (runtime.heartbeat_dropped) — liveness is naturally
  // re-established by the next beat.
  void Heartbeat(const pubsub::GroupId& group, const pubsub::MemberId& member);

  std::vector<pubsub::PartitionId> AssignedPartitions(const pubsub::GroupId& group,
                                                      const pubsub::MemberId& member,
                                                      std::uint64_t generation);
  std::uint64_t GroupGeneration(const pubsub::GroupId& group);

  // Commits run on the partition's owner shard (synchronous).
  void CommitOffset(const pubsub::GroupId& group, pubsub::PartitionId partition,
                    pubsub::Offset offset);
  // Fire-and-forget commit for batched event-driven consumers: rides the
  // owner shard's queue without a reply future. Uses the blocking push, so an
  // accepted commit is never dropped; saturation surfaces as caller wait.
  void CommitOffsetAsync(const pubsub::GroupId& group, pubsub::PartitionId partition,
                         pubsub::Offset offset);
  pubsub::Offset CommittedOffset(const pubsub::GroupId& group, pubsub::PartitionId partition);

  // Non-blocking commit / committed-offset read for event-loop callers
  // (pubsubd's COMMIT verb). One task on the partition's owner shard applies
  // the commit (when `commit_offset` is set) and then reads the committed
  // offset — so a read-back can never observe the pre-commit value — and
  // invokes `done` (may be null) with it on the shard's thread. kUnavailable
  // + retry_after when the shard queue is full; `done` is then never called
  // and nothing was committed.
  common::Status TryCommitAsync(const pubsub::GroupId& group, pubsub::PartitionId partition,
                                std::optional<pubsub::Offset> commit_offset,
                                common::TimeMicros* retry_after,
                                std::function<void(pubsub::Offset)> done);

  // -- Cross-shard reads / the §3.3 seek surface (fenced) -----------------------

  // Consumer lag summed across all owning shards.
  std::uint64_t TotalBacklog(const pubsub::GroupId& group, const std::string& topic);

  // Seek-to-time needs every partition's log (owner shards) and writes every
  // partition's committed offset — the canonical fenced multi-shard task.
  void SeekGroupToTime(const pubsub::GroupId& group, const std::string& topic,
                       common::TimeMicros timestamp);

 private:
  struct TopicState {
    pubsub::TopicConfig config;
    std::atomic<std::uint64_t> round_robin{0};
  };

  // nullptr when unknown. The returned pointer is stable (topics are never
  // removed).
  TopicState* FindTopic(const std::string& topic);
  const TopicState* FindTopic(const std::string& topic) const;

  // Shared routing discipline of every publish path: explicit partition
  // (range-checked), else key hash, else the facade's round-robin cursor.
  common::Result<pubsub::PartitionId> RoutePartition(
      TopicState* state, const pubsub::Message& msg,
      const std::optional<pubsub::PartitionId>& partition);

  ShardPool* pool_;
  common::Counter* publish_accepted_;
  common::Counter* publish_rejected_;
  common::Counter* heartbeat_dropped_;

  mutable std::mutex topics_mu_;
  std::map<std::string, std::unique_ptr<TopicState>> topics_;
};

}  // namespace runtime

#endif  // SRC_RUNTIME_CONCURRENT_BROKER_H_
