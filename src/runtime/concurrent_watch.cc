#include "runtime/concurrent_watch.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.h"
#include "watch/watch_system.h"

namespace runtime {

// Shared state of one logical (user-visible) session fanned out across
// shards. Sub-handles are owned here; their Cancel calls are posted to the
// owning shard because WatchSystem session state is shard-confined.
struct ConcurrentWatchService::LogicalSession {
  std::mutex mu;
  watch::WatchCallback* user = nullptr;  // Null after Cancel.
  bool resynced = false;
  // Parallel arrays: sub-session i lives on shards[i].
  std::vector<std::size_t> shards;
  std::vector<std::unique_ptr<watch::WatchHandle>> subs;
};

// Per-shard callback adapter: serializes into the user callback and enforces
// the "nothing after resync" half of the contract across shards.
class ConcurrentWatchService::FanCallback : public watch::WatchCallback {
 public:
  FanCallback(ConcurrentWatchService* service, std::shared_ptr<LogicalSession> session)
      : service_(service), session_(std::move(session)) {}

  void OnEvent(const common::ChangeEvent& event) override {
    std::lock_guard<std::mutex> lock(session_->mu);
    if (session_->user == nullptr || session_->resynced) {
      service_->post_resync_drops_->Increment();
      return;
    }
    session_->user->OnEvent(event);
  }

  void OnProgress(const common::ProgressEvent& event) override {
    std::lock_guard<std::mutex> lock(session_->mu);
    if (session_->user == nullptr || session_->resynced) {
      return;
    }
    session_->user->OnProgress(event);
  }

  void OnResync() override {
    watch::WatchCallback* user = nullptr;
    {
      std::lock_guard<std::mutex> lock(session_->mu);
      if (session_->resynced) {
        return;  // Another shard already resynced this logical session.
      }
      session_->resynced = true;
      user = session_->user;
    }
    service_->watch_resyncs_->Increment();
    // Cancel the sibling sub-sessions so their shards stop scheduling
    // deliveries. Best-effort TryPost from a worker thread (a blocking push
    // across shards could cycle); if a shard is saturated, its deliveries are
    // dropped facade-side above — loud either way.
    for (std::size_t i = 0; i < session_->shards.size(); ++i) {
      watch::WatchHandle* sub = session_->subs[i].get();
      auto session = session_;
      (void)service_->pool_->TryPost(session_->shards[i], [session, sub] { sub->Cancel(); });
    }
    if (user != nullptr) {
      user->OnResync();
    }
  }

 private:
  ConcurrentWatchService* service_;
  std::shared_ptr<LogicalSession> session_;
};

class ConcurrentWatchService::Handle : public watch::WatchHandle {
 public:
  Handle(ConcurrentWatchService* service, std::shared_ptr<LogicalSession> session,
         std::vector<std::shared_ptr<FanCallback>> fans)
      : service_(service), session_(std::move(session)), fans_(std::move(fans)) {}

  ~Handle() override { Cancel(); }

  void Cancel() override {
    {
      std::lock_guard<std::mutex> lock(session_->mu);
      if (session_->user == nullptr) {
        return;
      }
      session_->user = nullptr;
    }
    // Detach shard-side: posted to each owner (Post blocks rather than drops,
    // and runs inline once the pool is stopped). Closures keep the session —
    // and through it the sub-handles — alive until every shard detached, and
    // the fan callbacks outlive any in-flight delivery via fans_.
    for (std::size_t i = 0; i < session_->shards.size(); ++i) {
      watch::WatchHandle* sub = session_->subs[i].get();
      auto session = session_;
      auto fans = fans_;
      service_->pool_->Post(session_->shards[i], [session, fans, sub] { sub->Cancel(); });
    }
  }

  bool active() const override {
    std::lock_guard<std::mutex> lock(session_->mu);
    return session_->user != nullptr && !session_->resynced;
  }

 private:
  ConcurrentWatchService* service_;
  std::shared_ptr<LogicalSession> session_;
  std::vector<std::shared_ptr<FanCallback>> fans_;
};

ConcurrentWatchService::ConcurrentWatchService(ShardPool* pool) : pool_(pool) {
  splits_ = pool_->options().watch_splits;
  const std::size_t shards = pool_->shard_count();
  if (splits_.empty() && shards > 1) {
    // Even split of the single-byte prefix space; workloads with a known key
    // distribution should pass explicit splits.
    for (std::size_t s = 1; s < shards; ++s) {
      splits_.push_back(common::Key(1, static_cast<char>((256 * s) / shards)));
    }
  }
  assert(splits_.size() == shards - 1 && "watch_splits must have shards-1 ascending keys");
  common::MetricsRegistry& metrics = pool_->metrics();
  ingest_accepted_ = &metrics.counter("runtime.ingest_accepted");
  ingest_rejected_ = &metrics.counter("runtime.ingest_rejected");
  watch_resyncs_ = &metrics.counter("runtime.watch_resyncs");
  post_resync_drops_ = &metrics.counter("runtime.post_resync_drops");
}

ConcurrentWatchService::~ConcurrentWatchService() = default;

std::size_t ConcurrentWatchService::OwnerShard(const common::Key& key) const {
  // First split strictly greater than key gives the owning slot.
  const auto it = std::upper_bound(splits_.begin(), splits_.end(), key);
  return static_cast<std::size_t>(it - splits_.begin());
}

common::KeyRange ConcurrentWatchService::ShardRange(std::size_t shard) const {
  common::KeyRange range;
  range.low = shard == 0 ? common::Key() : splits_[shard - 1];
  range.high = shard == splits_.size() ? common::Key() : splits_[shard];
  return range;
}

common::Status ConcurrentWatchService::TryIngest(const common::ChangeEvent& event,
                                                 common::TimeMicros* retry_after) {
  const std::size_t shard = OwnerShard(event.key);
  watch::WatchSystem* system = pool_->core(shard).watch.get();
  common::ChangeEvent traced = event;
  if (obs::TracingEnabled() && !traced.trace.considered()) {
    // Origin here (not on the shard) so origin→append covers the queue wait.
    traced.trace = obs::TraceContext::Start();
  }
  if (!pool_->TryPost(shard, [system, traced = std::move(traced)] { system->Append(traced); })) {
    ingest_rejected_->Increment();
    // Depth-scaled and clamped like the broker paths: this used to echo the
    // raw configured retry_after, which is 0 when the option is 0 — a hint
    // that tells hint-obeying feeders "no guidance" while the ring is full.
    const common::TimeMicros backoff = pool_->RetryAfterHint(shard);
    if (retry_after != nullptr) {
      *retry_after = backoff;
    }
    return common::Status::Unavailable("watch shard " + std::to_string(shard) +
                                       " saturated; retry after " +
                                       std::to_string(backoff) + "us");
  }
  ingest_accepted_->Increment();
  return common::Status::Ok();
}

void ConcurrentWatchService::Append(const common::ChangeEvent& event) {
  const std::size_t shard = OwnerShard(event.key);
  watch::WatchSystem* system = pool_->core(shard).watch.get();
  common::ChangeEvent traced = event;
  if (obs::TracingEnabled() && !traced.trace.considered()) {
    traced.trace = obs::TraceContext::Start();
  }
  pool_->Post(shard, [system, traced = std::move(traced)] { system->Append(traced); });
  ingest_accepted_->Increment();
}

void ConcurrentWatchService::Progress(const common::ProgressEvent& event) {
  for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
    const common::KeyRange slice = ShardRange(s).Intersect(event.range);
    if (slice.Empty()) {
      continue;
    }
    watch::WatchSystem* system = pool_->core(s).watch.get();
    const common::ProgressEvent scoped{slice, event.version};
    pool_->Post(s, [system, scoped] { system->Progress(scoped); });
  }
}

std::unique_ptr<watch::WatchHandle> ConcurrentWatchService::Watch(
    common::Key low, common::Key high, common::Version version,
    watch::WatchCallback* callback) {
  watch::Filter filter;
  filter.range = common::KeyRange{std::move(low), std::move(high)};
  return WatchFiltered(std::move(filter), version, callback);
}

std::unique_ptr<watch::WatchHandle> ConcurrentWatchService::WatchFiltered(
    watch::Filter filter, common::Version version, watch::WatchCallback* callback) {
  if (!filter.headers.empty()) {
    return nullptr;  // Change events carry no headers; see WatchSystem.
  }
  const common::KeyRange range = filter.range;
  auto session = std::make_shared<LogicalSession>();
  session->user = callback;
  std::vector<std::shared_ptr<FanCallback>> fans;

  std::vector<std::size_t> owners;
  for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
    if (ShardRange(s).Overlaps(range)) {
      owners.push_back(s);
    }
  }

  auto attach = [&](std::size_t s, ShardCore& core) {
    watch::Filter slice = filter;
    slice.range = ShardRange(s).Intersect(range);
    auto fan = std::make_shared<FanCallback>(this, session);
    session->shards.push_back(s);
    session->subs.push_back(core.watch->WatchFiltered(std::move(slice), version, fan.get()));
    fans.push_back(std::move(fan));
  };

  if (owners.size() == 1) {
    pool_->RunOn(owners[0], [&](ShardCore& core) { attach(owners[0], core); });
  } else {
    // Multi-range watch: a fenced multi-shard task. Registering every
    // sub-session while all shards are parked gives the session a consistent
    // cut — no event can slip between the registrations.
    pool_->RunFenced([&] {
      for (std::size_t s : owners) {
        attach(s, pool_->core(s));
      }
    });
  }
  return std::make_unique<Handle>(this, std::move(session), std::move(fans));
}

ConcurrentWatchService::Stats ConcurrentWatchService::TotalStats() {
  Stats stats;
  pool_->RunFenced([&] {
    for (std::size_t s = 0; s < pool_->shard_count(); ++s) {
      const watch::WatchSystem& system = *pool_->core(s).watch;
      stats.events_delivered += system.events_delivered();
      stats.resyncs_sent += system.resyncs_sent();
      stats.active_sessions += system.active_sessions();
      stats.retained_events += system.retained_events();
    }
  });
  return stats;
}

}  // namespace runtime
