// ConcurrentWatchService: thread-safe facade over the per-shard WatchSystems
// of a ShardPool. The key space is split into contiguous ranges — shard s
// owns [splits[s-1], splits[s]) — so ingest routes by key to exactly one
// shard, and a watch session materializes as one sub-session per overlapping
// shard, created under a fence when the range spans shards (a consistent cut:
// no ingest lands between the first and last sub-session registration).
//
// Delivery contract (the runtime-level restatement of docs/PROTOCOL.md W1–W4):
//   * per owning shard, a live session receives every accepted event in its
//     range in ingest order — no gaps, no reorders (W1/W2 hold per shard
//     because each shard *is* the single-threaded core);
//   * overload is loud, never silent: a session lagging past
//     max_session_backlog gets OnResync (W3); a saturated shard rejects the
//     ingest with kUnavailable + retry-after back to the feeder, counted in
//     runtime.ingest_rejected — the event was never accepted, so no watcher
//     is owed it;
//   * after the first OnResync on a logical session, nothing further is
//     delivered on it (W4); racing deliveries from other shards are dropped
//     facade-side and counted (runtime.post_resync_drops).
//
// Callbacks run on shard worker threads, serialized per logical session by a
// session mutex; user callbacks must not block.
#ifndef SRC_RUNTIME_CONCURRENT_WATCH_H_
#define SRC_RUNTIME_CONCURRENT_WATCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "runtime/shard_pool.h"
#include "watch/api.h"
#include "watch/filter.h"

namespace runtime {

class ConcurrentWatchService : public watch::Watchable, public watch::Ingester {
 public:
  explicit ConcurrentWatchService(ShardPool* pool);
  ~ConcurrentWatchService() override;

  ConcurrentWatchService(const ConcurrentWatchService&) = delete;
  ConcurrentWatchService& operator=(const ConcurrentWatchService&) = delete;

  // -- Key-space ownership ------------------------------------------------------

  std::size_t OwnerShard(const common::Key& key) const;
  // The contiguous range shard s owns (half-open; "" high = unbounded).
  common::KeyRange ShardRange(std::size_t shard) const;

  // -- Ingest -------------------------------------------------------------------

  // Non-blocking ingest with explicit backpressure: kUnavailable (with a
  // retry-after hint) when the owning shard is saturated. The rejection is
  // loud *to the feeder* — the event is not accepted, the authoritative store
  // still holds it, and per-key order is preserved as long as the feeder
  // retries before advancing (the usual CDC discipline).
  common::Status TryIngest(const common::ChangeEvent& event,
                           common::TimeMicros* retry_after = nullptr);

  // watch::Ingester: blocking ingest (waits through backpressure) and
  // range-split progress routing.
  void Append(const common::ChangeEvent& event) override;
  void Progress(const common::ProgressEvent& event) override;

  // -- Watchable ----------------------------------------------------------------

  // The callback may be invoked from shard worker threads (serialized per
  // logical session). Destroy the returned handle only after the pool has
  // stopped or from a non-worker thread.
  std::unique_ptr<watch::WatchHandle> Watch(common::Key low, common::Key high,
                                            common::Version version,
                                            watch::WatchCallback* callback) override;

  // Filtered watch: the filter's range picks the owning shards; each
  // sub-session carries the filter with its range clipped to the shard's
  // slice. Header predicates are rejected (nullptr) — change events carry no
  // headers. Progress notifications stay range-scoped: the content filter
  // narrows event delivery, not frontier advancement.
  std::unique_ptr<watch::WatchHandle> WatchFiltered(watch::Filter filter, common::Version version,
                                                    watch::WatchCallback* callback);

  // -- Aggregated introspection (fenced) ----------------------------------------

  struct Stats {
    std::uint64_t events_delivered = 0;
    std::uint64_t resyncs_sent = 0;
    std::uint64_t active_sessions = 0;
    std::uint64_t retained_events = 0;
  };
  Stats TotalStats();

 private:
  struct LogicalSession;
  class FanCallback;
  class Handle;

  ShardPool* pool_;
  std::vector<common::Key> splits_;  // Ascending, size shards-1.
  common::Counter* ingest_accepted_;
  common::Counter* ingest_rejected_;
  common::Counter* watch_resyncs_;
  common::Counter* post_resync_drops_;
};

}  // namespace runtime

#endif  // SRC_RUNTIME_CONCURRENT_WATCH_H_
