// Doorbell (host-time flavour): the cross-thread counterpart of
// sim::Doorbell. A shard thread rings it after making data available; a
// consumer thread parks on it instead of sleeping a poll period.
//
// The primitive is an epoch counter under a mutex/condvar. Waiting is
// expressed against an epoch the consumer read *before* checking for data,
// which makes the check-then-park discipline race-free across real threads:
//
//   1. seen = bell.Epoch();
//   2. check for data — consume and return if any;
//   3. bell.WaitPast(seen, timeout);
//
// A producer that slips between (2) and (3) bumps the epoch past `seen`, so
// the wait returns immediately: the classic lost-wakeup window is closed
// without holding the data lock across the park. Like the sim flavour, the
// doorbell carries no payload and rings are not counted per-waiter — a woken
// consumer re-checks shared state and may find it spuriously unchanged.
#ifndef SRC_RUNTIME_DOORBELL_H_
#define SRC_RUNTIME_DOORBELL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/types.h"

namespace runtime {

class Doorbell {
 public:
  Doorbell() = default;

  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  std::uint64_t Epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  // Wakes every thread parked in WaitPast.
  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++epoch_;
    }
    cv_.notify_all();
  }

  // Blocks until the epoch passes `seen` or `timeout_us` of host time
  // elapses (timeout_us <= 0 waits indefinitely). Returns the current epoch;
  // the caller detects a timeout by comparing it to `seen`.
  std::uint64_t WaitPast(std::uint64_t seen, common::TimeMicros timeout_us) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto signaled = [&] { return epoch_ > seen; };
    if (timeout_us <= 0) {
      cv_.wait(lock, signaled);
    } else {
      cv_.wait_for(lock, std::chrono::microseconds(timeout_us), signaled);
    }
    return epoch_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;
};

}  // namespace runtime

#endif  // SRC_RUNTIME_DOORBELL_H_
