// Bounded multi-producer / single-consumer ring queue, lock-free on the hot
// path: producers claim slots with a CAS on the tail position (Vyukov-style
// per-slot sequence numbers) and the consumer drains ready slots without any
// lock. A mutex + condvar pair exists ONLY for edge parking — the consumer
// parks when the ring is empty, blocking producers park when it is full — and
// is never touched while traffic flows. Drop-in beside MpscQueue (same
// contract, same loud TryPush backpressure, same close/reopen semantics);
// RuntimeOptions::lockfree_ring selects which one feeds the shards.
//
// Ordering guarantees, identical to the mutex ring:
//   * per-producer FIFO — one thread's successful pushes drain in push order
//     (claims from a single thread take strictly increasing positions, and
//     the consumer drains positions in order);
//   * exact accounting — every push that returned true is drained exactly
//     once, and TryPush fails (without touching the item) precisely when the
//     ring holds `capacity` undrained items or is closed.
//
// Close is a single atomic fetch_or of a high bit into the tail position, so
// a claim can never race past it: any CAS issued after Close observes the bit
// and fails loudly. Claims that won the CAS *before* Close still publish, and
// the consumer drains up to the frozen tail before PopBatch returns 0 —
// closed-and-drained means exactly what it means for the mutex ring.
//
// The empty/full-edge handshake is a two-phase commit over seq_cst atomics
// (publish/free the slot, then load the peer's waiting flag; the parker
// stores its flag, then re-checks the slot): either the signaller sees the
// flag and notifies under the parking mutex, or the parker's re-check sees
// the slot — no fences, so the protocol is exactly what ThreadSanitizer
// models.
#ifndef SRC_RUNTIME_LOCKFREE_MPSC_QUEUE_H_
#define SRC_RUNTIME_LOCKFREE_MPSC_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace runtime {

template <typename T>
class LockFreeMpscQueue {
 public:
  // Minimum capacity is 2: the per-slot sequence scheme needs the "published
  // at position p" state (seq == p+1) to be distinct from "free for claim at
  // position p+1" on the same slot, and with one slot those coincide — a
  // second push would overwrite the unconsumed item. (Vyukov's original
  // carries the same requirement.) capacity() reports the clamped value.
  explicit LockFreeMpscQueue(std::size_t capacity)
      : capacity_(capacity < 2 ? 2 : capacity),
        slots_(std::make_unique<Slot[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  LockFreeMpscQueue(const LockFreeMpscQueue&) = delete;
  LockFreeMpscQueue& operator=(const LockFreeMpscQueue&) = delete;

  // Non-blocking push; false when the queue is full or closed. On failure
  // `item` is untouched — the caller still owns a valid value.
  bool TryPush(T&& item) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if ((pos & kClosedBit) != 0) {
        return false;
      }
      Slot& slot = slots_[pos % capacity_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq == pos) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          Publish(slot, pos, std::move(item));
          return true;
        }
        // CAS failure reloaded `pos`; loop and retry at the new tail.
      } else if (seq < pos) {
        // The slot still holds the item from `capacity` positions ago: the
        // ring is full. Loud backpressure, not a wait.
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // Lapped by a peer.
      }
    }
  }

  // Lvalue overload: checks full/closed before paying for the copy (the copy
  // is made only for a push that will be accepted).
  bool TryPush(const T& item) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if ((pos & kClosedBit) != 0) {
        return false;
      }
      Slot& slot = slots_[pos % capacity_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq == pos) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          Publish(slot, pos, T(item));
          return true;
        }
      } else if (seq < pos) {
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // All-or-nothing batch claim: claims `n` contiguous slots with one CAS,
  // fills them from `items`, and publishes. False (items untouched) when
  // fewer than `n` slots are free, n exceeds capacity, or the queue is
  // closed. This is the batched-publish ingress: one claim, one commit, n
  // records.
  bool TryPushBatch(T* items, std::size_t n) {
    if (n == 0) {
      return true;
    }
    if (n > capacity_) {
      return false;
    }
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      if ((pos & kClosedBit) != 0) {
        return false;
      }
      // The consumer frees slots in position order, so the batch's *last*
      // slot being free implies every earlier slot is free too.
      Slot& last = slots_[(pos + n - 1) % capacity_];
      const std::uint64_t seq = last.seq.load(std::memory_order_acquire);
      if (seq == pos + n - 1) {
        if (tail_.compare_exchange_weak(pos, pos + n, std::memory_order_relaxed)) {
          for (std::size_t i = 0; i < n; ++i) {
            Publish(slots_[(pos + i) % capacity_], pos + i, std::move(items[i]));
          }
          return true;
        }
      } else if (seq < pos + n - 1) {
        return false;  // Not enough contiguous space.
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Blocking push; parks only while full. False only if the queue is (or
  // becomes) closed, in which case `item` is untouched.
  bool Push(T&& item) {
    for (;;) {
      if (TryPush(std::move(item))) {
        return true;
      }
      if ((tail_.load(std::memory_order_seq_cst) & kClosedBit) != 0) {
        return false;
      }
      ParkProducer();
    }
  }

  // Lvalue overload of the blocking push (copies only on acceptance).
  bool Push(const T& item) {
    for (;;) {
      if (TryPush(item)) {
        return true;
      }
      if ((tail_.load(std::memory_order_seq_cst) & kClosedBit) != 0) {
        return false;
      }
      ParkProducer();
    }
  }

  // Pops up to `max` items into `out` (appended), parking until at least one
  // item is available or the queue is closed and drained. Returns the number
  // popped; 0 means closed-and-drained. Single consumer only.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max) {
    // Reserve before draining so push_back never allocates mid-drain.
    out.reserve(out.size() + (max < capacity_ ? max : capacity_));
    for (;;) {
      const std::size_t popped = DrainReady(out, max);
      if (popped > 0) {
        WakeProducers();
        return popped;
      }
      const std::uint64_t tail = tail_.load(std::memory_order_seq_cst);
      if ((tail & kClosedBit) != 0) {
        if (head_.load(std::memory_order_relaxed) == (tail & ~kClosedBit)) {
          return 0;  // Closed and fully drained: the consumer exits.
        }
        // A producer won its claim before Close but has not published yet;
        // its slot is instants away. Spin-yield rather than park (no one
        // would ring the doorbell for an already-counted claim).
        std::this_thread::yield();
        continue;
      }
      ParkConsumer();
    }
  }

  // Closes the queue: the closed bit lands in the tail word, so no claim can
  // succeed afterwards. The consumer drains what remains, then PopBatch
  // returns 0.
  void Close() {
    tail_.fetch_or(kClosedBit, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(park_mu_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Reverses Close so a stopped pool can Start again. Only call with no
  // consumer attached and no producers in flight.
  void Reopen() { tail_.fetch_and(~kClosedBit, std::memory_order_seq_cst); }

  // Approximate under concurrent traffic (exact when quiescent), like any
  // lock-free size.
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire) & ~kClosedBit;
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    return (tail_.load(std::memory_order_acquire) & kClosedBit) != 0;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T item{};
  };

  static constexpr std::uint64_t kClosedBit = std::uint64_t{1} << 63;

  // Fills a claimed slot and publishes it. The seq store is the producer half
  // of the empty-edge handshake (seq_cst: it must be ordered before the
  // waiting-flag load — either we see the parked consumer, or the consumer's
  // post-flag re-check sees this slot).
  void Publish(Slot& slot, std::uint64_t pos, T&& item) {
    slot.item = std::move(item);
    slot.seq.store(pos + 1, std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(park_mu_);
      not_empty_.notify_one();
    }
  }

  // Drains ready slots in position order. Each drained slot is reset to T{}
  // immediately — captured task state must not linger — and freed for the
  // producers (the seq store is the consumer half of the full-edge
  // handshake).
  std::size_t DrainReady(std::vector<T>& out, std::size_t max) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t popped = 0;
    while (popped < max) {
      Slot& slot = slots_[head % capacity_];
      if (slot.seq.load(std::memory_order_acquire) != head + 1) {
        break;
      }
      out.push_back(std::move(slot.item));
      slot.item = T{};
      slot.seq.store(head + capacity_, std::memory_order_seq_cst);
      ++head;
      ++popped;
    }
    if (popped > 0) {
      head_.store(head, std::memory_order_release);
    }
    return popped;
  }

  void WakeProducers() {
    if (producers_waiting_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(park_mu_);
      not_full_.notify_all();
    }
  }

  // Parks until the head slot is published or the queue closes. The waiting
  // flag is raised before the re-check, so a producer publishing after the
  // flag is visible must also see the flag and notify.
  void ParkConsumer() {
    std::unique_lock<std::mutex> lock(park_mu_);
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    not_empty_.wait(lock, [this] {
      const std::uint64_t head = head_.load(std::memory_order_relaxed);
      return slots_[head % capacity_].seq.load(std::memory_order_seq_cst) == head + 1 ||
             (tail_.load(std::memory_order_seq_cst) & kClosedBit) != 0;
    });
    consumer_waiting_.store(false, std::memory_order_seq_cst);
  }

  // Parks until space frees up or the queue closes. Symmetric to
  // ParkConsumer, with a waiter count because several producers may park.
  void ParkProducer() {
    std::unique_lock<std::mutex> lock(park_mu_);
    producers_waiting_.fetch_add(1, std::memory_order_seq_cst);
    not_full_.wait(lock, [this] {
      const std::uint64_t tail = tail_.load(std::memory_order_seq_cst);
      if ((tail & kClosedBit) != 0) {
        return true;
      }
      const std::uint64_t pos = tail & ~kClosedBit;
      return slots_[pos % capacity_].seq.load(std::memory_order_seq_cst) == pos;
    });
    producers_waiting_.fetch_sub(1, std::memory_order_seq_cst);
  }

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  // Tail: next position to claim, with kClosedBit folded in by Close.
  std::atomic<std::uint64_t> tail_{0};
  // Head: next position the consumer will drain (published for size()).
  std::atomic<std::uint64_t> head_{0};

  // Edge parking only; untouched while traffic flows.
  std::mutex park_mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<int> producers_waiting_{0};
};

}  // namespace runtime

#endif  // SRC_RUNTIME_LOCKFREE_MPSC_QUEUE_H_
