// Bounded multi-producer / single-consumer ring queue: the ingress lane of a
// runtime shard. Producers (client threads) push tasks; the shard's worker
// thread drains them in batches. The bound is the backpressure mechanism —
// TryPush fails loudly when the shard is saturated instead of queueing
// unboundedly, exactly the "better treatment of backlogs" posture (paper
// §4.4) applied to the execution layer.
//
// The implementation is a mutex + condvar ring. That is deliberate: every
// operation is a handful of instructions under an uncontended lock, batched
// dequeue amortizes the consumer's lock acquisitions over up to `max` tasks,
// and the queue is trivially clean under ThreadSanitizer. Per-producer FIFO
// order is preserved (a single producer's pushes drain in push order), which
// the equivalence tests rely on.
#ifndef SRC_RUNTIME_MPSC_QUEUE_H_
#define SRC_RUNTIME_MPSC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace runtime {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Non-blocking push; false when the queue is full or closed. This is the
  // backpressure edge: the caller turns false into kUnavailable + retry-after.
  // On failure `item` is untouched — the caller still owns a valid value.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ == ring_.size()) {
        return false;
      }
      ring_[(head_ + count_) % ring_.size()] = std::move(item);
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Lvalue overload: copies, leaving the caller's value untouched either way.
  // The full/closed check runs before the copy is made, so a rejected push
  // under saturation costs no allocation (the copy is paid only for an
  // accepted item, and it lands directly in the ring slot).
  bool TryPush(const T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ == ring_.size()) {
        return false;
      }
      ring_[(head_ + count_) % ring_.size()] = item;
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  // All-or-nothing batch push: accepts all `n` items (moved out) or none
  // (items untouched). One lock acquisition and one consumer wakeup for the
  // whole batch — the mutex ring's form of a batched slot claim.
  bool TryPushBatch(T* items, std::size_t n) {
    if (n == 0) {
      return true;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || count_ + n > ring_.size()) {
        return false;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ring_[(head_ + count_) % ring_.size()] = std::move(items[i]);
        ++count_;
      }
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking push; waits while full. False only if the queue is (or becomes)
  // closed, in which case `item` is untouched and the caller may still run
  // it (ShardPool's inline fallback relies on this).
  bool Push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [this] { return closed_ || count_ < ring_.size(); });
      if (closed_) {
        return false;
      }
      ring_[(head_ + count_) % ring_.size()] = std::move(item);
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Lvalue overload of the blocking push. Like TryPush, the closed check runs
  // before the copy: a push rejected because the queue closed never pays for
  // (or discards) a copy of the item.
  bool Push(const T& item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [this] { return closed_ || count_ < ring_.size(); });
      if (closed_) {
        return false;
      }
      ring_[(head_ + count_) % ring_.size()] = item;
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Pops up to `max` items into `out` (appended), blocking until at least one
  // item is available or the queue is closed and empty. Returns the number
  // popped; 0 means closed-and-drained, i.e. the consumer should exit.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max) {
    // Reserve before taking the lock: push_back must never reallocate (or
    // throw) inside the critical section.
    out.reserve(out.size() + (max < ring_.size() ? max : ring_.size()));
    std::size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
      while (popped < max && count_ > 0) {
        out.push_back(std::move(ring_[head_]));
        // Reset the drained slot: a moved-from task may still pin captured
        // state (shared_ptrs, payloads) until the slot is overwritten — an
        // arbitrarily-later event on an idle queue.
        ring_[head_] = T{};
        head_ = (head_ + 1) % ring_.size();
        --count_;
        ++popped;
      }
    }
    if (popped > 0) {
      not_full_.notify_all();
    }
    return popped;
  }

  // Closes the queue: subsequent pushes fail; the consumer drains what
  // remains and then PopBatch returns 0.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Reverses Close so a stopped pool can Start again. Only call with no
  // consumer attached (between Stop and Start).
  void Reopen() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  std::size_t capacity() const { return ring_.size(); }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;   // Index of the oldest element.
  std::size_t count_ = 0;  // Elements currently queued.
  bool closed_ = false;
};

}  // namespace runtime

#endif  // SRC_RUNTIME_MPSC_QUEUE_H_
