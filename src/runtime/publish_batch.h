// PublishBatch: producer-side arena staging for the batched publish hot
// path. Instead of building one pubsub::Message (two heap strings plus a
// closure) per record on the producer thread, a producer stages N records
// into one batch: key and value bytes are claimed from a slab arena in
// contiguous bumps, and the staged record is just a pair of string_views
// over those slabs. ConcurrentBroker::TryPublishBatch then routes the whole
// batch with ONE ring task per owner shard; the owned Message strings are
// constructed exactly once, on the shard, at append (Broker::PublishSpan).
//
// Ownership: a batch handed to TryPublishBatch is shared-owned by the posted
// shard tasks and must not be mutated until they run; producers that want to
// keep publishing immediately simply make a fresh batch (or Clear() a batch
// whose tasks are known to have drained — Clear resets the arena, retaining
// its largest slab, so a steady-state producer stops allocating entirely).
#ifndef SRC_RUNTIME_PUBLISH_BATCH_H_
#define SRC_RUNTIME_PUBLISH_BATCH_H_

#include <cstddef>
#include <deque>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "pubsub/types.h"

namespace runtime {

class PublishBatch {
 public:
  // One staged record: borrowed views into the batch's arena (key/value) and
  // header storage (headers; nullptr when none).
  struct Staged {
    std::string_view key;
    std::string_view value;
    const pubsub::Headers* headers = nullptr;
  };

  explicit PublishBatch(std::size_t reserve_records = 64,
                        std::size_t arena_slab_bytes = common::Arena::kDefaultSlabBytes)
      : arena_(arena_slab_bytes) {
    staged_.reserve(reserve_records);
  }

  PublishBatch(const PublishBatch&) = delete;
  PublishBatch& operator=(const PublishBatch&) = delete;

  // Stages one record, copying key/value bytes into the arena. No per-record
  // heap allocation once the arena's slab is warm.
  void Add(std::string_view key, std::string_view value) {
    staged_.push_back(Staged{arena_.CopyString(key), arena_.CopyString(value), nullptr});
  }

  // Header-carrying overload (the rare path): headers are deep-copied into
  // deque-backed storage so the pointer stays stable as the batch grows.
  void Add(std::string_view key, std::string_view value, const pubsub::Headers& headers) {
    header_storage_.push_back(headers);
    staged_.push_back(
        Staged{arena_.CopyString(key), arena_.CopyString(value), &header_storage_.back()});
  }

  std::size_t size() const { return staged_.size(); }
  bool empty() const { return staged_.empty(); }
  const std::vector<Staged>& staged() const { return staged_; }
  const common::Arena& arena() const { return arena_; }

  // Reuses the batch: drops staged records and resets the arena (its largest
  // slab is retained, so the next fill is allocation-free). Only call once
  // any tasks referencing this batch have drained.
  void Clear() {
    staged_.clear();
    header_storage_.clear();
    arena_.Reset();
  }

 private:
  common::Arena arena_;
  std::vector<Staged> staged_;
  std::deque<pubsub::Headers> header_storage_;
};

}  // namespace runtime

#endif  // SRC_RUNTIME_PUBLISH_BATCH_H_
