#include "runtime/shard_pool.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace runtime {

namespace {

// Pins the calling thread to `cpu`; false when the platform has no affinity
// support or the kernel refuses (cgroup cpuset, cpu offline). Callers treat
// false as "run unpinned", never as fatal.
bool PinCurrentThread(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace

ShardPool::ShardPool(RuntimeOptions options, common::MetricsRegistry* metrics)
    : options_(std::move(options)) {
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<common::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  tasks_run_ = &metrics_->counter("runtime.tasks_run");
  batches_run_ = &metrics_->counter("runtime.batches_run");
  post_rejected_ = &metrics_->counter("runtime.post_rejected");

  cores_.reserve(options_.shards);
  queues_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    auto core = std::make_unique<ShardCore>();
    core->sim = std::make_unique<sim::Simulator>(options_.seed + s);
    core->net = std::make_unique<sim::Network>(core->sim.get());
    core->broker = std::make_unique<pubsub::Broker>(core->sim.get(), core->net.get(),
                                                    "broker-" + std::to_string(s));
    watch::WatchSystemOptions wopts;
    wopts.window = options_.window;
    wopts.delivery_latency = 0;   // Deliveries flush at each batch boundary.
    wopts.progress_period = 0;    // Progress pumping needs tick > 0; disabled.
    wopts.max_session_backlog = options_.max_session_backlog;
    core->watch = std::make_unique<watch::WatchSystem>(core->sim.get(), /*net=*/nullptr,
                                                       "watch-" + std::to_string(s), wopts);
    if (options_.obs != nullptr) {
      core->broker->set_obs(options_.obs, s);
      core->watch->set_obs(options_.obs, s);
    }
    if (options_.durable_vfs != nullptr) {
      const std::string shard_dir = options_.durable_dir + "/shard-" + std::to_string(s);
      auto journal = wal::BrokerJournal::Open(options_.durable_vfs, shard_dir, options_.durable,
                                              metrics_, core->broker.get());
      if (journal.ok()) {
        core->journal = std::move(journal.value());
        if (options_.replication_factor > 1) {
          wal::replication::ReplicationOptions ropts;
          ropts.replication_factor = options_.replication_factor;
          ropts.ack_mode = options_.ack_mode;
          // Follower logs rotate like the leader's so a promoted tree hands
          // BrokerJournal::Open a familiarly-shaped directory.
          ropts.log_options = [durable = options_.durable](const std::string& id) {
            return id == "meta" ? durable.meta_log : durable.partition.log;
          };
          core->replication = std::make_unique<wal::replication::ReplicaSet>(
              core->sim.get(), options_.durable_vfs, shard_dir, "repl-" + std::to_string(s),
              metrics_, std::move(ropts));
          core->replication->AttachLeader(core->journal.get());
        }
      } else {
        core->durable_recovery_status = journal.status();
      }
    }
    cores_.push_back(std::move(core));
    queues_.push_back(MakeTaskRing(options_.lockfree_ring, options_.queue_capacity));
    failing_over_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

ShardPool::~ShardPool() { Stop(); }

void ShardPool::Start() {
  std::lock_guard<std::recursive_mutex> lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  for (auto& queue : queues_) {
    queue->Reopen();
  }
  running_.store(true, std::memory_order_release);
  pinned_shards_.store(0, std::memory_order_release);
  // Pin only when every shard can own a distinct CPU: with fewer CPUs than
  // shards, pinning would stack workers on the low cores and serialize the
  // pool — worse than letting the scheduler spread them.
  const std::size_t cpus = std::thread::hardware_concurrency();
  const bool pin = options_.pin_shards && cpus >= cores_.size() && cpus > 0;
  workers_.reserve(cores_.size());
  for (std::size_t s = 0; s < cores_.size(); ++s) {
    workers_.emplace_back([this, s, pin] {
      if (pin && PinCurrentThread(s)) {
        pinned_shards_.fetch_add(1, std::memory_order_acq_rel);
        metrics_->gauge("runtime.shards_pinned")
            .Set(static_cast<std::int64_t>(pinned_shards_.load(std::memory_order_acquire)));
      }
      WorkerLoop(s);
    });
  }
  if (!pin) {
    metrics_->gauge("runtime.shards_pinned").Set(0);
  }
}

void ShardPool::Stop() {
  // The whole transition — close, join, flip running_ — happens under
  // lifecycle_mu_, so Post's inline fallback (which takes the same lock)
  // can never run a task on the caller's thread while a worker is still
  // draining its queue. Before this, a Push that lost the race with Close
  // fell back to inline execution concurrent with the worker — the
  // stall/teardown race runtime/subscription_test.cc pins down.
  std::lock_guard<std::recursive_mutex> lifecycle(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  for (auto& queue : queues_) {
    queue->Close();
  }
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  running_.store(false, std::memory_order_release);
}

void ShardPool::FlushSim(ShardCore& core) {
  // Advance the shard clock by the configured tick and run everything due,
  // including the zero-latency delivery chains scheduled by the batch just
  // executed. With tick == 0 this runs exactly the events at the current
  // instant, so periodic maintenance stays pending and runs are
  // deterministic.
  core.sim->RunUntil(core.sim->Now() + options_.tick);
}

void ShardPool::WorkerLoop(std::size_t shard) {
  ShardCore& core = *cores_[shard];
  TaskRing& queue = *queues_[shard];
  std::vector<Task> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    batch.clear();
    const std::size_t n = queue.PopBatch(batch, options_.max_batch);
    if (n == 0) {
      break;  // Closed and drained.
    }
    for (Task& task : batch) {
      task();
    }
    FlushSim(core);
    tasks_run_->Increment(static_cast<std::int64_t>(n));
    batches_run_->Increment();
  }
  FlushSim(core);
}

common::TimeMicros ShardPool::RetryAfterHint(std::size_t shard) const {
  const common::TimeMicros base = std::max<common::TimeMicros>(1, options_.retry_after);
  const std::size_t cap = std::max<std::size_t>(1, options_.queue_capacity);
  const std::size_t depth = std::min(queue_depth(shard), cap);
  return base + (base * (kRetryHintMaxScale - 1)) * static_cast<common::TimeMicros>(depth) /
                    static_cast<common::TimeMicros>(cap);
}

bool ShardPool::TryPost(std::size_t shard, Task task) {
  if (!running_.load(std::memory_order_acquire) || !queues_[shard]->TryPush(std::move(task))) {
    post_rejected_->Increment();
    return false;
  }
  return true;
}

bool ShardPool::TryPostBatch(std::size_t shard, Task* tasks, std::size_t n) {
  if (!running_.load(std::memory_order_acquire) ||
      !queues_[shard]->TryPushBatch(tasks, n)) {
    post_rejected_->Increment();
    return false;
  }
  return true;
}

void ShardPool::Post(std::size_t shard, Task task) {
  if (running_.load(std::memory_order_acquire) && queues_[shard]->Push(std::move(task))) {
    return;
  }
  // Stopped pool — or a push that lost the race with Stop closing the
  // queues. Serialize with the Stop transition before running inline: once
  // lifecycle_mu_ is ours, the workers have been joined (or never started)
  // and the cores are single-threaded again.
  std::lock_guard<std::recursive_mutex> lifecycle(lifecycle_mu_);
  task();
  cores_[shard]->sim->RunUntil(cores_[shard]->sim->Now() + options_.tick);
}

void ShardPool::RunFenced(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> serialize(fence_mu_);
  // Hold the lifecycle for the fence's whole span: a Stop racing the fence
  // would otherwise close the queues under the barrier Posts and strand the
  // first barrier task inline on this thread, waiting for peers that can
  // never arrive.
  std::lock_guard<std::recursive_mutex> lifecycle(lifecycle_mu_);
  if (!running_.load(std::memory_order_acquire)) {
    fn();
    for (auto& core : cores_) {
      FlushSim(*core);
    }
    return;
  }
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t arrived = 0;
    bool released = false;
  };
  auto barrier = std::make_shared<Barrier>();
  const std::size_t n = cores_.size();
  for (std::size_t s = 0; s < n; ++s) {
    // Blocking push: a fence must land even on a saturated shard. No deadlock
    // cycle is possible — fences are serialized and workers always drain.
    Post(s, [barrier, n] {
      std::unique_lock<std::mutex> lock(barrier->mu);
      if (++barrier->arrived == n) {
        barrier->cv.notify_all();
      }
      barrier->cv.wait(lock, [&] { return barrier->released; });
    });
  }
  {
    std::unique_lock<std::mutex> lock(barrier->mu);
    barrier->cv.wait(lock, [&] { return barrier->arrived == n; });
  }
  // Every worker is parked inside the barrier wait; the barrier mutex
  // ordering makes their prior writes visible here and our writes visible to
  // them on release. Tasks earlier in a worker's current batch have run but
  // their zero-latency deliveries may not be flushed yet — flush before
  // handing the cores to fn so it sees settled state.
  for (auto& core : cores_) {
    FlushSim(*core);
  }
  fn();
  for (auto& core : cores_) {
    FlushSim(*core);
  }
  {
    std::lock_guard<std::mutex> lock(barrier->mu);
    barrier->released = true;
  }
  barrier->cv.notify_all();
}

common::Status ShardPool::durable_status() const {
  for (const auto& core : cores_) {
    if (!core->durable_recovery_status.ok()) {
      return core->durable_recovery_status;
    }
    if (core->journal != nullptr && !core->journal->status().ok()) {
      return core->journal->status();
    }
  }
  return common::Status::Ok();
}

common::Status ShardPool::FailoverShard(std::size_t shard) {
  common::Status result;
  RunFenced([&] {
    ShardCore& core = *cores_[shard];
    if (core.journal == nullptr || core.replication == nullptr) {
      result = common::Status::FailedPrecondition("shard " + std::to_string(shard) +
                                                  " has no replicated journal");
      return;
    }
    failing_over_[shard]->store(true, std::memory_order_release);
    auto promoted_dir = core.replication->Promote();
    if (!promoted_dir.ok()) {
      failing_over_[shard]->store(false, std::memory_order_release);
      result = promoted_dir.status();
      return;
    }
    // Build the replacement before destroying the old pair: ~Broker fires
    // every parked waiter as an immediate sim event, and those wakeups
    // re-resolve the shard's broker through the pool — they must find the
    // new one.
    std::unique_ptr<pubsub::Broker> old_broker = std::move(core.broker);
    std::unique_ptr<wal::BrokerJournal> old_journal = std::move(core.journal);
    core.broker = std::make_unique<pubsub::Broker>(core.sim.get(), core.net.get(),
                                                   "broker-" + std::to_string(shard));
    if (options_.obs != nullptr) {
      core.broker->set_obs(options_.obs, shard);
    }
    auto journal = wal::BrokerJournal::Open(options_.durable_vfs, promoted_dir.value(),
                                            options_.durable, metrics_, core.broker.get());
    if (journal.ok()) {
      core.journal = std::move(journal.value());
      core.replication->AttachLeader(core.journal.get());
    } else {
      core.durable_recovery_status = journal.status();
      result = journal.status();
    }
    // The journal observes the broker it was opened with: detach it first.
    old_journal.reset();
    old_broker.reset();  // Parked waiters fire here; RunFenced's post-fn
                         // flush runs them against the new broker.
    failing_over_[shard]->store(false, std::memory_order_release);
    metrics_->counter("runtime.failovers").Increment();
  });
  return result;
}

void ShardPool::Quiesce() {
  // With producers stopped, a fence observes every queue drained up to the
  // fence task and flushes all simulators (RunFenced flushes around fn).
  RunFenced([this] { SampleObsGauges(); });
}

void ShardPool::SampleObsGauges() {
  if (options_.obs == nullptr) {
    return;
  }
  common::MetricsRegistry& m = options_.obs->metrics();
  std::uint64_t total_backlog = 0;
  std::uint64_t max_lag = 0;
  for (std::size_t s = 0; s < cores_.size(); ++s) {
    ShardCore& core = *cores_[s];
    const std::string prefix = "obs.s" + std::to_string(s) + ".";
    std::uint64_t shard_backlog = 0;
    for (const pubsub::GroupId& group : core.broker->GroupIds()) {
      const pubsub::GroupView view = core.broker->ViewGroup(group);
      shard_backlog += core.broker->GroupBacklog(group, view.topic);
    }
    m.gauge(prefix + "pubsub.group_backlog").Set(static_cast<std::int64_t>(shard_backlog));
    total_backlog += shard_backlog;

    const common::Version maxv = core.watch->MaxIngestedVersion();
    std::uint64_t shard_lag = 0;
    core.watch->VisitSessions([&](const watch::WatchSystem::SessionInfo& info) {
      if (!info.live) {
        return;
      }
      const std::uint64_t lag = maxv > info.last_progress ? maxv - info.last_progress : 0;
      shard_lag = std::max(shard_lag, lag);
    });
    m.gauge(prefix + "watch.max_session_lag").Set(static_cast<std::int64_t>(shard_lag));
    max_lag = std::max(max_lag, shard_lag);

    m.gauge(prefix + "queue_depth").Set(static_cast<std::int64_t>(queue_depth(s)));
  }
  m.gauge("obs.pubsub.group_backlog").Set(static_cast<std::int64_t>(total_backlog));
  m.gauge("obs.watch.max_session_lag").Set(static_cast<std::int64_t>(max_lag));
  // Doorbell wakeup latency (data available on a shard → consumer drained
  // it), from the subscriptions' shared histogram. Zero until a subscription
  // has delivered through a wakeup.
  const common::Histogram& wakeup = metrics_->histogram("runtime.wakeup_latency_us");
  m.gauge("obs.runtime.wakeup_p50_us").Set(static_cast<std::int64_t>(wakeup.Percentile(50)));
  m.gauge("obs.runtime.wakeup_p99_us").Set(static_cast<std::int64_t>(wakeup.Percentile(99)));
}

}  // namespace runtime
