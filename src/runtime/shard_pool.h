// ShardPool: the shard-per-core concurrent execution layer. Each shard owns a
// complete single-threaded core — its own deterministic Simulator, Network,
// Broker, and WatchSystem — and a worker thread that drains a bounded MPSC
// task queue in batches, then flushes the shard's simulator so zero-latency
// deliveries scheduled by those tasks run before the next batch.
//
// The design keeps the deterministic heart of the library untouched: no core
// component grows a lock. Instead, *ownership* is the synchronization
// discipline — a shard's core is touched only by (a) its worker thread while
// running, (b) any thread while the pool is stopped or not yet started, or
// (c) the caller of RunFenced while every worker is parked at the fence.
// Cross-shard operations (topic creation, group membership, multi-range
// watches, seek-to-time, quiesce) are expressed as fenced multi-shard tasks.
//
// Backpressure is explicit and loud: TryPost fails when a shard's queue is
// full (callers surface kUnavailable with a retry-after hint and the
// rejection is counted in the MetricsRegistry); Post blocks, which is the
// synchronous callers' form of backpressure. Nothing is silently dropped.
#ifndef SRC_RUNTIME_SHARD_POOL_H_
#define SRC_RUNTIME_SHARD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "obs/collector.h"
#include "pubsub/broker.h"
#include "runtime/task_ring.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "wal/broker_journal.h"
#include "wal/replication/replica_set.h"
#include "watch/retained_window.h"
#include "watch/watch_system.h"

namespace runtime {

struct RuntimeOptions {
  // Number of shards (worker threads). Each owns a disjoint set of broker
  // partitions (partition p -> shard p % shards) and a contiguous watch
  // key-range (see ConcurrentWatchService).
  std::size_t shards = 4;
  // Per-shard task queue bound; the backpressure threshold.
  std::size_t queue_capacity = 4096;
  // Shard ingress ring implementation: false selects the mutex+condvar
  // MpscQueue, true the CAS-claimed LockFreeMpscQueue. Same contract either
  // way (the equivalence suites prove identical delivery sequences); the
  // lock-free ring trades the per-operation lock for a CAS and parks only on
  // the empty/full edges. See docs/RUNTIME.md and BENCH_runtime.json.
  bool lockfree_ring = false;
  // Max tasks drained per batch (amortizes queue locking and sim flushing).
  std::size_t max_batch = 256;
  // Pin shard s's worker thread to CPU s (pthread affinity). The point of
  // shard-per-core: without pinning, the scheduler migrates workers and the
  // scaling curve measures the scheduler, not the runtime. Graceful fallback:
  // when the host has fewer CPUs than shards (oversubscribed — pinning would
  // serialize shards behind each other), or the platform refuses the
  // affinity call, the worker runs unpinned and the miss is visible in the
  // runtime.shards_pinned gauge (== shard count when fully pinned).
  bool pin_shards = false;
  // Simulated time advanced per batch. 0 keeps every shard clock at 0, which
  // makes runs bit-deterministic for the equivalence tests (periodic
  // maintenance like retention GC then never fires; size-capped retention
  // still applies on the append path). Nonzero ticks enable time-based
  // retention and progress pumping at the cost of batch-dependent timestamps.
  common::TimeMicros tick = 0;
  // Retry hint handed to rejected publishers/ingesters, in microseconds.
  common::TimeMicros retry_after = 100;
  // Event-driven delivery for runtime subscriptions: the owner shard pushes
  // appended messages into the subscription's handoff buffer at append time
  // and rings the consumer's doorbell (see runtime/subscription.h). When
  // false, subscriptions run the classic client-driven poll loop instead —
  // same API, same delivery sequences, poll-period latency floor — which the
  // equivalence suites exercise against event mode.
  bool event_driven = true;
  // Poll cadence (host time) of periodic-mode subscriptions.
  common::TimeMicros subscription_poll_period = 1000;
  // Base seed; shard s runs its core at seed + s.
  std::uint64_t seed = 1;
  // Watch sessions lagging more than this many undelivered events get a loud
  // OnResync instead of an unbounded queue (0 disables).
  std::size_t max_session_backlog = 4096;
  // Per-shard retained window configuration for the watch plane.
  watch::RetainedWindow::Options window{};
  // Watch key-space split points, ascending, size shards-1: shard s owns
  // [splits[s-1], splits[s]) with implicit "" sentinels at both ends. Empty:
  // an even split of the single-byte prefix space.
  std::vector<common::Key> watch_splits;
  // Durable mode: when non-null, each shard's broker is backed by a
  // wal::BrokerJournal at "<durable_dir>/shard-<s>" — topics, messages,
  // retention decisions, and committed offsets are journaled, and a pool
  // built over an existing journal recovers the broker state before Start.
  // The Vfs must outlive the pool and be thread-safe (FaultVfs and PosixVfs
  // both are). Recovery failures are sticky: see durable_status().
  wal::Vfs* durable_vfs = nullptr;
  std::string durable_dir = "wal";
  wal::BrokerJournalOptions durable{};
  // WAL replication (durable mode only): total copies of each shard's
  // journal, leader included. > 1 gives every shard a
  // wal::replication::ReplicaSet — replication_factor-1 follower WAL trees at
  // "<durable_dir>/shard-<s>-replica-<k>" fed over a private zero-latency
  // transport — and enables ShardPool::FailoverShard. 1 disables replication.
  std::size_t replication_factor = 1;
  // Durability accounting mode for the failover oracle/bench: which prefix
  // counts as acked (see wal::replication::AckMode). Publishes themselves
  // stay fire-and-forget either way.
  wal::replication::AckMode ack_mode = wal::replication::AckMode::kQuorum;
  // Observability collector: when non-null every shard's broker and watch
  // system stamp trace stages / log lifecycle events into it (tagged with the
  // shard index), and SampleObsGauges() publishes delivery-lag watermarks.
  // Must outlive the pool; its registry should be the pool's registry so one
  // snapshot covers both.
  obs::Collector* obs = nullptr;
};

// One shard's single-threaded core. All members are confined to the shard's
// worker thread per the ownership discipline above.
struct ShardCore {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<pubsub::Broker> broker;
  std::unique_ptr<watch::WatchSystem> watch;
  // Durable mode only (RuntimeOptions::durable_vfs): the broker's journal,
  // already recovered. Confined to the shard like the rest of the core.
  std::unique_ptr<wal::BrokerJournal> journal;
  // Replicated durable mode only (replication_factor > 1). Declared after
  // the journal so destruction detaches the shipper before the journal's
  // logs die.
  std::unique_ptr<wal::replication::ReplicaSet> replication;
  // Non-OK when the journal failed to open/recover (the shard then runs
  // without durability; harnesses should treat this as fatal).
  common::Status durable_recovery_status;
};

class ShardPool {
 public:
  // `metrics` may be null, in which case the pool owns a registry. The
  // registry must be the thread-safe common::MetricsRegistry (it is hit from
  // every shard and every producer).
  explicit ShardPool(RuntimeOptions options, common::MetricsRegistry* metrics = nullptr);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  // Spawns the worker threads. Cores may be configured freely (observers,
  // topics for tests) before Start.
  void Start();

  // Closes every queue, drains remaining tasks, joins the workers. After Stop
  // the cores are plain single-threaded objects again (safe to inspect from
  // the calling thread). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::size_t shard_count() const { return cores_.size(); }
  // Workers currently pinned to a CPU (0 when pin_shards is off, the host is
  // oversubscribed, or the platform refused). Mirrors runtime.shards_pinned.
  std::size_t pinned_shards() const { return pinned_shards_.load(std::memory_order_acquire); }
  const RuntimeOptions& options() const { return options_; }
  common::MetricsRegistry& metrics() { return *metrics_; }

  // Durable mode health: the first recovery failure or sticky journal write
  // failure across all shards (Ok in non-durable mode). Call while stopped,
  // quiesced, or inside a fence.
  common::Status durable_status() const;

  // Replicated durable mode only: fails the shard's current durable leader
  // over to its most caught-up follower, mid-traffic. Runs fenced: the old
  // broker+journal are torn down (parked waiters fire and re-arm against the
  // replacement), the promoted follower's WAL tree is recovered into a fresh
  // broker — truncating any unacked torn tail — and the surviving followers
  // re-point at the new leader. Producers racing the fence see kUnavailable
  // with a retry hint (ShardFailingOver). kFailedPrecondition without
  // replication; otherwise the recovery status of the promoted tree.
  common::Status FailoverShard(std::size_t shard);

  // True while FailoverShard is tearing the shard's broker down; lock-free.
  bool ShardFailingOver(std::size_t shard) const {
    return failing_over_[shard]->load(std::memory_order_acquire);
  }

  // Retry hint ceiling: a saturated shard's hint scales with ring depth up
  // to this multiple of RuntimeOptions::retry_after, so hints stay bounded
  // (a producer is never told to go away for unbounded time) while a full
  // ring is never advertised as instantly retryable.
  static constexpr common::TimeMicros kRetryHintMaxScale = 8;

  // The backoff hint handed to rejected producers, in microseconds. Always
  // in [1, kRetryHintMaxScale * max(1, retry_after)] — nonzero even when the
  // configured retry_after is 0, because a zero hint makes hint-obeying
  // clients either spin or give up (they read 0 as "no retry guidance").
  // Scales linearly with the shard's current ring depth: an empty ring hints
  // the base, a full ring the ceiling.
  common::TimeMicros RetryAfterHint(std::size_t shard) const;

  // Non-blocking enqueue; false when the shard is saturated (counted as
  // runtime.post_rejected) or the pool is stopped.
  bool TryPost(std::size_t shard, Task task);

  // Non-blocking all-or-nothing batch enqueue: one ring claim admits every
  // task (preserving their order) or none. False — tasks untouched, one
  // rejection counted — when the shard lacks space for the whole batch or
  // the pool is stopped. The batched-publish ingress path.
  bool TryPostBatch(std::size_t shard, Task* tasks, std::size_t n);

  // Blocking enqueue. If the pool is stopped, runs the task inline on the
  // calling thread (the cores are then single-threaded-safe by definition).
  void Post(std::size_t shard, Task task);

  // Runs `fn(core)` on the shard's worker thread and returns its result,
  // blocking the caller until done. Backpressure is the wait itself.
  template <typename Fn>
  auto RunOn(std::size_t shard, Fn&& fn) -> std::invoke_result_t<Fn&, ShardCore&> {
    using R = std::invoke_result_t<Fn&, ShardCore&>;
    ShardCore& core = *cores_[shard];
    std::promise<R> done;
    auto fut = done.get_future();
    Post(shard, [&fn, &core, &done] {
      if constexpr (std::is_void_v<R>) {
        fn(core);
        done.set_value();
      } else {
        done.set_value(fn(core));
      }
    });
    return fut.get();
  }

  // Fenced multi-shard task: parks every worker at a barrier, runs `fn` on
  // the calling thread — which may then touch any core via core(i), including
  // cross-shard reads and writes — and releases the workers. Every task
  // posted before the fence has executed (and its zero-latency deliveries
  // have been flushed) by the time `fn` runs on a given shard's core only if
  // it was in a completed batch; Quiesce() additionally flushes each shard's
  // simulator inside the fence. Fences are serialized among themselves.
  void RunFenced(const std::function<void()>& fn);

  // Drains all queues and flushes every shard's simulator. Call with external
  // producers stopped; afterwards (or after Stop) harness-side inspection of
  // the cores is race-free and the invariant oracle may run. With an obs
  // collector attached, also refreshes the delivery-lag gauges.
  void Quiesce();

  // Publishes delivery-lag watermark gauges into the obs collector's
  // registry: per-shard and aggregate consumer-group backlog (log end minus
  // committed), per-shard max watch-session progress lag (MaxIngestedVersion
  // minus last_progress), and per-shard task-queue depth. No-op without a
  // collector. Call only while stopped, inside RunFenced, or from Quiesce —
  // it reads every core.
  void SampleObsGauges();

  // The shard's core. Safe from the shard's own tasks, inside RunFenced, or
  // while the pool is not running. The returned reference is stable.
  ShardCore& core(std::size_t shard) { return *cores_[shard]; }
  const ShardCore& core(std::size_t shard) const { return *cores_[shard]; }

  std::size_t queue_depth(std::size_t shard) const { return queues_[shard]->size(); }

 private:
  void WorkerLoop(std::size_t shard);
  void FlushSim(ShardCore& core);

  RuntimeOptions options_;
  std::unique_ptr<common::MetricsRegistry> owned_metrics_;
  common::MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<ShardCore>> cores_;
  std::vector<std::unique_ptr<TaskRing>> queues_;
  std::vector<std::thread> workers_;
  // One flag per shard; set inside FailoverShard's fence so concurrent
  // producers can observe the teardown without touching the core.
  std::vector<std::unique_ptr<std::atomic<bool>>> failing_over_;
  std::atomic<std::size_t> pinned_shards_{0};
  std::mutex fence_mu_;  // Serializes fences so two fences cannot interleave.
  // Guards the running/stopped transition. Post's inline fallback holds it
  // so a task can never run on the caller's thread while workers are still
  // draining during Stop (the stall/teardown race). Recursive because a
  // fenced fn (running on the caller's thread, lock held) may legitimately
  // Post and hit the same fallback. Workers never take this lock.
  std::recursive_mutex lifecycle_mu_;
  std::atomic<bool> running_{false};

  // Hot counters, resolved once at construction.
  common::Counter* tasks_run_ = nullptr;
  common::Counter* batches_run_ = nullptr;
  common::Counter* post_rejected_ = nullptr;
};

}  // namespace runtime

#endif  // SRC_RUNTIME_SHARD_POOL_H_
