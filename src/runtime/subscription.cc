#include "runtime/subscription.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace runtime {

namespace {

std::int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Records a filtered pump examines per fetch round before taking a breath
// (cursor progress is committed between rounds).
constexpr std::size_t kFilteredScanChunk = 4096;

}  // namespace

Subscription::~Subscription() {
  auto self = shared_;
  {
    std::lock_guard<std::mutex> lock(self->mu);
    self->detached = true;
  }
  self->bell.Signal();  // Unpark a consumer blocked in Wait on another thread.
  if (self->event_driven) {
    // Stand the shard side down on its own thread. A wakeup already in
    // flight is harmless: its closure owns `self` and checks `detached`.
    pool_->Post(shard_, [self] {
      std::lock_guard<std::mutex> lock(self->mu);
      pubsub::Broker* broker = self->pool->core(self->shard).broker.get();
      if (self->ticket != 0) {
        (void)broker->CancelWait(self->ticket);
        self->ticket = 0;
      }
      // Drop the filtered-interest registration — but only if it lives on
      // the shard's *current* broker; a registration on a broker that
      // failover already destroyed died with it.
      if (self->interest_id != 0 && self->interest_broker == broker) {
        (void)broker->RemoveInterest(self->interest_id);
      }
      self->interest_id = 0;
      self->interest_broker = nullptr;
    });
  }
}

bool Subscription::event_driven() const { return shared_->event_driven; }

pubsub::Offset Subscription::cursor() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->cursor;
}

std::uint64_t Subscription::wakeups() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->wakeups;
}

std::uint64_t Subscription::drops() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->drops;
}

bool Subscription::broken() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->broken;
}

const char* SlowConsumerPolicyName(SlowConsumerPolicy policy) {
  switch (policy) {
    case SlowConsumerPolicy::kBlock: return "block";
    case SlowConsumerPolicy::kDropOldest: return "drop_oldest";
    case SlowConsumerPolicy::kDisconnect: return "disconnect";
  }
  return "unknown";
}

void Subscription::SetReadyHook(std::function<void()> hook) {
  std::function<void()> fire;
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->ready_hook = std::move(hook);
    // Data buffered before the hook existed would otherwise never announce
    // itself (the pump only rings on new pushes).
    if (shared_->ready_hook && !shared_->buffer.empty()) {
      fire = shared_->ready_hook;
    }
  }
  if (fire) {
    fire();
  }
}

void Subscription::FinishCut(const std::shared_ptr<Shared>& shared) {
  Shared& s = *shared;
  if (s.disconnect_count != nullptr) {
    s.disconnect_count->Increment();
  }
  if (s.obs != nullptr) {
    s.obs->LogEvent(obs::EventKind::kSessionBreak, "slow_consumer",
                    "subscription " + s.topic + "/" + std::to_string(s.partition) +
                        " handoff overflow",
                    s.shard);
  }
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    hook = s.ready_hook;
  }
  // Wake the consumer unconditionally (no coalescing): there may be no
  // further ring, and a parked consumer must observe broken().
  s.bell.Signal();
  if (hook) {
    hook();
  }
}

void Subscription::PumpShard(const std::shared_ptr<Shared>& shared) {
  Shared& s = *shared;
  // Re-resolve the shard's current broker: after a failover this is the
  // replacement, and the waiter wakeup that brought us here was fired by the
  // old broker's teardown — re-arming below continues the stream seamlessly.
  pubsub::Broker* broker = s.pool->core(s.shard).broker.get();
  std::size_t space;
  pubsub::Offset cursor;
  bool cut = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    // A fired waiter is already deregistered broker-side; clear before the
    // detached check so teardown never cancels a recycled ticket id.
    s.ticket = 0;
    if (s.detached || s.broken) {
      return;
    }
    space = s.handoff_capacity - s.buffer.size();
    cursor = s.cursor;
    if (space == 0) {
      switch (s.policy) {
        case SlowConsumerPolicy::kBlock:
          s.stalled = true;  // Consumer's drain below the watermark resumes us.
          if (s.stall_count != nullptr) {
            s.stall_count->Increment();
          }
          return;
        case SlowConsumerPolicy::kDropOldest:
          // Keep pumping; the evictions below the fetch make room. Fetch in
          // shard_batch rounds like a non-full pump would.
          space = s.shard_batch;
          break;
        case SlowConsumerPolicy::kDisconnect: {
          // A fired waiter with no room is a genuine overflow only if data is
          // actually pending past the cursor: a failover's broker teardown
          // fires every parked waiter too, carrying no data — just the swap.
          // Probe the shard's CURRENT broker before declaring the overflow
          // terminal; a no-data fire falls through to re-arm on the
          // replacement. (A buffer that merely *reached* capacity re-arms the
          // same way — the consumer may still drain in time — so an
          // idle-but-full subscription is never cut.)
          bool pending;
          if (s.filter.has_value()) {
            std::vector<pubsub::StoredMessage> probe;
            pubsub::Offset next = s.cursor;
            auto fetched = broker->FetchFilteredInto(s.topic, s.partition, s.cursor, 1,
                                                     kFilteredScanChunk, *s.filter, &probe,
                                                     &next);
            pending = fetched.ok() && *fetched > 0;
          } else {
            pending = broker->EndOffset(s.topic, s.partition) > s.cursor;
          }
          if (!pending) {
            break;  // space stays 0: skip the fetch loop, re-arm below.
          }
          s.broken = true;
          cut = true;
          break;
        }
      }
    }
  }
  if (cut) {
    FinishCut(shared);
    return;
  }
  bool pushed_any = false;
  const bool filtered = s.filter.has_value();
  if (filtered && s.interest_broker != broker) {
    // First pump, or failover swapped the shard's broker (the registration
    // died with the old instance): register the interest here so append-time
    // dispatch and WaitForMatch know this subscription's filter.
    s.interest_id = broker->AddInterest(s.topic, s.partition, *s.filter);
    s.interest_broker = broker;
  }
  for (;;) {
    // Fetch outside the lock: the broker is shard-confined, the buffer is
    // not, and neither needs the other's protection. The scratch vector is
    // shard-confined too, so the hot caught-up path (one pump per append)
    // never allocates.
    const std::size_t want = std::min(space, s.shard_batch);
    if (want == 0) {
      break;  // kDisconnect no-data fire with a full buffer: nothing to fetch.
    }
    s.scratch.clear();
    std::size_t got = 0;
    pubsub::Offset next = cursor;
    if (filtered) {
      // Bounded scan per round: a selective filter crossing a long
      // non-matching run advances its cursor chunk by chunk instead of
      // monopolizing the shard in one call.
      auto fetched = broker->FetchFilteredInto(s.topic, s.partition, cursor, want,
                                               kFilteredScanChunk, *s.filter, &s.scratch, &next);
      if (!fetched.ok()) {
        break;
      }
      got = *fetched;
      if (got == 0 && next == cursor) {
        break;  // No progress: caught up to the live edge.
      }
    } else {
      auto fetched = broker->FetchInto(s.topic, s.partition, cursor, want, &s.scratch);
      if (!fetched.ok() || *fetched == 0) {
        break;
      }
      got = *fetched;
      next = s.scratch.back().offset + 1;
    }
    if (got == 0) {
      // Filtered scan advanced past non-matching records without a match:
      // commit the cursor progress and keep scanning.
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.detached) {
        return;
      }
      cursor = s.cursor = std::max(s.cursor, next);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.detached) {
        return;
      }
      const bool was_empty = s.buffer.empty();
      if (was_empty) {
        s.buffer.swap(s.scratch);  // O(1); capacities circulate between lanes.
      } else {
        for (pubsub::StoredMessage& m : s.scratch) {
          s.buffer.push_back(std::move(m));
        }
      }
      // Filtered scans can advance the cursor past the last *matching*
      // record, so take the scan cursor, not back().offset + 1.
      cursor = s.cursor = std::max(next, s.buffer.back().offset + 1);
      pushed_any = true;
      if (was_empty && s.data_ready_at_us < 0) {
        s.data_ready_at_us = SteadyMicros();
      }
      if (s.policy == SlowConsumerPolicy::kDropOldest &&
          s.buffer.size() > s.handoff_capacity) {
        // The lane overflowed: evict from the front (oldest first) back to
        // the bound. Every eviction is counted — loss is exact, never silent.
        const std::size_t excess = s.buffer.size() - s.handoff_capacity;
        s.buffer.erase(s.buffer.begin(),
                       s.buffer.begin() + static_cast<std::ptrdiff_t>(excess));
        s.drops += excess;
        if (s.drop_count != nullptr) {
          s.drop_count->Increment(static_cast<std::int64_t>(excess));
        }
      }
      space = s.handoff_capacity - s.buffer.size();
      if (space == 0) {
        if (s.policy == SlowConsumerPolicy::kBlock) {
          s.stalled = true;
          if (s.stall_count != nullptr) {
            s.stall_count->Increment();
          }
          break;
        }
        if (s.policy == SlowConsumerPolicy::kDisconnect) {
          // Full but not yet overflowed: re-arm below with the buffer at
          // capacity. If the consumer drains first, nothing happened; if the
          // waiter fires first (more data, no room), the entry path cuts.
          break;
        }
        space = s.shard_batch;  // kDropOldest: evictions keep making room.
      }
    }
    if (!filtered && got < want) {
      // Short batch means the log is drained (appends run on this same shard
      // thread, so none landed meanwhile): skip the empty terminator fetch.
      break;
    }
  }
  if (pushed_any) {
    // Interrupt moderation: a push after a quiet stream rings at once (idle
    // wakeup latency is one futex from the append); within the coalesce
    // window after a ring the consumer is either awake and draining or due
    // for its bounded re-check park, so further rings would only buy context
    // switches. Each wakeup then drains a window's worth of messages instead
    // of one push's worth. A half-full buffer rings through the window (the
    // NIC rx-frames companion to the rx-usecs timer): a parked consumer must
    // not sleep out its park while a refilled lane sits ready to swap.
    bool ring;
    std::function<void()> hook;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      const std::int64_t now = SteadyMicros();
      ring = s.wake_coalesce_us <= 0 || now - s.last_ring_us >= s.wake_coalesce_us ||
             s.buffer.size() >= s.handoff_capacity / 2;
      if (ring) {
        s.last_ring_us = now;
        hook = s.ready_hook;
      }
    }
    if (ring) {
      s.bell.Signal();
      if (s.rings != nullptr) {
        s.rings->Increment();
      }
      if (hook) {
        hook();  // Socket-writer handoff: nudge the event-loop consumer.
      }
    }
  }
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.detached || s.stalled || s.broken) {
    return;
  }
  // Caught up: re-arm on the shard broker. If data landed between the last
  // fetch and here (same thread, so it cannot have), the wait would fire an
  // immediate pump; either way no append is missed. Filtered subscriptions
  // park on WaitForMatch, so only a matching append wakes this pump.
  auto self = shared;
  if (filtered) {
    s.ticket = broker->WaitForMatch(s.interest_id, s.cursor, [self] { PumpShard(self); });
  } else {
    s.ticket = broker->WaitForAppend(s.topic, s.partition, s.cursor,
                                     [self] { PumpShard(self); });
  }
}

std::size_t Subscription::PollBatch(std::vector<pubsub::StoredMessage>* out, std::size_t max) {
  Shared& s = *shared_;
  if (max == 0) {
    return 0;
  }
  if (!s.event_driven) {
    // Client-driven periodic mode: one synchronous fetch on the owner shard
    // (the pre-subscription consume path, kept for equivalence testing).
    pubsub::Offset cursor;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      cursor = s.cursor;
    }
    struct FetchOut {
      std::vector<pubsub::StoredMessage> msgs;
      pubsub::Offset next = 0;
    };
    auto batch = pool_->RunOn(shard_, [&](ShardCore& core) {
      FetchOut r;
      r.next = cursor;
      if (s.filter.has_value()) {
        (void)core.broker->FetchFilteredInto(s.topic, s.partition, cursor, max, 0, *s.filter,
                                             &r.msgs, &r.next);
      } else {
        (void)core.broker->FetchInto(s.topic, s.partition, cursor, max, &r.msgs);
        if (!r.msgs.empty()) {
          r.next = r.msgs.back().offset + 1;
        }
      }
      return r;
    });
    {
      std::lock_guard<std::mutex> lock(s.mu);
      // Filtered scans make cursor progress even on empty batches (they
      // advance past non-matching records).
      s.cursor = std::max(s.cursor, batch.next);
    }
    const std::size_t n = batch.msgs.size();
    for (pubsub::StoredMessage& m : batch.msgs) {
      out->push_back(std::move(m));
    }
    return n;
  }
  std::size_t n = 0;
  for (;;) {
    while (n < max && local_pos_ < local_.size()) {
      out->push_back(std::move(local_[local_pos_]));
      ++local_pos_;
      ++n;
    }
    if (n == max) {
      return n;
    }
    // Local lane exhausted: take the shard lane in one O(1) swap, so the
    // shard's pump never waits behind a per-message drain loop.
    local_.clear();
    local_pos_ = 0;
    bool resume = false;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (s.buffer.empty()) {
        return n;
      }
      local_.swap(s.buffer);
      if (s.data_ready_at_us >= 0) {
        if (s.wakeup_latency != nullptr) {
          s.wakeup_latency->Record(
              static_cast<double>(std::max<std::int64_t>(0, SteadyMicros() - s.data_ready_at_us)));
        }
        s.data_ready_at_us = -1;
      }
      if (s.stalled) {
        s.stalled = false;
        resume = true;
      }
    }
    if (resume) {
      auto self = shared_;
      pool_->Post(shard_, [self] { PumpShard(self); });
    }
  }
}

bool Subscription::Wait(common::TimeMicros timeout_us) {
  Shared& s = *shared_;
  if (!s.event_driven) {
    std::this_thread::sleep_for(std::chrono::microseconds(s.poll_period));
    return true;
  }
  // Each park is bounded by a re-check sweep, so a ring held back by wake
  // coalescing (or any forgotten signal) delays this waiter by at most one
  // sweep instead of stranding it.
  constexpr common::TimeMicros kSweepParkUs = 5000;
  if (local_pos_ < local_.size()) {
    return true;  // Undrained messages already on the consumer's own lane.
  }
  const std::int64_t start = SteadyMicros();
  bool parked = false;
  for (;;) {
    const std::uint64_t seen = s.bell.Epoch();
    {
      std::lock_guard<std::mutex> lock(s.mu);
      if (!s.buffer.empty()) {
        if (parked) {
          ++s.wakeups;
        }
        return true;
      }
      if (s.detached || s.broken) {
        return false;
      }
    }
    common::TimeMicros park = kSweepParkUs;
    if (timeout_us > 0) {
      const std::int64_t left = timeout_us - (SteadyMicros() - start);
      if (left <= 0) {
        return false;
      }
      park = std::min<common::TimeMicros>(park, left);
    }
    (void)s.bell.WaitPast(seen, park);
    parked = true;
  }
}

}  // namespace runtime
