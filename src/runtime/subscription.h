// Subscription: the event-driven consume path of the concurrent runtime.
//
// The polling consume path pays the ingress queue twice per batch: a fetch
// task rides the owner shard's MPSC queue behind every queued publish, and
// the reply rides a future back. Under load that queue wait — not the log —
// dominates append→fetch latency (~queue_capacity × per-task cost). A
// Subscription removes the round trip entirely: the *shard* owns the read
// cursor. A waiter parked on the shard broker (Broker::WaitForAppend) fires
// at append time, the shard fetches the new messages into a bounded handoff
// buffer while still on its own thread — stamping the trace's fetch stage
// micro­seconds after the append — and rings a host-side Doorbell the
// consumer thread parks on.
//
// Flow control: the handoff buffer is bounded, and what happens when a slow
// consumer fills it is a policy choice (SlowConsumerPolicy):
//
//   * kBlock (default) — the shard stops fetching (stalls); the consumer's
//     next drain below the half-full watermark posts a resume. Nothing is
//     dropped, nothing is unbounded — backpressure reaches the publisher.
//   * kDropOldest — the shard keeps fetching and evicts the oldest buffered
//     messages to make room. The consumer keeps up with the live edge at the
//     cost of a gap; every evicted record is counted (drops() and
//     runtime.slow_consumer.drops), so loss is exact, never silent.
//   * kDisconnect — the overflow is terminal: the subscription breaks
//     (broken() goes true, Wait returns false once drained), an obs
//     kSessionBreak with cause "slow_consumer" is logged, and the shard
//     stands down. The MigratoryData posture: a consumer too slow to keep up
//     is isolated from the fanout path rather than allowed to stall it.
//
// Modes. A Subscription created while RuntimeOptions::event_driven is false
// runs the classic client-driven loop instead (PollBatch issues a synchronous
// fetch on the owner shard; Wait sleeps the poll period), so equivalence
// suites can assert both modes deliver identical sequences through one API.
//
// Threading: one consumer thread per Subscription (the doorbell's MPSC-like
// contract); the shard side runs only on the owner shard's worker. All
// shared state lives behind one mutex in a shared_ptr'd block, so a wakeup
// in flight during teardown is harmless.
#ifndef SRC_RUNTIME_SUBSCRIPTION_H_
#define SRC_RUNTIME_SUBSCRIPTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "obs/collector.h"
#include "pubsub/broker.h"
#include "pubsub/filter.h"
#include "pubsub/types.h"
#include "runtime/doorbell.h"
#include "runtime/shard_pool.h"

namespace runtime {

// What the owner shard does when a subscription's handoff buffer is full.
// See the file header for the semantics of each arm; the policy matrix is
// measured per-arm in bench_overload and pinned by the `overload` test suite
// (kBlock loses nothing, kDropOldest's loss equals its drop counter,
// kDisconnect surfaces a kSessionBreak with cause "slow_consumer").
enum class SlowConsumerPolicy : std::uint8_t { kBlock, kDropOldest, kDisconnect };

const char* SlowConsumerPolicyName(SlowConsumerPolicy policy);

struct SubscriptionOptions {
  // Handoff bound (messages) on the shard-side lane; the consumer's
  // swapped-out lane can briefly hold one more laneful, so total in-flight
  // is bounded by 2x this.
  std::size_t handoff_capacity = 8192;
  // Max messages the shard fetches per pump round (amortizes lock traffic
  // without monopolizing the shard).
  std::size_t shard_batch = 256;
  // Doorbell interrupt moderation: after a ring, further pushes stay silent
  // for this window (the consumer is draining, or its bounded park times out
  // and finds them). The first push after a quiet stream always rings
  // immediately, so idle-stream wakeup latency is unaffected; under
  // sustained load this bounds wakeup context switches to ~1/window instead
  // of one per drain cycle. 0 rings on every empty→nonempty push.
  common::TimeMicros wake_coalesce_us = 500;
  // Broker-side content filter. When set, the shard registers the filter as
  // an interest on its broker: the pump fetches through the filtered scan
  // path (only matching records reach the handoff buffer) and parks on
  // WaitForMatch, so non-matching appends wake nobody — delivery work is
  // O(matching), not O(all sessions).
  std::optional<pubsub::Filter> filter;
  // Full-handoff-buffer behavior; see SlowConsumerPolicy.
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;
};

class Subscription {
 public:
  ~Subscription();

  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  // Drains up to `max` messages into `out` (appended), in partition log
  // order. Event mode pops the handoff buffer and resumes a stalled shard;
  // periodic mode fetches synchronously from the owner shard. Returns the
  // number appended.
  std::size_t PollBatch(std::vector<pubsub::StoredMessage>* out, std::size_t max);

  // Event mode: parks on the doorbell until data is buffered or `timeout_us`
  // elapses; returns true if data is waiting. timeout_us <= 0 waits until
  // data arrives. Parks are internally bounded (a re-check sweep every few
  // milliseconds) so a ring held back by wake coalescing — or any forgotten
  // signal — delays a waiter, never strands it. Periodic mode: sleeps the
  // pool's subscription poll period and returns true (poll to find out).
  bool Wait(common::TimeMicros timeout_us);

  bool event_driven() const;
  // The broker-side filter this subscription was created with, if any.
  const std::optional<pubsub::Filter>& filter() const { return shared_->filter; }
  // Next offset the shard (event) / consumer (periodic) will fetch.
  pubsub::Offset cursor() const;
  // Parks that ended with data available (event mode).
  std::uint64_t wakeups() const;
  // Messages evicted from the handoff buffer (kDropOldest only): the exact
  // loss this subscription has taken. Always 0 under kBlock/kDisconnect.
  std::uint64_t drops() const;
  // True once a kDisconnect overflow cut this subscription. Buffered
  // messages stay drainable; after they are gone Wait returns false and no
  // new data will ever arrive — the consumer should tear down.
  bool broken() const;

  // Socket-writer handoff (the network front-end's consume discipline): the
  // hook runs — on the owner shard's worker thread — whenever the doorbell
  // rings, i.e. whenever buffered data became available to PollBatch. An
  // event-loop consumer that cannot park in Wait() registers a hook that
  // nudges its own wakeup primitive (pubsubd writes a self-pipe) and then
  // drains with PollBatch on its own thread. If data is already buffered at
  // registration time the hook fires once immediately (on the caller's
  // thread), closing the subscribe-then-attach window. The hook must be
  // cheap and must not call back into the Subscription. Event mode only;
  // pass nullptr to detach. NOTE: combine with wake_coalesce_us == 0 —
  // a hook-driven consumer never runs Wait()'s bounded re-check sweep, so
  // a coalesced (suppressed) ring would strand buffered data.
  void SetReadyHook(std::function<void()> hook);

 private:
  friend class ConcurrentBroker;

  // State shared by the consumer thread and the owner shard's worker; kept
  // alive by every closure that can still run (shard waiter callbacks,
  // posted resume/cancel tasks), so teardown never races a late wakeup.
  struct Shared {
    // Immutable after Subscribe. The owner shard's broker is deliberately
    // NOT cached here: a failover replaces the shard's broker, so every
    // shard-side touch re-resolves it through pool->core(shard) — always on
    // the shard's own thread (or inline/fenced with the workers parked),
    // where that access is legal.
    ShardPool* pool = nullptr;
    std::size_t shard = 0;
    std::string topic;
    pubsub::PartitionId partition = 0;
    std::size_t handoff_capacity = 8192;
    std::size_t shard_batch = 256;
    common::TimeMicros wake_coalesce_us = 500;
    common::TimeMicros poll_period = 1000;
    bool event_driven = true;
    // Broker-side content filter (immutable after Subscribe; empty = none).
    std::optional<pubsub::Filter> filter;
    SlowConsumerPolicy policy = SlowConsumerPolicy::kBlock;
    common::Histogram* wakeup_latency = nullptr;  // runtime.wakeup_latency_us
    common::Counter* rings = nullptr;             // runtime.doorbell_rings
    common::Counter* stall_count = nullptr;       // runtime.slow_consumer.stalls
    common::Counter* drop_count = nullptr;        // runtime.slow_consumer.drops
    common::Counter* disconnect_count = nullptr;  // runtime.slow_consumer.disconnects
    obs::Collector* obs = nullptr;                // kSessionBreak on kDisconnect.

    Doorbell bell;

    std::mutex mu;
    // Shard-side handoff lane. The consumer takes the whole lane in one O(1)
    // swap (see Subscription::local_) so its time under `mu` never scales
    // with batch size — a consumer draining 512 messages must not block the
    // owner shard's pump mid-publish-storm.
    std::vector<pubsub::StoredMessage> buffer;
    pubsub::Offset cursor = 0;
    bool stalled = false;   // Shard paused on a full buffer; consumer resumes.
    bool detached = false;  // Subscription destroyed; shard side stands down.
    bool broken = false;    // kDisconnect overflow fired; terminal.
    std::uint64_t wakeups = 0;
    std::uint64_t drops = 0;  // kDropOldest evictions, exact.
    // Host-time mark of the empty→nonempty transition; -1 when unset. The
    // consumer's first drain after it measures doorbell wakeup latency.
    std::int64_t data_ready_at_us = -1;
    // Host-time mark of the last doorbell ring (0 = never): the moderation
    // clock for wake_coalesce_us.
    std::int64_t last_ring_us = 0;
    // Ready hook (see SetReadyHook); invoked right after each bell ring.
    std::function<void()> ready_hook;
    pubsub::Broker::WaitTicket ticket = 0;  // Shard-confined.
    // Filtered-interest registration, shard-confined. `interest_broker`
    // remembers which broker instance holds the registration so the pump
    // re-registers after a failover swaps the shard's broker (the old
    // registration died with the old broker).
    pubsub::Broker::InterestId interest_id = 0;
    pubsub::Broker* interest_broker = nullptr;
    // Shard-confined fetch scratch: when caught up, every append fires one
    // pump, so the fetch path must not allocate per call. Capacity circulates
    // scratch → buffer → local_ and back through the two swaps.
    std::vector<pubsub::StoredMessage> scratch;
  };

  Subscription(ShardPool* pool, std::size_t shard, std::shared_ptr<Shared> shared)
      : pool_(pool), shard_(shard), shared_(std::move(shared)) {}

  // Runs on the owner shard's worker only: fetches available messages into
  // the handoff buffer, rings the bell, and re-arms the append waiter (or
  // applies the slow-consumer policy on a full buffer).
  static void PumpShard(const std::shared_ptr<Shared>& shared);
  // kDisconnect finalizer (shard thread): counts the disconnect, logs the
  // kSessionBreak, and wakes the consumer so it observes broken().
  static void FinishCut(const std::shared_ptr<Shared>& shared);

  ShardPool* pool_;
  std::size_t shard_;
  std::shared_ptr<Shared> shared_;
  // Consumer-side lane (consumer thread only, no lock): the last swapped-out
  // shard lane, drained from local_pos_.
  std::vector<pubsub::StoredMessage> local_;
  std::size_t local_pos_ = 0;
};

}  // namespace runtime

#endif  // SRC_RUNTIME_SUBSCRIPTION_H_
