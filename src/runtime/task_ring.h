// TaskRing: the shard ingress lane behind RuntimeOptions::lockfree_ring. Both
// ring implementations — the mutex+condvar MpscQueue and the CAS-claimed
// LockFreeMpscQueue — satisfy the same contract (loud TryPush backpressure,
// per-producer FIFO, close-drains-then-exit), so the pool talks to them
// through this one-virtual-call facade. The indirection is off the contention
// path: one predicted indirect call per operation versus a lock acquisition
// (mutex ring) or a CAS (lock-free ring) is noise; it is what lets the
// equivalence suites run the *identical* pool code over both rings.
#ifndef SRC_RUNTIME_TASK_RING_H_
#define SRC_RUNTIME_TASK_RING_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/lockfree_mpsc_queue.h"
#include "runtime/mpsc_queue.h"

namespace runtime {

using Task = std::function<void()>;

class TaskRing {
 public:
  virtual ~TaskRing() = default;

  virtual bool TryPush(Task&& task) = 0;
  // All-or-nothing: accepts every task (moved out) or none (tasks untouched).
  virtual bool TryPushBatch(Task* tasks, std::size_t n) = 0;
  virtual bool Push(Task&& task) = 0;
  virtual std::size_t PopBatch(std::vector<Task>& out, std::size_t max) = 0;
  virtual void Close() = 0;
  virtual void Reopen() = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t capacity() const = 0;
  virtual bool closed() const = 0;
};

template <typename Queue>
class TaskRingImpl final : public TaskRing {
 public:
  explicit TaskRingImpl(std::size_t capacity) : queue_(capacity) {}

  bool TryPush(Task&& task) override { return queue_.TryPush(std::move(task)); }
  bool TryPushBatch(Task* tasks, std::size_t n) override {
    return queue_.TryPushBatch(tasks, n);
  }
  bool Push(Task&& task) override { return queue_.Push(std::move(task)); }
  std::size_t PopBatch(std::vector<Task>& out, std::size_t max) override {
    return queue_.PopBatch(out, max);
  }
  void Close() override { queue_.Close(); }
  void Reopen() override { queue_.Reopen(); }
  std::size_t size() const override { return queue_.size(); }
  std::size_t capacity() const override { return queue_.capacity(); }
  bool closed() const override { return queue_.closed(); }

 private:
  Queue queue_;
};

inline std::unique_ptr<TaskRing> MakeTaskRing(bool lockfree, std::size_t capacity) {
  if (lockfree) {
    return std::make_unique<TaskRingImpl<LockFreeMpscQueue<Task>>>(capacity);
  }
  return std::make_unique<TaskRingImpl<MpscQueue<Task>>>(capacity);
}

}  // namespace runtime

#endif  // SRC_RUNTIME_TASK_RING_H_
