#include "server/pubsubd.h"

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace server {

namespace {

std::int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string PeerName(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  const unsigned char* b = reinterpret_cast<const unsigned char*>(&addr.sin_addr.s_addr);
  std::snprintf(ip, sizeof(ip), "%u.%u.%u.%u", b[0], b[1], b[2], b[3]);
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

// Shard-side callbacks (async publish/fetch/commit completions, subscription
// ready hooks, watch fan-out) outlive individual sessions and can race
// Stop(): they reach the server only through this gate, which Stop() closes
// under the gate mutex after the loop has joined. A callback that wins the
// race nudges the loop; one that loses sees a null server and no-ops.
struct Server::NudgeGate {
  std::mutex mu;
  Server* server = nullptr;
};

struct Server::Completion {
  std::uint64_t session_id = 0;
  net::Verb verb = net::Verb::kError;
  std::uint64_t request_id = 0;
  std::string payload;
};

// Cross-thread half of a watch stream: ConcurrentWatchService callbacks run
// on shard worker threads and append here; the loop thread drains into
// WATCH_PUSH frames. `resynced` is terminal (the wire restatement of W4);
// `dead` means the session side is gone and deliveries are dropped.
struct Server::WatchQueue {
  std::mutex mu;
  std::vector<net::WatchItem> items;
  bool resynced = false;
  bool overflowed = false;
  bool dead = false;
};

class Server::WatchFan : public watch::WatchCallback {
 public:
  WatchFan(std::shared_ptr<NudgeGate> gate, std::shared_ptr<WatchQueue> queue,
           std::uint64_t session_id, std::size_t max_queue)
      : gate_(std::move(gate)),
        queue_(std::move(queue)),
        session_id_(session_id),
        max_queue_(max_queue) {}

  void OnEvent(const common::ChangeEvent& event) override {
    net::WatchItem item;
    item.kind = net::WatchItem::Kind::kEvent;
    item.event = event;
    Push(std::move(item), /*resync=*/false);
  }

  void OnProgress(const common::ProgressEvent& event) override {
    net::WatchItem item;
    item.kind = net::WatchItem::Kind::kProgress;
    item.progress = event;
    Push(std::move(item), /*resync=*/false);
  }

  void OnResync() override {
    net::WatchItem item;
    item.kind = net::WatchItem::Kind::kResync;
    Push(std::move(item), /*resync=*/true);
  }

 private:
  void Push(net::WatchItem item, bool resync) {
    {
      std::lock_guard<std::mutex> lock(queue_->mu);
      if (queue_->dead || queue_->resynced) {
        return;  // W4: nothing after the terminal resync (or after teardown).
      }
      if (!resync && queue_->items.size() >= max_queue_) {
        // Slow watcher: the socket cannot keep up with the push stream. A
        // push stream has no pull-side backpressure to lean on, so this is
        // the W3 cut: drop the queued backlog, deliver one terminal resync,
        // and let the watcher re-snapshot. Loud, never silent.
        queue_->items.clear();
        queue_->overflowed = true;
        resync = true;
        item = net::WatchItem{};
        item.kind = net::WatchItem::Kind::kResync;
      }
      if (resync) {
        queue_->resynced = true;
      }
      queue_->items.push_back(std::move(item));
    }
    std::lock_guard<std::mutex> lock(gate_->mu);
    if (gate_->server != nullptr) {
      gate_->server->Nudge(session_id_);
    }
  }

  std::shared_ptr<NudgeGate> gate_;
  std::shared_ptr<WatchQueue> queue_;
  std::uint64_t session_id_;
  std::size_t max_queue_;
};

struct Server::SubStream {
  std::unique_ptr<runtime::Subscription> sub;
  std::uint32_t max_batch = 256;
};

struct Server::WatchStream {
  std::shared_ptr<WatchQueue> queue;
  std::unique_ptr<WatchFan> fan;
  std::unique_ptr<watch::WatchHandle> handle;  // After fan: destroyed first.
};

struct Server::Session {
  explicit Session(std::size_t max_payload) : decoder(max_payload) {}

  std::uint64_t id = 0;
  net::Fd fd;
  net::FrameDecoder decoder;
  std::string peer;

  // Outbound bytes [out_head, out.size()) are pending; compacted on drain.
  std::string out;
  std::size_t out_head = 0;

  bool hello_done = false;
  // Negotiated wire version: min(client, server), pinned by HELLO. Every
  // outbound frame and version-sensitive payload codec on this session uses
  // it, so a v1 peer never sees a v2-only block.
  std::uint8_t wire_version = net::kProtocolVersion;
  bool saw_goodbye = false;
  bool closing = false;  // Flush pending bytes, then close.
  bool dead = false;     // Torn down; reaped at end of the loop iteration.
  std::string close_cause = "server_close";
  bool close_log = false;
  std::int64_t last_recv_us = 0;

  std::map<std::uint64_t, SubStream> subs;                       // By request id.
  std::map<std::uint64_t, std::unique_ptr<WatchStream>> watches;  // By request id.
};

Server::Server(runtime::ConcurrentBroker* broker, runtime::ConcurrentWatchService* watch,
               common::MetricsRegistry* metrics, ServerOptions options)
    : broker_(broker), watch_(watch), metrics_(metrics), options_(std::move(options)) {
  options_.max_payload = std::min(options_.max_payload, net::kMaxPayload);
  gate_ = std::make_shared<NudgeGate>();
  gate_->server = this;
  sessions_opened_ = &metrics_->counter("net.sessions_opened");
  sessions_closed_ = &metrics_->counter("net.sessions_closed");
  frames_in_ = &metrics_->counter("net.frames_in");
  frames_out_ = &metrics_->counter("net.frames_out");
  bytes_in_ = &metrics_->counter("net.bytes_in");
  bytes_out_ = &metrics_->counter("net.bytes_out");
  frame_errors_ = &metrics_->counter("net.frame_errors");
  heartbeat_misses_ = &metrics_->counter("net.heartbeat_misses");
  backpressure_errors_ = &metrics_->counter("net.backpressure_errors");
  accept_rejected_ = &metrics_->counter("net.accept_rejected");
  watch_overflows_ = &metrics_->counter("net.watch_overflows");
  active_sessions_ = &metrics_->gauge("net.active_sessions");
}

Server::~Server() { Stop(); }

common::Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return common::Status::FailedPrecondition("server already running");
  }
  auto listener = net::TcpListen(options_.host, options_.port, 128, &port_);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = std::move(*listener);
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    listener_.Close();
    return common::Status::Internal("pipe: errno " + std::to_string(errno));
  }
  wake_rx_ = net::Fd(pipefd[0]);
  wake_tx_ = net::Fd(pipefd[1]);
  (void)net::SetNonBlocking(wake_rx_.get());
  (void)net::SetNonBlocking(wake_tx_.get());
  {
    // Re-arm the gate (Start after Stop reuses the server).
    std::lock_guard<std::mutex> lock(gate_->mu);
    gate_->server = this;
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return common::Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) {
    loop_.join();
  }
  {
    // Close the gate: in-flight shard-side callbacks either already nudged
    // (harmless — the queues drain into the void below) or see null.
    std::lock_guard<std::mutex> lock(gate_->mu);
    gate_->server = nullptr;
  }
  // Tear down surviving sessions on this thread (a non-worker thread, as the
  // watch-handle contract requires). Subscriptions post their shard-side
  // cancellations, so the pool must still be running here.
  std::vector<std::uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    ids.push_back(id);
  }
  for (std::uint64_t id : ids) {
    Teardown(id, "server_stop", /*log_break=*/false);
  }
  sessions_.clear();
  active_sessions_->Set(0);
  listener_.Close();
  wake_rx_.Close();
  wake_tx_.Close();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    completions_.clear();
    ready_sessions_.clear();
  }
}

void Server::Nudge(std::uint64_t session_id) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ready_sessions_.push_back(session_id);
  }
  WakeLoop();
}

void Server::PushCompletion(std::uint64_t session_id, net::Verb verb, std::uint64_t request_id,
                            std::string payload) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    completions_.push_back(Completion{session_id, verb, request_id, std::move(payload)});
  }
  WakeLoop();
}

void Server::WakeLoop() {
  if (!wake_tx_.valid()) {
    return;
  }
  const char b = 1;
  // A full pipe already guarantees a pending wakeup; errors are ignorable.
  (void)::write(wake_tx_.get(), &b, 1);
}

Server::Session* Server::FindSession(std::uint64_t id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void Server::Loop() {
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> order;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    order.clear();
    pfds.push_back(pollfd{listener_.get(), POLLIN, 0});
    pfds.push_back(pollfd{wake_rx_.get(), POLLIN, 0});
    bool any_periodic = false;
    for (const auto& [id, s] : sessions_) {
      short events = POLLIN;
      if (s->out.size() > s->out_head) {
        events |= POLLOUT;
      }
      pfds.push_back(pollfd{s->fd.get(), events, 0});
      order.push_back(id);
      for (const auto& [rid, sub] : s->subs) {
        if (!sub.sub->event_driven()) {
          any_periodic = true;
        }
      }
    }

    // Sweep granularity: fine enough that a dead peer is detected within a
    // fraction of its window, coarse enough to stay idle between events.
    const std::int64_t interval_ms =
        std::max<std::int64_t>(1, options_.heartbeat_interval_us / (2 * common::kMicrosPerMilli));
    int timeout_ms = static_cast<int>(std::min<std::int64_t>(interval_ms, 100));
    if (any_periodic) {
      timeout_ms = 1;  // Periodic subscriptions have no doorbell to ring us.
    }
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      break;  // Catastrophic (EBADF and friends): stop serving, Stop() reaps.
    }
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }

    if (pfds[1].revents != 0) {
      char drain[256];
      while (::read(wake_rx_.get(), drain, sizeof(drain)) > 0) {
      }
    }
    std::vector<Completion> completions;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      completions.swap(completions_);
      ready_sessions_.clear();  // The unconditional pump below covers them.
    }

    if (pfds[0].revents != 0) {
      AcceptNew();
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      Session* s = FindSession(order[i]);
      if (s == nullptr || s->dead) {
        continue;
      }
      const short re = pfds[i + 2].revents;
      if ((re & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0) {
        ReadSession(*s);  // EOF/errors surface through the read path.
      }
    }
    for (Completion& c : completions) {
      Session* s = FindSession(c.session_id);
      if (s == nullptr || s->dead) {
        continue;  // Session died while its shard-side work was in flight.
      }
      SendFrame(*s, c.verb, c.request_id, c.payload);
    }
    // Pump every live session: subscriptions ring through the wake pipe but
    // the pump itself is idempotent and cheap when nothing is buffered, and
    // running it unconditionally also handles drain-below-watermark resumes
    // and periodic-mode subscriptions without separate bookkeeping.
    for (const auto& [id, s] : sessions_) {
      if (s->dead) {
        continue;
      }
      PumpSubscriptions(*s);
      PumpWatches(*s);
    }
    for (const auto& [id, s] : sessions_) {
      if (!s->dead && s->out.size() > s->out_head) {
        FlushSession(*s);
      }
    }
    SweepDeadPeers(SteadyMicros());

    for (auto it = sessions_.begin(); it != sessions_.end();) {
      it = it->second->dead ? sessions_.erase(it) : std::next(it);
    }
    active_sessions_->Set(static_cast<std::int64_t>(sessions_.size()));
  }
}

void Server::AcceptNew() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t alen = sizeof(addr);
    const int fd = ::accept(listener_.get(), reinterpret_cast<sockaddr*>(&addr), &alen);
    if (fd < 0) {
      return;  // EAGAIN (drained) or transient accept failure; poll re-arms.
    }
    net::Fd conn(fd);
    if (sessions_.size() >= options_.max_connections) {
      accept_rejected_->Increment();
      // Best-effort refusal so the client sees a typed error, not a RST.
      std::string payload;
      net::Encode(net::ErrorBody{static_cast<std::uint32_t>(common::StatusCode::kResourceExhausted),
                                 0, "connection limit reached"},
                  &payload);
      std::string frame;
      net::EncodeFrame(frame, net::Verb::kError, 0, payload);
      std::size_t n = 0;
      (void)net::WriteSome(conn.get(), frame.data(), frame.size(), &n);
      continue;
    }
    (void)net::SetNonBlocking(conn.get());
    net::SetNoDelay(conn.get());
    auto s = std::make_unique<Session>(options_.max_payload);
    s->id = next_session_id_++;
    s->fd = std::move(conn);
    s->peer = PeerName(addr);
    s->last_recv_us = SteadyMicros();
    sessions_opened_->Increment();
    sessions_.emplace(s->id, std::move(s));
  }
}

void Server::ReadSession(Session& s) {
  char buf[65536];
  for (;;) {
    std::size_t n = 0;
    const net::IoStatus st = net::ReadSome(s.fd.get(), buf, sizeof(buf), &n);
    if (st == net::IoStatus::kOk) {
      bytes_in_->Increment(static_cast<std::int64_t>(n));
      s.last_recv_us = SteadyMicros();
      s.decoder.Feed({buf, n});
      net::Frame frame;
      for (;;) {
        const net::FrameDecoder::Result r = s.decoder.Next(&frame);
        if (r == net::FrameDecoder::Result::kFrame) {
          frames_in_->Increment();
          DispatchFrame(s, frame);
          if (s.dead) {
            return;
          }
        } else if (r == net::FrameDecoder::Result::kNeedMore) {
          break;
        } else {
          // Framing integrity lost: there is no boundary to resynchronize
          // on. One best-effort typed error, then the connection dies loudly.
          frame_errors_->Increment();
          std::string payload;
          net::Encode(
              net::ErrorBody{static_cast<std::uint32_t>(common::StatusCode::kInvalidArgument), 0,
                             std::string("frame error: ") + net::FrameErrorName(s.decoder.error())},
              &payload);
          std::string out;
          net::EncodeFrame(out, net::Verb::kError, 0, payload);
          std::size_t wrote = 0;
          (void)net::WriteSome(s.fd.get(), out.data(), out.size(), &wrote);
          Teardown(s.id, std::string("frame_error:") + net::FrameErrorName(s.decoder.error()),
                   /*log_break=*/true);
          return;
        }
      }
      continue;  // Keep reading until EAGAIN so level-triggered poll stays quiet.
    }
    if (st == net::IoStatus::kWouldBlock) {
      return;
    }
    if (st == net::IoStatus::kEof) {
      if (s.saw_goodbye) {
        Teardown(s.id, "goodbye", /*log_break=*/false);
      } else if (s.decoder.BytesBuffered() > 0) {
        // The peer died mid-frame: a truncated frame is corruption at EOF.
        frame_errors_->Increment();
        Teardown(s.id, "truncated_frame", /*log_break=*/true);
      } else {
        Teardown(s.id, "peer_closed", /*log_break=*/true);
      }
      return;
    }
    Teardown(s.id, s.saw_goodbye ? "goodbye" : "io_error", /*log_break=*/!s.saw_goodbye);
    return;
  }
}

void Server::FlushSession(Session& s) {
  while (s.out_head < s.out.size()) {
    std::size_t n = 0;
    const net::IoStatus st =
        net::WriteSome(s.fd.get(), s.out.data() + s.out_head, s.out.size() - s.out_head, &n);
    if (st == net::IoStatus::kOk) {
      s.out_head += n;
      bytes_out_->Increment(static_cast<std::int64_t>(n));
      continue;
    }
    if (st == net::IoStatus::kWouldBlock) {
      break;  // POLLOUT re-arms on the next loop pass.
    }
    Teardown(s.id, s.saw_goodbye ? "goodbye" : "io_error", /*log_break=*/!s.saw_goodbye);
    return;
  }
  if (s.out_head == s.out.size()) {
    s.out.clear();
    s.out_head = 0;
    if (s.closing) {
      Teardown(s.id, s.close_cause, s.close_log);
    }
  } else if (s.out_head > (1u << 20) && s.out_head > s.out.size() / 2) {
    s.out.erase(0, s.out_head);
    s.out_head = 0;
  }
}

void Server::SendFrame(Session& s, net::Verb verb, std::uint64_t request_id,
                       const std::string& payload) {
  if (s.dead) {
    return;
  }
  net::EncodeFrame(s.out, verb, request_id, payload, s.wire_version);
  frames_out_->Increment();
}

void Server::SendError(Session& s, std::uint64_t request_id, const common::Status& status,
                       common::TimeMicros retry_after_us) {
  if (retry_after_us > 0) {
    backpressure_errors_->Increment();
  }
  std::string payload;
  net::Encode(net::ErrorBody{static_cast<std::uint32_t>(status.code()), retry_after_us,
                             status.message()},
              &payload);
  SendFrame(s, net::Verb::kError, request_id, payload);
}

void Server::FailSession(Session& s, std::uint64_t request_id, const common::Status& status,
                         const std::string& cause) {
  SendError(s, request_id, status, 0);
  s.closing = true;
  s.close_cause = cause;
  s.close_log = true;
}

void Server::DispatchFrame(Session& s, const net::Frame& frame) {
  if (!s.hello_done) {
    if (frame.verb != net::Verb::kHello) {
      frame_errors_->Increment();
      FailSession(s, frame.request_id,
                  common::Status::FailedPrecondition("first frame must be HELLO"),
                  "frame_error:no_hello");
      return;
    }
    net::HelloRequest req;
    if (!net::Decode(frame.payload, &req)) {
      frame_errors_->Increment();
      FailSession(s, frame.request_id, common::Status::InvalidArgument("malformed HELLO"),
                  "frame_error:malformed_payload");
      return;
    }
    if (req.wire_version < net::kMinProtocolVersion) {
      FailSession(s, frame.request_id,
                  common::Status::FailedPrecondition(
                      "protocol version mismatch: client " + std::to_string(req.wire_version) +
                      ", server " + std::to_string(net::kProtocolVersion)),
                  "frame_error:version_mismatch");
      return;
    }
    s.hello_done = true;
    // Speak min(client, server): a v1 client gets v1 frames and payloads; the
    // frame header's version byte agrees with the payload's restatement for
    // every client this codebase ships, and the payload is authoritative.
    s.wire_version = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(req.wire_version, net::kProtocolVersion));
    net::HelloResponse resp;
    resp.wire_version = s.wire_version;
    resp.heartbeat_interval_us = options_.heartbeat_interval_us;
    resp.heartbeat_misses = options_.heartbeat_misses;
    resp.max_payload = static_cast<std::uint32_t>(options_.max_payload);
    resp.server_name = options_.name;
    std::string payload;
    net::Encode(resp, &payload);
    SendFrame(s, net::Verb::kHello, frame.request_id, payload);
    return;
  }

  switch (frame.verb) {
    case net::Verb::kHeartbeat: {
      // Echo verbatim (same request id, same timestamp): the client measures
      // liveness RTT; the server side already refreshed last_recv_us.
      SendFrame(s, net::Verb::kHeartbeat, frame.request_id, std::string(frame.payload));
      return;
    }
    case net::Verb::kGoodbye: {
      SendFrame(s, net::Verb::kGoodbye, frame.request_id, "");
      s.saw_goodbye = true;
      s.closing = true;
      s.close_cause = "goodbye";
      s.close_log = false;
      return;
    }
    case net::Verb::kCreateTopic: {
      net::CreateTopicRequest req;
      if (!net::Decode(frame.payload, &req)) {
        break;
      }
      // Fenced across shards — the one deliberately blocking verb (admin
      // plane; rare by construction).
      const common::Status st = broker_->CreateTopic(req.topic, req.config);
      if (st.ok()) {
        SendFrame(s, net::Verb::kCreateTopic, frame.request_id, "");
      } else {
        SendError(s, frame.request_id, st, 0);
      }
      return;
    }
    case net::Verb::kPublish: {
      net::PublishRequest req;
      if (!net::Decode(frame.payload, &req)) {
        break;
      }
      if (!req.headers.empty() && s.wire_version < 2) {
        SendError(s, frame.request_id,
                  common::Status::InvalidArgument("record headers require protocol v2"), 0);
        return;
      }
      pubsub::Message msg;
      msg.key = std::move(req.key);
      msg.value = std::move(req.value);
      msg.publish_time = req.publish_time;
      msg.headers = std::move(req.headers);
      std::optional<pubsub::PartitionId> partition;
      if (req.has_partition) {
        partition = req.partition;
      }
      common::TimeMicros retry_after = 0;
      if (req.ack == net::PublishAck::kOffset) {
        const std::shared_ptr<NudgeGate> gate = gate_;
        const std::uint64_t sid = s.id;
        const std::uint64_t rid = frame.request_id;
        // A completion can surface kUnavailable too (it runs later, against
        // whatever the shard has become); an ERROR carrying that code with a
        // zero hint would tell a hint-obeying client "don't retry" while the
        // shard is saturated. Capture the base hint now — ring depth at
        // completion time is unknowable here, and the base keeps the bound.
        const common::TimeMicros hint =
            std::max<common::TimeMicros>(1, broker_->pool()->options().retry_after);
        const common::Status st = broker_->TryPublishAsync(
            req.topic, std::move(msg), partition, &retry_after,
            [gate, sid, rid, hint](common::Result<pubsub::PublishResult> r) {
              std::lock_guard<std::mutex> lock(gate->mu);
              if (gate->server == nullptr) {
                return;
              }
              if (r.ok()) {
                std::string payload;
                net::Encode(net::PublishResponse{true, r->partition, r->offset}, &payload);
                gate->server->PushCompletion(sid, net::Verb::kPublish, rid, std::move(payload));
              } else {
                const bool unavailable =
                    r.status().code() == common::StatusCode::kUnavailable;
                std::string payload;
                net::Encode(net::ErrorBody{static_cast<std::uint32_t>(r.status().code()),
                                           unavailable ? hint : 0, r.status().message()},
                            &payload);
                gate->server->PushCompletion(sid, net::Verb::kError, rid, std::move(payload));
              }
            });
        if (!st.ok()) {
          SendError(s, frame.request_id, st, retry_after);
        }
        return;
      }
      const common::Status st = broker_->TryPublish(req.topic, std::move(msg), partition,
                                                    &retry_after);
      if (!st.ok()) {
        SendError(s, frame.request_id, st, retry_after);
      } else if (req.ack == net::PublishAck::kAccept) {
        std::string payload;
        net::Encode(net::PublishResponse{}, &payload);
        SendFrame(s, net::Verb::kPublish, frame.request_id, payload);
      }
      return;
    }
    case net::Verb::kFetch: {
      net::FetchRequest req;
      if (!net::Decode(frame.payload, &req)) {
        break;
      }
      common::TimeMicros retry_after = 0;
      const std::shared_ptr<NudgeGate> gate = gate_;
      const std::uint64_t sid = s.id;
      const std::uint64_t rid = frame.request_id;
      const std::uint32_t wv = s.wire_version;
      const common::TimeMicros hint =
          std::max<common::TimeMicros>(1, broker_->pool()->options().retry_after);
      const common::Status st = broker_->TryFetchAsync(
          req.topic, req.partition, req.offset, req.max, &retry_after,
          [gate, sid, rid, wv, hint](common::Result<std::vector<pubsub::StoredMessage>> r) {
            std::lock_guard<std::mutex> lock(gate->mu);
            if (gate->server == nullptr) {
              return;
            }
            if (r.ok()) {
              net::MessageBatch batch;
              batch.messages = std::move(*r);
              std::string payload;
              net::Encode(batch, &payload, wv);
              gate->server->PushCompletion(sid, net::Verb::kFetch, rid, std::move(payload));
            } else {
              const bool unavailable =
                  r.status().code() == common::StatusCode::kUnavailable;
              std::string payload;
              net::Encode(net::ErrorBody{static_cast<std::uint32_t>(r.status().code()),
                                         unavailable ? hint : 0, r.status().message()},
                          &payload);
              gate->server->PushCompletion(sid, net::Verb::kError, rid, std::move(payload));
            }
          });
      if (!st.ok()) {
        SendError(s, frame.request_id, st, retry_after);
      }
      return;
    }
    case net::Verb::kSubscribe: {
      net::SubscribeRequest req;
      if (!net::Decode(frame.payload, &req)) {
        break;
      }
      if (s.subs.count(frame.request_id) > 0 || s.watches.count(frame.request_id) > 0) {
        SendError(s, frame.request_id,
                  common::Status::AlreadyExists("stream id already in use"), 0);
        return;
      }
      if (req.has_filter && s.wire_version < 2) {
        SendError(s, frame.request_id,
                  common::Status::InvalidArgument("filtered subscribe requires protocol v2"), 0);
        return;
      }
      runtime::SubscriptionOptions opts;
      opts.handoff_capacity = options_.subscription_handoff;
      opts.slow_consumer = options_.slow_consumer;
      // An event-loop consumer never parks in Wait(), so its re-check sweep
      // never runs: every ring must reach the hook (no coalescing).
      opts.wake_coalesce_us = 0;
      if (req.has_filter) {
        opts.filter = std::move(req.filter);
      }
      auto sub = broker_->Subscribe(req.topic, req.partition, req.start, opts);
      if (sub == nullptr) {
        SendError(s, frame.request_id,
                  common::Status::NotFound("no such topic/partition: " + req.topic + "/" +
                                           std::to_string(req.partition)),
                  0);
        return;
      }
      const std::shared_ptr<NudgeGate> gate = gate_;
      const std::uint64_t sid = s.id;
      sub->SetReadyHook([gate, sid] {
        std::lock_guard<std::mutex> lock(gate->mu);
        if (gate->server != nullptr) {
          gate->server->Nudge(sid);
        }
      });
      SubStream stream;
      stream.sub = std::move(sub);
      stream.max_batch = std::max<std::uint32_t>(1, req.max_batch);
      s.subs.emplace(frame.request_id, std::move(stream));
      SendFrame(s, net::Verb::kSubscribe, frame.request_id, "");
      return;
    }
    case net::Verb::kWatch: {
      net::WatchRequest req;
      if (!net::Decode(frame.payload, &req)) {
        break;
      }
      if (watch_ == nullptr) {
        SendError(s, frame.request_id,
                  common::Status::FailedPrecondition("server has no watch plane"), 0);
        return;
      }
      if (s.subs.count(frame.request_id) > 0 || s.watches.count(frame.request_id) > 0) {
        SendError(s, frame.request_id,
                  common::Status::AlreadyExists("stream id already in use"), 0);
        return;
      }
      if (req.has_filter && s.wire_version < 2) {
        SendError(s, frame.request_id,
                  common::Status::InvalidArgument("filtered watch requires protocol v2"), 0);
        return;
      }
      auto stream = std::make_unique<WatchStream>();
      stream->queue = std::make_shared<WatchQueue>();
      stream->fan = std::make_unique<WatchFan>(gate_, stream->queue, s.id,
                                               options_.max_watch_queue);
      if (req.has_filter) {
        // low/high and the filter's range are encoded to agree; intersecting
        // honors both if a foreign client ever disagrees.
        watch::Filter filter = std::move(req.filter);
        filter.range = common::KeyRange{req.low, req.high}.Intersect(filter.range);
        stream->handle = watch_->WatchFiltered(std::move(filter), req.version, stream->fan.get());
      } else {
        stream->handle = watch_->Watch(req.low, req.high, req.version, stream->fan.get());
      }
      if (stream->handle == nullptr) {
        // Header predicates: change events carry no headers (docs/FANOUT.md).
        SendError(s, frame.request_id,
                  common::Status::InvalidArgument("watch filters cannot use header predicates"),
                  0);
        return;
      }
      s.watches.emplace(frame.request_id, std::move(stream));
      SendFrame(s, net::Verb::kWatch, frame.request_id, "");
      return;
    }
    case net::Verb::kCommit: {
      net::CommitRequest req;
      if (!net::Decode(frame.payload, &req)) {
        break;
      }
      common::TimeMicros retry_after = 0;
      std::optional<pubsub::Offset> commit_offset;
      if (req.mode != net::CommitMode::kQuery) {
        commit_offset = req.offset;
      }
      common::Status st;
      if (req.mode == net::CommitMode::kCommit) {
        // Plain commit acks acceptance: once the task is on the owner
        // shard's queue the commit is as durable as any accepted publish.
        st = broker_->TryCommitAsync(req.group, req.partition, commit_offset, &retry_after,
                                     nullptr);
        if (st.ok()) {
          std::string payload;
          net::Encode(net::CommitResponse{}, &payload);
          SendFrame(s, net::Verb::kCommit, frame.request_id, payload);
          return;
        }
      } else {
        const std::shared_ptr<NudgeGate> gate = gate_;
        const std::uint64_t sid = s.id;
        const std::uint64_t rid = frame.request_id;
        st = broker_->TryCommitAsync(req.group, req.partition, commit_offset, &retry_after,
                                     [gate, sid, rid](pubsub::Offset committed) {
                                       std::lock_guard<std::mutex> lock(gate->mu);
                                       if (gate->server == nullptr) {
                                         return;
                                       }
                                       std::string payload;
                                       net::Encode(net::CommitResponse{true, committed}, &payload);
                                       gate->server->PushCompletion(sid, net::Verb::kCommit, rid,
                                                                    std::move(payload));
                                     });
        if (st.ok()) {
          return;
        }
      }
      SendError(s, frame.request_id, st, retry_after);
      return;
    }
    case net::Verb::kCancel: {
      // Idempotent: cancelling an unknown stream still acks (the stream may
      // have already died server-side, e.g. a watch cut to resync).
      auto sub_it = s.subs.find(frame.request_id);
      if (sub_it != s.subs.end()) {
        s.subs.erase(sub_it);  // ~Subscription posts the shard-side cancel.
      }
      auto watch_it = s.watches.find(frame.request_id);
      if (watch_it != s.watches.end()) {
        {
          std::lock_guard<std::mutex> lock(watch_it->second->queue->mu);
          watch_it->second->queue->dead = true;
        }
        watch_it->second->handle->Cancel();
        s.watches.erase(watch_it);
      }
      SendFrame(s, net::Verb::kCancel, frame.request_id, "");
      return;
    }
    default:
      frame_errors_->Increment();
      FailSession(s, frame.request_id,
                  common::Status::InvalidArgument(std::string("unexpected verb ") +
                                                  net::VerbName(frame.verb)),
                  "frame_error:unexpected_verb");
      return;
  }
  // Shared malformed-payload exit for every `break` above: a peer that sends
  // a structurally valid frame whose payload does not decode is as broken as
  // one that fails CRC — terminal, loud.
  frame_errors_->Increment();
  FailSession(s, frame.request_id,
              common::Status::InvalidArgument(std::string("malformed ") +
                                              net::VerbName(frame.verb) + " payload"),
              "frame_error:malformed_payload");
}

void Server::PumpSubscriptions(Session& s) {
  if (s.closing || s.subs.empty()) {
    return;
  }
  std::uint64_t broken_rid = 0;
  bool broken = false;
  for (auto& [rid, stream] : s.subs) {
    // Session-level flow control: a backed-up socket stops draining and the
    // subscription's bounded handoff lane fills. What happens next is the
    // slow-consumer policy: under kBlock the shard-side pump stalls and
    // backpressure reaches the publisher with nothing dropped; under
    // kDropOldest the lane evicts (counted) and the stream stays live;
    // under kDisconnect the lane breaks and the session is torn down below.
    while (s.out.size() - s.out_head < options_.send_buffer_limit) {
      net::MessageBatch batch;
      if (stream.sub->PollBatch(&batch.messages, stream.max_batch) == 0) {
        break;
      }
      std::string payload;
      net::Encode(batch, &payload, s.wire_version);
      SendFrame(s, net::Verb::kDeliver, rid, payload);
    }
    if (!broken && stream.sub->broken()) {
      broken = true;
      broken_rid = rid;
    }
  }
  if (broken) {
    // The runtime cut the lane (kDisconnect): no more data will ever flow on
    // this stream. Disconnect the whole session, loudly — the final ERROR
    // frame tells the peer why, and the teardown logs the kSessionBreak.
    FailSession(s, broken_rid,
                common::Status::ResourceExhausted(
                    "slow consumer: subscription handoff overflowed"),
                "slow_consumer");
  }
}

void Server::PumpWatches(Session& s) {
  if (s.closing || s.watches.empty()) {
    return;
  }
  std::vector<std::uint64_t> finished;
  for (auto& [rid, stream] : s.watches) {
    net::WatchPush push;
    bool terminal = false;
    bool overflowed = false;
    {
      std::lock_guard<std::mutex> lock(stream->queue->mu);
      if (stream->queue->items.empty()) {
        continue;
      }
      push.items.swap(stream->queue->items);
      terminal = stream->queue->resynced;
      overflowed = stream->queue->overflowed;
    }
    std::string payload;
    net::Encode(push, &payload);
    SendFrame(s, net::Verb::kWatchPush, rid, payload);
    if (terminal) {
      finished.push_back(rid);
      if (overflowed) {
        watch_overflows_->Increment();
        if (options_.obs != nullptr) {
          options_.obs->LogEvent(obs::EventKind::kSessionBreak, "slow_watcher",
                                 "session " + std::to_string(s.id) + " watch " +
                                     std::to_string(rid) + " peer " + s.peer);
        }
      }
    }
  }
  for (std::uint64_t rid : finished) {
    auto it = s.watches.find(rid);
    {
      std::lock_guard<std::mutex> lock(it->second->queue->mu);
      it->second->queue->dead = true;
    }
    it->second->handle->Cancel();
    s.watches.erase(it);  // W4: the stream is over; CANCEL from the client
                          // later still acks idempotently.
  }
}

void Server::SweepDeadPeers(std::int64_t now_us) {
  const std::int64_t window =
      options_.heartbeat_interval_us * static_cast<std::int64_t>(options_.heartbeat_misses);
  if (window <= 0) {
    return;
  }
  std::vector<std::uint64_t> dead;
  for (const auto& [id, s] : sessions_) {
    if (!s->dead && now_us - s->last_recv_us > window) {
      dead.push_back(id);
    }
  }
  for (std::uint64_t id : dead) {
    heartbeat_misses_->Increment();
    Teardown(id, "heartbeat_miss", /*log_break=*/true);
  }
}

void Server::Teardown(std::uint64_t session_id, const std::string& cause, bool log_break) {
  Session* s = FindSession(session_id);
  if (s == nullptr || s->dead) {
    return;
  }
  s->dead = true;
  // Silence the watch fans before cancelling, so a delivery racing the
  // cancel cannot enqueue into a stream nobody will drain.
  for (auto& [rid, stream] : s->watches) {
    {
      std::lock_guard<std::mutex> lock(stream->queue->mu);
      stream->queue->dead = true;
    }
    stream->handle->Cancel();
  }
  s->watches.clear();
  // ~Subscription posts each shard-side waiter cancellation; the handoff
  // lanes (and any parked shard pumps) are reclaimed with them.
  s->subs.clear();
  s->fd.Close();
  sessions_closed_->Increment();
  if (log_break) {
    if (options_.obs != nullptr) {
      options_.obs->LogEvent(obs::EventKind::kSessionBreak, cause,
                             "session " + std::to_string(session_id) + " peer " + s->peer);
    }
  }
  // The map entry is reaped by the loop iteration (or Stop); the Session
  // object stays valid for any reference still held on this stack.
}

}  // namespace server
