// pubsubd: the TCP front-end that puts real connections in front of the
// concurrent runtime. One poll()-driven event-loop thread owns every
// connection; per-connection Sessions speak the net/ frame protocol
// (HELLO handshake, PUBLISH/FETCH/SUBSCRIBE/WATCH/COMMIT verbs, heartbeat
// keepalive) against a ConcurrentBroker and (optionally) a
// ConcurrentWatchService supplied by the embedding process.
//
// Design rules, in the backpressure posture of the rest of the runtime:
//
//   * The loop never blocks on a shard. Publishes use TryPublish /
//     TryPublishAsync, fetches TryFetchAsync, commits TryCommitAsync —
//     saturation comes back as an ERROR frame carrying the shard's
//     retry_after hint, propagating backpressure to the remote producer
//     instead of stalling every other connection.
//   * Long-poll SUBSCRIBE rides the event-driven runtime::Subscription: the
//     owner shard pushes appends into the subscription's handoff lane and
//     the subscription's ready hook nudges the loop through a self-pipe —
//     no busy polling anywhere between an append and the DELIVER frame.
//     (Periodic-mode pools fall back to pumping at the pool's subscription
//     poll period.)
//   * Outbound flow control is layered: a session whose socket send buffer
//     backs up past send_buffer_limit stops draining its subscriptions, the
//     subscriptions' bounded handoff lanes fill and stall the shard-side
//     pump, and nothing is dropped. Watch streams — push-only, no client
//     pull — instead get the W3 treatment: a queue past max_watch_queue is
//     cut over to a terminal resync (loud, counted, obs-logged).
//   * Dead peers are detected, loudly: any frame refreshes a session's
//     liveness clock; a session silent for heartbeat_interval_us *
//     heartbeat_misses is torn down with an obs kSessionBreak event
//     ("heartbeat_miss"), its subscriptions' shard-side waiters cancelled,
//     its watch sessions cancelled. Framing-integrity failures
//     (FrameDecoder errors) and mid-frame EOFs are equally terminal and
//     equally loud ("frame_error:<kind>", "truncated_frame").
//
// Lifecycle: construct over a *started* pool's facades, Start(), serve,
// Stop() — in that order, and Stop() the server before stopping the pool
// (session teardown posts waiter cancellations to shard queues).
#ifndef SRC_SERVER_PUBSUBD_H_
#define SRC_SERVER_PUBSUBD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "net/frame_decoder.h"
#include "net/messages.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/collector.h"
#include "runtime/concurrent_broker.h"
#include "runtime/concurrent_watch.h"

namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0: ephemeral; read the bound port back via port().
  std::string name = "pubsubd";
  // Advertised in HELLO; a session silent for interval * misses is dead.
  common::TimeMicros heartbeat_interval_us = common::kMicrosPerSecond;
  std::uint32_t heartbeat_misses = 3;
  // Frame payload bound enforced by this server's decoders (<= net ceiling).
  std::size_t max_payload = 1u << 20;
  std::size_t max_connections = 4096;
  // Outbound buffer watermark: above it subscription draining pauses for
  // the session (shard-side handoff lanes then stall — end-to-end flow
  // control); draining resumes once the socket catches back up.
  std::size_t send_buffer_limit = 4u << 20;
  // Queued-but-unsent watch items before the stream is cut to a terminal
  // resync (the W3 posture for a push-only stream).
  std::size_t max_watch_queue = 8192;
  // Handoff bound per remote subscription (runtime::SubscriptionOptions).
  std::size_t subscription_handoff = 8192;
  // What a remote subscription does when its handoff lane overflows because
  // the session's socket (and therefore its drain loop) cannot keep up.
  // kBlock is the layered-flow-control default described above; kDropOldest
  // trades a counted gap for a live stream; kDisconnect tears the whole
  // session down with a kSessionBreak cause "slow_consumer" — the
  // MigratoryData posture of isolating slow clients from the fanout path.
  runtime::SlowConsumerPolicy slow_consumer = runtime::SlowConsumerPolicy::kBlock;
  // Lifecycle events (session breaks with causes) land here when non-null.
  obs::Collector* obs = nullptr;
};

class Server {
 public:
  // `watch` may be null (pubsub-only deployment: WATCH verbs are refused
  // with kFailedPrecondition). `metrics` must be the pool's registry (or any
  // thread-safe registry outliving the server).
  Server(runtime::ConcurrentBroker* broker, runtime::ConcurrentWatchService* watch,
         common::MetricsRegistry* metrics, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, spawns the loop thread. kUnavailable if the port is
  // taken.
  common::Status Start();

  // Joins the loop and tears down every session (subscriptions cancelled,
  // watches cancelled, sockets closed). Idempotent. Call before stopping
  // the underlying ShardPool.
  void Stop();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Loop-maintained gauges, exact after Stop.
  std::uint64_t sessions_opened() const { return sessions_opened_->value(); }
  std::uint64_t sessions_closed() const { return sessions_closed_->value(); }

  // Public only for the nested-callback definitions in pubsubd.cc; not a
  // user surface.
  struct NudgeGate;

 private:
  struct WatchQueue;
  class WatchFan;
  struct WatchStream;
  struct SubStream;
  struct Session;
  struct Completion;

  void Loop();
  void WakeLoop();
  // Cross-thread entry points (shard-side callbacks, via the nudge gate):
  // mark a session as having pushable data / enqueue a finished async
  // response, then wake the loop.
  void Nudge(std::uint64_t session_id);
  void PushCompletion(std::uint64_t session_id, net::Verb verb, std::uint64_t request_id,
                      std::string payload);
  void AcceptNew();
  void ReadSession(Session& s);
  void FlushSession(Session& s);
  void DispatchFrame(Session& s, const net::Frame& frame);
  void PumpSubscriptions(Session& s);
  void PumpWatches(Session& s);
  void SendFrame(Session& s, net::Verb verb, std::uint64_t request_id,
                 const std::string& payload);
  void SendError(Session& s, std::uint64_t request_id, const common::Status& status,
                 common::TimeMicros retry_after_us);
  // Appends an ERROR (echoing the offending request id) and marks the
  // session for close-after-flush.
  void FailSession(Session& s, std::uint64_t request_id, const common::Status& status,
                   const std::string& cause);
  void Teardown(std::uint64_t session_id, const std::string& cause, bool log_break);
  void SweepDeadPeers(std::int64_t now_us);
  Session* FindSession(std::uint64_t id);

  runtime::ConcurrentBroker* broker_;
  runtime::ConcurrentWatchService* watch_;
  common::MetricsRegistry* metrics_;
  ServerOptions options_;

  net::Fd listener_;
  net::Fd wake_rx_, wake_tx_;
  int port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  // Sessions are loop-confined; the maps below are the only cross-thread
  // surfaces (shard-side completions / ready hooks / watch callbacks).
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::mutex pending_mu_;
  std::vector<Completion> completions_;          // Shard threads → loop.
  std::vector<std::uint64_t> ready_sessions_;    // Ready-hook nudges.
  std::shared_ptr<NudgeGate> gate_;              // Closed by Stop().

  // Hot counters resolved once.
  common::Counter* sessions_opened_;
  common::Counter* sessions_closed_;
  common::Counter* frames_in_;
  common::Counter* frames_out_;
  common::Counter* bytes_in_;
  common::Counter* bytes_out_;
  common::Counter* frame_errors_;
  common::Counter* heartbeat_misses_;
  common::Counter* backpressure_errors_;
  common::Counter* accept_rejected_;
  common::Counter* watch_overflows_;
  common::Gauge* active_sessions_;
};

}  // namespace server

#endif  // SRC_SERVER_PUBSUBD_H_
