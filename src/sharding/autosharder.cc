#include "sharding/autosharder.h"

#include <algorithm>
#include <cassert>

namespace sharding {

AutoSharder::AutoSharder(sim::Simulator* sim, sim::Network* net, SharderOptions options)
    : sim_(sim), net_(net), options_(options) {
  shards_.emplace(common::Key(), Shard{});  // One ownerless shard covering everything.
  rebalance_task_ = std::make_unique<sim::PeriodicTask>(sim_, options_.rebalance_period,
                                                        [this] { RebalanceNow(); });
}

AutoSharder::~AutoSharder() = default;

common::KeyRange AutoSharder::RangeOf(std::map<common::Key, Shard>::const_iterator it) const {
  auto next = std::next(it);
  return common::KeyRange{it->first, next == shards_.end() ? common::Key() : next->first};
}

std::map<common::Key, AutoSharder::Shard>::iterator AutoSharder::ShardIter(
    const common::Key& key) {
  auto it = shards_.upper_bound(key);
  assert(it != shards_.begin());
  return std::prev(it);
}

void AutoSharder::AddWorker(const WorkerId& worker) {
  workers_.insert(worker);
  // Bootstrap: if any shard is ownerless (and not in a lease gap —
  // bootstrapping precedes leasing), give it to the new worker immediately so
  // a fresh deployment does not wait a full rebalance period.
  bool assigned_any = false;
  for (auto& [low, shard] : shards_) {
    if (!shard.owner.has_value() && shard.generation == 0) {
      AssignShard(low, worker);
      assigned_any = true;
    }
  }
  (void)assigned_any;
}

void AutoSharder::RemoveWorker(const WorkerId& worker) {
  workers_.erase(worker);
}

std::vector<WorkerId> AutoSharder::Workers() const {
  return {workers_.begin(), workers_.end()};
}

std::optional<WorkerId> AutoSharder::Owner(const common::Key& key) const {
  auto it = shards_.upper_bound(key);
  assert(it != shards_.begin());
  return std::prev(it)->second.owner;
}

ShardInfo AutoSharder::ShardFor(const common::Key& key) const {
  auto it = shards_.upper_bound(key);
  assert(it != shards_.begin());
  --it;
  return ShardInfo{RangeOf(it), it->second.owner, it->second.generation, it->second.load};
}

std::vector<ShardInfo> AutoSharder::Shards() const {
  std::vector<ShardInfo> out;
  out.reserve(shards_.size());
  for (auto it = shards_.begin(); it != shards_.end(); ++it) {
    out.push_back(ShardInfo{RangeOf(it), it->second.owner, it->second.generation,
                            it->second.load});
  }
  return out;
}

void AutoSharder::ReportLoad(const common::Key& key, double amount) {
  auto it = ShardIter(key);
  Shard& shard = it->second;
  shard.load += amount;
  if (shard.samples.size() < options_.max_samples) {
    shard.samples.push_back(key);
  } else {
    // Reservoir sampling keeps the sample set representative of recent load.
    const std::uint64_t slot = sim_->rng().Below(options_.max_samples * 4);
    if (slot < options_.max_samples) {
      shard.samples[slot] = key;
    }
  }
}

std::uint64_t AutoSharder::Subscribe(Listener listener, common::TimeMicros latency) {
  const std::uint64_t id = next_subscriber_id_++;
  subscribers_.push_back(Subscriber{id, std::move(listener), latency});
  return id;
}

void AutoSharder::Unsubscribe(std::uint64_t id) {
  subscribers_.erase(std::remove_if(subscribers_.begin(), subscribers_.end(),
                                    [id](const Subscriber& s) { return s.id == id; }),
                     subscribers_.end());
}

void AutoSharder::NotifyChange(const common::KeyRange& range,
                               const std::optional<WorkerId>& owner, Generation generation) {
  for (const Subscriber& sub : subscribers_) {
    sim_->After(sub.latency, [listener = sub.listener, range, owner, generation] {
      listener(range, owner, generation);
    });
  }
}

void AutoSharder::AssignShard(const common::Key& low, const std::optional<WorkerId>& owner) {
  auto it = shards_.find(low);
  assert(it != shards_.end());
  it->second.owner = owner;
  it->second.generation = ++generation_;
  NotifyChange(RangeOf(it), owner, it->second.generation);
}

void AutoSharder::MoveShard(const common::Key& key_in_shard, const WorkerId& to) {
  auto it = ShardIter(key_in_shard);
  const common::Key low = it->first;
  if (it->second.owner == std::optional<WorkerId>(to)) {
    return;
  }
  ++moves_;
  if (options_.lease_duration > 0 && it->second.owner.has_value()) {
    // Lease protocol: revoke now; the new owner takes over only after the old
    // owner's lease has surely expired.
    AssignShard(low, std::nullopt);
    sim_->After(options_.lease_duration, [this, low, to] {
      auto shard = shards_.find(low);
      // The shard may have been split/merged meanwhile; assign only if the
      // boundary still exists and is still ownerless.
      if (shard != shards_.end() && !shard->second.owner.has_value()) {
        AssignShard(low, to);
      }
    });
  } else {
    AssignShard(low, to);
  }
}

std::map<WorkerId, double> AutoSharder::WorkerLoads() const {
  // Only live workers are assignment candidates; a dead worker's shards show
  // up as orphaned instead.
  std::map<WorkerId, double> loads;
  for (const WorkerId& w : workers_) {
    if (net_->IsUp(w)) {
      loads[w] = 0;
    }
  }
  for (const auto& [low, shard] : shards_) {
    if (shard.owner.has_value() && loads.count(*shard.owner) > 0) {
      loads[*shard.owner] += shard.load;
    }
  }
  return loads;
}

WorkerId AutoSharder::LeastLoadedWorker(const std::map<WorkerId, double>& loads) const {
  assert(!loads.empty());
  auto best = loads.begin();
  for (auto it = loads.begin(); it != loads.end(); ++it) {
    if (it->second < best->second) {
      best = it;
    }
  }
  return best->first;
}

bool AutoSharder::TrySplit(const common::Key& low) {
  auto it = shards_.find(low);
  if (it == shards_.end()) {
    return false;
  }
  Shard& shard = it->second;
  if (shard.samples.size() < 2) {
    return false;
  }
  std::vector<common::Key> samples = shard.samples;
  std::sort(samples.begin(), samples.end());
  const common::Key split_point = samples[samples.size() / 2];
  if (split_point <= low) {
    return false;  // Degenerate: all load on the lowest key.
  }
  auto next = std::next(it);
  if (next != shards_.end() && split_point >= next->first) {
    return false;
  }
  // Split: the upper half becomes a new shard with the same owner.
  Shard upper;
  upper.owner = shard.owner;
  upper.generation = ++generation_;
  upper.load = shard.load / 2;
  shard.load /= 2;
  // Partition samples between the halves.
  std::vector<common::Key> lower_samples;
  for (common::Key& s : shard.samples) {
    if (s < split_point) {
      lower_samples.push_back(std::move(s));
    } else {
      upper.samples.push_back(std::move(s));
    }
  }
  shard.samples = std::move(lower_samples);
  auto inserted = shards_.emplace(split_point, std::move(upper)).first;
  ++splits_;
  NotifyChange(RangeOf(inserted), inserted->second.owner, inserted->second.generation);
  return true;
}

void AutoSharder::RebalanceNow() {
  if (workers_.empty()) {
    return;
  }
  // Pass 1: reassign shards owned by dead/removed workers.
  std::map<WorkerId, double> loads = WorkerLoads();
  if (loads.empty()) {
    return;  // No live workers to assign to.
  }
  std::vector<common::Key> orphaned;
  for (auto it = shards_.begin(); it != shards_.end(); ++it) {
    const Shard& shard = it->second;
    const bool dead_owner = shard.owner.has_value() &&
                            (workers_.count(*shard.owner) == 0 || !net_->IsUp(*shard.owner));
    const bool never_assigned = !shard.owner.has_value() && shard.generation == 0;
    if (dead_owner || never_assigned) {
      orphaned.push_back(it->first);
    }
  }
  for (const common::Key& low : orphaned) {
    const WorkerId target = LeastLoadedWorker(loads);
    loads[target] += shards_[low].load;
    ++moves_;
    AssignShard(low, target);  // Dead-owner handoff: no lease wait (owner is gone).
  }

  // Pass 2: split hot shards.
  std::vector<common::Key> hot;
  for (const auto& [low, shard] : shards_) {
    if (shard.load > options_.split_threshold) {
      hot.push_back(low);
    }
  }
  for (const common::Key& low : hot) {
    TrySplit(low);
  }

  // Pass 3: level load across live workers by moving shards off the most
  // loaded worker while it exceeds mean * imbalance_factor.
  for (int iter = 0; iter < 8; ++iter) {
    loads = WorkerLoads();
    if (loads.empty()) {
      break;
    }
    double total = 0;
    for (const auto& [w, l] : loads) {
      total += l;
    }
    const double mean = total / static_cast<double>(loads.size());
    auto hottest = std::max_element(loads.begin(), loads.end(),
                                    [](const auto& a, const auto& b) {
                                      return a.second < b.second;
                                    });
    if (mean <= 0 || hottest->second <= mean * options_.imbalance_factor) {
      break;
    }
    // Move the hottest worker's lightest shard that still helps.
    const WorkerId overloaded = hottest->first;
    common::Key best_low;
    double best_load = -1;
    for (const auto& [low, shard] : shards_) {
      if (shard.owner == std::optional<WorkerId>(overloaded) && shard.load > best_load) {
        best_load = shard.load;
        best_low = low;
      }
    }
    if (best_load < 0) {
      break;
    }
    const WorkerId target = LeastLoadedWorker(loads);
    if (target == overloaded) {
      break;
    }
    MoveShard(best_low, target);
  }

  // Pass 4: merge cold adjacent shards so the table tracks load, not history.
  if (options_.merge_threshold > 0) {
    MergeColdShards();
  }

  // Pass 5: decay load so balancing tracks recent traffic.
  for (auto& [low, shard] : shards_) {
    shard.load *= options_.load_decay;
  }
}

void AutoSharder::MergeColdShards() {
  auto it = shards_.begin();
  while (it != shards_.end() && shards_.size() > options_.min_shards) {
    auto next = std::next(it);
    if (next == shards_.end()) {
      break;
    }
    Shard& a = it->second;
    Shard& b = next->second;
    const bool same_owner = a.owner.has_value() && a.owner == b.owner;
    if (!same_owner || a.load + b.load > options_.merge_threshold) {
      ++it;
      continue;
    }
    // Merge b into a: the combined shard keeps a's lower bound.
    a.load += b.load;
    for (common::Key& sample : b.samples) {
      if (a.samples.size() < options_.max_samples) {
        a.samples.push_back(std::move(sample));
      }
    }
    a.generation = ++generation_;
    shards_.erase(next);
    NotifyChange(RangeOf(it), a.owner, a.generation);
    // Re-examine the same shard against its new right neighbour.
  }
}

}  // namespace sharding
