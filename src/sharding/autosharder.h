// AutoSharder: dynamic key-range -> worker assignment in the style of Slicer
// (OSDI '16) / Shard Manager (SOSP '21), which the paper cites as the
// auto-sharding substrate for caches and workers ([3, 27]).
//
// The sharder owns an authoritative assignment table of contiguous key-range
// shards. It rebalances periodically: shards owned by dead workers are
// reassigned, hot shards are split at a sampled median key, and load is
// levelled by moving shards from overloaded to underloaded workers.
//
// Subscribers (cache pods, workers, a pubsub control plane, a watch system)
// learn about reassignments via listener callbacks delivered after a
// per-subscriber latency. Different subscribers therefore observe the *same*
// move at *different* times — exactly the disagreement window that produces
// the Figure 2 missed-invalidation race.
//
// Optional leasing reproduces Section 3.2.2's trade-off: with a lease
// duration configured, a moved shard has *no* owner until the old owner's
// lease expires, trading correctness for an availability gap.
#ifndef SRC_SHARDING_AUTOSHARDER_H_
#define SRC_SHARDING_AUTOSHARDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace sharding {

using WorkerId = sim::NodeId;
using Generation = std::uint64_t;

struct ShardInfo {
  common::KeyRange range;
  std::optional<WorkerId> owner;  // nullopt: no owner (lease gap).
  Generation generation = 0;
  double load = 0;
};

struct SharderOptions {
  common::TimeMicros rebalance_period = 1 * common::kMicrosPerSecond;
  // A shard hotter than this (load units per rebalance period) is split.
  double split_threshold = 1000;
  // Move shards when a worker's load exceeds mean * imbalance_factor.
  double imbalance_factor = 1.5;
  // Exponential decay applied to shard load each rebalance.
  double load_decay = 0.5;
  // > 0 enables leasing: a moved shard is ownerless for this long.
  common::TimeMicros lease_duration = 0;
  // Load samples retained per shard for split-point selection.
  std::size_t max_samples = 64;
  // Adjacent same-owner shards whose combined load is below this are merged,
  // keeping the assignment table proportional to actual load skew rather
  // than historical splits. 0 disables merging.
  double merge_threshold = 0;
  // Never merge below this many shards (keeps some parallelism).
  std::size_t min_shards = 1;
};

class AutoSharder {
 public:
  // Assignment-change notification: `owner` is nullopt during a lease gap.
  // Invoked once per affected shard, after the subscriber's latency.
  using Listener =
      std::function<void(const common::KeyRange&, const std::optional<WorkerId>&, Generation)>;

  AutoSharder(sim::Simulator* sim, sim::Network* net, SharderOptions options = {});
  ~AutoSharder();

  AutoSharder(const AutoSharder&) = delete;
  AutoSharder& operator=(const AutoSharder&) = delete;

  // -- Workers ------------------------------------------------------------------

  // Registers a worker; newly added workers pick up shards at the next
  // rebalance (or immediately if nothing is assigned yet).
  void AddWorker(const WorkerId& worker);
  void RemoveWorker(const WorkerId& worker);
  std::vector<WorkerId> Workers() const;

  // -- Assignment queries ---------------------------------------------------------

  // The authoritative current owner of `key` (nullopt during a lease gap).
  std::optional<WorkerId> Owner(const common::Key& key) const;
  ShardInfo ShardFor(const common::Key& key) const;
  std::vector<ShardInfo> Shards() const;
  Generation generation() const { return generation_; }

  // -- Load & rebalancing -----------------------------------------------------------

  // Reports load on a key (e.g. one request = 1.0).
  void ReportLoad(const common::Key& key, double amount = 1.0);

  // Runs one rebalance pass now (also runs periodically).
  void RebalanceNow();

  // Explicit move, for tests and experiments. Honors leasing.
  void MoveShard(const common::Key& key_in_shard, const WorkerId& to);

  // -- Subscriptions ---------------------------------------------------------------

  // Subscribes to assignment changes; notifications arrive `latency` after
  // each change. Returns a subscriber id.
  std::uint64_t Subscribe(Listener listener, common::TimeMicros latency);
  void Unsubscribe(std::uint64_t id);

  // Harness metrics.
  std::uint64_t moves() const { return moves_; }
  std::uint64_t splits() const { return splits_; }

 private:
  struct Shard {
    // `high` is implied by the next map key (or +inf for the last shard).
    std::optional<WorkerId> owner;
    Generation generation = 0;
    double load = 0;
    std::vector<common::Key> samples;  // Reservoir for split-point selection.
  };

  struct Subscriber {
    std::uint64_t id;
    Listener listener;
    common::TimeMicros latency;
  };

  common::KeyRange RangeOf(std::map<common::Key, Shard>::const_iterator it) const;
  std::map<common::Key, Shard>::iterator ShardIter(const common::Key& key);
  void AssignShard(const common::Key& low, const std::optional<WorkerId>& owner);
  void NotifyChange(const common::KeyRange& range, const std::optional<WorkerId>& owner,
                    Generation generation);
  std::map<WorkerId, double> WorkerLoads() const;
  WorkerId LeastLoadedWorker(const std::map<WorkerId, double>& loads) const;
  bool TrySplit(const common::Key& low);
  void MergeColdShards();

  sim::Simulator* sim_;
  sim::Network* net_;
  SharderOptions options_;
  std::set<WorkerId> workers_;
  std::map<common::Key, Shard> shards_;  // Keyed by shard low bound; tiles the key space.
  Generation generation_ = 0;
  std::vector<Subscriber> subscribers_;
  std::uint64_t next_subscriber_id_ = 1;
  std::uint64_t moves_ = 0;
  std::uint64_t splits_ = 0;
  std::unique_ptr<sim::PeriodicTask> rebalance_task_;
};

}  // namespace sharding

#endif  // SRC_SHARDING_AUTOSHARDER_H_
