// Doorbell: the deterministic wakeup primitive behind event-driven delivery.
//
// A task parks a callback on the doorbell; Signal() wakes every parked waiter
// by scheduling it as an *immediate* event on the simulator (delay 0, at the
// current simulated instant). Because the simulator breaks time ties by
// schedule order, waiters run in park order and a signaled doorbell preserves
// the exact determinism of the event queue — a wakeup is just another event.
//
// Semantics are edge-triggered and single-shot: Signal() consumes the parked
// set; a waiter that wants further wakeups re-parks from its callback. There
// is no level state ("signaled while nobody parked" is dropped), so users
// must follow the check-then-park discipline:
//
//   1. consume everything currently available;
//   2. if nothing remains, Park();
//   3. the producer makes data available, then Signals.
//
// In a discrete-event simulation steps 1-3 cannot interleave, so the classic
// lost-wakeup race is structurally impossible — but a *forgotten* signal
// (producer path that doesn't ring) is still a hang, which is why consumers
// built on this keep a coarse periodic timer as a safety net.
#ifndef SRC_SIM_DOORBELL_H_
#define SRC_SIM_DOORBELL_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace sim {

class Doorbell {
 public:
  using Ticket = std::uint64_t;

  explicit Doorbell(Simulator* sim) : sim_(sim) {}

  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  // Parks `fn` until the next Signal(). Returns a ticket for Cancel.
  Ticket Park(std::function<void()> fn) {
    const Ticket ticket = next_ticket_++;
    parked_.emplace_back(ticket, std::move(fn));
    return ticket;
  }

  // Unparks a waiter; true if it was still parked (not yet signaled).
  bool Cancel(Ticket ticket) {
    for (auto it = parked_.begin(); it != parked_.end(); ++it) {
      if (it->first == ticket) {
        parked_.erase(it);
        return true;
      }
    }
    return false;
  }

  // Wakes every currently parked waiter, each as an immediate simulator event
  // in park order. Waiters parked from inside a woken callback are *not*
  // swept into this signal — they wait for the next one.
  void Signal() {
    if (parked_.empty()) {
      return;
    }
    std::vector<std::pair<Ticket, std::function<void()>>> waiters;
    waiters.swap(parked_);
    for (auto& [ticket, fn] : waiters) {
      sim_->After(0, std::move(fn));
    }
    ++signals_;
  }

  std::size_t parked() const { return parked_.size(); }
  std::uint64_t signals() const { return signals_; }

 private:
  Simulator* sim_;
  Ticket next_ticket_ = 1;
  std::vector<std::pair<Ticket, std::function<void()>>> parked_;
  std::uint64_t signals_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_DOORBELL_H_
