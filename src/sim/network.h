// A simulated datacenter network: named nodes with up/down state, per-message
// latency (base + jitter), partitions, and drop accounting. Components send
// closures to each other; a delivered closure runs at the destination after
// the sampled latency, and is dropped (counted) if the destination is down or
// partitioned from the sender at delivery time.
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/types.h"
#include "sim/simulator.h"

namespace sim {

using NodeId = std::string;

struct LatencyModel {
  common::TimeMicros base = 200;    // One-way base latency.
  common::TimeMicros jitter = 100;  // Uniform extra in [0, jitter].
};

class Network {
 public:
  explicit Network(Simulator* sim, LatencyModel latency = {})
      : sim_(sim), latency_(latency) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void AddNode(const NodeId& node) { up_[node] = true; }

  bool IsUp(const NodeId& node) const {
    auto it = up_.find(node);
    return it != up_.end() && it->second;
  }

  void SetUp(const NodeId& node, bool is_up) { up_[node] = is_up; }

  // Severs connectivity between two nodes (both directions).
  void Partition(const NodeId& a, const NodeId& b) { partitions_.insert(Edge(a, b)); }
  void Heal(const NodeId& a, const NodeId& b) { partitions_.erase(Edge(a, b)); }

  bool Reachable(const NodeId& from, const NodeId& to) const {
    return IsUp(from) && IsUp(to) && partitions_.count(Edge(from, to)) == 0;
  }

  // Sends `handler` from `from` to `to`. The handler runs after the sampled
  // latency if the destination is reachable from the sender both now and at
  // delivery time; otherwise the message is dropped and counted.
  void Send(const NodeId& from, const NodeId& to, std::function<void()> handler) {
    if (!Reachable(from, to)) {
      ++dropped_;
      return;
    }
    const common::TimeMicros lat = SampleLatency();
    sim_->After(lat, [this, from, to, h = std::move(handler)] {
      if (!Reachable(from, to)) {
        ++dropped_;
        return;
      }
      h();
    });
    ++sent_;
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t dropped() const { return dropped_; }

  common::TimeMicros SampleLatency() {
    common::TimeMicros lat = latency_.base;
    if (latency_.jitter > 0) {
      lat += static_cast<common::TimeMicros>(
          sim_->rng().Below(static_cast<std::uint64_t>(latency_.jitter) + 1));
    }
    return lat;
  }

 private:
  static std::pair<NodeId, NodeId> Edge(const NodeId& a, const NodeId& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  Simulator* sim_;
  LatencyModel latency_;
  std::unordered_map<NodeId, bool> up_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

// Schedules a crash + restart for a node, invoking the component's lifecycle
// callbacks so it can discard in-memory state and re-join.
class FailureInjector {
 public:
  FailureInjector(Simulator* sim, Network* net) : sim_(sim), net_(net) {}

  struct Hooks {
    std::function<void()> on_crash;
    std::function<void()> on_restart;
  };

  void Register(const NodeId& node, Hooks hooks) { hooks_[node] = std::move(hooks); }

  // Crashes `node` at `at`, restarting it `downtime` later (no restart if
  // downtime < 0).
  void ScheduleCrash(const NodeId& node, common::TimeMicros at, common::TimeMicros downtime) {
    sim_->At(at, [this, node, downtime] {
      net_->SetUp(node, false);
      auto it = hooks_.find(node);
      if (it != hooks_.end() && it->second.on_crash) {
        it->second.on_crash();
      }
      if (downtime >= 0) {
        sim_->After(downtime, [this, node] {
          net_->SetUp(node, true);
          auto h = hooks_.find(node);
          if (h != hooks_.end() && h->second.on_restart) {
            h->second.on_restart();
          }
        });
      }
    });
  }

 private:
  Simulator* sim_;
  Network* net_;
  std::unordered_map<NodeId, Hooks> hooks_;
};

}  // namespace sim

#endif  // SRC_SIM_NETWORK_H_
