// Deterministic discrete-event simulator. All distributed behaviour in this
// library (broker deliveries, consumer polls, shard moves, watch dispatch,
// node failures) is expressed as events on this single queue, so every
// experiment is exactly reproducible from its seed.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace sim {

using EventId = std::uint64_t;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  common::TimeMicros Now() const { return now_; }
  common::Rng& rng() { return rng_; }

  // Schedules `fn` at absolute simulated time `t` (>= Now()).
  EventId At(common::TimeMicros t, std::function<void()> fn) {
    assert(t >= now_);
    const EventId id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    return id;
  }

  // Schedules `fn` after `delay` microseconds.
  EventId After(common::TimeMicros delay, std::function<void()> fn) {
    return At(now_ + delay, std::move(fn));
  }

  // Cancels a scheduled event. Safe to call for already-fired events (no-op).
  void Cancel(EventId id) { cancelled_.insert(id); }

  // Runs a single event; returns false if the queue is empty.
  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (cancelled_.erase(ev.id) > 0) {
        continue;
      }
      assert(ev.time >= now_);
      now_ = ev.time;
      ev.fn();
      return true;
    }
    return false;
  }

  // Runs events until the queue drains.
  void Run() {
    while (Step()) {
    }
  }

  // Runs all events with time <= deadline, then advances the clock to it.
  void RunUntil(common::TimeMicros deadline) {
    while (!queue_.empty()) {
      // Skip cancelled entries at the head so we don't advance time for them.
      const Event& head = queue_.top();
      if (cancelled_.count(head.id) > 0) {
        cancelled_.erase(head.id);
        queue_.pop();
        continue;
      }
      if (head.time > deadline) {
        break;
      }
      Step();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    common::TimeMicros time;
    EventId id;
    std::function<void()> fn;

    // Later time = lower priority; ties broken by schedule order for
    // determinism.
    bool operator<(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return id > other.id;
    }
  };

  common::TimeMicros now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event> queue_;
  std::unordered_set<EventId> cancelled_;
  common::Rng rng_;
};

// A repeating task on the simulator. Construction schedules the first firing
// after `period`; destruction (or Stop) cancels future firings.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, common::TimeMicros period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {
    assert(period_ > 0);
    ScheduleNext();
  }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  ~PeriodicTask() { Stop(); }

  void Stop() {
    if (active_) {
      sim_->Cancel(pending_);
      active_ = false;
    }
  }

 private:
  void ScheduleNext() {
    active_ = true;
    pending_ = sim_->After(period_, [this] {
      active_ = false;
      fn_();
      ScheduleNext();
    });
  }

  Simulator* sim_;
  common::TimeMicros period_;
  std::function<void()> fn_;
  EventId pending_ = 0;
  bool active_ = false;
};

}  // namespace sim

#endif  // SRC_SIM_SIMULATOR_H_
