// IngestStore: an append-optimized event store (the paper's "ingestion
// storage" — think time-series DB / structured store used for event ingestion
// and fanout, Section 2 and Figure 3). Producers insert immutable events;
// consumers query by key range and version range, or attach to the live
// commit feed (which can drive a built-in or external watch layer).
//
// Unlike a pubsub log, retention here is a property of an explicit store with
// a queryable API: a lagging consumer can always re-read whatever is retained,
// and discover exactly where retained history begins (MinRetainedVersion).
#ifndef SRC_STORAGE_INGEST_STORE_H_
#define SRC_STORAGE_INGEST_STORE_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/oracle.h"

namespace storage {

struct IngestEvent {
  common::Key key;
  common::Value payload;
  common::Version version = common::kNoVersion;
  common::TimeMicros ingest_time = 0;

  friend bool operator==(const IngestEvent&, const IngestEvent&) = default;
};

class IngestStore {
 public:
  using EventObserver = std::function<void(const IngestEvent&)>;

  explicit IngestStore(std::string name = "ingest") : name_(std::move(name)) {}

  IngestStore(const IngestStore&) = delete;
  IngestStore& operator=(const IngestStore&) = delete;

  const std::string& name() const { return name_; }
  common::Version LatestVersion() const { return oracle_.last(); }
  common::Version MinRetainedVersion() const { return min_retained_; }
  std::size_t EventCount() const { return log_.size(); }

  // Appends an event, assigning it the next version. `now` stamps the event
  // for time-based retention.
  common::Version Append(common::Key key, common::Value payload, common::TimeMicros now) {
    IngestEvent ev;
    ev.key = std::move(key);
    ev.payload = std::move(payload);
    ev.version = oracle_.Allocate();
    ev.ingest_time = now;
    for (const EventObserver& obs : observers_) {
      obs(ev);
    }
    log_.push_back(std::move(ev));
    return log_.back().version;
  }

  // Events with key in `range` and version in (after_version, up_to_version],
  // in version order. Fails with kOutOfRange if `after_version` precedes
  // retained history (the caller must fall back to ScanLatest + resume).
  common::Result<std::vector<IngestEvent>> Query(const common::KeyRange& range,
                                                 common::Version after_version,
                                                 common::Version up_to_version,
                                                 std::size_t limit = 0) const {
    if (after_version + 1 < min_retained_) {
      return common::Status::OutOfRange("requested events below retained history");
    }
    std::vector<IngestEvent> out;
    for (const IngestEvent& ev : log_) {
      if (ev.version <= after_version) {
        continue;
      }
      if (ev.version > up_to_version) {
        break;
      }
      if (range.Contains(ev.key)) {
        out.push_back(ev);
        if (limit != 0 && out.size() >= limit) {
          break;
        }
      }
    }
    return out;
  }

  // The latest retained event per key in `range` — the "current state"
  // snapshot a resyncing consumer reads. Returned entries are in key order;
  // the snapshot is consistent as of LatestVersion().
  std::vector<IngestEvent> ScanLatest(const common::KeyRange& range) const {
    std::map<common::Key, const IngestEvent*> latest;
    for (const IngestEvent& ev : log_) {
      if (range.Contains(ev.key)) {
        latest[ev.key] = &ev;
      }
    }
    std::vector<IngestEvent> out;
    out.reserve(latest.size());
    for (const auto& [key, ev] : latest) {
      out.push_back(*ev);
    }
    return out;
  }

  // Drops events older than `horizon`, except the latest event per key (the
  // store keeps current state queryable even after raw history ages out).
  void RetainAfter(common::TimeMicros horizon) {
    std::map<common::Key, common::Version> latest_version;
    for (const IngestEvent& ev : log_) {
      latest_version[ev.key] = ev.version;
    }
    std::deque<IngestEvent> kept;
    for (IngestEvent& ev : log_) {
      const bool is_latest = latest_version[ev.key] == ev.version;
      if (ev.ingest_time >= horizon || is_latest) {
        kept.push_back(std::move(ev));
      } else if (ev.version >= min_retained_) {
        min_retained_ = ev.version + 1;
      }
    }
    log_ = std::move(kept);
  }

  // Live feed of appended events (e.g. for a watch ingester).
  void AddEventObserver(EventObserver observer) { observers_.push_back(std::move(observer)); }

 private:
  std::string name_;
  TimestampOracle oracle_;
  std::deque<IngestEvent> log_;  // Version order.
  common::Version min_retained_ = common::kNoVersion;
  std::vector<EventObserver> observers_;
};

}  // namespace storage

#endif  // SRC_STORAGE_INGEST_STORE_H_
