#include "storage/mvcc_store.h"

#include <algorithm>

namespace storage {

common::Result<common::Value> MvccStore::Get(const common::Key& key,
                                             common::Version version) const {
  if (version < gc_watermark_) {
    return common::Status::OutOfRange("snapshot version below GC watermark");
  }
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    return common::Status::NotFound(key);
  }
  const std::vector<Cell>& history = it->second;
  // Find the last cell with cell.version <= version.
  auto pos = std::upper_bound(
      history.begin(), history.end(), version,
      [](common::Version v, const Cell& c) { return v < c.version; });
  if (pos == history.begin()) {
    return common::Status::NotFound("no value at or before requested version");
  }
  --pos;
  if (!pos->value.has_value()) {
    return common::Status::NotFound("deleted");
  }
  return *pos->value;
}

common::Result<std::vector<Entry>> MvccStore::Scan(const common::KeyRange& range,
                                                   common::Version version,
                                                   std::size_t limit) const {
  if (version < gc_watermark_) {
    return common::Status::OutOfRange("snapshot version below GC watermark");
  }
  std::vector<Entry> out;
  auto it = cells_.lower_bound(range.low);
  for (; it != cells_.end(); ++it) {
    if (!range.unbounded_above() && it->first >= range.high) {
      break;
    }
    const std::vector<Cell>& history = it->second;
    auto pos = std::upper_bound(
        history.begin(), history.end(), version,
        [](common::Version v, const Cell& c) { return v < c.version; });
    if (pos == history.begin()) {
      continue;
    }
    --pos;
    if (!pos->value.has_value()) {
      continue;
    }
    out.push_back(Entry{it->first, *pos->value, pos->version});
    if (limit != 0 && out.size() >= limit) {
      break;
    }
  }
  return out;
}

common::Result<common::Value> MvccStore::TxnGet(Transaction& txn, const common::Key& key) const {
  txn.reads_[key] = KeyVersion(key);
  return Get(key, txn.snapshot_);
}

common::Version MvccStore::KeyVersion(const common::Key& key) const {
  auto it = cells_.find(key);
  if (it == cells_.end() || it->second.empty()) {
    return common::kNoVersion;
  }
  return it->second.back().version;
}

common::Result<common::Version> MvccStore::Commit(Transaction txn) {
  if (!txn.began_) {
    return common::Status::FailedPrecondition("transaction was not started with Begin()");
  }
  // OCC validation: every key read must still be at the version observed.
  for (const auto& [key, seen_version] : txn.reads_) {
    if (KeyVersion(key) != seen_version) {
      return common::Status::Aborted("read-write conflict on key " + key);
    }
  }
  if (txn.writes_.empty()) {
    return txn.snapshot_;  // Read-only transactions commit at their snapshot.
  }
  const common::Version version = oracle_.Allocate();
  CommitRecord record;
  record.version = version;
  record.changes.reserve(txn.writes_.size());
  for (auto& [key, mutation] : txn.writes_) {
    std::vector<Cell>& history = cells_[key];
    if (mutation.kind == common::MutationKind::kPut) {
      history.push_back(Cell{version, mutation.value});
    } else {
      history.push_back(Cell{version, std::nullopt});
    }
    record.changes.push_back(common::ChangeEvent{key, mutation, version, /*txn_last=*/false});
  }
  record.changes.back().txn_last = true;
  ++committed_txns_;
  for (const CommitObserver& obs : observers_) {
    obs(record);
  }
  return version;
}

void MvccStore::RestoreCommit(const CommitRecord& record) {
  for (const common::ChangeEvent& change : record.changes) {
    std::vector<Cell>& history = cells_[change.key];
    if (change.mutation.kind == common::MutationKind::kPut) {
      history.push_back(Cell{record.version, change.mutation.value});
    } else {
      history.push_back(Cell{record.version, std::nullopt});
    }
  }
  oracle_.AdvanceTo(record.version);
  ++committed_txns_;
}

void MvccStore::AdvanceGcWatermark(common::Version version) {
  if (version <= gc_watermark_) {
    return;
  }
  gc_watermark_ = version;
  for (auto it = cells_.begin(); it != cells_.end();) {
    std::vector<Cell>& history = it->second;
    // Keep the last cell with version < watermark (it is the base state at
    // the watermark) plus everything at or above the watermark.
    auto first_at_or_above = std::lower_bound(
        history.begin(), history.end(), gc_watermark_,
        [](const Cell& c, common::Version v) { return c.version < v; });
    if (first_at_or_above != history.begin()) {
      auto base = std::prev(first_at_or_above);
      if (base != history.begin()) {
        history.erase(history.begin(), base);
      }
    }
    // Drop keys whose entire (folded) history is a single tombstone below the
    // watermark: no snapshot at or above the watermark can observe them.
    if (history.size() == 1 && !history[0].value.has_value() &&
        history[0].version < gc_watermark_) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace storage
