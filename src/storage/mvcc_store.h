// MvccStore: the producer storage substrate. A multi-version key-value store
// with snapshot reads, optimistic transactions committed at oracle-issued
// monotonic versions, a GC watermark bounding retained history, and commit
// observers that feed change-data-capture (CDC).
//
// This stands in for Spanner / MySQL / TiDB in the paper's architecture
// (Figure 3, "producer storage"); the monotonic commit version is the paper's
// Section 4.2 simplifying assumption.
#ifndef SRC_STORAGE_MVCC_STORE_H_
#define SRC_STORAGE_MVCC_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/oracle.h"

namespace storage {

// A key-value pair as returned by snapshot reads.
struct Entry {
  common::Key key;
  common::Value value;
  common::Version version = common::kNoVersion;

  friend bool operator==(const Entry&, const Entry&) = default;
};

// Everything a single commit changed, in write order, all at one version.
// txn_last is set on the final event (see common::ChangeEvent).
struct CommitRecord {
  common::Version version = common::kNoVersion;
  std::vector<common::ChangeEvent> changes;
};

// A read-write transaction under optimistic concurrency control: reads record
// the version they observed; Commit validates that no read key changed since.
class Transaction {
 public:
  void Put(common::Key key, common::Value value) {
    writes_[std::move(key)] = common::Mutation::Put(std::move(value));
  }
  void Delete(common::Key key) { writes_[std::move(key)] = common::Mutation::Delete(); }

  bool empty() const { return writes_.empty(); }

 private:
  friend class MvccStore;

  // Keys read, with the store version at read time (for OCC validation).
  std::map<common::Key, common::Version> reads_;
  // Writes are buffered and applied atomically at commit. std::map gives a
  // deterministic event order within the commit.
  std::map<common::Key, common::Mutation> writes_;
  common::Version snapshot_ = common::kNoVersion;
  bool began_ = false;
};

class MvccStore {
 public:
  using CommitObserver = std::function<void(const CommitRecord&)>;

  explicit MvccStore(std::string name = "store") : name_(std::move(name)) {}

  MvccStore(const MvccStore&) = delete;
  MvccStore& operator=(const MvccStore&) = delete;

  const std::string& name() const { return name_; }
  TimestampOracle& oracle() { return oracle_; }

  // The version of the latest committed transaction.
  common::Version LatestVersion() const { return oracle_.last(); }

  // The oldest version at which snapshot reads are still exact. Reading below
  // this returns kOutOfRange ("snapshot too old").
  common::Version MinRetainedVersion() const { return gc_watermark_; }

  // -- Snapshot reads ---------------------------------------------------------

  // Value of `key` as of `version` (NotFound if absent or deleted there).
  common::Result<common::Value> Get(const common::Key& key, common::Version version) const;

  // Latest value of `key`.
  common::Result<common::Value> GetLatest(const common::Key& key) const {
    return Get(key, common::kMaxVersion);
  }

  // All live entries in `range` as of `version`, in key order. `limit` == 0
  // means unlimited.
  common::Result<std::vector<Entry>> Scan(const common::KeyRange& range, common::Version version,
                                          std::size_t limit = 0) const;

  // -- Transactions -----------------------------------------------------------

  // Starts a transaction reading at the current latest version.
  Transaction Begin() const {
    Transaction txn;
    txn.snapshot_ = LatestVersion();
    txn.began_ = true;
    return txn;
  }

  // Transactional read: records the key in the read set for OCC validation.
  common::Result<common::Value> TxnGet(Transaction& txn, const common::Key& key) const;

  // Commits: validates the read set, allocates a version, applies all writes
  // atomically, and notifies commit observers. Returns the commit version.
  // Fails with kAborted on a read-write conflict.
  common::Result<common::Version> Commit(Transaction txn);

  // Convenience: blind single-key write (no read set).
  common::Version Apply(common::Key key, common::Mutation mutation) {
    Transaction txn = Begin();
    txn.writes_[std::move(key)] = std::move(mutation);
    auto res = Commit(std::move(txn));
    return res.value();  // Blind writes cannot conflict.
  }

  // -- History GC -------------------------------------------------------------

  // Advances the GC watermark: versions strictly below `version` are folded
  // into a single base version per key. Snapshot reads below the watermark
  // subsequently fail with kOutOfRange.
  void AdvanceGcWatermark(common::Version version);

  // -- CDC --------------------------------------------------------------------

  // Registers an observer invoked synchronously, in commit order, with every
  // commit record. Observers must not re-enter the store's write path.
  void AddCommitObserver(CommitObserver observer) {
    observers_.push_back(std::move(observer));
  }

  // -- Recovery (see wal::StoreJournal) ----------------------------------------

  // Re-applies a journaled commit record at its original version without
  // notifying observers (downstreams recover from their own journals). The
  // oracle fast-forwards so future commits allocate past replayed history.
  void RestoreCommit(const CommitRecord& record);

  // -- Introspection -----------------------------------------------------------

  std::size_t KeyCount() const { return cells_.size(); }
  std::uint64_t CommittedTxns() const { return committed_txns_; }

  // The version of the most recent change to `key` (kNoVersion if never
  // written). Used by OCC validation and tests.
  common::Version KeyVersion(const common::Key& key) const;

 private:
  struct Cell {
    common::Version version;
    std::optional<common::Value> value;  // nullopt == tombstone.
  };

  std::string name_;
  TimestampOracle oracle_;
  // Per key: version history, ascending. The vector is small in practice and
  // periodically folded by GC.
  std::map<common::Key, std::vector<Cell>> cells_;
  common::Version gc_watermark_ = common::kNoVersion;
  std::vector<CommitObserver> observers_;
  std::uint64_t committed_txns_ = 0;
};

}  // namespace storage

#endif  // SRC_STORAGE_MVCC_STORE_H_
