// A monotonic timestamp oracle — the paper's "simplifying assumption" that the
// source of truth has monotonic transaction versions (TrueTime in Spanner, TSO
// in TiDB, gtid in MySQL). One oracle per authoritative store.
#ifndef SRC_STORAGE_ORACLE_H_
#define SRC_STORAGE_ORACLE_H_

#include "common/types.h"

namespace storage {

class TimestampOracle {
 public:
  // Returns a fresh version strictly greater than any previously allocated.
  common::Version Allocate() { return ++last_; }

  // The most recently allocated version (kNoVersion if none).
  common::Version last() const { return last_; }

  // Recovery-only: fast-forwards the oracle so versions replayed from a
  // journal are never re-issued. Never moves backwards.
  void AdvanceTo(common::Version version) {
    if (version > last_) {
      last_ = version;
    }
  }

 private:
  common::Version last_ = common::kNoVersion;
};

}  // namespace storage

#endif  // SRC_STORAGE_ORACLE_H_
