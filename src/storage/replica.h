// StaleReplica: a read-only replica of an MvccStore that applies the commit
// feed after a configurable lag. Section 4.2.1 of the paper notes that resync
// snapshots may be read from a (stale) replica to reduce load on the primary;
// this models that replica.
#ifndef SRC_STORAGE_REPLICA_H_
#define SRC_STORAGE_REPLICA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "storage/mvcc_store.h"

namespace storage {

class StaleReplica {
 public:
  // Attaches to `primary`'s commit feed; commits become visible on the
  // replica `lag` microseconds after they happen on the primary.
  StaleReplica(sim::Simulator* sim, MvccStore* primary, common::TimeMicros lag)
      : sim_(sim), lag_(lag) {
    primary->AddCommitObserver([this](const CommitRecord& record) {
      sim_->After(lag_, [this, record] { ApplyNow(record); });
    });
  }

  StaleReplica(const StaleReplica&) = delete;
  StaleReplica& operator=(const StaleReplica&) = delete;

  // The highest version applied so far; all reads are served at this version.
  common::Version AppliedVersion() const { return applied_version_; }

  common::Result<common::Value> Get(const common::Key& key) const {
    auto it = data_.find(key);
    if (it == data_.end() || !it->second.has_value()) {
      return common::Status::NotFound(key);
    }
    return *it->second;
  }

  std::vector<Entry> Scan(const common::KeyRange& range, std::size_t limit = 0) const {
    std::vector<Entry> out;
    auto it = data_.lower_bound(range.low);
    for (; it != data_.end(); ++it) {
      if (!range.unbounded_above() && it->first >= range.high) {
        break;
      }
      if (!it->second.has_value()) {
        continue;
      }
      out.push_back(Entry{it->first, *it->second, applied_version_});
      if (limit != 0 && out.size() >= limit) {
        break;
      }
    }
    return out;
  }

 private:
  void ApplyNow(const CommitRecord& record) {
    for (const common::ChangeEvent& ev : record.changes) {
      if (ev.mutation.kind == common::MutationKind::kPut) {
        data_[ev.key] = ev.mutation.value;
      } else {
        data_[ev.key] = std::nullopt;
      }
    }
    if (record.version > applied_version_) {
      applied_version_ = record.version;
    }
  }

  sim::Simulator* sim_;
  common::TimeMicros lag_;
  std::map<common::Key, std::optional<common::Value>> data_;
  common::Version applied_version_ = common::kNoVersion;
};

}  // namespace storage

#endif  // SRC_STORAGE_REPLICA_H_
