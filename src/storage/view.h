// FilteredView — the paper's Section 4.1 mechanism for hiding producer store
// internals: the producer exposes "a filtered view that exposes a limited
// subset of derived values to consumers". A view restricts reads to a key
// range and applies an optional per-value projection; the same projection is
// applied to the CDC/watch feed so consumers never observe unexposed state.
#ifndef SRC_STORAGE_VIEW_H_
#define SRC_STORAGE_VIEW_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/mvcc_store.h"

namespace storage {

class FilteredView {
 public:
  // Projects a stored value to the exposed derived value; returning nullopt
  // hides the row entirely (row-level filtering).
  using Projection = std::function<std::optional<common::Value>(const common::Key&,
                                                                const common::Value&)>;

  FilteredView(const MvccStore* store, common::KeyRange range, Projection projection = nullptr)
      : store_(store), range_(std::move(range)), projection_(std::move(projection)) {}

  const common::KeyRange& range() const { return range_; }
  common::Version LatestVersion() const { return store_->LatestVersion(); }
  common::Version MinRetainedVersion() const { return store_->MinRetainedVersion(); }

  common::Result<common::Value> Get(const common::Key& key, common::Version version) const {
    if (!range_.Contains(key)) {
      return common::Status::NotFound("key outside view range");
    }
    auto res = store_->Get(key, version);
    if (!res.ok()) {
      return res;
    }
    return Project(key, std::move(res).value());
  }

  common::Result<std::vector<Entry>> Scan(const common::KeyRange& scan_range,
                                          common::Version version,
                                          std::size_t limit = 0) const {
    auto res = store_->Scan(scan_range.Intersect(range_), version, limit);
    if (!res.ok()) {
      return res;
    }
    std::vector<Entry> out;
    out.reserve(res->size());
    for (Entry& e : *res) {
      if (projection_ == nullptr) {
        out.push_back(std::move(e));
        continue;
      }
      std::optional<common::Value> projected = projection_(e.key, e.value);
      if (projected.has_value()) {
        out.push_back(Entry{std::move(e.key), std::move(*projected), e.version});
      }
    }
    return out;
  }

  // Rewrites a commit record so it only reveals what the view exposes.
  // Returns nullopt when the commit touches nothing visible through the view.
  std::optional<CommitRecord> FilterCommit(const CommitRecord& record) const {
    CommitRecord out;
    out.version = record.version;
    for (const common::ChangeEvent& ev : record.changes) {
      if (!range_.Contains(ev.key)) {
        continue;
      }
      common::ChangeEvent filtered = ev;
      filtered.txn_last = false;
      if (ev.mutation.kind == common::MutationKind::kPut && projection_ != nullptr) {
        std::optional<common::Value> projected = projection_(ev.key, ev.mutation.value);
        if (!projected.has_value()) {
          continue;  // Row hidden by the view.
        }
        filtered.mutation = common::Mutation::Put(std::move(*projected));
      }
      out.changes.push_back(std::move(filtered));
    }
    if (out.changes.empty()) {
      return std::nullopt;
    }
    out.changes.back().txn_last = true;
    return out;
  }

 private:
  common::Result<common::Value> Project(const common::Key& key, common::Value value) const {
    if (projection_ == nullptr) {
      return value;
    }
    std::optional<common::Value> projected = projection_(key, value);
    if (!projected.has_value()) {
      return common::Status::NotFound("row hidden by view projection");
    }
    return *projected;
  }

  const MvccStore* store_;
  common::KeyRange range_;
  Projection projection_;
};

}  // namespace storage

#endif  // SRC_STORAGE_VIEW_H_
