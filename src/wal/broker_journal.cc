#include "wal/broker_journal.h"

#include "wal/record_codec.h"

namespace wal {

namespace {

enum MetaRecordType : std::uint8_t {
  kTopic = 1,
  kCommit = 2,
  kSeek = 3,
};

common::Status BadRecord(const char* what) {
  return common::Status::Internal(std::string("malformed broker journal record: ") + what);
}

}  // namespace

BrokerJournal::BrokerJournal(Vfs* vfs, std::string dir, BrokerJournalOptions options,
                             common::MetricsRegistry* metrics, pubsub::Broker* broker)
    : vfs_(vfs), dir_(std::move(dir)), options_(options), metrics_(metrics), broker_(broker) {}

BrokerJournal::~BrokerJournal() {
  if (observing_) {
    broker_->RemoveObserver(this);
  }
  // Partition journals detach their own callbacks.
}

common::Result<std::unique_ptr<BrokerJournal>> BrokerJournal::Open(
    Vfs* vfs, std::string dir, BrokerJournalOptions options, common::MetricsRegistry* metrics,
    pubsub::Broker* broker) {
  std::unique_ptr<BrokerJournal> journal(
      new BrokerJournal(vfs, std::move(dir), options, metrics, broker));
  auto meta = Log::Open(
      vfs, journal->dir_ + "/meta", options.meta_log, metrics,
      [&journal](std::uint64_t, std::string_view payload) {
        return journal->ReplayMeta(payload);
      },
      &journal->meta_recovery_stats_);
  if (!meta.ok()) {
    return meta.status();
  }
  journal->meta_ = std::move(meta.value());
  broker->AddObserver(journal.get());
  journal->observing_ = true;
  return journal;
}

std::string BrokerJournal::PartitionDir(const std::string& topic,
                                        pubsub::PartitionId partition) const {
  return dir_ + "/t-" + topic + "/p-" + std::to_string(partition);
}

common::Status BrokerJournal::OpenPartitionJournals(const std::string& topic,
                                                    pubsub::PartitionId partitions) {
  for (pubsub::PartitionId p = 0; p < partitions; ++p) {
    pubsub::PartitionLog* log = broker_->MutableLog(topic, p);
    if (log == nullptr) {
      return common::Status::Internal("no partition log for " + topic + "/" + std::to_string(p));
    }
    auto opened =
        PartitionJournal::Open(vfs_, PartitionDir(topic, p), options_.partition, metrics_, log);
    if (!opened.ok()) {
      return opened.status();
    }
    auto [it, inserted] =
        partitions_.emplace(std::make_pair(topic, p), std::move(opened.value()));
    if (log_created_) {
      log_created_("t-" + topic + "/p-" + std::to_string(p), &it->second->wal_log());
    }
  }
  return common::Status::Ok();
}

void BrokerJournal::VisitLogs(
    const std::function<void(const std::string& id, Log* log)>& fn) const {
  fn("meta", meta_.get());
  for (const auto& [key, journal] : partitions_) {
    fn("t-" + key.first + "/p-" + std::to_string(key.second), &journal->wal_log());
  }
}

common::Status BrokerJournal::ReplayMeta(std::string_view payload) {
  RecordReader reader(payload);
  std::uint8_t tag = 0;
  if (!reader.ReadU8(&tag)) {
    return BadRecord("empty payload");
  }
  switch (tag) {
    case kTopic: {
      std::string topic;
      pubsub::TopicConfig config;
      std::uint32_t partitions = 0;
      std::uint8_t compacted = 0;
      if (!reader.ReadBytes(&topic) || !reader.ReadU32(&partitions) ||
          !reader.ReadI64(&config.retention.retention) ||
          !reader.ReadU64(&config.retention.max_messages) || !reader.ReadU8(&compacted) ||
          !reader.ReadI64(&config.retention.compaction_window) || !reader.Done()) {
        return BadRecord("topic");
      }
      config.partitions = partitions;
      config.retention.compacted = compacted != 0;
      RETURN_IF_ERROR(broker_->CreateTopic(topic, config));
      // Replaying the partition journals here — before any later kCommit
      // record for this topic — means committed offsets always clamp against
      // fully recovered logs.
      return OpenPartitionJournals(topic, config.partitions);
    }
    case kCommit:
    case kSeek: {
      std::string group;
      std::string topic;
      std::uint32_t partition = 0;
      std::uint64_t offset = 0;
      if (!reader.ReadBytes(&group) || !reader.ReadBytes(&topic) || !reader.ReadU32(&partition) ||
          !reader.ReadU64(&offset) || !reader.Done()) {
        return BadRecord(tag == kCommit ? "commit" : "seek");
      }
      broker_->RestoreGroupState(group, topic, partition, offset);
      return common::Status::Ok();
    }
    default:
      return BadRecord("unknown tag");
  }
}

common::Status BrokerJournal::CreateTopic(const std::string& topic, pubsub::TopicConfig config) {
  if (broker_->HasTopic(topic)) {
    // Check before journaling: a duplicate kTopic record would make every
    // future replay fail on the broker's AlreadyExists.
    return common::Status::AlreadyExists(topic);
  }
  std::string record;
  PutU8(&record, kTopic);
  PutBytes(&record, topic);
  PutU32(&record, config.partitions);
  PutI64(&record, config.retention.retention);
  PutU64(&record, config.retention.max_messages);
  PutU8(&record, config.retention.compacted ? 1 : 0);
  PutI64(&record, config.retention.compaction_window);
  auto appended = meta_->Append(record);
  if (!appended.ok()) {
    return appended.status();
  }
  RETURN_IF_ERROR(broker_->CreateTopic(topic, config));
  return OpenPartitionJournals(topic, config.partitions);
}

void BrokerJournal::NoteFailure(const common::Status& status) {
  if (status_.ok()) {
    status_ = status;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("wal.journal.append_errors").Increment();
  }
}

void BrokerJournal::JournalOffsetRecord(std::uint8_t tag, const pubsub::GroupId& group,
                                        pubsub::PartitionId partition, pubsub::Offset offset) {
  // ViewGroup is a const read; the observer contract only forbids re-entering
  // the broker's write path.
  const std::string topic = broker_->ViewGroup(group).topic;
  std::string record;
  PutU8(&record, tag);
  PutBytes(&record, group);
  PutBytes(&record, topic);
  PutU32(&record, partition);
  PutU64(&record, offset);
  auto appended = meta_->Append(record);
  if (!appended.ok()) {
    NoteFailure(appended.status());
  }
}

void BrokerJournal::OnRebalance(const pubsub::GroupId&, std::uint64_t,
                                const std::vector<pubsub::MemberId>&,
                                const std::map<pubsub::PartitionId, pubsub::MemberId>&) {
  // Membership and assignments are soft state; nothing to journal.
}

void BrokerJournal::OnSeek(const pubsub::GroupId& group, pubsub::PartitionId partition,
                           pubsub::Offset offset) {
  JournalOffsetRecord(kSeek, group, partition, offset);
}

void BrokerJournal::OnCommitOffset(const pubsub::GroupId& group, pubsub::PartitionId partition,
                                   pubsub::Offset offset) {
  JournalOffsetRecord(kCommit, group, partition, offset);
}

common::Status BrokerJournal::status() const {
  if (!status_.ok()) {
    return status_;
  }
  for (const auto& [key, journal] : partitions_) {
    if (!journal->status().ok()) {
      return journal->status();
    }
  }
  return common::Status::Ok();
}

RecoveryStats BrokerJournal::recovery_stats() const {
  RecoveryStats total = meta_recovery_stats_;
  for (const auto& [key, journal] : partitions_) {
    const RecoveryStats& s = journal->recovery_stats();
    total.segments_scanned += s.segments_scanned;
    total.records_replayed += s.records_replayed;
    total.torn_tail_bytes += s.torn_tail_bytes;
    total.torn_tail_frames += s.torn_tail_frames;
  }
  return total;
}

}  // namespace wal
