// BrokerJournal: WAL-backed durability for a whole pubsub::Broker.
//
// Layout under `dir`:
//   meta/              one wal::Log of broker-level records:
//                        kTopic  — topic name + TopicConfig
//                        kCommit — group, topic, partition, committed offset
//                        kSeek   — group, topic, partition, offset (rewinds)
//   t-<topic>/p-<N>/   one PartitionJournal per partition
//
// Recovery replays the meta log in order: a kTopic record recreates the
// topic and opens (and replays) its partition journals, so by the time any
// kCommit/kSeek record for that topic replays, the partition logs hold their
// final recovered end offsets and Broker::RestoreGroupState can clamp
// against them. Group membership, generations, and assignments are
// deliberately NOT journaled — like Kafka, members are soft state that
// re-joins after a restart; only the topic binding and committed offsets
// survive.
//
// Route topic creation through CreateTopic() (runtime::ConcurrentBroker does
// this in durable mode) so the topic record is durable before the topic
// accepts publishes. Commits and seeks are captured automatically via
// BrokerObserver.
#ifndef SRC_WAL_BROKER_JOURNAL_H_
#define SRC_WAL_BROKER_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "pubsub/broker.h"
#include "wal/partition_journal.h"

namespace wal {

struct BrokerJournalOptions {
  PartitionJournalOptions partition;
  LogOptions meta_log;
};

class BrokerJournal : public pubsub::BrokerObserver {
 public:
  // Opens the journal at `dir` and replays it into `broker` (which must be
  // freshly constructed: no topics, no groups). On return the journal is
  // attached as a broker observer and every partition log has its journal
  // callbacks installed.
  static common::Result<std::unique_ptr<BrokerJournal>> Open(Vfs* vfs, std::string dir,
                                                             BrokerJournalOptions options,
                                                             common::MetricsRegistry* metrics,
                                                             pubsub::Broker* broker);

  ~BrokerJournal() override;

  BrokerJournal(const BrokerJournal&) = delete;
  BrokerJournal& operator=(const BrokerJournal&) = delete;

  // Journals the topic (durably) and then creates it on the broker, wiring a
  // PartitionJournal to every partition.
  common::Status CreateTopic(const std::string& topic, pubsub::TopicConfig config);

  // First sticky failure across the meta log and every partition journal.
  common::Status status() const;

  // Aggregated recovery accounting (meta log + partition journals).
  RecoveryStats recovery_stats() const;

  // Visits every underlying wal::Log with a stable id: "meta" for the meta
  // log, "t-<topic>/p-<N>" for each partition log (the id doubles as the
  // log's directory relative to the journal root). Replication uses this to
  // attach shippers to an already-open journal.
  void VisitLogs(const std::function<void(const std::string& id, Log* log)>& fn) const;

  // Fired whenever a new partition log opens after this call (topic created
  // at runtime). Not fired for logs that already existed — use VisitLogs for
  // those. nullptr clears.
  using LogCreatedFn = std::function<void(const std::string& id, Log* log)>;
  void set_log_created_callback(LogCreatedFn fn) { log_created_ = std::move(fn); }

  // -- BrokerObserver ----------------------------------------------------------

  void OnRebalance(const pubsub::GroupId& group, std::uint64_t generation,
                   const std::vector<pubsub::MemberId>& members,
                   const std::map<pubsub::PartitionId, pubsub::MemberId>& assignment) override;
  void OnSeek(const pubsub::GroupId& group, pubsub::PartitionId partition,
              pubsub::Offset offset) override;
  void OnCommitOffset(const pubsub::GroupId& group, pubsub::PartitionId partition,
                      pubsub::Offset offset) override;

 private:
  BrokerJournal(Vfs* vfs, std::string dir, BrokerJournalOptions options,
                common::MetricsRegistry* metrics, pubsub::Broker* broker);

  common::Status ReplayMeta(std::string_view payload);
  common::Status OpenPartitionJournals(const std::string& topic, pubsub::PartitionId partitions);
  std::string PartitionDir(const std::string& topic, pubsub::PartitionId partition) const;
  void JournalOffsetRecord(std::uint8_t tag, const pubsub::GroupId& group,
                           pubsub::PartitionId partition, pubsub::Offset offset);
  void NoteFailure(const common::Status& status);

  Vfs* vfs_;
  std::string dir_;
  BrokerJournalOptions options_;
  common::MetricsRegistry* metrics_;
  pubsub::Broker* broker_;
  std::unique_ptr<Log> meta_;
  RecoveryStats meta_recovery_stats_;
  // (topic, partition) -> journal.
  std::map<std::pair<std::string, pubsub::PartitionId>, std::unique_ptr<PartitionJournal>>
      partitions_;
  common::Status status_;
  bool observing_ = false;
  LogCreatedFn log_created_;
};

}  // namespace wal

#endif  // SRC_WAL_BROKER_JOURNAL_H_
