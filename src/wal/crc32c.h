// CRC32C (Castagnoli) for WAL frame integrity. Table-driven software
// implementation, deterministic across platforms. Stored CRCs are masked
// (LevelDB-style) so a CRC computed over bytes that themselves contain CRCs
// does not degenerate.
#ifndef SRC_WAL_CRC32C_H_
#define SRC_WAL_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wal {

namespace internal {

constexpr std::array<std::uint32_t, 256> BuildCrc32cTable() {
  // Reflected Castagnoli polynomial.
  constexpr std::uint32_t kPoly = 0x82f63b78u;
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = BuildCrc32cTable();

}  // namespace internal

inline std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (char c : data) {
    crc = internal::kCrc32cTable[(crc ^ static_cast<unsigned char>(c)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

// Rotate-and-offset mask applied to CRCs before storing them in frames.
inline std::uint32_t MaskCrc(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline std::uint32_t UnmaskCrc(std::uint32_t masked) {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace wal

#endif  // SRC_WAL_CRC32C_H_
