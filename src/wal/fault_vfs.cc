#include "wal/fault_vfs.h"

#include <algorithm>

namespace wal {

namespace {

common::Status CrashedStatus() {
  return common::Status::Unavailable("fault vfs is crashed; Restart() to recover");
}

}  // namespace

// Handles hold a shared_ptr to the node so Remove cannot dangle them; every
// operation re-enters the owning Vfs for fault scheduling and crash checks.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultVfs* vfs, std::shared_ptr<FaultVfs::Node> node)
      : vfs_(vfs), node_(std::move(node)) {}

  common::Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->crashed_) {
      return CrashedStatus();
    }
    const std::uint64_t index = vfs_->append_calls_++;
    if (vfs_->options_.crash_at_append >= 0 &&
        index == static_cast<std::uint64_t>(vfs_->options_.crash_at_append)) {
      // Torn write: a seeded byte prefix of the data reaches the cache, then
      // the process dies mid-call.
      const std::uint64_t keep = vfs_->rng_.Below(data.size() + 1);
      node_->data.append(data.substr(0, static_cast<std::size_t>(keep)));
      vfs_->crashed_ = true;
      return common::Status::Unavailable("injected crash at append #" + std::to_string(index));
    }
    node_->data.append(data);
    return common::Status::Ok();
  }

  common::Status Sync() override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->crashed_) {
      return CrashedStatus();
    }
    if (vfs_->options_.fail_sync_prob > 0.0 &&
        vfs_->rng_.Bernoulli(vfs_->options_.fail_sync_prob)) {
      ++vfs_->failed_syncs_;
      return common::Status::Unavailable("injected fsync failure");
    }
    node_->synced = node_->data.size();
    return common::Status::Ok();
  }

  common::Status Close() override { return common::Status::Ok(); }

 private:
  FaultVfs* vfs_;
  std::shared_ptr<FaultVfs::Node> node_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(const FaultVfs* vfs, std::shared_ptr<FaultVfs::Node> node)
      : vfs_(vfs), node_(std::move(node)) {}

  common::Result<std::size_t> Read(std::uint64_t offset, std::size_t n,
                                   char* scratch) const override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (offset >= node_->data.size() || n == 0) {
      return static_cast<std::size_t>(0);
    }
    std::size_t avail = std::min(n, node_->data.size() - static_cast<std::size_t>(offset));
    if (avail > 1 && vfs_->options_.short_read_prob > 0.0 &&
        vfs_->rng_.Bernoulli(vfs_->options_.short_read_prob)) {
      // Short read: strictly fewer bytes than available, but never zero
      // (zero means EOF to callers).
      avail = 1 + static_cast<std::size_t>(vfs_->rng_.Below(avail - 1));
    }
    node_->data.copy(scratch, avail, static_cast<std::size_t>(offset));
    return avail;
  }

  common::Result<std::uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    return static_cast<std::uint64_t>(node_->data.size());
  }

 private:
  const FaultVfs* vfs_;
  std::shared_ptr<FaultVfs::Node> node_;
};

FaultVfs::FaultVfs(FaultOptions options) : options_(options), rng_(options.seed) {}

std::shared_ptr<FaultVfs::Node> FaultVfs::FindNode(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

common::Result<std::unique_ptr<WritableFile>> FaultVfs::OpenAppend(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return CrashedStatus();
  }
  auto node = FindNode(path);
  if (node == nullptr) {
    node = std::make_shared<Node>();
    files_[path] = node;
  }
  return std::unique_ptr<WritableFile>(new FaultWritableFile(this, std::move(node)));
}

common::Result<std::unique_ptr<RandomAccessFile>> FaultVfs::OpenRead(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return CrashedStatus();
  }
  auto node = FindNode(path);
  if (node == nullptr) {
    return common::Status::NotFound(path);
  }
  return std::unique_ptr<RandomAccessFile>(new FaultRandomAccessFile(this, std::move(node)));
}

common::Status FaultVfs::CreateDirs(const std::string&) {
  std::lock_guard<std::mutex> lock(mu_);
  // Directories are implicit in the flat path map.
  return crashed_ ? CrashedStatus() : common::Status::Ok();
}

common::Result<std::vector<std::string>> FaultVfs::ListDir(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return CrashedStatus();
  }
  const std::string prefix = path.empty() || path.back() == '/' ? path : path + "/";
  std::vector<std::string> names;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    const std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) {  // Direct children only.
      names.push_back(rest);
    }
  }
  return names;  // Map iteration is already sorted.
}

common::Status FaultVfs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return CrashedStatus();
  }
  return files_.erase(path) > 0 ? common::Status::Ok() : common::Status::NotFound(path);
}

common::Status FaultVfs::Truncate(const std::string& path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return CrashedStatus();
  }
  auto node = FindNode(path);
  if (node == nullptr) {
    return common::Status::NotFound(path);
  }
  if (size < node->data.size()) {
    node->data.resize(static_cast<std::size_t>(size));
    node->synced = std::min(node->synced, node->data.size());
  }
  return common::Status::Ok();
}

bool FaultVfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

void FaultVfs::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

void FaultVfs::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.lose_unsynced_on_crash && crashed_) {
    for (auto& [path, node] : files_) {
      // The kernel flushed a seeded amount of the un-synced tail. (Corruption
      // through MutableContents may have shrunk the file below its synced
      // size; clamp first.)
      node->synced = std::min(node->synced, node->data.size());
      const std::size_t tail = node->data.size() - node->synced;
      const std::size_t kept =
          node->synced + static_cast<std::size_t>(rng_.Below(static_cast<std::uint64_t>(tail) + 1));
      node->data.resize(kept);
    }
  }
  // Whatever survived the crash is on stable storage now.
  for (auto& [path, node] : files_) {
    node->synced = node->data.size();
  }
  crashed_ = false;
}

bool FaultVfs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::uint64_t FaultVfs::append_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return append_calls_;
}

std::uint64_t FaultVfs::failed_syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_syncs_;
}

std::string* FaultVfs::MutableContents(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto node = FindNode(path);
  return node == nullptr ? nullptr : &node->data;
}

std::uint64_t FaultVfs::SyncedSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto node = FindNode(path);
  // Shrinking the file through MutableContents clamps the durable prefix.
  return node == nullptr ? 0 : std::min(node->synced, node->data.size());
}

std::vector<std::string> FaultVfs::Paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, node] : files_) {
    out.push_back(path);
  }
  return out;
}

}  // namespace wal
