// FaultVfs: a deterministic in-memory Vfs with seeded fault injection — the
// crash-recovery harness's filesystem. It models the two-tier durability of a
// real OS: appended bytes land in the "page cache" (visible to reads), Sync
// promotes them to the durable prefix, and a crash may tear the in-flight
// write and (optionally) drop everything above the durable prefix.
//
// Faults, all driven by one seeded Rng so a (seed, schedule) pair replays
// byte-identically:
//  * crash_at_append = N — the Nth Append call (0-based, counted across all
//    files) persists only a seeded prefix of its data (a torn write), then
//    the Vfs enters the crashed state: every subsequent append, sync, and
//    open fails with kUnavailable until Restart();
//  * fail_sync_prob — each Sync independently fails (durable prefix
//    unchanged), modeling fsync returning EIO;
//  * short_read_prob — each Read returns fewer bytes than requested,
//    exercising callers' read loops;
//  * lose_unsynced_on_crash — on Restart after a crash, each file keeps its
//    durable prefix plus a seeded portion of the un-synced tail (the kernel
//    may or may not have flushed it).
//
// Test hooks expose raw file bytes for the corruption matrix (bit flips,
// mid-frame truncation, duplicated tail frames).
//
// Thread safety: all operations take one internal mutex, so a FaultVfs may
// back every shard of a durable-mode ShardPool. Fault schedules are only
// deterministic when calls arrive in a deterministic order (single-threaded
// harnesses; the crash sweeps).
#ifndef SRC_WAL_FAULT_VFS_H_
#define SRC_WAL_FAULT_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "wal/vfs.h"

namespace wal {

struct FaultOptions {
  std::uint64_t seed = 1;
  // Append call index (0-based, across all files) at which to inject a torn
  // write and crash. -1 disables.
  std::int64_t crash_at_append = -1;
  double fail_sync_prob = 0.0;
  double short_read_prob = 0.0;
  bool lose_unsynced_on_crash = false;
};

class FaultVfs : public Vfs {
 public:
  explicit FaultVfs(FaultOptions options = {});

  // -- Vfs ---------------------------------------------------------------------

  common::Result<std::unique_ptr<WritableFile>> OpenAppend(const std::string& path) override;
  common::Result<std::unique_ptr<RandomAccessFile>> OpenRead(
      const std::string& path) const override;
  common::Status CreateDirs(const std::string& path) override;
  common::Result<std::vector<std::string>> ListDir(const std::string& path) const override;
  common::Status Remove(const std::string& path) override;
  common::Status Truncate(const std::string& path, std::uint64_t size) override;
  bool Exists(const std::string& path) const override;

  // -- Crash control ------------------------------------------------------------

  // Immediate crash with no torn write (a power cut between writes).
  void Crash();
  // Leaves the crashed state and applies the durability model: with
  // lose_unsynced_on_crash, each file is cut back to its durable prefix plus
  // a seeded slice of the un-synced tail. Whatever survives is then durable.
  void Restart();
  bool crashed() const;

  // -- Accounting / test hooks ---------------------------------------------------

  // Total Append calls observed (the crash sweep's schedule domain).
  std::uint64_t append_calls() const;
  std::uint64_t failed_syncs() const;

  // Raw bytes of `path` for corruption injection; nullptr if absent. The
  // pointer is invalidated by Remove. Mutating through it models on-disk
  // corruption (the durable prefix is clamped to the new size).
  std::string* MutableContents(const std::string& path);
  std::uint64_t SyncedSize(const std::string& path) const;
  std::vector<std::string> Paths() const;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  struct Node {
    std::string data;
    std::size_t synced = 0;
  };

  std::shared_ptr<Node> FindNode(const std::string& path) const;

  FaultOptions options_;
  mutable std::mutex mu_;
  mutable common::Rng rng_;
  std::map<std::string, std::shared_ptr<Node>> files_;
  bool crashed_ = false;
  std::uint64_t append_calls_ = 0;
  std::uint64_t failed_syncs_ = 0;
};

}  // namespace wal

#endif  // SRC_WAL_FAULT_VFS_H_
