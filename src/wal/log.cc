#include "wal/log.h"

#include <algorithm>
#include <cstdio>

#include "wal/crc32c.h"
#include "wal/record_codec.h"

namespace wal {

namespace {

constexpr std::size_t kFrameHeaderBytes = 16;  // crc(4) + len(4) + index(8).
constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".wal";

std::string SegmentName(std::uint64_t first_index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%020llu.wal",
                static_cast<unsigned long long>(first_index));
  return buf;
}

// Parses "seg-<20 digits>.wal"; false for anything else.
bool ParseSegmentName(const std::string& name, std::uint64_t* first_index) {
  const std::size_t prefix = sizeof(kSegmentPrefix) - 1;
  const std::size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() != prefix + 20 + suffix || name.compare(0, prefix, kSegmentPrefix) != 0 ||
      name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = prefix; i < prefix + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *first_index = value;
  return true;
}

std::uint32_t FrameCrc(std::string_view index_and_payload) { return Crc32c(index_and_payload); }

}  // namespace

Log::Log(Vfs* vfs, std::string dir, LogOptions options, common::MetricsRegistry* metrics)
    : vfs_(vfs), dir_(std::move(dir)), options_(options), metrics_(metrics) {}

void Log::Count(const std::string& name, std::int64_t delta) {
  if (metrics_ != nullptr) {
    metrics_->counter(name).Increment(delta);
  }
}

std::string Log::SegmentPath(std::uint64_t first_index) const {
  return dir_ + "/" + SegmentName(first_index);
}

std::string Log::SegmentFileName(std::uint64_t first_index) { return SegmentName(first_index); }

common::Result<std::unique_ptr<Log>> Log::Open(Vfs* vfs, std::string dir, LogOptions options,
                                               common::MetricsRegistry* metrics,
                                               const ReplayFn& replay, RecoveryStats* stats) {
  RETURN_IF_ERROR(vfs->CreateDirs(dir));
  auto names = vfs->ListDir(dir);
  if (!names.ok()) {
    return names.status();
  }

  std::unique_ptr<Log> log(new Log(vfs, std::move(dir), options, metrics));
  RecoveryStats local_stats;

  std::vector<std::uint64_t> firsts;
  for (const auto& name : names.value()) {
    std::uint64_t first_index = 0;
    if (!ParseSegmentName(name, &first_index)) {
      log->Count("wal.recovery.rejected_segments", 1);
      return common::Status::Internal("unexpected file in wal dir: " + name);
    }
    firsts.push_back(first_index);  // ListDir sorts; zero-padding keeps numeric order.
  }

  std::uint64_t expected = firsts.empty() ? 0 : firsts.front();
  for (std::size_t seg_no = 0; seg_no < firsts.size(); ++seg_no) {
    const bool sealed = seg_no + 1 < firsts.size();
    const std::string path = log->SegmentPath(firsts[seg_no]);
    if (firsts[seg_no] != expected) {
      // A whole segment's worth of records is missing or misnamed.
      log->Count("wal.recovery.rejected_segments", 1);
      return common::Status::Internal("wal segment " + path + " starts at index " +
                                      std::to_string(firsts[seg_no]) + ", expected " +
                                      std::to_string(expected));
    }
    auto contents = ReadFileToString(*vfs, path);
    if (!contents.ok()) {
      return contents.status();
    }
    const std::string& data = contents.value();
    ++local_stats.segments_scanned;

    Segment seg;
    seg.first_index = firsts[seg_no];
    std::size_t pos = 0;
    bool truncated = false;
    std::string reject;
    while (pos < data.size()) {
      std::string_view frame_error;
      std::uint64_t index = 0;
      std::size_t frame_bytes = 0;
      if (data.size() - pos < kFrameHeaderBytes) {
        frame_error = "truncated frame header";
      } else {
        const std::uint32_t stored_crc = UnmaskCrc(DecodeU32(data.data() + pos));
        const std::uint32_t len = DecodeU32(data.data() + pos + 4);
        index = DecodeU64(data.data() + pos + 8);
        if (data.size() - pos - kFrameHeaderBytes < len) {
          frame_error = "truncated frame payload";
        } else if (FrameCrc(std::string_view(data.data() + pos + 8, 8 + len)) != stored_crc) {
          frame_error = "crc mismatch";
        } else {
          frame_bytes = kFrameHeaderBytes + len;
        }
      }

      if (frame_error.empty() && index > expected) {
        // An interior record is missing. Skipping it would silently lose
        // data, so this is always fatal — even in the active segment.
        log->Count("wal.recovery.rejected_segments", 1);
        return common::Status::Internal("wal gap in " + path + ": found index " +
                                        std::to_string(index) + ", expected " +
                                        std::to_string(expected));
      }

      if (!frame_error.empty() || index < expected) {
        const std::string what =
            !frame_error.empty() ? std::string(frame_error)
                                 : "duplicate frame (index " + std::to_string(index) + ")";
        if (sealed) {
          // Sealed segments were fully synced before any later write, so
          // this cannot be a crash artifact; reject loudly.
          log->Count("wal.recovery.rejected_segments", 1);
          return common::Status::Internal("corrupt sealed wal segment " + path + " at byte " +
                                          std::to_string(pos) + ": " + what);
        }
        // Active segment: a torn or retried final write. Truncate the tail
        // at the last valid frame; nothing after it is replayed.
        local_stats.torn_tail_bytes += data.size() - pos;
        local_stats.torn_tail_frames += 1;
        RETURN_IF_ERROR(vfs->Truncate(path, pos));
        truncated = true;
        break;
      }

      const std::string_view payload(data.data() + pos + kFrameHeaderBytes,
                                     frame_bytes - kFrameHeaderBytes);
      RETURN_IF_ERROR(replay(index, payload));
      ++local_stats.records_replayed;
      ++expected;
      pos += frame_bytes;
    }
    seg.end_index = expected;
    seg.bytes = truncated ? pos : data.size();
    log->segments_.push_back(seg);
  }

  log->next_index_ = expected;
  if (log->segments_.empty()) {
    log->segments_.push_back(Segment{log->next_index_, log->next_index_, 0});
  }
  RETURN_IF_ERROR(log->OpenActiveForAppend());

  if (metrics != nullptr) {
    metrics->counter("wal.recovery.torn_tail_bytes")
        .Increment(static_cast<std::int64_t>(local_stats.torn_tail_bytes));
    metrics->counter("wal.recovery.torn_tail_frames")
        .Increment(static_cast<std::int64_t>(local_stats.torn_tail_frames));
    metrics->counter("wal.recovery.records_replayed")
        .Increment(static_cast<std::int64_t>(local_stats.records_replayed));
  }
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return log;
}

common::Status Log::OpenActiveForAppend() {
  auto file = vfs_->OpenAppend(SegmentPath(segments_.back().first_index));
  if (!file.ok()) {
    return file.status();
  }
  active_file_ = std::move(file.value());
  return common::Status::Ok();
}

common::Status Log::RotateIfNeeded() {
  if (segments_.back().bytes < options_.segment_bytes) {
    return common::Status::Ok();
  }
  // Seal: sync then close, so sealed segments are fully durable before any
  // later write. Recovery relies on this to treat sealed anomalies as
  // corruption rather than crash artifacts.
  RETURN_IF_ERROR(active_file_->Sync());
  RETURN_IF_ERROR(active_file_->Close());
  segments_.push_back(Segment{next_index_, next_index_, 0});
  return OpenActiveForAppend();
}

common::Result<std::uint64_t> Log::Append(std::string_view payload) {
  RETURN_IF_ERROR(RotateIfNeeded());
  const std::uint64_t index = next_index_;

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  std::string index_bytes;
  PutU64(&index_bytes, index);
  std::uint32_t crc = Crc32c(index_bytes);
  crc = Crc32c(payload, crc);
  PutU32(&frame, MaskCrc(crc));
  PutU32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame += index_bytes;
  frame.append(payload);

  RETURN_IF_ERROR(active_file_->Append(frame));
  segments_.back().bytes += frame.size();
  segments_.back().end_index = index + 1;
  next_index_ = index + 1;
  if (options_.sync_every_append) {
    RETURN_IF_ERROR(active_file_->Sync());
  }
  Count("wal.appends", 1);
  if (append_observer_) {
    append_observer_(index, payload);
  }
  return index;
}

common::Status Log::Sync() { return active_file_->Sync(); }

common::Result<std::uint64_t> Log::DropSealedSegmentsBefore(std::uint64_t index) {
  // Open readers pin the segments at or past their cursor: reclaiming a
  // sealed segment a catch-up stream still holds a cursor into would turn
  // its next read into silent loss. Clamp the drop point to the slowest
  // reader instead, and count the clamp so operators see GC being held back.
  std::uint64_t effective = index;
  for (const LogReader* reader : readers_) {
    effective = std::min(effective, reader->next_index());
  }
  std::uint64_t dropped = 0;
  std::uint64_t pinned = 0;
  while (segments_.size() > 1 && segments_.front().end_index <= effective) {
    RETURN_IF_ERROR(vfs_->Remove(SegmentPath(segments_.front().first_index)));
    segments_.erase(segments_.begin());
    ++dropped;
  }
  // Segments that would have been dropped but for a reader's pin.
  for (const Segment& seg : segments_) {
    if (segments_.size() > 1 && seg.end_index <= index && &seg != &segments_.back()) {
      ++pinned;
    }
  }
  Count("wal.gc.segments_dropped", static_cast<std::int64_t>(dropped));
  Count("wal.gc.segments_pinned", static_cast<std::int64_t>(pinned));
  return dropped;
}

std::unique_ptr<LogReader> Log::OpenReader(std::uint64_t from_index) {
  const std::uint64_t from = std::max(from_index, oldest_retained_index());
  std::unique_ptr<LogReader> reader(new LogReader(this, from));
  readers_.push_back(reader.get());
  return reader;
}

LogReader::~LogReader() {
  auto& readers = log_->readers_;
  readers.erase(std::remove(readers.begin(), readers.end(), this), readers.end());
}

common::Status LogReader::LoadSegmentContaining(std::uint64_t index) {
  if (index < log_->oldest_retained_index()) {
    // The cursor's segment is gone. OpenReader pins against GC, so this only
    // happens for a cursor positioned below the retained prefix out of band;
    // the caller must force-resync from current state.
    return common::Status::NotFound("wal reader outrun by gc: index " + std::to_string(index) +
                                    " < oldest retained " +
                                    std::to_string(log_->oldest_retained_index()));
  }
  const Log::Segment* seg = nullptr;
  for (const Log::Segment& s : log_->segments_) {
    if (index >= s.first_index && index < s.end_index) {
      seg = &s;
      break;
    }
  }
  if (seg == nullptr) {
    return common::Status::Internal("wal reader: no segment holds index " +
                                    std::to_string(index));
  }
  auto contents = ReadFileToString(*log_->vfs_, log_->SegmentPath(seg->first_index));
  if (!contents.ok()) {
    return contents.status();
  }
  cached_ = std::move(contents.value());
  cached_first_ = seg->first_index;
  cached_pos_ = 0;
  cache_valid_ = true;
  // Walk frames from the segment head to the cursor (frames are variable
  // length, so there is no random access by index).
  std::uint64_t at = seg->first_index;
  while (at < index) {
    if (cached_.size() - cached_pos_ < kFrameHeaderBytes) {
      return common::Status::Internal("wal reader: truncated frame while seeking in " +
                                      log_->SegmentPath(seg->first_index));
    }
    const std::uint32_t len = DecodeU32(cached_.data() + cached_pos_ + 4);
    cached_pos_ += kFrameHeaderBytes + len;
    ++at;
  }
  return common::Status::Ok();
}

common::Result<bool> LogReader::Next(std::uint64_t* index, std::string* payload) {
  if (next_index_ >= log_->next_index()) {
    return false;  // Caught up; more records may land later.
  }
  // (Re)load when the cursor left the cached segment or the cached parse of
  // the active segment is exhausted but the log has more records (the active
  // file grew, or rotation moved the cursor's record to a new segment).
  const bool in_cached_segment =
      cache_valid_ && next_index_ >= cached_first_ && cached_pos_ < cached_.size();
  if (!in_cached_segment) {
    RETURN_IF_ERROR(LoadSegmentContaining(next_index_));
  }
  if (cached_.size() - cached_pos_ < kFrameHeaderBytes) {
    return common::Status::Internal("wal reader: truncated frame header in segment " +
                                    std::to_string(cached_first_));
  }
  const std::uint32_t len = DecodeU32(cached_.data() + cached_pos_ + 4);
  const std::uint64_t frame_index = DecodeU64(cached_.data() + cached_pos_ + 8);
  if (cached_.size() - cached_pos_ - kFrameHeaderBytes < len || frame_index != next_index_) {
    return common::Status::Internal("wal reader: unexpected frame (index " +
                                    std::to_string(frame_index) + ", want " +
                                    std::to_string(next_index_) + ")");
  }
  *index = next_index_;
  payload->assign(cached_.data() + cached_pos_ + kFrameHeaderBytes, len);
  cached_pos_ += kFrameHeaderBytes + len;
  ++next_index_;
  return true;
}

std::uint64_t Log::active_segment_first_index() const { return segments_.back().first_index; }

std::vector<SegmentInfo> Log::Segments() const {
  std::vector<SegmentInfo> out;
  out.reserve(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    out.push_back(SegmentInfo{segments_[i].first_index, segments_[i].end_index,
                              segments_[i].bytes, i + 1 < segments_.size()});
  }
  return out;
}

}  // namespace wal
