// wal::Log — a durable segmented write-ahead log of opaque records over a
// pluggable Vfs.
//
// Frame format (all integers little-endian):
//
//   [u32 masked_crc32c][u32 payload_len][u64 record_index][payload bytes]
//
// The CRC covers the record_index bytes plus the payload and is stored
// masked (crc32c.h) so frames whose payloads embed CRCs stay robust. The
// record_index is the global, gapless sequence number of the record; it is
// what lets recovery distinguish a duplicated tail frame (index < expected,
// a retried write) from an interior gap (index > expected, lost data).
//
// Segment lifecycle: records append to the highest-numbered segment file,
// `seg-<first_index %020llu>.wal`. When the active segment reaches
// `segment_bytes` it is synced and sealed, and the next append opens a new
// segment named by its first record index. Sealed segments are immutable and
// fully durable (the seal sync ran before any later append), so GC can drop
// a prefix of them wholesale via DropSealedSegmentsBefore once their records
// are superseded by a durable snapshot record — the caller's responsibility.
//
// Recovery (Open) replays every segment in index order and enforces:
//  * filename / first-record-index agreement and cross-segment continuity;
//  * sealed segments must be perfect — any bad CRC, truncated frame,
//    duplicate, or gap is corruption and Open fails loudly (kInternal),
//    counting `wal.recovery.rejected_segments`;
//  * the active (last) segment may end in garbage — a torn final write. The
//    tail is truncated at the first invalid frame and counted
//    (`wal.recovery.torn_tail_bytes` / `torn_tail_frames`). A frame whose
//    index is below the expected one truncates the tail the same way (a
//    replayed retry); an index above the expected one is a gap and fails
//    loudly even in the active segment;
//  * recovery never skips an interior frame: nothing after the first invalid
//    frame of the active segment is replayed, and sealed segments reject.
#ifndef SRC_WAL_LOG_H_
#define SRC_WAL_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "wal/vfs.h"

namespace wal {

struct LogOptions {
  // Rotation threshold: the active segment seals once its size reaches this.
  std::uint64_t segment_bytes = 64 * 1024;
  // Sync after every append. The crash sweeps rely on this: an acked append
  // is durable, so recovered state can be compared against acked state.
  bool sync_every_append = true;
};

struct SegmentInfo {
  std::uint64_t first_index = 0;  // Index of the segment's first record.
  std::uint64_t end_index = 0;    // One past the last record in the segment.
  std::uint64_t bytes = 0;
  bool sealed = false;
};

struct RecoveryStats {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t torn_tail_bytes = 0;   // Active-segment bytes truncated.
  std::uint64_t torn_tail_frames = 0;  // Invalid/duplicate frames dropped with them.
};

class LogReader;

class Log {
 public:
  // Called once per recovered record, in index order. A non-OK return aborts
  // recovery and fails Open.
  using ReplayFn = std::function<common::Status(std::uint64_t index, std::string_view payload)>;

  // Called after every durable Append with the record's index and payload —
  // the replication shipper's live-tail hook. Runs synchronously inside
  // Append; must not re-enter the log.
  using AppendObserver = std::function<void(std::uint64_t index, std::string_view payload)>;

  // Opens (creating `dir` if needed) and replays existing segments through
  // `replay`. `metrics` may be nullptr. `stats` (optional) receives recovery
  // accounting.
  static common::Result<std::unique_ptr<Log>> Open(Vfs* vfs, std::string dir, LogOptions options,
                                                   common::MetricsRegistry* metrics,
                                                   const ReplayFn& replay,
                                                   RecoveryStats* stats = nullptr);

  // Appends one record; returns its index. With sync_every_append the record
  // is durable on return.
  common::Result<std::uint64_t> Append(std::string_view payload);

  // Durability barrier for all previously appended records.
  common::Status Sync();

  // Drops the prefix of sealed segments whose records all have index <
  // `index`. Never touches the active segment. The caller must have made a
  // superseding snapshot record durable first. Segments still referenced by
  // an open LogReader are pinned: the drop point is silently clamped to the
  // slowest reader's cursor (counted as wal.gc.segments_pinned), so a
  // catch-up stream can never have its segment reclaimed underneath it.
  // Returns the number of segments removed.
  common::Result<std::uint64_t> DropSealedSegmentsBefore(std::uint64_t index);

  // Opens a sequential reader positioned at `from_index` (clamped up to the
  // oldest retained record). While a reader is open, the segments at or past
  // its cursor are pinned against DropSealedSegmentsBefore — destroy readers
  // promptly. Readers are cheap; they share the log's Vfs and never block
  // appends.
  std::unique_ptr<LogReader> OpenReader(std::uint64_t from_index);

  // Fired after every durable append (replication live tail). nullptr clears.
  void set_append_observer(AppendObserver fn) { append_observer_ = std::move(fn); }

  // Index the next Append will assign.
  std::uint64_t next_index() const { return next_index_; }
  // Smallest record index still on disk (first segment's first record).
  std::uint64_t oldest_retained_index() const { return segments_.front().first_index; }
  // First index of the segment the next Append lands in (the active segment,
  // or the one rotation is about to create).
  std::uint64_t active_segment_first_index() const;

  std::vector<SegmentInfo> Segments() const;

  // File name of the segment whose first record is `first_index`
  // ("seg-<index %020llu>.wal"); replication's force-resync uses it to read
  // and re-create segment files byte-for-byte.
  static std::string SegmentFileName(std::uint64_t first_index);

  const std::string& dir() const { return dir_; }
  Vfs* vfs() const { return vfs_; }

 private:
  friend class LogReader;
  struct Segment {
    std::uint64_t first_index = 0;
    std::uint64_t end_index = 0;
    std::uint64_t bytes = 0;
  };

  Log(Vfs* vfs, std::string dir, LogOptions options, common::MetricsRegistry* metrics);

  std::string SegmentPath(std::uint64_t first_index) const;
  common::Status OpenActiveForAppend();
  common::Status RotateIfNeeded();
  void Count(const std::string& name, std::int64_t delta);

  Vfs* vfs_;
  std::string dir_;
  LogOptions options_;
  common::MetricsRegistry* metrics_;

  std::vector<Segment> segments_;  // Ordered by first_index; back() is active.
  std::unique_ptr<WritableFile> active_file_;
  std::uint64_t next_index_ = 0;
  AppendObserver append_observer_;
  std::vector<LogReader*> readers_;  // Open readers; their cursors pin GC.
};

// Sequential record cursor over a Log. Next() yields records in index order,
// re-reading the active segment as it grows; it returns false (no record)
// once caught up with the log's end — call again after more appends. A
// cursor can only fall behind the retained prefix if it was *opened* below
// it (OpenReader clamps, but a concurrent out-of-band Remove could race);
// that surfaces loudly as kNotFound, the caller's cue to force-resync.
class LogReader {
 public:
  ~LogReader();

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  // Reads the record at the cursor into *index/*payload and advances.
  // Returns true on a record, false when caught up with the log's end.
  common::Result<bool> Next(std::uint64_t* index, std::string* payload);

  // Index of the record the next Next() will return.
  std::uint64_t next_index() const { return next_index_; }

 private:
  friend class Log;
  LogReader(Log* log, std::uint64_t from) : log_(log), next_index_(from) {}

  common::Status LoadSegmentContaining(std::uint64_t index);

  Log* log_;
  std::uint64_t next_index_ = 0;
  // One segment's raw bytes, cached; reloaded when the cursor leaves it or
  // the active segment has grown past the cached parse.
  bool cache_valid_ = false;
  std::uint64_t cached_first_ = 0;  // Cached segment's first record index.
  std::string cached_;
  std::size_t cached_pos_ = 0;
};

}  // namespace wal

#endif  // SRC_WAL_LOG_H_
