#include "wal/partition_journal.h"

#include <iterator>
#include <utility>

#include "wal/record_codec.h"

namespace wal {

namespace {

enum RecordType : std::uint8_t {
  kAppend = 1,
  kTrim = 2,
  kCompact = 3,
  kSnapshot = 4,
};

common::Status BadRecord(const char* what) {
  return common::Status::Internal(std::string("malformed partition journal record: ") + what);
}

}  // namespace

PartitionJournal::PartitionJournal(Vfs* vfs, PartitionJournalOptions options,
                                   common::MetricsRegistry* metrics, pubsub::PartitionLog* log)
    : vfs_(vfs), options_(options), metrics_(metrics), log_(log) {}

PartitionJournal::~PartitionJournal() {
  if (log_ != nullptr) {
    log_->set_append_callback(nullptr);
    log_->set_retention_callback(nullptr);
  }
}

common::Result<std::unique_ptr<PartitionJournal>> PartitionJournal::Open(
    Vfs* vfs, std::string dir, PartitionJournalOptions options, common::MetricsRegistry* metrics,
    pubsub::PartitionLog* log) {
  std::unique_ptr<PartitionJournal> journal(new PartitionJournal(vfs, options, metrics, log));
  auto opened = Log::Open(
      vfs, std::move(dir), options.log, metrics,
      [&journal](std::uint64_t index, std::string_view payload) {
        return journal->Replay(index, payload);
      },
      &journal->recovery_stats_);
  if (!opened.ok()) {
    return opened.status();
  }
  if (!journal->last_snapshot_check_.ok()) {
    // The final (authoritative) snapshot disagreed with replay: retained
    // segments are missing. Never silently absorb that.
    return journal->last_snapshot_check_;
  }
  journal->wal_ = std::move(opened.value());

  // Fold the replayed appends into per-segment maxima now that segment
  // boundaries are known.
  for (const SegmentInfo& seg : journal->wal_->Segments()) {
    for (const auto& [index, offset] : journal->replay_appends_) {
      if (index >= seg.first_index && index < seg.end_index) {
        auto [it, inserted] = journal->segment_max_offset_.try_emplace(seg.first_index, offset);
        if (!inserted && offset > it->second) {
          it->second = offset;
        }
      }
    }
  }
  journal->replay_appends_.clear();
  journal->replay_appends_.shrink_to_fit();

  log->set_append_callback(
      [j = journal.get()](const pubsub::StoredMessage& msg) { j->OnAppend(msg); });
  log->set_retention_callback(
      [j = journal.get()](const pubsub::RetentionEvent& event) { j->OnRetention(event); });
  return journal;
}

common::Status PartitionJournal::Replay(std::uint64_t index, std::string_view payload) {
  RecordReader reader(payload);
  std::uint8_t tag = 0;
  if (!reader.ReadU8(&tag)) {
    return BadRecord("empty payload");
  }
  switch (tag) {
    case kAppend: {
      std::uint64_t offset = 0;
      pubsub::Message msg;
      if (!reader.ReadU64(&offset) || !reader.ReadBytes(&msg.key) ||
          !reader.ReadBytes(&msg.value) || !reader.ReadI64(&msg.publish_time)) {
        return BadRecord("append");
      }
      // Record headers ride as an optional trailing block: absent in
      // journals written before filtered subscriptions (and for records with
      // no headers), so old journals replay with empty headers.
      if (!reader.Done()) {
        std::uint32_t n = 0;
        if (!reader.ReadU32(&n)) {
          return BadRecord("append");
        }
        msg.headers.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          std::string name;
          std::string value;
          if (!reader.ReadBytes(&name) || !reader.ReadBytes(&value)) {
            return BadRecord("append");
          }
          msg.headers.emplace_back(std::move(name), std::move(value));
        }
      }
      if (!reader.Done()) {
        return BadRecord("append");
      }
      log_->RestoreAppend(offset, std::move(msg));
      replay_appends_.emplace_back(index, offset);
      return common::Status::Ok();
    }
    case kTrim: {
      std::uint64_t first = 0;
      if (!reader.ReadU64(&first) || !reader.Done()) {
        return BadRecord("trim");
      }
      log_->TrimTo(first);
      return common::Status::Ok();
    }
    case kCompact: {
      std::int64_t horizon = 0;
      if (!reader.ReadI64(&horizon) || !reader.Done()) {
        return BadRecord("compact");
      }
      // Compaction is deterministic given log state + horizon, so re-running
      // it reproduces the original removals and bookkeeping. No callbacks
      // are attached during replay, so nothing is re-journaled.
      log_->Compact(horizon);
      return common::Status::Ok();
    }
    case kSnapshot: {
      std::uint64_t first = 0;
      std::uint64_t next = 0;
      std::uint64_t gced = 0;
      std::uint64_t compacted = 0;
      std::uint64_t skips = 0;
      std::int64_t horizon = 0;
      std::uint64_t compact_end = 0;
      if (!reader.ReadU64(&first) || !reader.ReadU64(&next) || !reader.ReadU64(&gced) ||
          !reader.ReadU64(&compacted) || !reader.ReadU64(&skips) || !reader.ReadI64(&horizon) ||
          !reader.ReadU64(&compact_end) || !reader.Done()) {
        return BadRecord("snapshot");
      }
      log_->TrimTo(first);
      // At the instant this snapshot was written the log held exactly
      // [first, next); segment GC never drops an append that was retained at
      // snapshot time, so replay of an intact wal reproduces both bounds
      // here. A mismatch therefore means retained segments went missing —
      // unless a *later* GC round superseded this snapshot (its own rounds
      // legitimately dropped some of these appends), which is why the
      // verdict is deferred: only the last snapshot's check gates Open.
      if (log_->end_offset() != next) {
        last_snapshot_check_ = common::Status::Internal(
            "partition journal snapshot expects end offset " + std::to_string(next) +
            " but replay reached " + std::to_string(log_->end_offset()));
      } else if (log_->first_offset() != first) {
        // Catches loss of the segments holding the earliest retained appends
        // when later ones survived (invisible to the end-offset check).
        last_snapshot_check_ = common::Status::Internal(
            "partition journal snapshot expects first retained offset " + std::to_string(first) +
            " but replay has " + std::to_string(log_->first_offset()));
      } else {
        last_snapshot_check_ = common::Status::Ok();
      }
      log_->RestoreAccounting(gced, compacted, skips, horizon, compact_end);
      return common::Status::Ok();
    }
    default:
      return BadRecord("unknown tag");
  }
}

void PartitionJournal::NoteFailure(const common::Status& status) {
  if (status_.ok()) {
    status_ = status;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("wal.journal.append_errors").Increment();
  }
}

common::Status PartitionJournal::AppendRecord(const std::string& record,
                                              std::optional<pubsub::Offset> max_offset) {
  auto appended = wal_->Append(record);
  if (!appended.ok()) {
    return appended.status();
  }
  if (max_offset.has_value()) {
    const std::uint64_t seg = wal_->active_segment_first_index();
    auto [it, inserted] = segment_max_offset_.try_emplace(seg, *max_offset);
    if (!inserted && *max_offset > it->second) {
      it->second = *max_offset;
    }
  }
  return common::Status::Ok();
}

void PartitionJournal::EncodeAppend(std::string* record, pubsub::Offset offset,
                                    std::string_view key, std::string_view value,
                                    common::TimeMicros publish_time,
                                    const pubsub::Headers* headers) {
  PutU8(record, kAppend);
  PutU64(record, offset);
  PutBytes(record, key);
  PutBytes(record, value);
  PutI64(record, publish_time);
  if (headers != nullptr && !headers->empty()) {  // Trailing block; omitted when empty.
    PutU32(record, static_cast<std::uint32_t>(headers->size()));
    for (const auto& [name, val] : *headers) {
      PutBytes(record, name);
      PutBytes(record, val);
    }
  }
}

void PartitionJournal::OnAppend(const pubsub::StoredMessage& msg) {
  std::string record;
  EncodeAppend(&record, msg.offset, msg.message.key, msg.message.value,
               msg.message.publish_time, &msg.message.headers);
  const common::Status status = AppendRecord(record, msg.offset);
  if (!status.ok()) {
    NoteFailure(status);
  }
}

void PartitionJournal::OnRetention(const pubsub::RetentionEvent& event) {
  std::string record;
  if (event.kind == pubsub::RetentionEvent::Kind::kCompact) {
    PutU8(&record, kCompact);
    PutI64(&record, event.horizon);
  } else {
    PutU8(&record, kTrim);
    PutU64(&record, event.first_offset);
  }
  common::Status status = AppendRecord(record, std::nullopt);
  if (status.ok() && options_.auto_gc_segments) {
    status = GcSegments();
  }
  if (!status.ok()) {
    NoteFailure(status);
  }
}

common::Status PartitionJournal::GcSegments() {
  // Droppable: the prefix of *sealed* segments whose appends (if any) are all
  // below the first retained offset.
  const pubsub::Offset first_retained = log_->first_offset();
  std::uint64_t drop_before = 0;
  bool any = false;
  for (const SegmentInfo& seg : wal_->Segments()) {
    if (!seg.sealed) {
      break;
    }
    auto it = segment_max_offset_.find(seg.first_index);
    if (it != segment_max_offset_.end() && it->second >= first_retained) {
      break;  // Holds a retained append; the prefix stops here.
    }
    drop_before = seg.end_index;
    any = true;
  }
  if (!any) {
    return common::Status::Ok();
  }

  // Snapshot first — durable before any drop — so marks living in the
  // dropped segments are superseded.
  std::string record;
  PutU8(&record, kSnapshot);
  PutU64(&record, log_->first_offset());
  PutU64(&record, log_->end_offset());
  PutU64(&record, log_->gced());
  PutU64(&record, log_->compacted_away());
  PutU64(&record, log_->silent_skips());
  PutI64(&record, log_->last_compaction_horizon());
  PutU64(&record, log_->compact_end_offset());
  RETURN_IF_ERROR(AppendRecord(record, std::nullopt));
  RETURN_IF_ERROR(wal_->Sync());

  auto dropped = wal_->DropSealedSegmentsBefore(drop_before);
  if (!dropped.ok()) {
    return dropped.status();
  }
  for (auto it = segment_max_offset_.begin(); it != segment_max_offset_.end();) {
    const bool still_present = [&] {
      for (const SegmentInfo& seg : wal_->Segments()) {
        if (seg.first_index == it->first) {
          return true;
        }
      }
      return false;
    }();
    it = still_present ? std::next(it) : segment_max_offset_.erase(it);
  }
  return common::Status::Ok();
}

}  // namespace wal
