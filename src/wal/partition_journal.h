// PartitionJournal: WAL-backed durability for one pubsub::PartitionLog.
//
// The journal is an op log, not a state snapshot: every Append / trim /
// Compact the partition performs is mirrored as a journaled record (via the
// PartitionLog callbacks), and recovery replays the records in order through
// the silent Restore* APIs. Re-executing the ops reproduces the partition's
// state *including* its harness accounting (gced / compacted_away and the
// compaction bookkeeping the invariant oracle reads), which is what lets an
// unmodified oracle pass against a recovered stack.
//
// Record types (u8 tag + little-endian fields):
//   kAppend   offset, key, value, publish_time        — one published message
//   kTrim     first_offset                            — retention GC / size cap
//   kCompact  horizon                                 — deterministic re-run
//   kSnapshot first/next offsets + counters/horizons  — supersedes older marks
//
// Segment GC mirrors PartitionLog retention: once every append in a sealed
// wal segment is below the partition's first retained offset, the segment as
// a whole is droppable. Before dropping, a fresh kSnapshot record is written
// and synced — it supersedes any trim/compact marks living in the dropped
// segments, and replay uses it to fast-forward counters. Only a *prefix* of
// sealed segments is ever dropped, so an append that is still retained can
// never be lost (its segment blocks the prefix).
//
// Write failures inside callbacks cannot propagate a Status, so the journal
// goes loudly sticky instead: status() returns the first failure and
// `wal.journal.append_errors` counts them. Harnesses assert status().ok().
#ifndef SRC_WAL_PARTITION_JOURNAL_H_
#define SRC_WAL_PARTITION_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "pubsub/log.h"
#include "wal/log.h"

namespace wal {

struct PartitionJournalOptions {
  LogOptions log;
  // Attempt segment GC automatically after every retention event.
  bool auto_gc_segments = true;
};

class PartitionJournal {
 public:
  // Opens the journal at `dir`, replays any existing records into `log`
  // (which must be freshly constructed), then attaches the journal as the
  // log's append/retention callbacks. `metrics` may be nullptr.
  static common::Result<std::unique_ptr<PartitionJournal>> Open(
      Vfs* vfs, std::string dir, PartitionJournalOptions options,
      common::MetricsRegistry* metrics, pubsub::PartitionLog* log);

  ~PartitionJournal();

  PartitionJournal(const PartitionJournal&) = delete;
  PartitionJournal& operator=(const PartitionJournal&) = delete;

  // Writes a kSnapshot record and drops the sealed-segment prefix whose
  // appends are all below the partition's first retained offset. No-op (and
  // no snapshot spam) when nothing is droppable.
  common::Status GcSegments();

  // Sticky first write failure (Ok while healthy).
  common::Status status() const { return status_; }

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  Log& wal_log() { return *wal_; }

  // Encodes one append record into `*record` from borrowed spans — the
  // journal's wire form never needs an owned Message, so span-staged publish
  // paths (and OnAppend itself, viewing a StoredMessage) share one encoder.
  // `headers` may be nullptr or empty; the trailing block is then omitted.
  static void EncodeAppend(std::string* record, pubsub::Offset offset, std::string_view key,
                           std::string_view value, common::TimeMicros publish_time,
                           const pubsub::Headers* headers);

 private:
  PartitionJournal(Vfs* vfs, PartitionJournalOptions options, common::MetricsRegistry* metrics,
                   pubsub::PartitionLog* log);

  common::Status Replay(std::uint64_t index, std::string_view payload);
  void OnAppend(const pubsub::StoredMessage& msg);
  void OnRetention(const pubsub::RetentionEvent& event);
  common::Status AppendRecord(const std::string& record, std::optional<pubsub::Offset> max_offset);
  void NoteFailure(const common::Status& status);

  Vfs* vfs_;
  PartitionJournalOptions options_;
  common::MetricsRegistry* metrics_;
  pubsub::PartitionLog* log_;
  std::unique_ptr<Log> wal_;
  common::Status status_;
  RecoveryStats recovery_stats_;
  // Verdict of the most recent kSnapshot record's consistency check. A
  // *stale* snapshot (one superseded by a later GC round) may legitimately
  // disagree with replay — the later round dropped wal segments holding
  // appends that were still retained when the stale snapshot was written —
  // so only the verdict of the last snapshot can fail Open.
  common::Status last_snapshot_check_;

  // Highest message offset appended per wal segment (keyed by the segment's
  // first record index); segments holding only marks have no entry. This is
  // what decides segment droppability.
  std::map<std::uint64_t, pubsub::Offset> segment_max_offset_;
  // Replay-time staging for rebuilding segment_max_offset_ (segment
  // boundaries are only known once Open finishes).
  std::vector<std::pair<std::uint64_t, pubsub::Offset>> replay_appends_;
};

}  // namespace wal

#endif  // SRC_WAL_PARTITION_JOURNAL_H_
