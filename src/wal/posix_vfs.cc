#include "wal/posix_vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace wal {

namespace {

common::Status ErrnoStatus(const std::string& op, const std::string& path) {
  return common::Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  common::Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return common::Status::FailedPrecondition("file closed: " + path_);
    }
    std::size_t written = 0;
    while (written < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("write", path_);
      }
      written += static_cast<std::size_t>(n);
    }
    return common::Status::Ok();
  }

  common::Status Sync() override {
    if (fd_ < 0) {
      return common::Status::FailedPrecondition("file closed: " + path_);
    }
    if (::fsync(fd_) != 0) {
      return ErrnoStatus("fsync", path_);
    }
    return common::Status::Ok();
  }

  common::Status Close() override {
    if (fd_ < 0) {
      return common::Status::Ok();
    }
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc == 0 ? common::Status::Ok() : ErrnoStatus("close", path_);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  common::Result<std::size_t> Read(std::uint64_t offset, std::size_t n,
                                   char* scratch) const override {
    const ssize_t got = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) {
        return static_cast<std::size_t>(0);  // Transient; caller loops.
      }
      return ErrnoStatus("pread", path_);
    }
    return static_cast<std::size_t>(got);
  }

  common::Result<std::uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return ErrnoStatus("fstat", path_);
    }
    return static_cast<std::uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

common::Result<std::unique_ptr<WritableFile>> PosixVfs::OpenAppend(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return ErrnoStatus("open(append)", path);
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
}

common::Result<std::unique_ptr<RandomAccessFile>> PosixVfs::OpenRead(
    const std::string& path) const {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return errno == ENOENT ? common::Status::NotFound(path) : ErrnoStatus("open(read)", path);
  }
  return std::unique_ptr<RandomAccessFile>(new PosixRandomAccessFile(fd, path));
}

common::Status PosixVfs::CreateDirs(const std::string& path) {
  // mkdir -p: create each component; EEXIST is fine.
  std::string partial;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty() && partial != "/") {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return ErrnoStatus("mkdir", partial);
        }
      }
    }
    if (i < path.size()) {
      partial.push_back(path[i]);
    }
  }
  return common::Status::Ok();
}

common::Result<std::vector<std::string>> PosixVfs::ListDir(const std::string& path) const {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return ErrnoStatus("opendir", path);
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    struct stat st;
    if (::stat((path + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

common::Status PosixVfs::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return ErrnoStatus("unlink", path);
  }
  return common::Status::Ok();
}

common::Status PosixVfs::Truncate(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return common::Status::Ok();
}

bool PosixVfs::Exists(const std::string& path) const {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace wal
