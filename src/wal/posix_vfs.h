// PosixVfs: the real-file Vfs backend — open/write/fsync/pread/readdir.
// This is what a deployment runs on; tests mostly use FaultVfs and keep one
// PosixVfs smoke suite so the syscall path stays honest.
#ifndef SRC_WAL_POSIX_VFS_H_
#define SRC_WAL_POSIX_VFS_H_

#include <string>

#include "wal/vfs.h"

namespace wal {

class PosixVfs : public Vfs {
 public:
  common::Result<std::unique_ptr<WritableFile>> OpenAppend(const std::string& path) override;
  common::Result<std::unique_ptr<RandomAccessFile>> OpenRead(
      const std::string& path) const override;
  common::Status CreateDirs(const std::string& path) override;
  common::Result<std::vector<std::string>> ListDir(const std::string& path) const override;
  common::Status Remove(const std::string& path) override;
  common::Status Truncate(const std::string& path, std::uint64_t size) override;
  bool Exists(const std::string& path) const override;
};

}  // namespace wal

#endif  // SRC_WAL_POSIX_VFS_H_
