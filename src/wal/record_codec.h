// Little-endian record encoding helpers shared by the WAL frame format and
// the journal record payloads. Writers append to a std::string; RecordReader
// is bounds-checked and sticky-failing, so malformed payloads (from disk
// corruption) surface as a clean decode failure instead of UB.
#ifndef SRC_WAL_RECORD_CODEC_H_
#define SRC_WAL_RECORD_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wal {

inline void PutU8(std::string* dst, std::uint8_t v) { dst->push_back(static_cast<char>(v)); }

inline void PutU32(std::string* dst, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

inline void PutU64(std::string* dst, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

inline void PutI64(std::string* dst, std::int64_t v) {
  PutU64(dst, static_cast<std::uint64_t>(v));
}

// Length-prefixed bytes.
inline void PutBytes(std::string* dst, std::string_view s) {
  PutU32(dst, static_cast<std::uint32_t>(s.size()));
  dst->append(s);
}

inline std::uint32_t DecodeU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

inline std::uint64_t DecodeU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

class RecordReader {
 public:
  explicit RecordReader(std::string_view data) : data_(data) {}

  bool ReadU8(std::uint8_t* out) {
    if (!Need(1)) {
      return false;
    }
    *out = static_cast<std::uint8_t>(static_cast<unsigned char>(data_[pos_]));
    pos_ += 1;
    return true;
  }

  bool ReadU32(std::uint32_t* out) {
    if (!Need(4)) {
      return false;
    }
    *out = DecodeU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t* out) {
    if (!Need(8)) {
      return false;
    }
    *out = DecodeU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool ReadI64(std::int64_t* out) {
    std::uint64_t raw = 0;
    if (!ReadU64(&raw)) {
      return false;
    }
    *out = static_cast<std::int64_t>(raw);
    return true;
  }

  bool ReadBytes(std::string_view* out) {
    std::uint32_t len = 0;
    if (!ReadU32(&len) || !Need(len)) {
      return false;
    }
    *out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  bool ReadBytes(std::string* out) {
    std::string_view view;
    if (!ReadBytes(&view)) {
      return false;
    }
    out->assign(view);
    return true;
  }

  bool ok() const { return ok_; }
  // True when every byte decoded cleanly with none left over.
  bool Done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wal

#endif  // SRC_WAL_RECORD_CODEC_H_
