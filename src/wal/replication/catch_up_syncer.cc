#include "wal/replication/catch_up_syncer.h"

#include "wal/replication/wal_shipper.h"

namespace wal {
namespace replication {

namespace {

// Follower replay is a no-op: applying frames through Log::Append rebuilds
// the bytes; recovery only needs to re-establish the cursor.
common::Status NoopReplay(std::uint64_t, std::string_view) { return common::Status::Ok(); }

}  // namespace

CatchUpSyncer::CatchUpSyncer(sim::Simulator* sim, sim::Network* net, sim::NodeId node, Vfs* vfs,
                             std::string root_dir, common::MetricsRegistry* metrics,
                             ReplicationOptions options)
    : sim_(sim),
      net_(net),
      node_(std::move(node)),
      vfs_(vfs),
      root_dir_(std::move(root_dir)),
      metrics_(metrics),
      options_(std::move(options)) {
  net_->AddNode(node_);
}

CatchUpSyncer::~CatchUpSyncer() = default;

void CatchUpSyncer::Count(const char* name, std::int64_t delta) {
  if (metrics_ != nullptr) {
    metrics_->counter(name).Increment(delta);
  }
}

void CatchUpSyncer::NoteFailure(const common::Status& status) {
  if (status_.ok()) {
    status_ = status;
  }
  Count("wal.repl.follower_errors");
}

void CatchUpSyncer::ConnectLeader(WalShipper* shipper, sim::NodeId leader_node) {
  leader_ = shipper;
  leader_node_ = std::move(leader_node);
}

void CatchUpSyncer::DetachLeader() {
  leader_ = nullptr;
  leader_node_.clear();
}

CatchUpSyncer::LogState* CatchUpSyncer::GetOrOpenLog(const std::string& log_id) {
  LogState& state = logs_[log_id];
  if (state.log != nullptr) {
    return &state;
  }
  auto opened = Log::Open(vfs_, root_dir_ + "/" + log_id, options_.log_options(log_id), metrics_,
                          NoopReplay);
  if (!opened.ok()) {
    NoteFailure(opened.status());
    return nullptr;
  }
  state.log = std::move(opened.value());
  return &state;
}

void CatchUpSyncer::SendAck(const std::string& log_id, std::uint64_t next) {
  if (leader_ == nullptr) {
    return;
  }
  net_->Send(node_, leader_node_,
             [shipper = leader_, node = node_, log_id, next] { shipper->OnAck(node, log_id, next); });
  Count("wal.repl.acks_sent");
}

void CatchUpSyncer::MaybeRequestCatchUp(const std::string& log_id, LogState* state) {
  if (leader_ == nullptr || state->log == nullptr) {
    return;
  }
  const common::TimeMicros now = sim_->Now();
  if (state->last_catch_up_request >= 0 &&
      now < state->last_catch_up_request + options_.catch_up_retry_micros) {
    return;  // A request is in flight; re-ask only after the retry window.
  }
  state->last_catch_up_request = now;
  const std::uint64_t from = state->log->next_index();
  net_->Send(node_, leader_node_, [shipper = leader_, node = node_, log_id, from] {
    shipper->OnCatchUpRequest(node, log_id, from);
  });
  Count("wal.repl.catch_up_requests");
}

void CatchUpSyncer::Drain(const std::string& log_id, LogState* state) {
  while (!state->pending.empty()) {
    auto it = state->pending.begin();
    const std::uint64_t next = state->log->next_index();
    if (it->first < next) {
      state->pending.erase(it);  // Duplicate delivered by a catch-up stream.
      continue;
    }
    if (it->first > next) {
      break;  // Still a gap.
    }
    auto appended = state->log->Append(it->second);
    if (!appended.ok()) {
      NoteFailure(appended.status());
      return;
    }
    Count("wal.repl.frames_applied");
    state->pending.erase(it);
  }
  if (state->pending.empty()) {
    state->last_catch_up_request = -1;  // Gap closed; next gap re-requests at once.
  }
}

void CatchUpSyncer::OnFrame(const std::string& log_id, std::uint64_t index, std::string payload) {
  if (crashed_) {
    return;
  }
  LogState* state = GetOrOpenLog(log_id);
  if (state == nullptr) {
    return;
  }
  const std::uint64_t next = state->log->next_index();
  if (index < next) {
    // Retransmission (catch-up overlap); re-ack so the leader's accounting
    // converges even if the original ack was dropped.
    Count("wal.repl.dup_frames");
    SendAck(log_id, next);
    return;
  }
  if (index > next) {
    Count("wal.repl.frames_stashed");
    if (state->pending.size() < options_.max_pending_frames) {
      state->pending.emplace(index, std::move(payload));
    }
    MaybeRequestCatchUp(log_id, state);
    return;
  }
  auto appended = state->log->Append(payload);
  if (!appended.ok()) {
    NoteFailure(appended.status());
    return;
  }
  Count("wal.repl.frames_applied");
  Drain(log_id, state);
  SendAck(log_id, state->log->next_index());
}

void CatchUpSyncer::OnResyncFiles(const std::string& log_id,
                                  std::vector<std::pair<std::string, std::string>> files) {
  if (crashed_) {
    return;
  }
  LogState& state = logs_[log_id];
  state.log.reset();  // Close our handle before rewriting the directory.
  const std::string dir = root_dir_ + "/" + log_id;
  common::Status status = vfs_->CreateDirs(dir);
  if (!status.ok()) {
    NoteFailure(status);
    return;
  }
  auto existing = vfs_->ListDir(dir);
  if (!existing.ok()) {
    NoteFailure(existing.status());
    return;
  }
  for (const std::string& name : existing.value()) {
    status = vfs_->Remove(dir + "/" + name);
    if (!status.ok()) {
      NoteFailure(status);
      return;
    }
  }
  for (auto& [name, contents] : files) {
    auto file = vfs_->OpenAppend(dir + "/" + name);
    if (!file.ok()) {
      NoteFailure(file.status());
      return;
    }
    status = file.value()->Append(contents);
    if (status.ok()) {
      status = file.value()->Sync();
    }
    if (status.ok()) {
      status = file.value()->Close();
    }
    if (!status.ok()) {
      NoteFailure(status);
      return;
    }
  }
  state.pending.clear();
  state.last_catch_up_request = -1;
  auto opened =
      Log::Open(vfs_, dir, options_.log_options(log_id), metrics_, NoopReplay);
  if (!opened.ok()) {
    NoteFailure(opened.status());
    return;
  }
  state.log = std::move(opened.value());
  Count("wal.repl.force_resyncs");
  SendAck(log_id, state.log->next_index());
}

void CatchUpSyncer::Crash() {
  crashed_ = true;
  for (auto& [id, state] : logs_) {
    state.log.reset();  // Handles die with the process; the ids survive here.
    state.pending.clear();
    state.last_catch_up_request = -1;
  }
}

common::Status CatchUpSyncer::Restart() {
  crashed_ = false;
  status_ = common::Status::Ok();
  for (auto& [id, state] : logs_) {
    auto opened = Log::Open(vfs_, root_dir_ + "/" + id, options_.log_options(id), metrics_,
                            NoopReplay);
    if (!opened.ok()) {
      NoteFailure(opened.status());
      return opened.status();
    }
    state.log = std::move(opened.value());
  }
  if (leader_ != nullptr) {
    leader_->SyncFollower(this);  // Synchronous control plane; data streams over net.
  }
  return common::Status::Ok();
}

void CatchUpSyncer::ReleaseLogs() {
  for (auto& [id, state] : logs_) {
    state.log.reset();
    state.pending.clear();
    state.last_catch_up_request = -1;
  }
}

std::uint64_t CatchUpSyncer::DurableNextIndex(const std::string& log_id) {
  if (crashed_) {
    return 0;
  }
  LogState* state = GetOrOpenLog(log_id);
  return state == nullptr ? 0 : state->log->next_index();
}

std::uint64_t CatchUpSyncer::TotalNextIndex() const {
  std::uint64_t total = 0;
  for (const auto& [id, state] : logs_) {
    if (state.log != nullptr) {
      total += state.log->next_index();
    }
  }
  return total;
}

std::vector<std::string> CatchUpSyncer::log_ids() const {
  std::vector<std::string> ids;
  ids.reserve(logs_.size());
  for (const auto& [id, state] : logs_) {
    ids.push_back(id);
  }
  return ids;
}

}  // namespace replication
}  // namespace wal
