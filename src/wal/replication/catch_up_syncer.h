// CatchUpSyncer: the follower half of WAL replication.
//
// A follower holds its own copy of every replicated wal::Log under
// `<root_dir>/<log_id>`. Frames arrive from the leader's WalShipper over the
// sim network; the frame at exactly the follower's durable cursor (its log's
// next_index — the WAL itself is the replication cursor, there is no separate
// cursor file to desync) is appended and acked. Out-of-order frames are
// stashed (bounded) and a catch-up stream is requested from the leader; if
// the leader's prefix GC has already reclaimed the requested range, the
// leader answers with a force-resync — a byte-for-byte segment-file snapshot
// that replaces the follower's copy wholesale.
//
// Crash()/Restart() model a follower process crash: handles drop, stashes
// clear, and Restart reopens the logs from the (possibly torn) on-disk state
// — Log::Open truncates the torn tail, the cursor falls back to the last
// durable record, and the leader re-streams from there.
//
// Control plane vs data plane: every frame, ack, catch-up request, and
// resync snapshot crosses the sim network (latency, reorder, partition,
// drop). Membership operations (ConnectLeader, SyncFollower's cursor probe,
// Restart's re-sync) are modeled as synchronous calls — the sim runs one
// event at a time, so this is safe and keeps the protocol small.
#ifndef SRC_WAL_REPLICATION_CATCH_UP_SYNCER_H_
#define SRC_WAL_REPLICATION_CATCH_UP_SYNCER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/network.h"
#include "wal/log.h"
#include "wal/replication/options.h"
#include "wal/vfs.h"

namespace wal {
namespace replication {

class WalShipper;

class CatchUpSyncer {
 public:
  CatchUpSyncer(sim::Simulator* sim, sim::Network* net, sim::NodeId node, Vfs* vfs,
                std::string root_dir, common::MetricsRegistry* metrics,
                ReplicationOptions options);
  ~CatchUpSyncer();

  CatchUpSyncer(const CatchUpSyncer&) = delete;
  CatchUpSyncer& operator=(const CatchUpSyncer&) = delete;

  // -- Membership (synchronous control plane) ----------------------------------

  void ConnectLeader(WalShipper* shipper, sim::NodeId leader_node);
  void DetachLeader();

  // -- Transport entry points (run as delivered network closures) --------------

  void OnFrame(const std::string& log_id, std::uint64_t index, std::string payload);
  // Force-resync: replaces the follower's copy of `log_id` with the given
  // (file name, contents) segment snapshot, then reopens and acks.
  void OnResyncFiles(const std::string& log_id,
                     std::vector<std::pair<std::string, std::string>> files);

  // -- Lifecycle ---------------------------------------------------------------

  // Process crash: drops log handles and volatile stashes. The caller is
  // responsible for the storage-level crash (FaultVfs::Crash) and for taking
  // the node down in the network.
  void Crash();
  // Reopens every known log from disk (torn tails truncate) and asks the
  // leader, if any, to re-sync. Caller restarts the Vfs / network first.
  common::Status Restart();
  // Releases every open log handle without forgetting the ids — the
  // promotion hand-off, after which BrokerJournal::Open owns the directory.
  void ReleaseLogs();

  // -- Introspection -----------------------------------------------------------

  // Durable cursor for one log, opening it from disk if needed (0 on error).
  std::uint64_t DurableNextIndex(const std::string& log_id);
  // Sum of cursors across known logs — the promotion fitness score.
  std::uint64_t TotalNextIndex() const;
  std::vector<std::string> log_ids() const;
  const sim::NodeId& node() const { return node_; }
  const std::string& root_dir() const { return root_dir_; }
  bool crashed() const { return crashed_; }
  // Sticky first local-append/reopen failure.
  common::Status status() const { return status_; }

 private:
  struct LogState {
    std::unique_ptr<Log> log;
    // Out-of-order frames by index, waiting for the gap to fill.
    std::map<std::uint64_t, std::string> pending;
    common::TimeMicros last_catch_up_request = -1;
  };

  LogState* GetOrOpenLog(const std::string& log_id);
  void Drain(const std::string& log_id, LogState* state);
  void SendAck(const std::string& log_id, std::uint64_t next);
  void MaybeRequestCatchUp(const std::string& log_id, LogState* state);
  void NoteFailure(const common::Status& status);
  void Count(const char* name, std::int64_t delta = 1);

  sim::Simulator* sim_;
  sim::Network* net_;
  sim::NodeId node_;
  Vfs* vfs_;
  std::string root_dir_;
  common::MetricsRegistry* metrics_;
  ReplicationOptions options_;

  WalShipper* leader_ = nullptr;
  sim::NodeId leader_node_;
  std::map<std::string, LogState> logs_;
  bool crashed_ = false;
  common::Status status_;
};

}  // namespace replication
}  // namespace wal

#endif  // SRC_WAL_REPLICATION_CATCH_UP_SYNCER_H_
