#include "wal/replication/failover_controller.h"

#include <memory>

#include "wal/log.h"

namespace wal {
namespace replication {

namespace {

// Reads every record of the log at `dir` into an index->payload map. Opening
// mutates like recovery would (creates the dir if absent, truncates a torn
// active tail) — acceptable for post-mortem forensics, identical to what a
// real restart of that node would observe.
common::Result<std::map<std::uint64_t, std::string>> ReadAllRecords(Vfs* vfs,
                                                                    const std::string& dir) {
  std::map<std::uint64_t, std::string> records;
  auto log = Log::Open(vfs, dir, LogOptions{}, nullptr,
                       [&records](std::uint64_t index, std::string_view payload) {
                         records.emplace(index, std::string(payload));
                         return common::Status::Ok();
                       });
  if (!log.ok()) {
    return log.status();
  }
  return records;
}

}  // namespace

common::Result<CatchUpSyncer*> FailoverController::PickMostCaughtUp(
    const std::vector<CatchUpSyncer*>& followers) {
  CatchUpSyncer* best = nullptr;
  for (CatchUpSyncer* candidate : followers) {
    if (candidate == nullptr || candidate->crashed()) {
      continue;
    }
    if (best == nullptr || candidate->TotalNextIndex() > best->TotalNextIndex() ||
        (candidate->TotalNextIndex() == best->TotalNextIndex() &&
         candidate->node() < best->node())) {
      best = candidate;
    }
  }
  if (best == nullptr) {
    return common::Status::Unavailable("no live follower to promote");
  }
  return best;
}

PromotionCheck FailoverController::CheckPromotion(
    Vfs* old_leader_vfs, const std::string& old_root, Vfs* promoted_vfs,
    const std::string& promoted_root, const std::vector<std::string>& log_ids,
    const std::map<std::string, std::uint64_t>& acked_next) {
  PromotionCheck check;
  auto violate = [&check](const char* invariant, std::string detail) {
    check.violations.emplace_back(invariant, std::move(detail));
  };

  for (const std::string& id : log_ids) {
    auto old_records = ReadAllRecords(old_leader_vfs, old_root + "/" + id);
    auto new_records = ReadAllRecords(promoted_vfs, promoted_root + "/" + id);
    if (!old_records.ok() || !new_records.ok()) {
      violate("failover-forensic-read",
              id + ": " +
                  (!old_records.ok() ? old_records.status().ToString()
                                     : new_records.status().ToString()));
      continue;
    }
    const auto& old_log = old_records.value();
    const auto& new_log = new_records.value();
    const std::uint64_t old_next = old_log.empty() ? 0 : old_log.rbegin()->first + 1;
    const std::uint64_t new_next = new_log.empty() ? 0 : new_log.rbegin()->first + 1;

    if (new_next > old_next) {
      check.phantom_records += new_next - old_next;
      violate("failover-snapshot-containment",
              id + ": promoted log ends at " + std::to_string(new_next) +
                  ", old leader only had " + std::to_string(old_next));
    }
    for (const auto& [index, payload] : new_log) {
      auto it = old_log.find(index);
      if (it != old_log.end() && it->second != payload) {
        ++check.payload_mismatches;
        violate("failover-snapshot-containment",
                id + ": payload divergence at index " + std::to_string(index));
      }
    }
    auto acked = acked_next.find(id);
    if (acked != acked_next.end() && new_next < acked->second) {
      check.acked_records_lost += acked->second - new_next;
      violate("failover-acked-prefix",
              id + ": acked through " + std::to_string(acked->second) +
                  " but promoted log ends at " + std::to_string(new_next));
    }
  }
  return check;
}

}  // namespace replication
}  // namespace wal
