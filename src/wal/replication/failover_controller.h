// FailoverController: promotion policy and the oracle-facing promotion
// check.
//
// Promotion picks the most caught-up live follower (largest total durable
// cursor across its logs; ties break toward the smallest node id for
// determinism). Under quorum ack this choice is what makes the §3.3
// guarantee hold: the best follower is at least as long as the (quorum-1)-th
// best, which by definition bounds the quorum-acked prefix.
//
// CheckPromotion is the invariant oracle for a completed failover. It reads
// both WAL trees back post-mortem (the old leader's Vfs must be restarted
// first — this is forensic disk access, and Log::Open will truncate a torn
// active tail exactly as recovery would) and asserts, per log:
//
//   failover-acked-prefix       every acked record survived promotion
//                               (promoted cursor >= acked cursor);
//   failover-snapshot-containment  the promoted log is a prefix of the old
//                               leader's durable log — no phantom records
//                               the old leader never had, no payload
//                               divergence at any shared index.
//
// Violations are returned as (invariant, detail) pairs; feed them to
// oracle::InvariantOracle::ReportExternalViolation to fail a harness run.
#ifndef SRC_WAL_REPLICATION_FAILOVER_CONTROLLER_H_
#define SRC_WAL_REPLICATION_FAILOVER_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "wal/replication/catch_up_syncer.h"
#include "wal/vfs.h"

namespace wal {
namespace replication {

struct PromotionCheck {
  std::uint64_t acked_records_lost = 0;  // Acked indexes missing post-promotion.
  std::uint64_t phantom_records = 0;     // Promoted records the old leader lacked.
  std::uint64_t payload_mismatches = 0;  // Shared indexes with divergent bytes.
  std::vector<std::pair<std::string, std::string>> violations;  // (invariant, detail).

  bool ok() const { return violations.empty(); }
};

class FailoverController {
 public:
  // The promotion policy. Considers only non-crashed followers; kUnavailable
  // if none qualify.
  static common::Result<CatchUpSyncer*> PickMostCaughtUp(
      const std::vector<CatchUpSyncer*>& followers);

  // Post-mortem failover oracle (see file comment). `acked_next` maps log id
  // to the cursor the chosen ack mode had acknowledged at crash time; ids
  // absent from the map are checked for containment only.
  static PromotionCheck CheckPromotion(Vfs* old_leader_vfs, const std::string& old_root,
                                       Vfs* promoted_vfs, const std::string& promoted_root,
                                       const std::vector<std::string>& log_ids,
                                       const std::map<std::string, std::uint64_t>& acked_next);
};

}  // namespace replication
}  // namespace wal

#endif  // SRC_WAL_REPLICATION_FAILOVER_CONTROLLER_H_
