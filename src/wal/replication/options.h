// Shared configuration for the WAL replication subsystem (leader WalShipper,
// follower CatchUpSyncer, FailoverController). See docs/WAL.md §Replication.
#ifndef SRC_WAL_REPLICATION_OPTIONS_H_
#define SRC_WAL_REPLICATION_OPTIONS_H_

#include <cstddef>
#include <functional>
#include <string>

#include "wal/log.h"

namespace wal {
namespace replication {

// When is a record "acked" for durability accounting?
//   kLeaderOnly — durable on the leader's WAL alone. Cheap, but a leader
//     crash loses the suffix not yet shipped/applied at a follower; the
//     failover bench measures (and reports) exactly that loss.
//   kQuorum — durable on a majority of the replication_factor copies
//     (leader included). A promoted follower then always retains every
//     quorum-acked record: the most caught-up follower is at least as long
//     as the (quorum-1)-th most caught-up one.
enum class AckMode {
  kLeaderOnly,
  kQuorum,
};

struct ReplicationOptions {
  // Total number of copies, leader included. 1 disables replication.
  std::size_t replication_factor = 2;
  AckMode ack_mode = AckMode::kQuorum;
  // Frames sent per catch-up burst before the stream yields to the scheduler.
  std::size_t catch_up_batch = 64;
  // Bound on a follower's out-of-order frame stash per log; overflow frames
  // are dropped (the catch-up stream re-delivers them).
  std::size_t max_pending_frames = 1024;
  // A follower re-requests catch-up if a gap persists this long (µs).
  std::int64_t catch_up_retry_micros = 10'000;
  // LogOptions for a follower's copy of the log with this id ("meta",
  // "t-<topic>/p-<N>"). Should match the leader's options for the same log so
  // promotion hands BrokerJournal::Open a familiarly-shaped directory.
  // Leader logs must run with sync_every_append: the shipper observes appends
  // that are already durable, and force-resync reads segment files assuming
  // their tail is on "disk".
  std::function<LogOptions(const std::string& id)> log_options =
      [](const std::string&) { return LogOptions{}; };
};

}  // namespace replication
}  // namespace wal

#endif  // SRC_WAL_REPLICATION_OPTIONS_H_
