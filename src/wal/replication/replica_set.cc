#include "wal/replication/replica_set.h"

#include <algorithm>

#include "wal/replication/failover_controller.h"

namespace wal {
namespace replication {

ReplicaSet::ReplicaSet(sim::Simulator* sim, Vfs* vfs, std::string root_dir,
                       std::string node_prefix, common::MetricsRegistry* metrics,
                       ReplicationOptions options)
    : sim_(sim),
      vfs_(vfs),
      root_dir_(std::move(root_dir)),
      node_prefix_(std::move(node_prefix)),
      metrics_(metrics),
      options_(std::move(options)),
      net_(sim, sim::LatencyModel{0, 0}) {
  const std::size_t follower_count =
      options_.replication_factor > 0 ? options_.replication_factor - 1 : 0;
  for (std::size_t k = 0; k < follower_count; ++k) {
    followers_.push_back(std::make_unique<CatchUpSyncer>(
        sim_, &net_, node_prefix_ + "-r" + std::to_string(k), vfs_,
        root_dir_ + "-replica-" + std::to_string(k), metrics_, options_));
  }
}

ReplicaSet::~ReplicaSet() { DetachLeader(); }

void ReplicaSet::AttachLeader(BrokerJournal* journal) {
  DetachLeader();
  journal_ = journal;
  const sim::NodeId leader_node = node_prefix_ + "-leader-" + std::to_string(generation_);
  ++generation_;
  shipper_ = std::make_unique<WalShipper>(sim_, &net_, leader_node, metrics_, options_);
  journal->VisitLogs(
      [this](const std::string& id, Log* log) { shipper_->Track(id, log); });
  journal->set_log_created_callback(
      [this](const std::string& id, Log* log) { shipper_->Track(id, log); });
  for (auto& follower : followers_) {
    shipper_->AddFollower(follower.get());
  }
}

void ReplicaSet::DetachLeader() {
  if (journal_ != nullptr) {
    journal_->set_log_created_callback(nullptr);
    journal_ = nullptr;
  }
  if (shipper_ != nullptr) {
    net_.SetUp(shipper_->node(), false);
    for (auto& follower : followers_) {
      follower->DetachLeader();
    }
    shipper_.reset();  // Detaches observers and closes pinned readers.
  }
}

common::Result<std::string> ReplicaSet::Promote() {
  DetachLeader();
  std::vector<CatchUpSyncer*> candidates;
  candidates.reserve(followers_.size());
  for (auto& follower : followers_) {
    candidates.push_back(follower.get());
  }
  auto picked = FailoverController::PickMostCaughtUp(candidates);
  if (!picked.ok()) {
    return picked.status();
  }
  CatchUpSyncer* promoted = picked.value();
  promoted->ReleaseLogs();
  net_.SetUp(promoted->node(), false);  // Stale in-flight frames must drop.
  const std::string dir = promoted->root_dir();
  auto it = std::find_if(followers_.begin(), followers_.end(),
                         [promoted](const std::unique_ptr<CatchUpSyncer>& f) {
                           return f.get() == promoted;
                         });
  retired_.push_back(std::move(*it));
  followers_.erase(it);
  if (metrics_ != nullptr) {
    metrics_->counter("wal.repl.promotions").Increment();
  }
  return dir;
}

std::map<std::string, std::uint64_t> ReplicaSet::QuorumAckedNext() const {
  if (shipper_ == nullptr) {
    return {};
  }
  return shipper_->QuorumAckedNextAll();
}

std::vector<CatchUpSyncer*> ReplicaSet::followers() {
  std::vector<CatchUpSyncer*> out;
  out.reserve(followers_.size());
  for (auto& follower : followers_) {
    out.push_back(follower.get());
  }
  return out;
}

}  // namespace replication
}  // namespace wal
