// ReplicaSet: packages WAL replication for one durable runtime shard.
//
// Owns replication_factor-1 CatchUpSyncer followers (rooted at
// `<root_dir>-replica-<k>` on the same Vfs as the shard's journal) plus a
// private zero-latency sim::Network for the replication traffic — zero
// latency keeps the frames inside the same FlushSim window as the append
// that produced them, which is what the shard pool's tick=0 event model
// requires (see ShardPool::FlushSim).
//
// AttachLeader() points the set at a (re)opened BrokerJournal: a fresh
// WalShipper tracks the journal's meta and partition logs (including logs
// created later, via the journal's log-created callback) and syncs every
// follower. Promote() runs the failover hand-off: detach from the dead
// leader, pick the most caught-up follower, release its log handles, and
// return its root dir for the caller to BrokerJournal::Open as the new
// durable root — the replay there truncates any unacked torn tail (the
// promotion truncation contract). The promoted follower retires; the
// effective replication factor drops by one per failover.
//
// Declare a ReplicaSet member AFTER the journal it attaches to (so it
// detaches first on destruction), or call DetachLeader() before the journal
// dies.
#ifndef SRC_WAL_REPLICATION_REPLICA_SET_H_
#define SRC_WAL_REPLICATION_REPLICA_SET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "sim/network.h"
#include "wal/broker_journal.h"
#include "wal/replication/catch_up_syncer.h"
#include "wal/replication/wal_shipper.h"
#include "wal/vfs.h"

namespace wal {
namespace replication {

class ReplicaSet {
 public:
  ReplicaSet(sim::Simulator* sim, Vfs* vfs, std::string root_dir, std::string node_prefix,
             common::MetricsRegistry* metrics, ReplicationOptions options);
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  // Starts shipping `journal`'s logs to the followers. The journal must
  // outlive the attachment (call DetachLeader before destroying it).
  void AttachLeader(BrokerJournal* journal);
  // Stops shipping, takes the leader node down (stray in-flight acks drop),
  // and releases every tracked log. Idempotent.
  void DetachLeader();

  // Failover: promotes the most caught-up live follower and returns its root
  // dir — the new durable root to BrokerJournal::Open. Implies
  // DetachLeader(). kUnavailable when no live follower remains.
  common::Result<std::string> Promote();

  // Quorum-acked durable cursor per log id (empty when detached).
  std::map<std::string, std::uint64_t> QuorumAckedNext() const;

  bool attached() const { return shipper_ != nullptr; }
  WalShipper* shipper() { return shipper_.get(); }
  std::vector<CatchUpSyncer*> followers();
  const ReplicationOptions& options() const { return options_; }

 private:
  sim::Simulator* sim_;
  Vfs* vfs_;
  std::string root_dir_;
  std::string node_prefix_;
  common::MetricsRegistry* metrics_;
  ReplicationOptions options_;
  sim::Network net_;  // Private zero-latency replication transport.

  BrokerJournal* journal_ = nullptr;
  std::unique_ptr<WalShipper> shipper_;
  std::vector<std::unique_ptr<CatchUpSyncer>> followers_;
  // Promoted followers, kept alive so stray in-flight closures holding their
  // pointers stay valid (their nodes are down, so nothing is delivered).
  std::vector<std::unique_ptr<CatchUpSyncer>> retired_;
  std::uint64_t generation_ = 0;
};

}  // namespace replication
}  // namespace wal

#endif  // SRC_WAL_REPLICATION_REPLICA_SET_H_
