#include "wal/replication/wal_shipper.h"

#include <algorithm>

#include "wal/replication/catch_up_syncer.h"

namespace wal {
namespace replication {

namespace {
// Delay between catch-up bursts, so a long stream interleaves with live
// traffic instead of monopolizing the event queue.
constexpr common::TimeMicros kStreamBurstGapMicros = 100;
}  // namespace

WalShipper::WalShipper(sim::Simulator* sim, sim::Network* net, sim::NodeId node,
                       common::MetricsRegistry* metrics, ReplicationOptions options)
    : sim_(sim),
      net_(net),
      node_(std::move(node)),
      metrics_(metrics),
      options_(std::move(options)),
      alive_(std::make_shared<bool>(true)) {
  net_->AddNode(node_);
}

WalShipper::~WalShipper() {
  Detach();
  *alive_ = false;
}

void WalShipper::Count(const char* name, std::int64_t delta) {
  if (metrics_ != nullptr) {
    metrics_->counter(name).Increment(delta);
  }
}

void WalShipper::Track(const std::string& log_id, Log* log) {
  logs_[log_id] = log;
  log->set_append_observer([this, log_id](std::uint64_t index, std::string_view payload) {
    ShipFrame(log_id, index, payload);
  });
  for (auto& [node, follower] : followers_) {
    SyncLog(&follower, log_id, log);
  }
}

void WalShipper::Detach() {
  streams_.clear();  // Readers must die before the logs they pin.
  for (auto& [id, log] : logs_) {
    log->set_append_observer(nullptr);
  }
  logs_.clear();
}

void WalShipper::AddFollower(CatchUpSyncer* follower) {
  FollowerState& state = followers_[follower->node()];
  state.syncer = follower;
  follower->ConnectLeader(this, node_);
  for (auto& [id, log] : logs_) {
    SyncLog(&state, id, log);
  }
}

void WalShipper::SyncFollower(CatchUpSyncer* follower) {
  auto it = followers_.find(follower->node());
  if (it == followers_.end()) {
    return;
  }
  for (auto& [id, log] : logs_) {
    SyncLog(&it->second, id, log);
  }
}

void WalShipper::SyncLog(FollowerState* follower, const std::string& log_id, Log* log) {
  // Cursor probe is synchronous control plane; the repair itself (stream or
  // snapshot) flows over the network.
  const std::uint64_t follower_next = follower->syncer->DurableNextIndex(log_id);
  follower->acked[log_id] = std::max(follower->acked[log_id], follower_next);
  if (follower_next > log->next_index()) {
    // The follower outlived a leader that had more records (or a divergent
    // history). Its suffix was never exposed by *this* leader; replace it.
    ForceResync(follower->syncer, log_id, log);
  } else if (follower_next < log->next_index()) {
    StartStream(follower->syncer->node(), log_id, log, follower_next);
  }
}

void WalShipper::ShipFrame(const std::string& log_id, std::uint64_t index,
                           std::string_view payload) {
  for (auto& [node, follower] : followers_) {
    if (streams_.count({node, log_id}) > 0) {
      continue;  // The open stream's reader will reach this frame in order.
    }
    SendFrame(follower.syncer, log_id, index, std::string(payload));
  }
}

void WalShipper::SendFrame(CatchUpSyncer* follower, const std::string& log_id,
                           std::uint64_t index, std::string payload) {
  net_->Send(node_, follower->node(),
             [follower, log_id, index, p = std::move(payload)]() mutable {
               follower->OnFrame(log_id, index, std::move(p));
             });
  Count("wal.repl.frames_shipped");
}

void WalShipper::StartStream(const sim::NodeId& follower, const std::string& log_id, Log* log,
                             std::uint64_t from) {
  const auto key = std::make_pair(follower, log_id);
  if (streams_.count(key) > 0) {
    return;
  }
  streams_[key].reader = log->OpenReader(from);
  Count("wal.repl.streams_opened");
  PumpStream(follower, log_id);
}

void WalShipper::PumpStream(const sim::NodeId& follower, const std::string& log_id) {
  auto it = streams_.find({follower, log_id});
  if (it == streams_.end()) {
    return;
  }
  auto fit = followers_.find(follower);
  auto lit = logs_.find(log_id);
  if (fit == followers_.end() || lit == logs_.end()) {
    streams_.erase(it);
    return;
  }
  std::uint64_t index = 0;
  std::string payload;
  for (std::size_t i = 0; i < options_.catch_up_batch; ++i) {
    auto more = it->second.reader->Next(&index, &payload);
    if (!more.ok()) {
      // kNotFound: the cursor fell below the retained prefix (opened out of
      // band). Recover loudly with a snapshot rather than skipping records.
      streams_.erase(it);
      ForceResync(fit->second.syncer, log_id, lit->second);
      return;
    }
    if (!more.value()) {
      streams_.erase(it);  // Caught up; live tail takes over from here.
      return;
    }
    SendFrame(fit->second.syncer, log_id, index, std::move(payload));
  }
  sim_->After(kStreamBurstGapMicros, [this, alive = alive_, follower, log_id] {
    if (*alive) {
      PumpStream(follower, log_id);
    }
  });
}

void WalShipper::ForceResync(CatchUpSyncer* follower, const std::string& log_id, Log* log) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const SegmentInfo& seg : log->Segments()) {
    const std::string name = Log::SegmentFileName(seg.first_index);
    auto contents = ReadFileToString(*log->vfs(), log->dir() + "/" + name);
    if (!contents.ok()) {
      Count("wal.repl.resync_read_errors");
      return;  // Leader storage failing; the follower will re-request.
    }
    files.emplace_back(name, std::move(contents.value()));
  }
  Count("wal.repl.force_resyncs_sent");
  net_->Send(node_, follower->node(), [follower, log_id, files = std::move(files)]() mutable {
    follower->OnResyncFiles(log_id, std::move(files));
  });
}

void WalShipper::OnAck(const sim::NodeId& follower, const std::string& log_id,
                       std::uint64_t next) {
  auto it = followers_.find(follower);
  if (it == followers_.end()) {
    return;
  }
  std::uint64_t& acked = it->second.acked[log_id];
  acked = std::max(acked, next);
  Count("wal.repl.acks");
}

void WalShipper::OnCatchUpRequest(const sim::NodeId& follower, const std::string& log_id,
                                  std::uint64_t from) {
  auto fit = followers_.find(follower);
  auto lit = logs_.find(log_id);
  if (fit == followers_.end() || lit == logs_.end()) {
    return;
  }
  if (streams_.count({follower, log_id}) > 0) {
    return;  // Already repairing this pair.
  }
  Count("wal.repl.catch_up_requests_served");
  if (from < lit->second->oldest_retained_index()) {
    // Prefix GC outran the follower: the records it needs are gone, so a
    // stream cannot start at `from`. Snapshot instead.
    ForceResync(fit->second.syncer, log_id, lit->second);
    return;
  }
  StartStream(follower, log_id, lit->second, from);
}

std::uint64_t WalShipper::QuorumAckedNext(const std::string& log_id) const {
  auto lit = logs_.find(log_id);
  const std::uint64_t leader_next = lit == logs_.end() ? 0 : lit->second->next_index();
  const std::size_t quorum = options_.replication_factor / 2 + 1;
  if (quorum <= 1) {
    return leader_next;
  }
  // The leader is one copy; the (quorum-1)-th best follower completes the
  // majority.
  std::vector<std::uint64_t> acks;
  acks.reserve(followers_.size());
  for (const auto& [node, follower] : followers_) {
    auto it = follower.acked.find(log_id);
    acks.push_back(it == follower.acked.end() ? 0 : it->second);
  }
  if (acks.size() < quorum - 1) {
    return 0;
  }
  std::sort(acks.begin(), acks.end(), std::greater<std::uint64_t>());
  return std::min(leader_next, acks[quorum - 2]);
}

std::map<std::string, std::uint64_t> WalShipper::QuorumAckedNextAll() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [id, log] : logs_) {
    out[id] = QuorumAckedNext(id);
  }
  return out;
}

std::vector<std::string> WalShipper::log_ids() const {
  std::vector<std::string> ids;
  ids.reserve(logs_.size());
  for (const auto& [id, log] : logs_) {
    ids.push_back(id);
  }
  return ids;
}

}  // namespace replication
}  // namespace wal
